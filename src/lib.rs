//! # wcycle-svd
//!
//! Facade crate for the W-cycle SVD reproduction (Xiao et al., *W-Cycle
//! SVD: A Multilevel Algorithm for Batched SVD on GPUs*, SC 2022).
//!
//! Re-exports the full workspace surface:
//!
//! * [`core`] / [`wcycle_svd`] — the multilevel batched SVD (Algorithm 2);
//! * [`gpu`] — the GPU execution-model simulator substrate;
//! * [`linalg`] — dense matrices, GEMM, reference two-stage SVD;
//! * [`jacobi`] — the batched SM SVD/EVD kernels;
//! * [`batched`] — tailored batched GEMM and the auto-tuning engine;
//! * [`baselines`] — cuSOLVER-like, MAGMA-like and ref.-\[19\] comparators;
//! * [`datasets`] — deterministic synthetic workloads;
//! * [`apps`] — data assimilation and image compression.
//!
//! ```
//! use wcycle_svd::{wcycle_svd, WCycleConfig};
//! use wcycle_svd::gpu::{Gpu, V100};
//! use wcycle_svd::linalg::generate::random_uniform;
//!
//! let gpu = Gpu::new(V100);
//! let batch = vec![random_uniform(48, 48, 1), random_uniform(96, 64, 2)];
//! let out = wcycle_svd(&gpu, &batch, &WCycleConfig::default()).unwrap();
//! for r in &out.results {
//!     assert!(r.sigma.windows(2).all(|w| w[0] >= w[1]));
//! }
//! println!("simulated time: {:.3} ms", gpu.elapsed_seconds() * 1e3);
//! ```

pub use wsvd_apps as apps;
pub use wsvd_baselines as baselines;
pub use wsvd_batched as batched;
pub use wsvd_core as core;
pub use wsvd_datasets as datasets;
pub use wsvd_gpu_sim as gpu;
pub use wsvd_jacobi as jacobi;
pub use wsvd_linalg as linalg;

pub use wsvd_core::{wcycle_svd, AlphaSelect, Tuning, WCycleConfig, WCycleOutput, WSvd};
