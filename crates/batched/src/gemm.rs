//! Batched GEMM kernels: the two products at every W-cycle level.
//!
//! At Level *h* the workflow needs (§IV-D):
//! 1. the **Gram** batched GEMM `B_ij = A_ij^T A_ij`, and
//! 2. the **update** batched GEMM `Â_ij = A_ij J_ij`.
//!
//! Two execution strategies are provided:
//! * [`GemmStrategy::OneBlockPerGemm`] — the "common way" (one thread block
//!   per GEMM task), which starves the device when the batch is small or
//!   the matrices are skinny (Challenge 2);
//! * [`GemmStrategy::Tailored`] — the paper's tailoring strategy: each
//!   `A_ij` is cut into standard-plate segments of `δ_h` rows, one segment
//!   per block; residual segments are packed into shared blocks until their
//!   rows exceed `1.2 δ_h`; Gram partials from the segments of one GEMM are
//!   then reduced in a second kernel (Fig. 6).

use wsvd_gpu_sim::{
    BarrierDiscipline, Gpu, KernelConfig, KernelError, KernelResource, LaunchStats, ScheduleFamily,
    SmemRequirement,
};
use wsvd_linalg::gemm::{gram, matmul};
use wsvd_linalg::Matrix;

use crate::models::TailorPlan;

/// Residual-packing headroom factor (§IV-D1, "an empirical parameter 1.2δ").
const RESIDUAL_PACK_FACTOR: f64 = 1.2;

/// Shared memory requested per GEMM block (double-buffered plate tiles).
/// Exported so the static sanitizer can prove the GEMM stage of a plan fits
/// the arena before launch.
pub const GEMM_SMEM_BYTES: usize = 16 * 1024;

/// The GEMM kernels' static shared-memory demand as a checkable artifact.
pub fn gemm_smem_requirement() -> SmemRequirement {
    SmemRequirement {
        label: "batched GEMM tile buffers".to_string(),
        bytes: GEMM_SMEM_BYTES,
    }
}

/// Resource-IR descriptor for the batched Gram/update GEMM kernels: the
/// fixed 16 KiB double-buffered tile arena, uniform block-wide barriers
/// between tile phases, and no pair schedule (pure data parallelism).
pub fn gemm_kernel_resource(threads: usize) -> KernelResource {
    KernelResource {
        kernel: "batched-gemm".to_string(),
        smem: gemm_smem_requirement(),
        threads_per_block: threads,
        barriers: BarrierDiscipline::Uniform,
        schedule: ScheduleFamily::None,
    }
}

/// How a batched GEMM is mapped onto thread blocks.
#[derive(Clone, Copy, Debug)]
pub enum GemmStrategy {
    /// One thread block per GEMM task (the baseline mapping).
    OneBlockPerGemm {
        /// Threads per block.
        threads: usize,
    },
    /// The tailoring strategy with a standard plate of `delta x 2w`.
    Tailored(TailorPlan),
}

/// A row-range of one GEMM task assigned to a thread block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Index of the GEMM task (the pair block) this segment belongs to.
    pub gemm: usize,
    /// First row of the segment.
    pub row_start: usize,
    /// Number of rows.
    pub rows: usize,
}

/// Work assignment of the tailoring strategy: each inner `Vec` is the
/// segment list of one thread block.
pub fn tailor_assignment(row_counts: &[usize], delta: usize) -> Vec<Vec<Segment>> {
    let delta = delta.max(1);
    let mut blocks: Vec<Vec<Segment>> = Vec::new();
    let mut residuals: Vec<Segment> = Vec::new();
    for (g, &m) in row_counts.iter().enumerate() {
        let full = m / delta;
        for s in 0..full {
            blocks.push(vec![Segment {
                gemm: g,
                row_start: s * delta,
                rows: delta,
            }]);
        }
        let rem = m - full * delta;
        if rem > 0 {
            residuals.push(Segment {
                gemm: g,
                row_start: full * delta,
                rows: rem,
            });
        }
    }
    // Pack residual segments into shared blocks until 1.2δ rows are reached.
    let cap = (RESIDUAL_PACK_FACTOR * delta as f64) as usize;
    let mut current: Vec<Segment> = Vec::new();
    let mut current_rows = 0usize;
    for seg in residuals {
        current_rows += seg.rows;
        current.push(seg);
        if current_rows > cap {
            blocks.push(std::mem::take(&mut current));
            current_rows = 0;
        }
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    blocks
}

/// Statically verifies a tailored work assignment: every segment must lie
/// inside its GEMM, and for each GEMM the segments (across all blocks) must
/// tile its rows exactly — no overlap (a partial would be summed twice) and
/// no gap (rows silently dropped from the product). Returns a description of
/// the first defect found.
pub fn verify_tailor_assignment(
    row_counts: &[usize],
    assignment: &[Vec<Segment>],
) -> Result<(), String> {
    let mut ranges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); row_counts.len()];
    for (block, segs) in assignment.iter().enumerate() {
        for seg in segs {
            if seg.gemm >= row_counts.len() {
                return Err(format!(
                    "block {block}: segment references GEMM {} but only {} exist",
                    seg.gemm,
                    row_counts.len()
                ));
            }
            let m = row_counts[seg.gemm];
            if seg.rows == 0 || seg.row_start + seg.rows > m {
                return Err(format!(
                    "block {block}: rows [{}, {}) out of range for GEMM {} with {m} rows",
                    seg.row_start,
                    seg.row_start + seg.rows,
                    seg.gemm
                ));
            }
            ranges[seg.gemm].push((seg.row_start, seg.row_start + seg.rows));
        }
    }
    for (g, mut rs) in ranges.into_iter().enumerate() {
        rs.sort_unstable();
        let mut next = 0usize;
        for (start, end) in rs {
            if start < next {
                return Err(format!(
                    "GEMM {g}: rows [{start}, {next}) assigned to two blocks (partial counted twice)"
                ));
            }
            if start > next {
                return Err(format!("GEMM {g}: rows [{next}, {start}) unassigned"));
            }
            next = end;
        }
        if next != row_counts[g] {
            return Err(format!(
                "GEMM {g}: rows [{next}, {}) unassigned",
                row_counts[g]
            ));
        }
    }
    Ok(())
}

/// Runs [`verify_tailor_assignment`] when the GPU sanitizes, converting a
/// defect into a launch-refusing [`KernelError`].
fn check_assignment(
    gpu: &Gpu,
    row_counts: &[usize],
    assignment: &[Vec<Segment>],
) -> Result<(), KernelError> {
    if gpu.sanitize_enabled() {
        verify_tailor_assignment(row_counts, assignment).map_err(|e| {
            KernelError::Other(format!(
                "wsvd-sanitizer: tailored GEMM assignment invalid: {e}"
            ))
        })?;
    }
    Ok(())
}

/// Batched Gram products `B_k = A_k^T A_k`.
///
/// Returns one `n_k x n_k` Gram matrix per input block plus the launch
/// statistics (tailored mode performs two launches; stats are summed).
pub fn batched_gram(
    gpu: &Gpu,
    blocks: &[Matrix],
    strategy: GemmStrategy,
) -> Result<(Vec<Matrix>, LaunchStats), KernelError> {
    match strategy {
        GemmStrategy::OneBlockPerGemm { threads } => {
            let kc = gemm_cfg(gpu, blocks.len(), threads, "batched_gram");
            gpu.launch_collect(kc, |b, ctx| {
                let a = &blocks[b];
                let (m, n) = a.shape();
                ctx.count_gm_load(m * n);
                ctx.par_step(n * n, 2 * m as u64);
                ctx.count_gm_store(n * n);
                let g = gram(a);
                ctx.guard_finite(g.as_slice());
                Ok(g)
            })
        }
        GemmStrategy::Tailored(plan) => {
            let rows: Vec<usize> = blocks.iter().map(|b| b.rows()).collect();
            let assignment = tailor_assignment(&rows, plan.delta);
            check_assignment(gpu, &rows, &assignment)?;
            // When δ >= every row count, each GEMM is exactly one segment:
            // no partials exist and the reduction launch is skipped.
            let single_segment = assignment
                .iter()
                .all(|b| b.len() == 1 && b[0].rows == rows[b[0].gemm]);
            let kc = gemm_cfg(gpu, assignment.len(), plan.threads, "tailored_gram_partial");
            let (partials, stats1) = gpu.launch_collect(kc, |b, ctx| {
                let mut out: Vec<(usize, Matrix)> = Vec::with_capacity(assignment[b].len());
                for seg in &assignment[b] {
                    let a = &blocks[seg.gemm];
                    let n = a.cols();
                    let sub = a.sub_matrix(seg.row_start, 0, seg.rows, n);
                    ctx.count_gm_load(seg.rows * n);
                    ctx.par_step(n * n, 2 * seg.rows as u64);
                    ctx.count_gm_store(n * n); // result (or partial) to GM
                    let g = gram(&sub);
                    ctx.guard_finite(g.as_slice());
                    out.push((seg.gemm, g));
                }
                Ok(out)
            })?;
            if single_segment {
                let mut grams: Vec<Option<Matrix>> = (0..blocks.len()).map(|_| None).collect();
                for block_out in partials {
                    for (g, p) in block_out {
                        grams[g] = Some(p);
                    }
                }
                let grams = grams
                    .into_iter()
                    .map(|g| g.expect("one segment per gemm"))
                    .collect();
                return Ok((grams, stats1));
            }

            // Gather partials per GEMM and reduce.
            let mut per_gemm: Vec<Vec<Matrix>> = (0..blocks.len()).map(|_| Vec::new()).collect();
            for block_out in partials {
                for (g, p) in block_out {
                    per_gemm[g].push(p);
                }
            }
            let kc2 = gemm_cfg(gpu, blocks.len(), plan.threads, "tailored_gram_reduce");
            let (grams, stats2) = gpu.launch_collect(kc2, |g, ctx| {
                let parts = &per_gemm[g];
                let n = blocks[g].cols();
                let mut acc = Matrix::zeros(n, n);
                ctx.count_gm_load(parts.len() * n * n);
                for p in parts {
                    for (dst, src) in acc.as_mut_slice().iter_mut().zip(p.as_slice()) {
                        *dst += src;
                    }
                }
                ctx.par_step(n * n, parts.len().max(1) as u64);
                ctx.count_gm_store(n * n);
                ctx.guard_finite(acc.as_slice());
                Ok(acc)
            })?;
            Ok((grams, merge_stats(stats1, stats2)))
        }
    }
}

/// Batched right-updates `A_k <- A_k J_k` in place.
pub fn batched_update(
    gpu: &Gpu,
    blocks: &mut [Matrix],
    rotations: &[Matrix],
    strategy: GemmStrategy,
) -> Result<LaunchStats, KernelError> {
    assert_eq!(blocks.len(), rotations.len());
    match strategy {
        GemmStrategy::OneBlockPerGemm { threads } => {
            let kc = gemm_cfg(gpu, blocks.len(), threads, "batched_update");
            let stats = gpu.launch_over(kc, blocks, |b, a, ctx| {
                let (m, n) = a.shape();
                let j = &rotations[b];
                assert_eq!(j.rows(), n);
                ctx.count_gm_load(m * n + n * n);
                ctx.par_step(m * n, 2 * n as u64);
                ctx.count_gm_store(m * n);
                *a = matmul(a, j);
                ctx.guard_finite(a.as_slice());
                Ok(())
            })?;
            Ok(stats)
        }
        GemmStrategy::Tailored(plan) => {
            let rows: Vec<usize> = blocks.iter().map(|b| b.rows()).collect();
            let assignment = tailor_assignment(&rows, plan.delta);
            check_assignment(gpu, &rows, &assignment)?;
            let kc = gemm_cfg(gpu, assignment.len(), plan.threads, "tailored_update");
            let (updated, stats) = gpu.launch_collect(kc, |b, ctx| {
                let mut out = Vec::with_capacity(assignment[b].len());
                for seg in &assignment[b] {
                    let a = &blocks[seg.gemm];
                    let n = a.cols();
                    let j = &rotations[seg.gemm];
                    let sub = a.sub_matrix(seg.row_start, 0, seg.rows, n);
                    ctx.count_gm_load(seg.rows * n + n * n);
                    ctx.par_step(seg.rows * n, 2 * n as u64);
                    ctx.count_gm_store(seg.rows * n);
                    let upd = matmul(&sub, j);
                    ctx.guard_finite(upd.as_slice());
                    out.push((*seg, upd));
                }
                Ok(out)
            })?;
            // The segments write disjoint row ranges; materialize that here.
            for block_out in updated {
                for (seg, m) in block_out {
                    blocks[seg.gemm].set_sub_matrix(seg.row_start, 0, &m);
                }
            }
            Ok(stats)
        }
    }
}

fn gemm_cfg(gpu: &Gpu, grid: usize, threads: usize, label: &'static str) -> KernelConfig {
    let mut kc = KernelConfig::new(grid, threads, GEMM_SMEM_BYTES, label);
    kc.uses_tensor_cores = gpu.device().tensor_gemm_speedup > 1.0;
    kc
}

fn merge_stats(a: LaunchStats, b: LaunchStats) -> LaunchStats {
    let mut totals = a.totals;
    totals.merge(&b.totals);
    LaunchStats {
        grid: a.grid + b.grid,
        threads_per_block: a.threads_per_block,
        smem_bytes_per_block: a.smem_bytes_per_block,
        totals,
        kernel_seconds: a.kernel_seconds + b.kernel_seconds,
        overhead_seconds: a.overhead_seconds + b.overhead_seconds,
        occupancy: a.occupancy.max(b.occupancy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::random_batch;

    fn plan(w: usize, delta: usize) -> GemmStrategy {
        GemmStrategy::Tailored(TailorPlan::new(w, delta, 256))
    }

    #[test]
    fn tailor_assignment_splits_rows() {
        // One 100-row GEMM at δ=32: 3 standard segments + 1 residual (4 rows).
        let a = tailor_assignment(&[100], 32);
        assert_eq!(a.len(), 4);
        assert_eq!(
            a[0],
            vec![Segment {
                gemm: 0,
                row_start: 0,
                rows: 32
            }]
        );
        assert_eq!(
            a[3],
            vec![Segment {
                gemm: 0,
                row_start: 96,
                rows: 4
            }]
        );
    }

    #[test]
    fn tailor_assignment_packs_residuals() {
        // Four GEMMs of 40 rows at δ=32: 4 standard + residuals of 8 rows
        // each; cap = 38.4 rows, so residuals pack 5-at-a-time (8*5=40>38).
        let a = tailor_assignment(&[40, 40, 40, 40], 32);
        let standard = a.iter().filter(|b| b.len() == 1 && b[0].rows == 32).count();
        assert_eq!(standard, 4);
        let packed: Vec<_> = a.iter().filter(|b| b[0].rows != 32).collect();
        assert_eq!(packed.len(), 1, "all four 8-row residuals share one block");
        assert_eq!(packed[0].len(), 4);
    }

    #[test]
    fn tailor_assignment_delta_at_least_rows_gives_one_block_per_gemm() {
        let a = tailor_assignment(&[64, 64], 64);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn tailor_assignments_verify_clean() {
        for (rows, delta) in [
            (vec![100usize], 32usize),
            (vec![40, 40, 40, 40], 32),
            (vec![64, 64], 64),
            (vec![33, 64, 7], 16),
            (vec![1, 2, 3], 1),
        ] {
            let a = tailor_assignment(&rows, delta);
            verify_tailor_assignment(&rows, &a)
                .unwrap_or_else(|e| panic!("rows={rows:?} delta={delta}: {e}"));
        }
    }

    #[test]
    fn corrupted_assignments_rejected() {
        let rows = [64usize];
        let mut a = tailor_assignment(&rows, 32);
        // Overlap: duplicate the first segment.
        let dup = a[0][0];
        a.push(vec![dup]);
        assert!(verify_tailor_assignment(&rows, &a)
            .unwrap_err()
            .contains("two blocks"));
        // Gap: drop a segment entirely.
        let mut b = tailor_assignment(&rows, 32);
        b.remove(0);
        assert!(verify_tailor_assignment(&rows, &b)
            .unwrap_err()
            .contains("unassigned"));
        // Out of range.
        let c = vec![vec![Segment {
            gemm: 0,
            row_start: 60,
            rows: 10,
        }]];
        assert!(verify_tailor_assignment(&rows, &c)
            .unwrap_err()
            .contains("out of range"));
        // Dangling GEMM index.
        let d = vec![vec![Segment {
            gemm: 3,
            row_start: 0,
            rows: 8,
        }]];
        assert!(verify_tailor_assignment(&rows, &d).is_err());
    }

    #[test]
    fn sanitized_gpu_refuses_corrupt_assignment_path() {
        // The shipped tailor_assignment is correct, so the sanitized launch
        // succeeds and matches the unsanitized result.
        let gpu = Gpu::with_sanitize(V100, wsvd_gpu_sim::SanitizeMode::Full);
        let blocks = random_batch(3, 50, 8, 17);
        let (grams, _) = batched_gram(&gpu, &blocks, plan(4, 16)).unwrap();
        for (a, g) in blocks.iter().zip(&grams) {
            assert!(g.sub(&wsvd_linalg::gram(a)).max_abs() < 1e-12);
        }
        assert!(gpu.sanitizer_report().is_clean());
    }

    #[test]
    fn gemm_requirement_fits_every_device() {
        let req = gemm_smem_requirement();
        assert_eq!(req.bytes, GEMM_SMEM_BYTES);
        for d in wsvd_gpu_sim::ALL_DEVICES {
            assert!(req.fits(d.smem_per_block_bytes), "{}", d.name);
        }
    }

    #[test]
    fn gram_strategies_agree_numerically() {
        let gpu = Gpu::new(V100);
        let blocks = random_batch(5, 48, 16, 3);
        let (plain, _) = batched_gram(
            &gpu,
            &blocks,
            GemmStrategy::OneBlockPerGemm { threads: 256 },
        )
        .unwrap();
        let (tailored, _) = batched_gram(&gpu, &blocks, plan(8, 16)).unwrap();
        for (p, t) in plain.iter().zip(&tailored) {
            assert!(p.sub(t).max_abs() < 1e-12);
        }
    }

    #[test]
    fn update_strategies_agree_numerically() {
        let gpu = Gpu::new(V100);
        let mut b1 = random_batch(4, 40, 8, 5);
        let mut b2 = b1.clone();
        let js: Vec<Matrix> = (0..4)
            .map(|k| wsvd_linalg::householder::seeded_orthogonal(8, k as u64 + 1))
            .collect();
        batched_update(
            &gpu,
            &mut b1,
            &js,
            GemmStrategy::OneBlockPerGemm { threads: 256 },
        )
        .unwrap();
        batched_update(&gpu, &mut b2, &js, plan(4, 16)).unwrap();
        for (x, y) in b1.iter().zip(&b2) {
            assert!(x.sub(y).max_abs() < 1e-12);
        }
    }

    #[test]
    fn tailoring_helps_small_batches_of_tall_gemms() {
        // 2 tall GEMMs: one block each starves the device; 16 segments fill it.
        let gpu = Gpu::new(V100);
        let blocks = random_batch(2, 2048, 16, 7);
        let (_, plain) = batched_gram(
            &gpu,
            &blocks,
            GemmStrategy::OneBlockPerGemm { threads: 256 },
        )
        .unwrap();
        let (_, tailored) = batched_gram(&gpu, &blocks, plan(8, 128)).unwrap();
        assert!(
            tailored.kernel_seconds < plain.kernel_seconds,
            "tailored {} !< plain {}",
            tailored.kernel_seconds,
            plain.kernel_seconds
        );
    }

    #[test]
    fn gram_result_is_correct_gram() {
        let gpu = Gpu::new(V100);
        let blocks = random_batch(3, 20, 6, 11);
        let (grams, _) = batched_gram(&gpu, &blocks, plan(4, 8)).unwrap();
        for (a, g) in blocks.iter().zip(&grams) {
            assert!(g.sub(&wsvd_linalg::gram(a)).max_abs() < 1e-12);
        }
    }

    #[test]
    fn update_applies_rotation() {
        let gpu = Gpu::new(V100);
        let mut blocks = random_batch(1, 10, 4, 13);
        let orig = blocks[0].clone();
        let j = wsvd_linalg::householder::seeded_orthogonal(4, 9);
        batched_update(&gpu, &mut blocks, std::slice::from_ref(&j), plan(4, 4)).unwrap();
        assert!(blocks[0].sub(&matmul(&orig, &j)).max_abs() < 1e-12);
    }

    #[test]
    fn mixed_row_counts_are_handled() {
        let gpu = Gpu::new(V100);
        let blocks = vec![
            wsvd_linalg::generate::random_uniform(33, 8, 1),
            wsvd_linalg::generate::random_uniform(64, 8, 2),
            wsvd_linalg::generate::random_uniform(7, 8, 3),
        ];
        let (grams, _) = batched_gram(&gpu, &blocks, plan(4, 16)).unwrap();
        for (a, g) in blocks.iter().zip(&grams) {
            assert!(g.sub(&wsvd_linalg::gram(a)).max_abs() < 1e-12);
        }
    }
}
