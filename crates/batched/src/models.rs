//! Performance models of the tailoring strategy (§IV-D2).
//!
//! Two quantitative indices drive the auto-tuning engine:
//! * **TLP** (Eq. 8): the number of threads deployed for a batched GEMM with
//!   a `δ_h x 2w_h` standard plate and `T_h` threads per block;
//! * **AI** (Eq. 9): arithmetic intensity — FMA instructions per load
//!   instruction — for the Gram GEMM (`AI_1`) and the update GEMM (`AI_2`).

/// A tailoring plan: the standard-plate geometry and block size
/// (`(w_h, δ_h, T_h)` rows of Tables II/III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TailorPlan {
    /// Column-block half-width `w_h` (pair blocks have `2w_h` columns).
    pub w: usize,
    /// Standard-plate height `δ_h` (rows per segment).
    pub delta: usize,
    /// Threads per thread block `T_h`.
    pub threads: usize,
}

impl TailorPlan {
    /// Creates a plan, clamping degenerate values.
    pub fn new(w: usize, delta: usize, threads: usize) -> Self {
        Self {
            w: w.max(1),
            delta: delta.max(1),
            threads: threads.max(1),
        }
    }
}

/// Thread-level parallelism of both batched GEMMs (Eq. 8):
/// `TLP = Σ_k (n_k · m_k) / (2 w · δ) · T`.
///
/// `sizes` are the `(m_k, n_k)` dimensions of the level's matrices.
pub fn tlp(plan: &TailorPlan, sizes: &[(usize, usize)]) -> f64 {
    let t = plan.threads as f64;
    let denom = (2 * plan.w * plan.delta) as f64;
    sizes
        .iter()
        .map(|&(m, n)| (n as f64 * m as f64) / denom * t)
        .sum()
}

/// Arithmetic intensity of the Gram GEMM (Eq. 9, first line):
/// `AI_1 = Load_width · 2w`.
pub fn ai_gram(plan: &TailorPlan, load_width: usize) -> f64 {
    load_width as f64 * (2 * plan.w) as f64
}

/// Arithmetic intensity of the update GEMM (Eq. 9, second line):
/// `AI_2 = Load_width · (2w · δ) / (2w + δ)`.
pub fn ai_update(plan: &TailorPlan, load_width: usize) -> f64 {
    let two_w = (2 * plan.w) as f64;
    let d = plan.delta as f64;
    load_width as f64 * (two_w * d) / (two_w + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_f1_values() {
        // §IV-D3 example: 100 matrices of 256x256, threshold search.
        let sizes = vec![(256usize, 256usize); 100];
        // First candidate (w=48, δ=256, T=256): f1 = 68,267.
        let p1 = TailorPlan::new(48, 256, 256);
        assert!(
            (tlp(&p1, &sizes) - 68_266.7).abs() < 1.0,
            "got {}",
            tlp(&p1, &sizes)
        );
        // Fourth candidate (w=16, δ=128, T=256): f1 = 409,600.
        let p4 = TailorPlan::new(16, 128, 256);
        assert!((tlp(&p4, &sizes) - 409_600.0).abs() < 1.0);
    }

    #[test]
    fn tlp_decreases_with_plate_size() {
        let sizes = vec![(512, 512); 10];
        let small = TailorPlan::new(8, 32, 256);
        let large = TailorPlan::new(48, 512, 256);
        assert!(tlp(&small, &sizes) > tlp(&large, &sizes));
    }

    #[test]
    fn ai_gram_linear_in_w() {
        let a = ai_gram(&TailorPlan::new(8, 64, 256), 4);
        let b = ai_gram(&TailorPlan::new(16, 64, 256), 4);
        assert_eq!(b, 2.0 * a);
        assert_eq!(a, 4.0 * 16.0);
    }

    #[test]
    fn ai_update_is_harmonic_mean_like() {
        // AI_2 < min(AI from width, AI from height) scaled: bounded by both.
        let p = TailorPlan::new(16, 128, 256);
        let ai2 = ai_update(&p, 4);
        assert!(ai2 < ai_gram(&p, 4));
        assert!(ai2 > 0.0);
        // Symmetric in 2w and δ.
        let q = TailorPlan::new(64, 32, 256); // 2w=128, δ=32
        assert!((ai_update(&q, 4) - ai_update(&TailorPlan::new(16, 128, 256), 4)).abs() < 1e-12);
    }

    #[test]
    fn tlp_scales_with_batch() {
        let p = TailorPlan::new(16, 64, 256);
        let one = tlp(&p, &[(128, 128)]);
        let ten = tlp(&p, &[(128, 128); 10]);
        assert!((ten - 10.0 * one).abs() < 1e-9);
    }
}
