//! Selection of the α-warp task width (§IV-B1).
//!
//! The batched SVD kernel assigns each column-pair orthogonalization to
//! `α · warp` threads with `α ∈ {1, 1/2, 1/4, 1/8}` (i.e. 32/16/8/4 threads
//! per pair). The paper proposes two selectors:
//!
//! 1. a **greatest-common-factor rule**: `β = gcd(m*, 32)`,
//!    `α = max(4, β)/32`;
//! 2. a **decision tree** over the features `(m*, μ)` (largest row count,
//!    batch size) trained on labelled batches whose best α was found by
//!    practical tests — here, by probing each candidate on the simulator.

use wsvd_gpu_sim::Gpu;
use wsvd_jacobi::batch::batched_svd_sm;
use wsvd_jacobi::onesided::OneSidedConfig;
use wsvd_linalg::generate::random_batch;

/// The four candidate team widths (threads per column pair): α·32.
pub const TPP_CANDIDATES: [usize; 4] = [4, 8, 16, 32];

/// Method 1: the greatest-common-factor rule.
///
/// `β = gcd(m*, 32)`, threads-per-pair `= max(4, β)` (so `α = max(4, β)/32`).
/// Example from the paper: `m* = 48 → β = 16 → α = 1/2` (16 threads).
pub fn alpha_gcf(m_star: usize) -> usize {
    let beta = gcd(m_star.max(1), 32);
    beta.max(4)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A labelled training sample for the decision tree.
#[derive(Clone, Copy, Debug)]
pub struct AlphaSample {
    /// Largest row count in the batch (`m*`).
    pub m_star: usize,
    /// Batch size (`μ`).
    pub batch: usize,
    /// Index into [`TPP_CANDIDATES`] of the empirically best width.
    pub label: usize,
}

/// Axis-aligned binary decision tree over `(m*, μ)` with probability-vector
/// leaves, exactly the structure described in §IV-B1.
#[derive(Clone, Debug)]
pub enum DecisionTree {
    /// Internal node: compare feature `feature` (0 = m*, 1 = μ) against
    /// `threshold`; `<= threshold` goes left, otherwise right.
    Node {
        /// Feature index (0 = `m*`, 1 = `μ`).
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left subtree (`<= threshold`).
        left: Box<DecisionTree>,
        /// Right subtree (`> threshold`).
        right: Box<DecisionTree>,
    },
    /// Leaf: probabilities over the four α candidates.
    Leaf {
        /// `probs[k]` is the fraction of training samples at this leaf whose
        /// best width was `TPP_CANDIDATES[k]`.
        probs: [f64; 4],
    },
}

impl DecisionTree {
    /// Trains a tree with Gini-impurity splits (depth-limited CART).
    pub fn train(samples: &[AlphaSample], max_depth: usize) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        Self::build(samples, max_depth)
    }

    fn build(samples: &[AlphaSample], depth: usize) -> Self {
        let counts = class_counts(samples);
        if depth == 0 || samples.len() < 4 || counts.iter().filter(|&&c| c > 0).count() <= 1 {
            return Self::leaf(&counts, samples.len());
        }
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        for feature in 0..2 {
            let mut values: Vec<f64> = samples.iter().map(|s| feat(s, feature)).collect();
            values.sort_by(|a, b| a.total_cmp(b));
            values.dedup();
            for w in values.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (l, r): (Vec<_>, Vec<_>) =
                    samples.iter().partition(|s| feat(s, feature) <= threshold);
                if l.is_empty() || r.is_empty() {
                    continue;
                }
                let g = weighted_gini(&l, &r);
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    best = Some((feature, threshold, g));
                }
            }
        }
        match best {
            Some((feature, threshold, _)) => {
                let (l, r): (Vec<AlphaSample>, Vec<AlphaSample>) =
                    samples.iter().partition(|s| feat(s, feature) <= threshold);
                DecisionTree::Node {
                    feature,
                    threshold,
                    left: Box::new(Self::build(&l, depth - 1)),
                    right: Box::new(Self::build(&r, depth - 1)),
                }
            }
            None => Self::leaf(&counts, samples.len()),
        }
    }

    fn leaf(counts: &[usize; 4], total: usize) -> Self {
        let mut probs = [0.0; 4];
        if total > 0 {
            for k in 0..4 {
                probs[k] = counts[k] as f64 / total as f64;
            }
        }
        DecisionTree::Leaf { probs }
    }

    /// Probability vector over the four candidates for a batch.
    pub fn predict_proba(&self, m_star: usize, batch: usize) -> [f64; 4] {
        match self {
            DecisionTree::Leaf { probs } => *probs,
            DecisionTree::Node {
                feature,
                threshold,
                left,
                right,
            } => {
                let x = if *feature == 0 {
                    m_star as f64
                } else {
                    batch as f64
                };
                if x <= *threshold {
                    left.predict_proba(m_star, batch)
                } else {
                    right.predict_proba(m_star, batch)
                }
            }
        }
    }

    /// Threads-per-pair prediction (argmax of the leaf probabilities).
    pub fn predict(&self, m_star: usize, batch: usize) -> usize {
        let p = self.predict_proba(m_star, batch);
        let mut best = 0;
        for k in 1..4 {
            if p[k] > p[best] {
                best = k;
            }
        }
        TPP_CANDIDATES[best]
    }

    /// Number of decision nodes (for sanity checks).
    pub fn node_count(&self) -> usize {
        match self {
            DecisionTree::Leaf { .. } => 0,
            DecisionTree::Node { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }
}

fn feat(s: &AlphaSample, feature: usize) -> f64 {
    if feature == 0 {
        s.m_star as f64
    } else {
        s.batch as f64
    }
}

fn class_counts(samples: &[AlphaSample]) -> [usize; 4] {
    let mut c = [0usize; 4];
    for s in samples {
        c[s.label] += 1;
    }
    c
}

fn gini(counts: &[usize; 4], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

fn weighted_gini(l: &[&AlphaSample], r: &[&AlphaSample]) -> f64 {
    let lo: Vec<AlphaSample> = l.iter().map(|s| **s).collect();
    let ro: Vec<AlphaSample> = r.iter().map(|s| **s).collect();
    let (cl, cr) = (class_counts(&lo), class_counts(&ro));
    let (nl, nr) = (lo.len(), ro.len());
    let n = (nl + nr) as f64;
    gini(&cl, nl) * nl as f64 / n + gini(&cr, nr) * nr as f64 / n
}

/// Finds the empirically best width for a batch shape by probing all four
/// candidates on the simulator (one single-sweep launch each) — the
/// "practical tests" used to label the paper's training set.
pub fn measure_best_tpp(gpu: &Gpu, m_star: usize, batch: usize, seed: u64) -> usize {
    let n = m_star.clamp(2, 16);
    let mats = random_batch(batch, m_star, n, seed);
    let mut best = (f64::INFINITY, TPP_CANDIDATES[0]);
    for &tpp in &TPP_CANDIDATES {
        let cfg = OneSidedConfig {
            threads_per_pair: tpp,
            max_sweeps: 1,
            tol: 0.0,
            ..Default::default()
        };
        if let Ok((_, stats)) = batched_svd_sm(gpu, &mats, &cfg, 128) {
            if stats.kernel_seconds < best.0 {
                best = (stats.kernel_seconds, tpp);
            }
        }
    }
    best.1
}

/// Generates a labelled training set by probing a grid of batch shapes.
pub fn generate_training_set(gpu: &Gpu, seed: u64) -> Vec<AlphaSample> {
    let mut samples = Vec::new();
    for (i, &m_star) in [8usize, 16, 24, 32, 48, 64].iter().enumerate() {
        for (jj, &batch) in [1usize, 4, 16, 64, 200].iter().enumerate() {
            let tpp = measure_best_tpp(gpu, m_star, batch, seed + (i * 10 + jj) as u64);
            let label = TPP_CANDIDATES.iter().position(|&c| c == tpp).unwrap();
            samples.push(AlphaSample {
                m_star,
                batch,
                label,
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;

    #[test]
    fn gcf_rule_paper_example() {
        // m* = 48: β = gcd(48, 32) = 16 → 16 threads per pair (α = 1/2).
        assert_eq!(alpha_gcf(48), 16);
    }

    #[test]
    fn gcf_rule_various() {
        assert_eq!(alpha_gcf(32), 32); // β = 32 → full warp
        assert_eq!(alpha_gcf(64), 32);
        assert_eq!(alpha_gcf(8), 8);
        assert_eq!(alpha_gcf(7), 4); // β = 1 → clamped to 4
        assert_eq!(alpha_gcf(100), 4);
    }

    #[test]
    fn tree_learns_separable_labels() {
        // Synthetic rule: small m* -> 4 threads, large m* -> 32 threads.
        let mut samples = Vec::new();
        for m in [4usize, 8, 12, 16] {
            for b in [1usize, 10, 100] {
                samples.push(AlphaSample {
                    m_star: m,
                    batch: b,
                    label: 0,
                });
            }
        }
        for m in [64usize, 128, 256] {
            for b in [1usize, 10, 100] {
                samples.push(AlphaSample {
                    m_star: m,
                    batch: b,
                    label: 3,
                });
            }
        }
        let tree = DecisionTree::train(&samples, 4);
        assert_eq!(tree.predict(8, 50), 4);
        assert_eq!(tree.predict(128, 50), 32);
        assert!(tree.node_count() >= 1);
    }

    #[test]
    fn tree_probabilities_sum_to_one() {
        let samples = vec![
            AlphaSample {
                m_star: 8,
                batch: 1,
                label: 0,
            },
            AlphaSample {
                m_star: 8,
                batch: 2,
                label: 1,
            },
            AlphaSample {
                m_star: 64,
                batch: 1,
                label: 3,
            },
            AlphaSample {
                m_star: 64,
                batch: 2,
                label: 3,
            },
        ];
        let tree = DecisionTree::train(&samples, 3);
        let p = tree.predict_proba(8, 1);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_labels_prefer_wide_teams_for_small_batches() {
        // With one matrix, block-level parallelism is nil, so wide teams
        // (short span) must win over 4-thread teams.
        let gpu = Gpu::new(V100);
        let best = measure_best_tpp(&gpu, 64, 1, 5);
        assert!(best >= 8, "expected wide team for batch=1, got {best}");
    }

    #[test]
    fn training_set_covers_grid_and_trains() {
        let gpu = Gpu::new(V100);
        let set = generate_training_set(&gpu, 7);
        assert_eq!(set.len(), 30);
        let tree = DecisionTree::train(&set, 4);
        let tpp = tree.predict(48, 100);
        assert!(TPP_CANDIDATES.contains(&tpp));
    }
}
