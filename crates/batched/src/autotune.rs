//! The auto-tuning engine for tailoring parameters (§IV-D3).
//!
//! Solves the multi-objective program (Eq. 10) with the paper's two-step
//! method: (1) generate the candidate plan table (Table II) — ordered by
//! increasing TLP and decreasing AI — and (2) walk the table until the
//! TLP objective `f_1` exceeds a platform threshold. The threshold is
//! calibrated once per device by sweeping all plans over a huge batched
//! GEMM and finding the inflection point where more TLP stops helping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use wsvd_gpu_sim::Gpu;
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::Matrix;
use wsvd_metrics::MetricsSink;
use wsvd_trace::TraceSink;

use crate::gemm::{batched_gram, batched_update, GemmStrategy};
use crate::models::{tlp, TailorPlan};

/// The paper's TLP threshold for the NVIDIA Tesla V100 (§IV-D3, §V).
pub const V100_TLP_THRESHOLD: f64 = 306_149.0;

/// Candidate tailoring plans (Table II), instantiated with the batch's
/// largest row count `m*`. Ordered by increasing TLP / decreasing AI —
/// this ordering *is* the search direction of the engine.
pub fn candidate_plans(m_star: usize) -> Vec<TailorPlan> {
    let m = m_star.max(8);
    vec![
        TailorPlan::new(48, m, 256),
        TailorPlan::new(24, m, 256),
        TailorPlan::new(24, (m / 2).max(1), 256),
        TailorPlan::new(16, (m / 2).max(1), 256),
        TailorPlan::new(16, (m / 4).max(1), 256),
        TailorPlan::new(16, (m / 8).max(1), 256),
        TailorPlan::new(8, (m / 4).max(1), 128),
        TailorPlan::new(8, (m / 8).max(1), 128),
    ]
}

/// Largest `w` whose `2w x 2w` Gram EVD fits the 48 KiB static shared
/// memory all the paper's plans assume (`wsvd_jacobi::fits::max_w_for_evd`).
/// Plans at or below this width never force a deeper recursion level.
pub const EVD_FALLBACK_W: usize = 24;

/// The auto-tuning engine: picks the first candidate whose TLP objective
/// exceeds `threshold`.
///
/// When no candidate can reach the threshold (tiny batches / small
/// matrices), TLP is not the binding constraint, so the secondary
/// objectives of Eq. (10) decide: the walk scores the plan at the SM-fit
/// boundary ([`EVD_FALLBACK_W`], the largest `w` that still resolves in
/// shared memory without another recursion level) *and* the first strictly
/// narrower candidate, keeping the boundary plan unless the narrower one
/// has a genuine TLP advantage — the Table V n = 64 case where w = 16 wins.
///
/// `sizes` are the `(m_k, n_k)` dimensions of the matrices divided at this
/// level; `m*` is their largest row count.
pub fn auto_tune(sizes: &[(usize, usize)], threshold: f64) -> TailorPlan {
    let scored = scored_candidates(sizes, usize::MAX);
    scored[pick(&scored, threshold)].0
}

/// Candidate plans at or under `w_cap`, each paired with its TLP objective
/// `f_1` — the table the engine walks, in search order. Empty only under a
/// degenerate cap that excludes the whole table.
pub fn scored_candidates(sizes: &[(usize, usize)], w_cap: usize) -> Vec<(TailorPlan, f64)> {
    let m_star = sizes.iter().map(|&(m, _)| m).max().unwrap_or(8);
    candidate_plans(m_star)
        .into_iter()
        .filter(|p| p.w <= w_cap)
        .map(|p| {
            let f1 = tlp(&p, sizes);
            (p, f1)
        })
        .collect()
}

/// Index of the plan the two-step method selects from a non-empty scored
/// table: the first whose `f_1` clears the threshold; otherwise the
/// sub-threshold rule below; else the table head.
///
/// Sub-threshold regime (small batches — the Table V rows): TLP cannot be
/// the binding constraint, and the engine used to stop at the first plan
/// whose width lands on the SM-fit boundary (`max_w_for_evd`, the widest
/// non-recursing plan) without looking further. That misses the Table V
/// optimum at n = 64, where the first plan *past* the boundary (w = 16)
/// wins by up to 57%: its narrower pairs shorten the per-block critical
/// path and there is slack parallelism to absorb the extra blocks. So the
/// walk now scores both the boundary plan and the first strictly narrower
/// candidate, and keeps the boundary plan only when the narrower one has no
/// TLP advantage to offer.
fn pick(scored: &[(TailorPlan, f64)], threshold: f64) -> usize {
    if let Some(i) = scored.iter().position(|&(_, f1)| f1 > threshold) {
        return i;
    }
    let Some(at_boundary) = scored.iter().position(|&(p, _)| p.w <= EVD_FALLBACK_W) else {
        return 0;
    };
    let below = scored
        .iter()
        .position(|&(p, _)| p.w < scored[at_boundary].0.w);
    match below {
        Some(b) if scored[b].1 > scored[at_boundary].1 => b,
        _ => at_boundary,
    }
}

/// Constrains an auto-tuned plan so its `w` does not exceed a cap (the
/// W-cycle imposes the SM-fit bound `w_h <= 48` and level monotonicity
/// `w_{h+1} < w_h`).
pub fn auto_tune_with_w_cap(sizes: &[(usize, usize)], threshold: f64, w_cap: usize) -> TailorPlan {
    auto_tune_with_w_cap_traced(sizes, threshold, w_cap, &TuneTelemetry::disabled())
}

/// The uncached candidate walk: scored table plus selection. `chosen` is
/// `None` when a degenerate cap empties the table and the plan had to be
/// synthesized.
fn select_plan(
    sizes: &[(usize, usize)],
    threshold: f64,
    w_cap: usize,
) -> (TailorPlan, Option<usize>, Vec<(TailorPlan, f64)>) {
    let scored = scored_candidates(sizes, w_cap);
    if scored.is_empty() {
        // Degenerate cap: synthesize the smallest-footprint plan.
        let m_star = sizes.iter().map(|&(m, _)| m).max().unwrap_or(8);
        let plan = TailorPlan::new(w_cap.max(1), (m_star / 8).max(1), 128);
        (plan, None, scored)
    } else {
        let idx = pick(&scored, threshold);
        (scored[idx].0, Some(idx), scored)
    }
}

/// Key of one memoized tuning decision. The size multiset is sorted so any
/// permutation of the same group of shapes shares an entry (`tlp` sums over
/// sizes, and `m*` is their maximum — both permutation-invariant). The
/// threshold bits stand in for the device: the platform enters the engine
/// only through its calibrated TLP threshold.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct PlanKey {
    sizes: Vec<(usize, usize)>,
    w_cap: usize,
    threshold_bits: u64,
}

impl PlanKey {
    fn new(sizes: &[(usize, usize)], threshold: f64, w_cap: usize) -> Self {
        let mut sizes = sizes.to_vec();
        sizes.sort_unstable();
        Self {
            sizes,
            w_cap,
            threshold_bits: threshold.to_bits(),
        }
    }
}

/// Memoizes auto-tuning decisions so mixed-size groups (Table VI) and
/// repeated shapes stop re-running the candidate sweep every level of every
/// sweep. Because the engine is a pure function of `(size multiset,
/// threshold, w_cap)`, a cached plan is always identical to a fresh
/// [`auto_tune_with_w_cap`] — the cache changes nothing but host-side work,
/// so sanitizer runs and baselines are bit-identical whether it is cold or
/// warm.
#[derive(Default)]
pub struct PlanCache {
    // BTreeMap, not HashMap: registry iteration order (telemetry, future
    // exposition) must be deterministic — enforced by the wsvd-analyze
    // `no-hashmap` lint.
    plans: Mutex<BTreeMap<PlanKey, TailorPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache (tests construct private instances; production code
    /// shares [`PlanCache::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache consulted by [`auto_tune_with_w_cap_traced`].
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Returns the memoized plan for this workload, running the candidate
    /// walk on a miss.
    pub fn lookup_or_tune(
        &self,
        sizes: &[(usize, usize)],
        threshold: f64,
        w_cap: usize,
    ) -> TailorPlan {
        self.lookup_or_tune_counted(sizes, threshold, w_cap).0
    }

    /// Like [`PlanCache::lookup_or_tune`], additionally reporting whether
    /// the lookup hit the cache — the per-call signal the metrics registry
    /// records as an *increment*, fixing the process-cumulative semantics of
    /// [`PlanCache::stats`] for per-run queries.
    pub fn lookup_or_tune_counted(
        &self,
        sizes: &[(usize, usize)],
        threshold: f64,
        w_cap: usize,
    ) -> (TailorPlan, bool) {
        let key = PlanKey::new(sizes, threshold, w_cap);
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (*plan, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (plan, _, _) = select_plan(sizes, threshold, w_cap);
        self.plans.lock().unwrap().insert(key, plan);
        (plan, false)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct workloads memoized.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Observability context for one auto-tuning call: where (and whether) to
/// record trace events and registry metrics. Both sinks are cheap clones;
/// disabled sinks make the call identical to the plain engine.
#[derive(Clone, Default)]
pub struct TuneTelemetry {
    /// Trace sink for the `autotune`/`plan-cache` tracks.
    pub trace: TraceSink,
    /// Metrics sink for plan-cache counters and chosen-plan gauges.
    pub metrics: MetricsSink,
    /// Trace process id of the issuing GPU.
    pub pid: u32,
    /// W-cycle level of the workload being tuned.
    pub level: usize,
    /// Simulated time of the call, in seconds.
    pub now: f64,
}

impl TuneTelemetry {
    /// Telemetry that records nothing (both sinks disabled).
    pub fn disabled() -> Self {
        Self::default()
    }
}

/// Like [`auto_tune_with_w_cap`], additionally emitting one `plan` instant
/// on the telemetry's trace sink (track `autotune`, timestamp `now` in
/// simulated seconds) carrying the chosen plan and the TLP scores of every
/// candidate the engine rejected, plus `plan-cache` counter samples with the
/// cumulative hit/miss counts of [`PlanCache::global`] — and, on the
/// telemetry's metrics sink, per-call hit/miss counter increments and
/// chosen-plan gauges keyed by level. Disabled sinks make this identical to
/// the untraced call.
///
/// All paths consult the global plan cache; the traced path re-runs the
/// scoring only to reconstruct the rejected-candidate table for the event,
/// so cached and fresh selections stay observably identical.
pub fn auto_tune_with_w_cap_traced(
    sizes: &[(usize, usize)],
    threshold: f64,
    w_cap: usize,
    telemetry: &TuneTelemetry,
) -> TailorPlan {
    let (plan, hit) = PlanCache::global().lookup_or_tune_counted(sizes, threshold, w_cap);
    let TuneTelemetry {
        trace,
        metrics,
        pid,
        level,
        now,
    } = telemetry;
    let (pid, level, now) = (*pid, *level, *now);
    if metrics.is_enabled() {
        // Increments, not the cache's cumulative totals: a per-run sink (or
        // a snapshot delta) then counts exactly this run's lookups even when
        // the process-wide cache is already warm.
        metrics.counter_add("plan-cache", None, if hit { "hits" } else { "misses" }, 1.0);
        metrics.gauge_set("autotune", Some(level), "plan_w", plan.w as f64);
        metrics.gauge_set("autotune", Some(level), "plan_delta", plan.delta as f64);
        metrics.gauge_set("autotune", Some(level), "plan_threads", plan.threads as f64);
        // TLP of the chosen plan (Eq. 8): recomputed only when metered, so
        // unmetered runs do no extra host work.
        metrics.gauge_set("autotune", Some(level), "plan_tlp", tlp(&plan, sizes));
    }
    if trace.is_enabled() {
        let (fresh, chosen, scored) = select_plan(sizes, threshold, w_cap);
        debug_assert_eq!(fresh, plan, "cache must agree with a fresh walk");
        let rejected = scored
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != chosen)
            .map(|(_, (p, f1))| format!("w={} d={} T={} f1={:.1}", p.w, p.delta, p.threads, f1))
            .collect::<Vec<_>>()
            .join("; ");
        let chosen_f1 = chosen
            .map(|i| scored[i].1)
            .unwrap_or_else(|| tlp(&plan, sizes));
        trace.instant(
            pid,
            "autotune",
            "plan",
            now,
            vec![
                ("level", level.into()),
                ("batch", sizes.len().into()),
                ("w_cap", w_cap.into()),
                ("threshold", threshold.into()),
                ("w", plan.w.into()),
                ("delta", plan.delta.into()),
                ("threads", plan.threads.into()),
                ("tlp", chosen_f1.into()),
                ("threshold_met", u64::from(chosen_f1 > threshold).into()),
                ("rejected", rejected.into()),
            ],
        );
        let (hits, misses) = PlanCache::global().stats();
        trace.counter(pid, "plan-cache", "hits", now, hits as f64);
        trace.counter(pid, "plan-cache", "misses", now, misses as f64);
    }
    plan
}

/// Calibrates the TLP threshold for a device (done "only once for a
/// particular platform"): evaluates every candidate plan on the two batched
/// GEMMs of a huge matrix's SVD level, and returns the TLP at the inflection
/// point where further TLP gives < `rel_gain` improvement.
pub fn calibrate_threshold(gpu: &Gpu, rel_gain: f64) -> f64 {
    // A "huge matrix" level: one 2048-row pair-block batch.
    let probe: Vec<Matrix> = (0..4).map(|k| random_uniform(2048, 32, 900 + k)).collect();
    let js: Vec<Matrix> = probe
        .iter()
        .enumerate()
        .map(|(k, _)| wsvd_linalg::householder::seeded_orthogonal(32, 777 + k as u64))
        .collect();
    let sizes: Vec<(usize, usize)> = probe.iter().map(|p| p.shape()).collect();

    let mut best = f64::INFINITY;
    let mut threshold = 0.0;
    for plan in candidate_plans(2048) {
        gpu.reset_timeline();
        let strat = GemmStrategy::Tailored(plan);
        let mut blocks = probe.clone();
        let _ = batched_gram(gpu, &blocks, strat);
        let _ = batched_update(gpu, &mut blocks, &js, strat);
        let t = gpu.elapsed_seconds();
        let f1 = tlp(&plan, &sizes);
        if t < best * (1.0 - rel_gain) {
            best = t;
            threshold = f1;
        }
    }
    gpu.reset_timeline();
    threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{Gpu, V100};

    #[test]
    fn candidate_table_matches_table_iii_for_m256() {
        // Table III: m* = 256 instantiation.
        let c = candidate_plans(256);
        assert_eq!(c.len(), 8);
        assert_eq!(c[0], TailorPlan::new(48, 256, 256));
        assert_eq!(c[3], TailorPlan::new(16, 128, 256));
        assert_eq!(c[7], TailorPlan::new(8, 32, 128));
    }

    #[test]
    fn candidates_ordered_by_increasing_tlp_within_block_size() {
        // The paper's ordering claim (f1 increasing, f2/f3 decreasing) holds
        // among candidates with the same T_h; the trailing T=128 rows trade
        // block size for finer plates.
        let sizes = vec![(256, 256); 100];
        let c = candidate_plans(256);
        for w in c.windows(2) {
            if w[0].threads == w[1].threads {
                assert!(
                    tlp(&w[0], &sizes) <= tlp(&w[1], &sizes),
                    "table not ordered by TLP: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
            // AI_1 (linear in w) never increases along the table.
            assert!(crate::models::ai_gram(&w[1], 4) <= crate::models::ai_gram(&w[0], 4));
        }
    }

    #[test]
    fn paper_example_selects_fourth_plan() {
        // §IV-D3: 100 matrices of 256x256 with threshold 306,149 ends at the
        // fourth candidate (w=16, δ=128, T=256) with f1 = 409,600.
        let sizes = vec![(256usize, 256usize); 100];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert_eq!(plan, TailorPlan::new(16, 128, 256));
    }

    #[test]
    fn fallback_width_is_the_evd_fit_boundary() {
        // EVD_FALLBACK_W is the SM-fit boundary of the 2w x 2w Gram EVD at
        // the 48 KiB static configuration all the paper's plans assume.
        assert_eq!(EVD_FALLBACK_W, wsvd_jacobi::fits::max_w_for_evd(48 * 1024));
    }

    #[test]
    fn tiny_workload_scores_past_the_boundary_plan() {
        // When TLP cannot reach the threshold, the walk scores the boundary
        // plan (w = 24) and the first strictly narrower candidate; for a
        // single 8x8 matrix the narrower plan's TLP advantage wins.
        let sizes = vec![(8, 8); 1];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert!(plan.w < EVD_FALLBACK_W);
        assert_eq!(plan, candidate_plans(8)[3]);
        assert!(
            tlp(&plan, &sizes) > tlp(&candidate_plans(8)[1], &sizes),
            "narrower plan must only win on a TLP advantage"
        );
    }

    #[test]
    fn table_v_boundary_case_selects_w16() {
        // The Table V miss: 10 matrices of 64x64 sit below the threshold,
        // and the w = 16 plan at the level-0 boundary beats the old w = 24
        // fallback by up to 57% — the walk must land on it.
        let sizes = vec![(64, 64); 10];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert_eq!(plan.w, 16);
        assert_eq!(plan, candidate_plans(64)[3]); // (16, m/2 = 32, 256)
    }

    #[test]
    fn huge_workload_selects_first_plan() {
        let sizes = vec![(4096, 4096); 1000];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert_eq!(plan, candidate_plans(4096)[0]);
    }

    #[test]
    fn w_cap_is_respected() {
        let sizes = vec![(64, 64); 4];
        let plan = auto_tune_with_w_cap(&sizes, V100_TLP_THRESHOLD, 12);
        assert!(plan.w <= 12);
    }

    #[test]
    fn traced_selection_matches_untraced_and_records_rejects() {
        let sizes = vec![(256usize, 256usize); 100];
        let sink = wsvd_trace::TraceSink::enabled();
        let pid = sink.register_process("test");
        let metrics = MetricsSink::enabled();
        metrics.set_experiment("unit");
        let telemetry = TuneTelemetry {
            trace: sink.clone(),
            metrics: metrics.clone(),
            pid,
            level: 1,
            now: 0.25,
        };
        let traced = auto_tune_with_w_cap_traced(&sizes, V100_TLP_THRESHOLD, 48, &telemetry);
        assert_eq!(traced, auto_tune_with_w_cap(&sizes, V100_TLP_THRESHOLD, 48));

        // The metrics registry saw exactly one lookup (hit or miss depending
        // on what other tests already warmed into the global cache) and the
        // chosen plan's gauges at this level.
        let snap = metrics.snapshot();
        let lookups = snap.counter("unit", "plan-cache", None, "hits")
            + snap.counter("unit", "plan-cache", None, "misses");
        assert_eq!(lookups, 1.0);
        assert_eq!(
            snap.gauge("unit", "autotune", Some(1), "plan_w"),
            Some(traced.w as f64)
        );
        assert!(snap.gauge("unit", "autotune", Some(1), "plan_tlp").unwrap() > 0.0);

        let evs = sink.events();
        let plans: Vec<_> = evs.iter().filter(|e| e.track == "autotune").collect();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].name, "plan");
        // The cache surfaces its cumulative hit/miss counts as counter
        // samples alongside every traced selection.
        let cache_evs: Vec<_> = evs.iter().filter(|e| e.track == "plan-cache").collect();
        assert_eq!(cache_evs.len(), 2);
        assert!(cache_evs
            .iter()
            .all(|e| matches!(e.kind, wsvd_trace::EventKind::Counter { .. })));
        let arg = |key: &str| {
            plans[0]
                .args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(arg("w"), wsvd_trace::ArgValue::U64(traced.w as u64));
        assert_eq!(arg("threshold_met"), wsvd_trace::ArgValue::U64(1));
        match arg("rejected") {
            wsvd_trace::ArgValue::Str(s) => {
                // The paper's example walks past three candidates; all other
                // scored rows are recorded as rejected too.
                assert_eq!(s.matches("f1=").count(), 7, "rejected list: {s}");
                assert!(s.contains("w=48"), "rejected list: {s}");
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn plan_cache_hits_after_first_lookup() {
        let cache = PlanCache::new();
        let sizes = vec![(96, 96); 20];
        let (a, a_hit) = cache.lookup_or_tune_counted(&sizes, V100_TLP_THRESHOLD, 48);
        let (b, b_hit) = cache.lookup_or_tune_counted(&sizes, V100_TLP_THRESHOLD, 48);
        assert_eq!(a, b);
        assert!(!a_hit, "first lookup must miss");
        assert!(b_hit, "second lookup must hit");
        assert_eq!(a, auto_tune_with_w_cap(&sizes, V100_TLP_THRESHOLD, 48));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_cache_key_is_a_multiset() {
        // Any permutation of the same group of shapes shares one entry:
        // the engine only sees the multiset (tlp sums, m* maxes).
        let cache = PlanCache::new();
        let sizes = vec![(64, 48), (96, 96), (64, 64), (96, 32)];
        let mut permuted = sizes.clone();
        permuted.reverse();
        let a = cache.lookup_or_tune(&sizes, V100_TLP_THRESHOLD, 48);
        let b = cache.lookup_or_tune(&permuted, V100_TLP_THRESHOLD, 48);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1), "permutation must hit the cache");
    }

    #[test]
    fn plan_cache_distinguishes_w_cap_and_threshold() {
        let cache = PlanCache::new();
        let sizes = vec![(64, 64); 10];
        let unconstrained = cache.lookup_or_tune(&sizes, V100_TLP_THRESHOLD, 48);
        let capped = cache.lookup_or_tune(&sizes, V100_TLP_THRESHOLD, 8);
        assert!(capped.w <= 8);
        assert!(unconstrained.w > 8);
        let low_threshold = cache.lookup_or_tune(&sizes, 1.0, 48);
        assert_ne!(low_threshold, unconstrained);
        assert_eq!(cache.stats(), (0, 3));
    }

    #[test]
    fn calibration_returns_positive_threshold() {
        let gpu = Gpu::new(V100);
        let t = calibrate_threshold(&gpu, 0.05);
        assert!(t > 0.0, "threshold {t}");
        // Plausible TLP magnitude for the probe workload (the paper's
        // 306,149 was calibrated against its own, larger probe).
        assert!(t > 1e2 && t < 1e8, "threshold {t} implausible");
    }
}
