//! The auto-tuning engine for tailoring parameters (§IV-D3).
//!
//! Solves the multi-objective program (Eq. 10) with the paper's two-step
//! method: (1) generate the candidate plan table (Table II) — ordered by
//! increasing TLP and decreasing AI — and (2) walk the table until the
//! TLP objective `f_1` exceeds a platform threshold. The threshold is
//! calibrated once per device by sweeping all plans over a huge batched
//! GEMM and finding the inflection point where more TLP stops helping.

use wsvd_gpu_sim::Gpu;
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::Matrix;
use wsvd_trace::TraceSink;

use crate::gemm::{batched_gram, batched_update, GemmStrategy};
use crate::models::{tlp, TailorPlan};

/// The paper's TLP threshold for the NVIDIA Tesla V100 (§IV-D3, §V).
pub const V100_TLP_THRESHOLD: f64 = 306_149.0;

/// Candidate tailoring plans (Table II), instantiated with the batch's
/// largest row count `m*`. Ordered by increasing TLP / decreasing AI —
/// this ordering *is* the search direction of the engine.
pub fn candidate_plans(m_star: usize) -> Vec<TailorPlan> {
    let m = m_star.max(8);
    vec![
        TailorPlan::new(48, m, 256),
        TailorPlan::new(24, m, 256),
        TailorPlan::new(24, (m / 2).max(1), 256),
        TailorPlan::new(16, (m / 2).max(1), 256),
        TailorPlan::new(16, (m / 4).max(1), 256),
        TailorPlan::new(16, (m / 8).max(1), 256),
        TailorPlan::new(8, (m / 4).max(1), 128),
        TailorPlan::new(8, (m / 8).max(1), 128),
    ]
}

/// Largest `w` whose `2w x 2w` Gram EVD fits the 48 KiB static shared
/// memory all the paper's plans assume (`wsvd_jacobi::fits::max_w_for_evd`).
/// Plans at or below this width never force a deeper recursion level.
pub const EVD_FALLBACK_W: usize = 24;

/// The auto-tuning engine: picks the first candidate whose TLP objective
/// exceeds `threshold`.
///
/// When no candidate can reach the threshold (tiny batches / small
/// matrices), TLP is not the binding constraint, so the secondary
/// objectives of Eq. (10) decide: among the remaining candidates we take
/// the largest `w` *that still resolves in shared memory without another
/// recursion level* ([`EVD_FALLBACK_W`]) — the widest plan maximizes the AI
/// objectives and convergence speed (Observation 2, §III-D), while a wider
/// recursion-forcing plan would add a level without any TLP to gain.
///
/// `sizes` are the `(m_k, n_k)` dimensions of the matrices divided at this
/// level; `m*` is their largest row count.
pub fn auto_tune(sizes: &[(usize, usize)], threshold: f64) -> TailorPlan {
    let scored = scored_candidates(sizes, usize::MAX);
    scored[pick(&scored, threshold)].0
}

/// Candidate plans at or under `w_cap`, each paired with its TLP objective
/// `f_1` — the table the engine walks, in search order. Empty only under a
/// degenerate cap that excludes the whole table.
pub fn scored_candidates(sizes: &[(usize, usize)], w_cap: usize) -> Vec<(TailorPlan, f64)> {
    let m_star = sizes.iter().map(|&(m, _)| m).max().unwrap_or(8);
    candidate_plans(m_star)
        .into_iter()
        .filter(|p| p.w <= w_cap)
        .map(|p| {
            let f1 = tlp(&p, sizes);
            (p, f1)
        })
        .collect()
}

/// Index of the plan the two-step method selects from a non-empty scored
/// table: the first whose `f_1` clears the threshold, else the widest
/// non-recursing fallback, else the table head.
fn pick(scored: &[(TailorPlan, f64)], threshold: f64) -> usize {
    scored
        .iter()
        .position(|&(_, f1)| f1 > threshold)
        .or_else(|| scored.iter().position(|&(p, _)| p.w <= EVD_FALLBACK_W))
        .unwrap_or(0)
}

/// Constrains an auto-tuned plan so its `w` does not exceed a cap (the
/// W-cycle imposes the SM-fit bound `w_h <= 48` and level monotonicity
/// `w_{h+1} < w_h`).
pub fn auto_tune_with_w_cap(sizes: &[(usize, usize)], threshold: f64, w_cap: usize) -> TailorPlan {
    auto_tune_with_w_cap_traced(sizes, threshold, w_cap, &TraceSink::disabled(), 0, 0, 0.0)
}

/// Like [`auto_tune_with_w_cap`], additionally emitting one `plan` instant
/// on `trace` (track `autotune`, timestamp `now` in simulated seconds)
/// carrying the chosen plan and the TLP scores of every candidate the
/// engine rejected. A disabled sink makes this identical to the untraced
/// call.
pub fn auto_tune_with_w_cap_traced(
    sizes: &[(usize, usize)],
    threshold: f64,
    w_cap: usize,
    trace: &TraceSink,
    pid: u32,
    level: usize,
    now: f64,
) -> TailorPlan {
    let scored = scored_candidates(sizes, w_cap);
    let (plan, chosen) = if scored.is_empty() {
        // Degenerate cap: synthesize the smallest-footprint plan.
        let m_star = sizes.iter().map(|&(m, _)| m).max().unwrap_or(8);
        (
            TailorPlan::new(w_cap.max(1), (m_star / 8).max(1), 128),
            None,
        )
    } else {
        let idx = pick(&scored, threshold);
        (scored[idx].0, Some(idx))
    };
    if trace.is_enabled() {
        let rejected = scored
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != chosen)
            .map(|(_, (p, f1))| format!("w={} d={} T={} f1={:.1}", p.w, p.delta, p.threads, f1))
            .collect::<Vec<_>>()
            .join("; ");
        let chosen_f1 = chosen
            .map(|i| scored[i].1)
            .unwrap_or_else(|| tlp(&plan, sizes));
        trace.instant(
            pid,
            "autotune",
            "plan",
            now,
            vec![
                ("level", level.into()),
                ("batch", sizes.len().into()),
                ("w_cap", w_cap.into()),
                ("threshold", threshold.into()),
                ("w", plan.w.into()),
                ("delta", plan.delta.into()),
                ("threads", plan.threads.into()),
                ("tlp", chosen_f1.into()),
                ("threshold_met", u64::from(chosen_f1 > threshold).into()),
                ("rejected", rejected.into()),
            ],
        );
    }
    plan
}

/// Calibrates the TLP threshold for a device (done "only once for a
/// particular platform"): evaluates every candidate plan on the two batched
/// GEMMs of a huge matrix's SVD level, and returns the TLP at the inflection
/// point where further TLP gives < `rel_gain` improvement.
pub fn calibrate_threshold(gpu: &Gpu, rel_gain: f64) -> f64 {
    // A "huge matrix" level: one 2048-row pair-block batch.
    let probe: Vec<Matrix> = (0..4).map(|k| random_uniform(2048, 32, 900 + k)).collect();
    let js: Vec<Matrix> = probe
        .iter()
        .enumerate()
        .map(|(k, _)| wsvd_linalg::householder::seeded_orthogonal(32, 777 + k as u64))
        .collect();
    let sizes: Vec<(usize, usize)> = probe.iter().map(|p| p.shape()).collect();

    let mut best = f64::INFINITY;
    let mut threshold = 0.0;
    for plan in candidate_plans(2048) {
        gpu.reset_timeline();
        let strat = GemmStrategy::Tailored(plan);
        let mut blocks = probe.clone();
        let _ = batched_gram(gpu, &blocks, strat);
        let _ = batched_update(gpu, &mut blocks, &js, strat);
        let t = gpu.elapsed_seconds();
        let f1 = tlp(&plan, &sizes);
        if t < best * (1.0 - rel_gain) {
            best = t;
            threshold = f1;
        }
    }
    gpu.reset_timeline();
    threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{Gpu, V100};

    #[test]
    fn candidate_table_matches_table_iii_for_m256() {
        // Table III: m* = 256 instantiation.
        let c = candidate_plans(256);
        assert_eq!(c.len(), 8);
        assert_eq!(c[0], TailorPlan::new(48, 256, 256));
        assert_eq!(c[3], TailorPlan::new(16, 128, 256));
        assert_eq!(c[7], TailorPlan::new(8, 32, 128));
    }

    #[test]
    fn candidates_ordered_by_increasing_tlp_within_block_size() {
        // The paper's ordering claim (f1 increasing, f2/f3 decreasing) holds
        // among candidates with the same T_h; the trailing T=128 rows trade
        // block size for finer plates.
        let sizes = vec![(256, 256); 100];
        let c = candidate_plans(256);
        for w in c.windows(2) {
            if w[0].threads == w[1].threads {
                assert!(
                    tlp(&w[0], &sizes) <= tlp(&w[1], &sizes),
                    "table not ordered by TLP: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
            // AI_1 (linear in w) never increases along the table.
            assert!(crate::models::ai_gram(&w[1], 4) <= crate::models::ai_gram(&w[0], 4));
        }
    }

    #[test]
    fn paper_example_selects_fourth_plan() {
        // §IV-D3: 100 matrices of 256x256 with threshold 306,149 ends at the
        // fourth candidate (w=16, δ=128, T=256) with f1 = 409,600.
        let sizes = vec![(256usize, 256usize); 100];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert_eq!(plan, TailorPlan::new(16, 128, 256));
    }

    #[test]
    fn tiny_workload_falls_back_to_widest_non_recursing_plan() {
        // When TLP cannot reach the threshold, the AI objectives decide
        // among plans that still resolve in SM without a deeper level:
        // w = 24 (the EVD-fit boundary), not w = 48.
        let sizes = vec![(8, 8); 1];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert_eq!(plan.w, EVD_FALLBACK_W);
        assert_eq!(plan, candidate_plans(8)[1]);
    }

    #[test]
    fn huge_workload_selects_first_plan() {
        let sizes = vec![(4096, 4096); 1000];
        let plan = auto_tune(&sizes, V100_TLP_THRESHOLD);
        assert_eq!(plan, candidate_plans(4096)[0]);
    }

    #[test]
    fn w_cap_is_respected() {
        let sizes = vec![(64, 64); 4];
        let plan = auto_tune_with_w_cap(&sizes, V100_TLP_THRESHOLD, 12);
        assert!(plan.w <= 12);
    }

    #[test]
    fn traced_selection_matches_untraced_and_records_rejects() {
        let sizes = vec![(256usize, 256usize); 100];
        let sink = wsvd_trace::TraceSink::enabled();
        let pid = sink.register_process("test");
        let traced =
            auto_tune_with_w_cap_traced(&sizes, V100_TLP_THRESHOLD, 48, &sink, pid, 1, 0.25);
        assert_eq!(traced, auto_tune_with_w_cap(&sizes, V100_TLP_THRESHOLD, 48));

        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].track, "autotune");
        assert_eq!(evs[0].name, "plan");
        let arg = |key: &str| {
            evs[0]
                .args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(arg("w"), wsvd_trace::ArgValue::U64(traced.w as u64));
        assert_eq!(arg("threshold_met"), wsvd_trace::ArgValue::U64(1));
        match arg("rejected") {
            wsvd_trace::ArgValue::Str(s) => {
                // The paper's example walks past three candidates; all other
                // scored rows are recorded as rejected too.
                assert_eq!(s.matches("f1=").count(), 7, "rejected list: {s}");
                assert!(s.contains("w=48"), "rejected list: {s}");
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn calibration_returns_positive_threshold() {
        let gpu = Gpu::new(V100);
        let t = calibrate_threshold(&gpu, 0.05);
        assert!(t > 0.0, "threshold {t}");
        // Plausible TLP magnitude for the probe workload (the paper's
        // 306,149 was calibrated against its own, larger probe).
        assert!(t > 1e2 && t < 1e8, "threshold {t} implausible");
    }
}
