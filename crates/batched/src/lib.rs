//! # wsvd-batched
//!
//! The batched-GEMM layer of the W-cycle SVD: the two GEMM shapes at every
//! level (Gram `B_ij = A_ij^T A_ij` and update `Â_ij = A_ij J_ij`), the
//! tailoring strategy that splits GEMM tasks into standard-plate segments
//! across thread blocks (§IV-D1), the TLP/AI performance models (Eqs. 8–9),
//! the auto-tuning engine that resolves the multi-objective program of
//! Eq. (10) (§IV-D3), and the α-warp selectors of §IV-B1 (GCF rule and the
//! trained decision tree).

#![warn(missing_docs)]

pub mod alpha;
pub mod autotune;
pub mod gemm;
pub mod models;

pub use alpha::{alpha_gcf, DecisionTree, TPP_CANDIDATES};
pub use autotune::{
    auto_tune, auto_tune_with_w_cap, auto_tune_with_w_cap_traced, calibrate_threshold,
    candidate_plans, scored_candidates, PlanCache, TuneTelemetry, V100_TLP_THRESHOLD,
};
pub use gemm::{
    batched_gram, batched_update, gemm_kernel_resource, gemm_smem_requirement, tailor_assignment,
    verify_tailor_assignment, GemmStrategy, Segment, GEMM_SMEM_BYTES,
};
pub use models::{ai_gram, ai_update, tlp, TailorPlan};

/// The Table-VI-style size class of an `rows x cols` matrix against an
/// ascending list of caps: the index of the smallest cap both dimensions
/// fit under, or `None` when the matrix exceeds every cap (the serve layer
/// rejects such requests rather than silently oversizing a bucket).
pub fn size_class(rows: usize, cols: usize, caps: &[usize]) -> Option<usize> {
    let d = rows.max(cols);
    caps.iter().position(|&c| d <= c)
}

#[cfg(test)]
mod size_class_tests {
    use super::size_class;

    #[test]
    fn classifies_by_larger_dimension_against_ascending_caps() {
        let caps = [32, 64, 128, 256, 512];
        assert_eq!(size_class(10, 30, &caps), Some(0));
        assert_eq!(size_class(33, 8, &caps), Some(1));
        assert_eq!(size_class(64, 64, &caps), Some(1));
        assert_eq!(size_class(512, 1, &caps), Some(4));
        assert_eq!(size_class(513, 1, &caps), None);
        assert_eq!(size_class(4, 4, &[]), None);
    }
}
