//! Property-based tests of the batched-GEMM layer: the tailoring strategy
//! must be a pure execution-mapping change — numerics identical to the
//! one-block-per-GEMM mapping for any batch, any plan.

use proptest::prelude::*;
use wsvd_batched::gemm::{batched_gram, batched_update, GemmStrategy};
use wsvd_batched::models::{tlp, TailorPlan};
use wsvd_batched::{auto_tune, candidate_plans};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::householder::seeded_orthogonal;
use wsvd_linalg::Matrix;

fn arb_blocks() -> impl Strategy<Value = Vec<Matrix>> {
    (1usize..6, 1usize..50, 1usize..10, any::<u64>()).prop_map(|(count, m, n, seed)| {
        (0..count)
            .map(|k| random_uniform(m * 3, n, seed.wrapping_add(k as u64)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn tailored_gram_equals_plain(blocks in arb_blocks(), w in 1usize..16, dshift in 0usize..4) {
        let gpu = Gpu::new(V100);
        let delta = [8usize, 16, 40, 1000][dshift];
        let plain = batched_gram(&gpu, &blocks, GemmStrategy::OneBlockPerGemm { threads: 256 })
            .unwrap().0;
        let tailored = batched_gram(
            &gpu,
            &blocks,
            GemmStrategy::Tailored(TailorPlan::new(w, delta, 256)),
        )
        .unwrap()
        .0;
        for (p, t) in plain.iter().zip(&tailored) {
            prop_assert!(p.sub(t).max_abs() < 1e-10 * (1.0 + p.max_abs()));
        }
    }

    #[test]
    fn tailored_update_equals_plain(blocks in arb_blocks(), dshift in 0usize..4) {
        let gpu = Gpu::new(V100);
        let delta = [8usize, 16, 40, 1000][dshift];
        let js: Vec<Matrix> = blocks
            .iter()
            .enumerate()
            .map(|(k, b)| seeded_orthogonal(b.cols(), 99 + k as u64))
            .collect();
        let mut plain = blocks.clone();
        batched_update(&gpu, &mut plain, &js, GemmStrategy::OneBlockPerGemm { threads: 256 })
            .unwrap();
        let mut tailored = blocks.clone();
        batched_update(
            &gpu,
            &mut tailored,
            &js,
            GemmStrategy::Tailored(TailorPlan::new(8, delta, 256)),
        )
        .unwrap();
        for (p, t) in plain.iter().zip(&tailored) {
            prop_assert!(p.sub(t).max_abs() < 1e-10 * (1.0 + p.max_abs()));
        }
    }

    #[test]
    fn auto_tune_returns_a_table_candidate(
        m in 8usize..2048, n in 8usize..2048, batch in 1usize..500, thr in 0.0f64..1e7
    ) {
        let sizes = vec![(m, n); batch];
        let plan = auto_tune(&sizes, thr);
        prop_assert!(candidate_plans(m).contains(&plan), "plan {plan:?} not in the table");
    }

    #[test]
    fn tlp_monotone_in_batch_and_inverse_in_plate(
        m in 16usize..512, n in 16usize..512, batch in 1usize..64
    ) {
        let small = TailorPlan::new(8, 16, 256);
        let large = TailorPlan::new(32, 256, 256);
        let sizes = vec![(m, n); batch];
        let bigger = vec![(m, n); batch + 1];
        prop_assert!(tlp(&small, &sizes) >= tlp(&large, &sizes));
        prop_assert!(tlp(&small, &bigger) > tlp(&small, &sizes));
    }
}

fn arb_mixed_sizes() -> impl Strategy<Value = Vec<(usize, usize)>> {
    // Mixed-size multisets, the Table VI shape the plan cache exists for.
    prop::collection::vec((8usize..512, 8usize..512), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn plan_cache_equals_fresh_auto_tune(
        sizes in arb_mixed_sizes(), thr in 0.0f64..1e7
    ) {
        // A cache hit, a cold miss, and a permuted-key hit must all agree
        // with the uncached engine (the cache is pure memoization).
        let cache = wsvd_batched::PlanCache::new();
        let fresh = auto_tune(&sizes, thr);
        let miss = cache.lookup_or_tune(&sizes, thr, 48);
        let hit = cache.lookup_or_tune(&sizes, thr, 48);
        let mut permuted = sizes.clone();
        permuted.reverse();
        let permuted_hit = cache.lookup_or_tune(&permuted, thr, 48);
        prop_assert_eq!(miss, fresh);
        prop_assert_eq!(hit, fresh);
        // Multiset key must be order-insensitive.
        prop_assert_eq!(permuted_hit, fresh);
        prop_assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn plan_cache_respects_w_cap(
        sizes in arb_mixed_sizes(), thr in 0.0f64..1e7, cap_idx in 0usize..4
    ) {
        let w_cap = [8usize, 16, 24, 48][cap_idx];
        let cache = wsvd_batched::PlanCache::new();
        let plan = cache.lookup_or_tune(&sizes, thr, w_cap);
        prop_assert_eq!(plan, wsvd_batched::auto_tune_with_w_cap(&sizes, thr, w_cap));
        prop_assert!(plan.w <= w_cap);
    }

    #[test]
    fn auto_tune_is_permutation_invariant(
        sizes in arb_mixed_sizes(), thr in 0.0f64..1e7
    ) {
        // The property that makes the sorted-multiset cache key sound.
        let mut shuffled = sizes.clone();
        shuffled.reverse();
        shuffled.rotate_left(sizes.len() / 2);
        prop_assert_eq!(auto_tune(&sizes, thr), auto_tune(&shuffled, thr));
    }
}
