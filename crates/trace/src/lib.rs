//! Structured tracing for the W-cycle SVD stack.
//!
//! Events are recorded against **simulated** time (the `gpu-sim` clock), not
//! host wall-clock, so a trace of a seeded workload is a deterministic
//! artifact: the same run produces byte-identical output. Three event kinds
//! cover the stack's needs:
//!
//! * **spans** — an interval on a track (a kernel launch, a W-cycle level);
//! * **instants** — a point event (a sweep finishing, a plan being chosen);
//! * **counters** — a sampled time series (occupancy, GM bytes).
//!
//! The [`TraceSink`] is opt-in: the default handle is disabled and every
//! recording call is a single `Option` check, so instrumented hot paths cost
//! nothing when tracing is off. Call sites that must *compute* values for a
//! trace (e.g. off-diagonal coherence) should guard on
//! [`TraceSink::is_enabled`].
//!
//! Two exporters turn a recorded event list into artifacts:
//! [`chrome_trace_json`] writes the Chrome trace-event format (loadable in
//! Perfetto or `chrome://tracing`), and [`flame_summary`] renders a
//! human-readable per-track time breakdown.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde_json::Value;

/// A value attached to an event under a named key.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counters, counts, sizes).
    U64(u64),
    /// Floating-point (seconds, coherence, scores).
    F64(f64),
    /// Short label.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What happened and when (times in simulated seconds).
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// An interval `[start, start + dur]`.
    Span {
        /// Start time in simulated seconds.
        start: f64,
        /// Duration in simulated seconds.
        dur: f64,
    },
    /// A point event.
    Instant {
        /// Time in simulated seconds.
        ts: f64,
    },
    /// One sample of a named time series.
    Counter {
        /// Sample time in simulated seconds.
        ts: f64,
        /// Sampled value.
        value: f64,
    },
}

/// One trace event on a `(pid, track)` lane.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Process id: groups tracks that belong together (one per simulated
    /// GPU, or a logical domain like the W-cycle orchestrator).
    pub pid: u32,
    /// Track (thread lane) name within the process.
    pub track: String,
    /// Event name.
    pub name: String,
    /// Kind and timing.
    pub kind: EventKind,
    /// Key/value payload shown in trace viewers.
    pub args: Vec<(&'static str, ArgValue)>,
}

#[derive(Default)]
struct Inner {
    events: Vec<Event>,
    /// Human names for pids, in registration order.
    processes: Vec<(u32, String)>,
    next_pid: AtomicU32,
}

/// A cheaply clonable handle that event producers record into.
///
/// `TraceSink::default()` is **disabled**: all recording methods return
/// immediately after one `Option` check. An enabled sink appends to a shared
/// in-memory buffer; emission order is the deterministic order of the
/// single-threaded orchestration code, which is what makes exported traces
/// byte-identical run-to-run.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl TraceSink {
    /// A recording sink.
    pub fn enabled() -> Self {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(Inner {
                next_pid: AtomicU32::new(1),
                ..Inner::default()
            }))),
        }
    }

    /// A no-op sink (same as `default()`).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// Whether events are being recorded. Producers should guard any
    /// non-trivial computation done *only* for tracing behind this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocates a fresh pid and registers its display name. Returns 0 on a
    /// disabled sink (no id is consumed, keeping enabled runs reproducible).
    pub fn register_process(&self, name: &str) -> u32 {
        match &self.inner {
            None => 0,
            Some(m) => {
                let mut inner = m.lock().unwrap_or_else(|e| e.into_inner());
                let pid = inner.next_pid.fetch_add(1, Ordering::Relaxed);
                inner.processes.push((pid, name.to_string()));
                pid
            }
        }
    }

    /// Records a fully-formed event.
    pub fn record(&self, event: Event) {
        if let Some(m) = &self.inner {
            m.lock()
                .unwrap_or_else(|e| e.into_inner())
                .events
                .push(event);
        }
    }

    /// Records a span of `dur` simulated seconds starting at `start`.
    pub fn span(
        &self,
        pid: u32,
        track: &str,
        name: &str,
        start: f64,
        dur: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_some() {
            self.record(Event {
                pid,
                track: track.to_string(),
                name: name.to_string(),
                kind: EventKind::Span { start, dur },
                args,
            });
        }
    }

    /// Records a point event at simulated time `ts`.
    pub fn instant(
        &self,
        pid: u32,
        track: &str,
        name: &str,
        ts: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_some() {
            self.record(Event {
                pid,
                track: track.to_string(),
                name: name.to_string(),
                kind: EventKind::Instant { ts },
                args,
            });
        }
    }

    /// Records one sample of the counter series `name`.
    pub fn counter(&self, pid: u32, track: &str, name: &str, ts: f64, value: f64) {
        if self.inner.is_some() {
            self.record(Event {
                pid,
                track: track.to_string(),
                name: name.to_string(),
                kind: EventKind::Counter { ts, value },
                args: Vec::new(),
            });
        }
    }

    /// Snapshot of all events recorded so far (empty for a disabled sink).
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(m) => m.lock().unwrap_or_else(|e| e.into_inner()).events.clone(),
        }
    }

    /// Snapshot of registered `(pid, name)` pairs.
    pub fn processes(&self) -> Vec<(u32, String)> {
        match &self.inner {
            None => Vec::new(),
            Some(m) => m
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .processes
                .clone(),
        }
    }
}

static GLOBAL: OnceLock<TraceSink> = OnceLock::new();

/// Installs `sink` as the process-wide sink that [`global`] hands out.
/// Returns `false` if a sink was already installed (the first one wins).
///
/// Components that cannot be handed a sink explicitly (e.g. a `Gpu` built
/// deep inside an experiment) pick the global one up at construction time.
pub fn install_global(sink: TraceSink) -> bool {
    GLOBAL.set(sink).is_ok()
}

/// The installed global sink, or a disabled one if none was installed.
pub fn global() -> TraceSink {
    GLOBAL.get().cloned().unwrap_or_default()
}

fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

/// Deterministic `(pid, track) -> tid` assignment by first appearance.
fn assign_tids(events: &[Event]) -> BTreeMap<(u32, String), u64> {
    let mut tids = BTreeMap::new();
    let mut order: Vec<(u32, String)> = Vec::new();
    for ev in events {
        let key = (ev.pid, ev.track.clone());
        if !tids.contains_key(&key) {
            tids.insert(key.clone(), 1 + order.len() as u64);
            order.push(key);
        }
    }
    tids
}

fn args_value(args: &[(&'static str, ArgValue)]) -> Value {
    Value::Map(
        args.iter()
            .map(|(k, v)| {
                let val = match v {
                    ArgValue::U64(u) => Value::U64(*u),
                    ArgValue::F64(f) => Value::F64(*f),
                    ArgValue::Str(s) => Value::Str(s.clone()),
                };
                (k.to_string(), val)
            })
            .collect(),
    )
}

/// Exports events as Chrome trace-event JSON (the `traceEvents` object
/// form), loadable in Perfetto and `chrome://tracing`. Timestamps are
/// simulated microseconds. Output is a pure function of the event list, so
/// identical runs export byte-identical traces.
pub fn chrome_trace_json(events: &[Event], processes: &[(u32, String)]) -> String {
    let tids = assign_tids(events);
    let mut out: Vec<Value> = Vec::new();

    let meta = |name: &str, pid: u32, tid: u64, label: &str| {
        Value::Map(vec![
            ("name".into(), Value::Str(name.to_string())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::U64(pid as u64)),
            ("tid".into(), Value::U64(tid)),
            (
                "args".into(),
                Value::Map(vec![("name".into(), Value::Str(label.to_string()))]),
            ),
        ])
    };
    for (pid, name) in processes {
        out.push(meta("process_name", *pid, 0, name));
    }
    let mut lanes: Vec<(&(u32, String), &u64)> = tids.iter().collect();
    lanes.sort_by_key(|&(_, tid)| *tid);
    for (&(pid, ref track), &tid) in lanes {
        out.push(meta("thread_name", pid, tid, track));
    }

    for ev in events {
        let tid = tids[&(ev.pid, ev.track.clone())];
        let mut fields: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(ev.name.clone())),
            ("pid".into(), Value::U64(ev.pid as u64)),
            ("tid".into(), Value::U64(tid)),
        ];
        match &ev.kind {
            EventKind::Span { start, dur } => {
                fields.push(("ph".into(), Value::Str("X".into())));
                fields.push(("ts".into(), Value::F64(us(*start))));
                fields.push(("dur".into(), Value::F64(us(*dur))));
            }
            EventKind::Instant { ts } => {
                fields.push(("ph".into(), Value::Str("i".into())));
                fields.push(("ts".into(), Value::F64(us(*ts))));
                fields.push(("s".into(), Value::Str("t".into())));
            }
            EventKind::Counter { ts, value } => {
                fields.push(("ph".into(), Value::Str("C".into())));
                fields.push(("ts".into(), Value::F64(us(*ts))));
                fields.push((
                    "args".into(),
                    Value::Map(vec![("value".into(), Value::F64(*value))]),
                ));
                out.push(Value::Map(fields));
                continue;
            }
        }
        if !ev.args.is_empty() {
            fields.push(("args".into(), args_value(&ev.args)));
        }
        out.push(Value::Map(fields));
    }

    let root = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(out)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
    ]);
    serde_json::to_string(&root).expect("trace serialization is infallible")
}

/// Total span seconds per span name (instants and counters ignored).
/// The invariant tests compare this against the simulator's [`Profiler`]
/// totals for the same run.
pub fn span_totals_by_name(events: &[Event]) -> BTreeMap<String, f64> {
    let mut totals = BTreeMap::new();
    for ev in events {
        if let EventKind::Span { dur, .. } = ev.kind {
            *totals.entry(ev.name.clone()).or_insert(0.0) += dur;
        }
    }
    totals
}

/// Renders a human-readable flame summary: per `(process, track)`, every
/// span name with call count, total simulated seconds, and share of the
/// track's busy time, hottest first.
pub fn flame_summary(events: &[Event], processes: &[(u32, String)]) -> String {
    use std::fmt::Write as _;
    let pname: BTreeMap<u32, &str> = processes
        .iter()
        .map(|(pid, n)| (*pid, n.as_str()))
        .collect();

    // (pid, track) -> name -> (count, total_dur)
    let mut tracks: BTreeMap<(u32, String), BTreeMap<String, (u64, f64)>> = BTreeMap::new();
    let mut instants: BTreeMap<(u32, String), u64> = BTreeMap::new();
    for ev in events {
        let key = (ev.pid, ev.track.clone());
        match ev.kind {
            EventKind::Span { dur, .. } => {
                let slot = tracks
                    .entry(key)
                    .or_default()
                    .entry(ev.name.clone())
                    .or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += dur;
            }
            EventKind::Instant { .. } => *instants.entry(key).or_insert(0) += 1,
            EventKind::Counter { .. } => {}
        }
    }

    let mut out = String::new();
    for ((pid, track), names) in &tracks {
        let proc_label = pname.get(pid).copied().unwrap_or("?");
        let busy: f64 = names.values().map(|(_, d)| d).sum();
        let _ = writeln!(out, "[{proc_label}] {track} — busy {busy:.3e} s");
        let mut rows: Vec<(&String, &(u64, f64))> = names.iter().collect();
        rows.sort_by(|a, b| b.1 .1.total_cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
        for (name, (count, dur)) in rows {
            let share = if busy > 0.0 { 100.0 * dur / busy } else { 0.0 };
            let _ = writeln!(out, "  {share:>5.1}%  {dur:>11.3e} s  {count:>6}x  {name}");
        }
        if let Some(n) = instants.get(&(*pid, track.clone())) {
            let _ = writeln!(out, "  ------  {n} instant event(s)");
        }
    }
    for ((pid, track), n) in &instants {
        if !tracks.contains_key(&(*pid, track.clone())) {
            let proc_label = pname.get(pid).copied().unwrap_or("?");
            let _ = writeln!(out, "[{proc_label}] {track} — {n} instant event(s)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events(sink: &TraceSink) -> u32 {
        let pid = sink.register_process("Test GPU");
        sink.span(
            pid,
            "kernels",
            "gemm",
            0.0,
            2.0e-3,
            vec![("grid", 8usize.into())],
        );
        sink.span(pid, "kernels", "svd", 2.0e-3, 1.0e-3, Vec::new());
        sink.span(pid, "kernels", "gemm", 3.0e-3, 2.0e-3, Vec::new());
        sink.instant(
            pid,
            "wcycle",
            "sweep",
            4.0e-3,
            vec![("coherence", 0.25.into())],
        );
        sink.counter(pid, "occupancy", "occupancy", 1.0e-3, 0.5);
        pid
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let pid = sample_events(&sink);
        assert_eq!(pid, 0);
        assert!(sink.events().is_empty());
        assert!(sink.processes().is_empty());
    }

    #[test]
    fn enabled_sink_preserves_emission_order() {
        let sink = TraceSink::enabled();
        assert!(sink.is_enabled());
        sample_events(&sink);
        let evs = sink.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].name, "gemm");
        assert_eq!(evs[3].name, "sweep");
        assert!(matches!(evs[4].kind, EventKind::Counter { value, .. } if value == 0.5));
        assert_eq!(sink.processes(), vec![(1, "Test GPU".to_string())]);
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        let sink = TraceSink::enabled();
        sample_events(&sink);
        let json = chrome_trace_json(&sink.events(), &sink.processes());
        let v: Value = serde_json::from_str(&json).expect("chrome trace must re-parse");
        let evs = v.get("traceEvents").unwrap().as_seq().unwrap();
        // 1 process_name + 3 thread_name + 5 events.
        assert_eq!(evs.len(), 9);
        assert_eq!(evs[0].get("ph").unwrap().as_str().unwrap(), "M");
        let span = &evs[4];
        assert_eq!(span.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(span.get("ts").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(span.get("dur").unwrap().as_f64().unwrap(), 2000.0); // 2 ms = 2000 µs
        assert_eq!(
            span.get("args")
                .unwrap()
                .get("grid")
                .unwrap()
                .as_u64()
                .unwrap(),
            8
        );
    }

    #[test]
    fn chrome_export_is_byte_identical_across_runs() {
        let run = || {
            let sink = TraceSink::enabled();
            sample_events(&sink);
            chrome_trace_json(&sink.events(), &sink.processes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn span_totals_aggregate_by_name() {
        let sink = TraceSink::enabled();
        sample_events(&sink);
        let totals = span_totals_by_name(&sink.events());
        assert!((totals["gemm"] - 4.0e-3).abs() < 1e-15);
        assert!((totals["svd"] - 1.0e-3).abs() < 1e-15);
    }

    #[test]
    fn flame_summary_ranks_hottest_first() {
        let sink = TraceSink::enabled();
        sample_events(&sink);
        let s = flame_summary(&sink.events(), &sink.processes());
        assert!(s.contains("[Test GPU] kernels"));
        let gemm = s.find("gemm").unwrap();
        let svd = s.find("svd").unwrap();
        assert!(gemm < svd, "{s}");
        assert!(s.contains("instant event"));
    }

    #[test]
    fn global_sink_defaults_to_disabled() {
        // Note: install_global is process-wide; this test only asserts the
        // read path works and never installs, to avoid cross-test coupling.
        assert!(global().events().is_empty() || global().is_enabled());
    }
}
