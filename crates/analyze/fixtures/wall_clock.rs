// Planted violation for the `no-wall-clock` lint: a host-time read inside
// (pretend) simulated-time code. Not compiled — linted as a fixture with
// the pretend path `crates/core/src/fixture.rs`.

pub fn simulated_step_with_host_leak() -> f64 {
    let started = std::time::Instant::now();
    let _ = started;
    0.0
}
