// Planted violation for the `no-float-eq` lint: exact float comparison in
// (pretend) convergence logic. Not compiled — linted as a fixture with the
// pretend path `crates/core/src/wcycle.rs`.

pub fn converged(off_diag_norm: f64) -> bool {
    off_diag_norm == 0.0
}
