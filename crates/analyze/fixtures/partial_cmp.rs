// Planted violation for the `no-partial-cmp-sort` lint: a NaN-unsafe
// `partial_cmp` sort comparator. Not compiled — linted as a fixture with the
// pretend path `crates/core/src/fixture.rs`.

pub fn sort_descending(values: &mut Vec<f64>) {
    values.sort_by(|a, b| b.partial_cmp(a).unwrap());
}

// The pragma'd variant below must stay silent: a documented, deliberate
// partial order opts out with a reason.
pub fn deliberate_partial(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    // wsvd-lint: allow(no-partial-cmp-sort) — None is the point here
    a.partial_cmp(&b)
}
