// Planted violation for the `sink-guard` lint: a producer call in a
// function that never consults `is_enabled()`. Not compiled — linted as a
// fixture with the pretend path `crates/core/src/fixture.rs`.

pub fn leaky_hot_path(trace: &TraceSink, pid: u64) {
    // Builds the event arguments even when the sink is disabled.
    trace.instant(pid, "fixture", "unguarded", 0.0, vec![("cost", 1.0.into())]);
}

pub fn properly_guarded(metrics: &MetricsSink) {
    if metrics.is_enabled() {
        metrics.counter_add("fixture", "ok", 1);
    }
}
