// Planted violation for the `no-hashmap` lint: hash-ordered storage in
// (pretend) registry/exposition code. Not compiled — linted as a fixture
// with the pretend path `crates/metrics/src/fixture.rs`.

use std::collections::HashMap;

pub struct Registry {
    counters: HashMap<String, u64>,
}
