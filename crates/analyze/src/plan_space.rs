//! Exhaustive plan-space enumeration and certification.
//!
//! The auto-tuner's plan space is finite and small once quotiented by the
//! certificate key `(w, threads)` (δ never touches a kernel's resource
//! demands — see `wsvd_core::certify`):
//!
//! * the candidate table ([`candidate_plans`]) contributes the families
//!   `(48,256)`, `(24,256)`, `(16,256)`, `(8,128)` whatever the sizes;
//! * a degenerate width cap (`w_cap < 8`, reachable in principle through
//!   the recursion's `w_{h+1} < w_h` chain and directly via the public
//!   `auto_tune_with_w_cap`) synthesizes `(w_cap, 128)` for
//!   `w_cap ∈ 1..=7`.
//!
//! [`enumerate_autotuned`] computes this set as the closure of the cap
//! chain `48 → w−1 → …` rather than hard-coding it, so a future candidate-
//! table edit is picked up (or caught) automatically. A second, wider
//! **pinned** tier covers every `Tuning::Fixed` / `Tuning::Widths`
//! configuration the experiments use (`w ∈ 1..=48`, `T ∈ {128, 256}`).
//!
//! [`sweep_reachability`] then drives the real `auto_tune_with_w_cap` over
//! every tab5/fig7/fig9/fig14 shape (both scales), all threshold regimes and
//! every reachable cap, and proves each selected plan certified — the
//! zero-false-rejection half of the acceptance criteria.

use std::collections::{BTreeMap, BTreeSet};

use wsvd_batched::autotune::{auto_tune_with_w_cap, scored_candidates, V100_TLP_THRESHOLD};
use wsvd_batched::models::TailorPlan;
use wsvd_core::certify::{
    build_schedule_atlas, certify_claim, check_level_with, CertificateStore, CertifyError,
    DeviceCertificates, FamilyKey, PlanClaim, PlanOrigin,
};
use wsvd_gpu_sim::{DeviceSpec, ALL_DEVICES};
use wsvd_jacobi::ordering::Ordering;

/// The top-level width cap `decompose_level` starts from (the SM-fit bound
/// `w_1 <= 48` of Algorithm 2).
pub const TOP_W_CAP: usize = 48;

/// Block-count bound the schedule atlas proves exhaustively. 512 covers
/// every experiment at both scales with an order of magnitude to spare (the
/// widest demand is Table V's fixed `w = 4` plan on full-scale `n = 1024`:
/// 256 blocks).
pub const DEFAULT_MAX_BLOCKS: usize = 512;

/// Every plan family reachable from the top-level cap through the
/// recursion's strictly-decreasing cap chain, computed as a closure:
/// starting at `w_cap = 48`, a cap's reachable families are the candidate
/// table filtered to `w <= w_cap` (or the synthesized `(w_cap, 128)` plan
/// when the filter empties the table), and each family `w` opens the next
/// cap `w - 1`.
pub fn enumerate_autotuned() -> Vec<FamilyKey> {
    let mut caps: Vec<usize> = vec![TOP_W_CAP];
    let mut seen_caps = BTreeSet::new();
    let mut families = BTreeSet::new();
    while let Some(cap) = caps.pop() {
        if !seen_caps.insert(cap) {
            continue;
        }
        // The candidate table's (w, T) pairs are size-independent; any
        // m_star produces the same families. Use a representative.
        let scored = scored_candidates(&[(64, 64)], cap);
        let fams: Vec<(usize, usize)> = if scored.is_empty() {
            vec![(cap.max(1), 128)]
        } else {
            scored.iter().map(|(p, _)| (p.w, p.threads)).collect()
        };
        for (w, threads) in fams {
            families.insert((w, threads));
            let next = w.saturating_sub(1).max(1);
            if !seen_caps.contains(&next) {
                caps.push(next);
            }
        }
    }
    families
        .into_iter()
        .map(|(w, threads)| FamilyKey { w, threads })
        .collect()
}

/// The pinned tier: every family a `Tuning::Fixed` / `Tuning::Widths`
/// configuration can produce across the experiments (`w` clamped to the
/// `1..=48` cap chain, the fixed-plan thread counts in use).
pub fn enumerate_pinned() -> Vec<FamilyKey> {
    let mut fams = Vec::new();
    for w in 1..=TOP_W_CAP {
        for threads in [128, 256] {
            fams.push(FamilyKey { w, threads });
        }
    }
    fams
}

/// Builds the full certificate store: the shared schedule atlas plus both
/// tiers certified on every device model.
pub fn certify_all_devices(max_blocks: usize) -> Result<CertificateStore, CertifyError> {
    let atlas = build_schedule_atlas(max_blocks)?;
    let mut store = CertificateStore::new(atlas);
    for device in &ALL_DEVICES {
        let mut families = BTreeMap::new();
        for (tier, origin) in [
            (enumerate_autotuned(), PlanOrigin::Autotuned),
            (enumerate_pinned(), PlanOrigin::Pinned),
        ] {
            for key in tier {
                if families.contains_key(&key.id()) {
                    continue; // autotuned tier wins on overlap
                }
                let claim = PlanClaim::for_device(key.w, key.threads, origin, device);
                let cert = certify_claim(&claim, device, &store.atlas)?;
                families.insert(key.id(), cert);
            }
        }
        store.devices.insert(
            device.name.to_string(),
            DeviceCertificates {
                device: device.name.to_string(),
                smem_per_block_bytes: device.smem_per_block_bytes,
                families,
            },
        );
    }
    Ok(store)
}

/// One experiment's workloads: `(experiment id, size multisets)`.
pub type ExperimentShapes = (&'static str, Vec<Vec<(usize, usize)>>);

/// The `(m, n)` workloads of the tab5 / fig7 / fig9 / fig14 experiments at
/// both scales, each as a size multiset (shape repeated per batch entry is
/// redundant for tuning — `tlp` sums linearly — so one entry per distinct
/// shape with the batch folded into the sweep is enough; we keep small
/// explicit batches to exercise multiset handling).
pub fn experiment_shapes() -> Vec<ExperimentShapes> {
    let mut shapes = Vec::new();
    // fig7 / fig13: five (m, n) <= 32 shapes, batches 10/100/500.
    let fig7: Vec<Vec<(usize, usize)>> = [(8, 32), (16, 32), (32, 32), (32, 16), (32, 8)]
        .iter()
        .flat_map(|&(m, n)| {
            [10usize, 100, 500]
                .iter()
                .map(move |&b| vec![(m, n); b.min(16)])
        })
        .collect();
    shapes.push(("fig7", fig7));
    // fig9: square n, batches 1/10/40 (reduced) and up to 512 (full).
    let fig9: Vec<Vec<(usize, usize)>> = [64usize, 128, 256, 512]
        .iter()
        .flat_map(|&n| {
            [1usize, 10, 40]
                .iter()
                .map(move |&b| vec![(n, n); b.min(8)])
        })
        .collect();
    shapes.push(("fig9", fig9));
    // tab5: batch 10/100 of square sizes 48..1024.
    let tab5: Vec<Vec<(usize, usize)>> = [48usize, 64, 96, 160, 256, 1024]
        .iter()
        .map(|&n| vec![(n, n); 10])
        .collect();
    shapes.push(("tab5", tab5));
    // fig14a: 512x512 (full) / 128x128 (reduced) batches.
    shapes.push(("fig14a", vec![vec![(128, 128); 10], vec![(512, 512); 4]]));
    // fig14b: mixed-size assimilation batches, 24..112 reduced, 50..1024
    // full (sampled ends + midpoints; tuning only sees the multiset).
    let fig14b: Vec<Vec<(usize, usize)>> = vec![
        vec![(24, 24), (64, 64), (112, 112), (80, 40)],
        vec![(50, 50), (512, 512), (1024, 1024), (700, 350)],
    ];
    shapes.push(("fig14b", fig14b));
    shapes
}

/// Result of the reachability sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Workload multisets driven through the tuner.
    pub workloads: usize,
    /// Individual `(workload, threshold, cap)` selections checked.
    pub selections: usize,
    /// Distinct `(w, threads)` families the tuner actually selected.
    pub selected_families: BTreeSet<(usize, usize)>,
}

/// Drives the real auto-tuner over every experiment shape, all three
/// threshold regimes of `pick` (always-over, calibrated, sub-threshold) and
/// every cap in the reachable chain, and proves every selected plan
/// certified on every device: `check_level_with` must accept the plan for
/// the workload that produced it. Returns the sweep counts or the first
/// plan that failed — a false rejection.
pub fn sweep_reachability(store: &CertificateStore) -> Result<SweepReport, String> {
    let caps: BTreeSet<usize> = enumerate_autotuned()
        .iter()
        .map(|f| f.w.saturating_sub(1).max(1))
        .chain([TOP_W_CAP])
        .collect();
    let thresholds = [0.0, V100_TLP_THRESHOLD, f64::INFINITY];
    let mut workloads = 0usize;
    let mut selections = 0usize;
    let mut selected = BTreeSet::new();
    for (exp, sets) in experiment_shapes() {
        for sizes in sets {
            workloads += 1;
            for &threshold in &thresholds {
                for &cap in &caps {
                    // A sub-top-level cap only ever tunes the *pair blocks*
                    // the parent level formed: tasks of at most
                    // `2 * w_parent = 2 * (cap + 1)` columns. Feeding it the
                    // original sizes would invent unreachable launches
                    // (e.g. n = 1024 under cap 1 -> 1024 column blocks).
                    let level_sizes: Vec<(usize, usize)> = if cap == TOP_W_CAP {
                        sizes.clone()
                    } else {
                        sizes
                            .iter()
                            .map(|&(m, n)| (m, n.min(2 * (cap + 1))))
                            .collect()
                    };
                    let plan: TailorPlan = auto_tune_with_w_cap(&level_sizes, threshold, cap);
                    selected.insert((plan.w, plan.threads));
                    for device in &ALL_DEVICES {
                        check_level_with(store, device, &plan, &level_sizes, Ordering::RoundRobin)
                            .map_err(|e| {
                                format!(
                                    "{exp}: plan (w={}, T={}) for {:?} under cap {cap} \
                                     rejected on {}: {e}",
                                    plan.w,
                                    plan.threads,
                                    level_sizes.first(),
                                    device.name
                                )
                            })?;
                    }
                    selections += 1;
                }
            }
        }
    }
    Ok(SweepReport {
        workloads,
        selections,
        selected_families: selected,
    })
}

/// The two planted-bug probes of the `ext-certify` experiment: a plan that
/// falsely claims the SM-fit (terminal) boundary at `w = 25`, and a custom
/// schedule with a step conflict. Returns the two rejection messages;
/// panics if either is (wrongly) certified.
pub fn planted_rejections(device: &DeviceSpec) -> (String, String) {
    let atlas = build_schedule_atlas(8).expect("atlas");
    let mut oversized = PlanClaim::for_device(25, 256, PlanOrigin::Pinned, device);
    assert!(
        !oversized.terminal,
        "w=25 must sit beyond the Observation-2 boundary"
    );
    oversized.terminal = true;
    let e1 = match certify_claim(&oversized, device, &atlas) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("oversized-smem plan must be rejected"),
    };
    let mut conflicting = PlanClaim::for_device(16, 256, PlanOrigin::Pinned, device);
    conflicting.custom_schedule = Some((vec![vec![(0, 1), (1, 2)], vec![(0, 2)]], 3));
    let e2 = match certify_claim(&conflicting, device, &atlas) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("conflicting-schedule plan must be rejected"),
    };
    (e1, e2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;

    #[test]
    fn autotuned_closure_is_the_expected_eleven() {
        let fams = enumerate_autotuned();
        let set: BTreeSet<(usize, usize)> = fams.iter().map(|f| (f.w, f.threads)).collect();
        let mut expected: BTreeSet<(usize, usize)> =
            [(48, 256), (24, 256), (16, 256), (8, 128)].into();
        for w in 1..=7 {
            expected.insert((w, 128));
        }
        assert_eq!(set, expected);
    }

    #[test]
    fn store_certifies_both_tiers_on_all_devices() {
        let store = certify_all_devices(32).unwrap();
        assert_eq!(store.devices.len(), ALL_DEVICES.len());
        for dev in store.devices.values() {
            // 96 pinned (48 widths x 2 thread counts) already contains the
            // four table families; the synthesized caps add (1..=7, 128)
            // beyond the pinned (w, 128)? No — pinned includes them. The
            // union is exactly the pinned grid.
            assert_eq!(dev.families.len(), 96, "{}", dev.device);
        }
        // Autotuned origins survive the merge where tiers overlap.
        let v100 = &store.devices[V100.name];
        let auto = v100
            .families
            .values()
            .filter(|c| matches!(c.origin, PlanOrigin::Autotuned))
            .count();
        assert_eq!(auto, enumerate_autotuned().len());
    }

    #[test]
    fn sweep_accepts_every_selection() {
        let store = certify_all_devices(DEFAULT_MAX_BLOCKS).unwrap();
        let rep = sweep_reachability(&store).unwrap();
        assert!(rep.workloads >= 30, "{rep:?}");
        assert!(rep.selections >= rep.workloads * 9, "{rep:?}");
        // Everything the tuner picked is inside the enumerated closure.
        let closure: BTreeSet<(usize, usize)> = enumerate_autotuned()
            .iter()
            .map(|f| (f.w, f.threads))
            .collect();
        assert!(
            rep.selected_families.is_subset(&closure),
            "selected {:?} outside closure {closure:?}",
            rep.selected_families
        );
        // And the sweep genuinely exercises the table: all four candidate
        // families appear among the selections.
        for fam in [(48, 256), (24, 256), (16, 256), (8, 128)] {
            assert!(
                rep.selected_families.contains(&fam),
                "family {fam:?} never selected; sweep too weak"
            );
        }
    }

    #[test]
    fn planted_probes_are_rejected() {
        let (smem, sched) = planted_rejections(&V100);
        assert!(smem.contains("terminal claim at w=25"), "{smem}");
        assert!(smem.contains("50800") || smem.contains("50_800"), "{smem}");
        assert!(sched.contains("custom schedule"), "{sched}");
    }
}
