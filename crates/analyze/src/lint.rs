//! Source-level invariant lints.
//!
//! Previous PRs established project contracts by convention; these lints
//! make them machine-checked. The catalog (see DESIGN.md §12 for the full
//! rationale per invariant):
//!
//! * **`sink-guard`** — every `TraceSink` / `MetricsSink` / `HealthSink`
//!   producer call happens inside a function that consulted
//!   `is_enabled()` first (the zero-cost contract: disabled sinks must not
//!   even build their event arguments). Functions that are documented
//!   caller-guarded helpers carry a `// wsvd-lint: allow(sink-guard)`
//!   pragma.
//! * **`no-wall-clock`** — no `std::time::{Instant, SystemTime}` inside
//!   simulated-time crates: wall-clock reads there would leak host timing
//!   into deterministic simulated seconds. The bench harness (host-side
//!   timing) and this crate are exempt.
//! * **`no-hashmap`** — no `HashMap` in registry/exposition code paths
//!   (metrics, trace, health, the plan cache, bench reports, the
//!   certificate store): iteration order must be deterministic so snapshots
//!   and baselines are byte-identical.
//! * **`no-float-eq`** — no float `==` / `!=` against float literals in
//!   convergence logic (the Jacobi sweeps, the W-cycle driver, the
//!   convergence verifier): exact float comparison there encodes a
//!   tolerance decision by accident. Kernel zero-guards elsewhere (e.g.
//!   `beta == 0.0` short-circuits in Householder) are deliberate exact
//!   sentinel tests and stay out of scope.
//! * **`no-partial-cmp-sort`** — no `partial_cmp` float orderings anywhere
//!   in the workspace crates: `.partial_cmp(..).unwrap()` panics on NaN
//!   (PR 1 fixed exactly this in `profile.rs`, then the pattern reappeared
//!   in eight more sorting paths), and an `unwrap_or(Equal)` fallback makes
//!   the order silently input-dependent. Use `total_cmp`, adding an
//!   explicit tiebreak where equal keys must resolve deterministically. A
//!   deliberate partial order carries a
//!   `// wsvd-lint: allow(no-partial-cmp-sort)` pragma with its reason.
//!
//! Suppression: `// wsvd-lint: allow(<rule>)` on the finding's line, the
//! line above it, or within the three lines above the enclosing `fn` header
//! suppresses that rule there. Test regions (`#[cfg(test)]` items, files
//! under `tests/`) are skipped entirely.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{enclosing_fn, fn_spans, mask_non_code, test_region_lines};

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`sink-guard`, `no-wall-clock`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Every rule identifier in the catalog.
pub const RULES: [&str; 5] = [
    "sink-guard",
    "no-wall-clock",
    "no-hashmap",
    "no-float-eq",
    "no-partial-cmp-sort",
];

const SINK_RECEIVERS: [&str; 4] = ["trace", "metrics", "health", "sink"];
const SINK_PRODUCERS: [&str; 14] = [
    "span",
    "instant",
    "counter",
    "record",
    "counter_add",
    "gauge_set",
    "observe",
    "kernel_launch",
    "plan_selected",
    "metric_delta",
    "shard_sync",
    "sweep_sample",
    "batch_check",
    "nonfinite",
];

/// Whether `sink-guard` applies to this workspace-relative path: producer
/// call sites, i.e. everything but the sink-defining crates themselves,
/// the host-side bench/analyze tooling, and tests.
fn sink_guard_scope(rel: &str) -> bool {
    rel.ends_with(".rs")
        && rel.starts_with("crates/")
        && !rel.starts_with("crates/trace/")
        && !rel.starts_with("crates/metrics/")
        && !rel.starts_with("crates/health/")
        && !rel.starts_with("crates/analyze/")
        && !rel.starts_with("crates/bench/")
        && rel.contains("/src/")
}

/// Whether `no-wall-clock` applies: every simulated-time crate. The bench
/// harness measures real host time on purpose; wsvd-analyze never runs
/// simulated work.
fn wall_clock_scope(rel: &str) -> bool {
    rel.ends_with(".rs")
        && rel.starts_with("crates/")
        && !rel.starts_with("crates/bench/")
        && !rel.starts_with("crates/analyze/")
        && rel.contains("/src/")
}

/// Whether `no-hashmap` applies: registry / exposition / cache code whose
/// iteration order feeds deterministic output.
fn hashmap_scope(rel: &str) -> bool {
    let files = [
        "crates/batched/src/autotune.rs",
        "crates/core/src/certify.rs",
        "crates/bench/src/metrics_report.rs",
    ];
    files.contains(&rel)
        || ((rel.starts_with("crates/metrics/")
            || rel.starts_with("crates/trace/")
            || rel.starts_with("crates/health/"))
            && rel.contains("/src/")
            && rel.ends_with(".rs"))
}

/// Whether `no-partial-cmp-sort` applies: every workspace crate's source.
/// The pattern is never load-bearing — all nine historical sites were
/// orderings over finite floats where `total_cmp` is drop-in — so the scope
/// is the whole tree rather than a hot-path allowlist.
fn partial_cmp_scope(rel: &str) -> bool {
    rel.ends_with(".rs") && rel.starts_with("crates/") && rel.contains("/src/")
}

/// Whether `no-float-eq` applies: convergence-decision code.
fn float_eq_scope(rel: &str) -> bool {
    [
        "crates/jacobi/src/onesided.rs",
        "crates/jacobi/src/evd.rs",
        "crates/core/src/wcycle.rs",
        "crates/linalg/src/verify.rs",
    ]
    .contains(&rel)
}

/// Lints one file's source. `rel` is the workspace-relative path (unix
/// separators) used for rule scoping; fixtures pass pretend paths.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let masked = mask_non_code(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let tests = test_region_lines(&masked, src);
    let spans = fn_spans(&masked);
    let in_tests = |line: usize| tests.iter().any(|&(s, e)| s <= line && line < e);
    let allowed = |rule: &str, line: usize| {
        let tag = format!("wsvd-lint: allow({rule})");
        let near = |l: usize| l >= 1 && raw_lines.get(l - 1).is_some_and(|s| s.contains(&tag));
        if near(line) || line > 1 && near(line - 1) {
            return true;
        }
        if let Some((header, _)) = enclosing_fn(&spans, line) {
            (header.saturating_sub(3)..=header).any(near)
        } else {
            false
        }
    };
    let mut findings = Vec::new();

    if sink_guard_scope(rel) {
        for (idx, line) in masked_lines.iter().enumerate() {
            let l = idx + 1;
            if in_tests(l) {
                continue;
            }
            let Some(call) = find_producer_call(line) else {
                continue;
            };
            // The enclosing function must consult is_enabled() somewhere —
            // the established idiom binds `let traced = trace.is_enabled();`
            // up front and guards every producer under it.
            let guarded = match enclosing_fn(&spans, l) {
                Some((s, e)) => masked_lines[s - 1..e.min(masked_lines.len())]
                    .iter()
                    .any(|fl| fl.contains("is_enabled()")),
                None => false,
            };
            if !guarded && !allowed("sink-guard", l) {
                findings.push(Finding {
                    rule: "sink-guard",
                    file: rel.to_string(),
                    line: l,
                    message: format!(
                        "sink producer `{call}` in a function that never checks is_enabled(); \
                         guard it or mark the fn `// wsvd-lint: allow(sink-guard)` if the \
                         caller guards"
                    ),
                });
            }
        }
    }

    if wall_clock_scope(rel) {
        for (idx, line) in masked_lines.iter().enumerate() {
            let l = idx + 1;
            if in_tests(l) || allowed("no-wall-clock", l) {
                continue;
            }
            for pat in ["std::time", "Instant::now", "SystemTime"] {
                if line.contains(pat) {
                    findings.push(Finding {
                        rule: "no-wall-clock",
                        file: rel.to_string(),
                        line: l,
                        message: format!(
                            "`{pat}` in a simulated-time crate; wall-clock reads break \
                             deterministic simulated seconds"
                        ),
                    });
                    break;
                }
            }
        }
    }

    if hashmap_scope(rel) {
        for (idx, line) in masked_lines.iter().enumerate() {
            let l = idx + 1;
            if in_tests(l) || allowed("no-hashmap", l) {
                continue;
            }
            if has_word(line, "HashMap") {
                findings.push(Finding {
                    rule: "no-hashmap",
                    file: rel.to_string(),
                    line: l,
                    message: "`HashMap` in registry/exposition code; iteration order must be \
                              deterministic — use `BTreeMap`"
                        .to_string(),
                });
            }
        }
    }

    if partial_cmp_scope(rel) {
        for (idx, line) in masked_lines.iter().enumerate() {
            let l = idx + 1;
            if in_tests(l) || allowed("no-partial-cmp-sort", l) {
                continue;
            }
            if has_word(line, "partial_cmp") {
                findings.push(Finding {
                    rule: "no-partial-cmp-sort",
                    file: rel.to_string(),
                    line: l,
                    message: "`partial_cmp` float ordering is NaN-unsafe (panics on unwrap, or \
                              silently reorders under unwrap_or); use `total_cmp` with an \
                              explicit deterministic tiebreak"
                        .to_string(),
                });
            }
        }
    }

    if float_eq_scope(rel) {
        for (idx, line) in masked_lines.iter().enumerate() {
            let l = idx + 1;
            if in_tests(l) || allowed("no-float-eq", l) {
                continue;
            }
            if float_literal_comparison(line) {
                findings.push(Finding {
                    rule: "no-float-eq",
                    file: rel.to_string(),
                    line: l,
                    message: "float literal compared with == / != in convergence logic; use a \
                              tolerance"
                        .to_string(),
                });
            }
        }
    }

    findings
}

/// Finds `receiver.producer(` on a line where the receiver is one of the
/// sink binding names (optionally `self.`-qualified) and the method is a
/// producer. Returns `receiver.method` for the message.
fn find_producer_call(line: &str) -> Option<String> {
    for recv in SINK_RECEIVERS {
        let mut from = 0;
        while let Some(off) = line[from..].find(recv) {
            let at = from + off;
            from = at + recv.len();
            // Word boundary before the receiver (allowing `self.`).
            let before = line[..at].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            let rest = &line[at + recv.len()..];
            let Some(rest) = rest.strip_prefix('.') else {
                continue;
            };
            for m in SINK_PRODUCERS {
                if let Some(after) = rest.strip_prefix(m) {
                    let boundary = after.trim_start().starts_with('(');
                    if boundary {
                        return Some(format!("{recv}.{m}"));
                    }
                }
            }
        }
    }
    None
}

fn has_word(line: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(off) = line[from..].find(word) {
        let at = from + off;
        let before_ok = !line[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = line[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Whether the line compares a float literal with `==` or `!=`.
fn float_literal_comparison(line: &str) -> bool {
    for op in ["==", "!="] {
        let mut from = 0;
        while let Some(off) = line[from..].find(op) {
            let at = from + off;
            from = at + op.len();
            // `!=` vs `!==`-like false positives don't exist in Rust; check
            // both operand sides for a float literal.
            let lhs = line[..at].trim_end();
            let rhs = line[at + op.len()..].trim_start();
            if ends_with_float_literal(lhs) || starts_with_float_literal(rhs) {
                return true;
            }
        }
    }
    false
}

fn starts_with_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == 0 || i >= b.len() {
        return false;
    }
    b[i] == b'.' || b[i] == b'e' || b[i] == b'E'
}

fn ends_with_float_literal(s: &str) -> bool {
    // Scan back over [0-9_] then require a '.' with a digit before it, or
    // an exponent suffix.
    let b = s.as_bytes();
    let mut i = b.len();
    while i > 0 && (b[i - 1].is_ascii_digit() || b[i - 1] == b'_') {
        i -= 1;
    }
    if i == b.len() {
        return false;
    }
    if i > 0 && b[i - 1] == b'.' {
        return i > 1 && b[i - 2].is_ascii_digit();
    }
    if i > 0 && (b[i - 1] == b'e' || b[i - 1] == b'E' || b[i - 1] == b'-') {
        // 1e-8 / 2.5e3: walk back over the exponent marker to a digit/dot.
        let mut j = i - 1;
        if b[j] == b'-' && j > 0 {
            j -= 1;
        }
        if (b[j] == b'e' || b[j] == b'E') && j > 0 {
            return b[j - 1].is_ascii_digit() || b[j - 1] == b'.';
        }
    }
    false
}

/// Recursively lints every `.rs` file reachable from the workspace root,
/// skipping vendored deps, build output, fixtures and git internals.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel_str, &src));
    }
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "vendor" | "target" | "fixtures" | ".git" | ".github" | "repro_results"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap().to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_producer_fires_and_guard_silences() {
        let bad =
            "fn f(trace: &TraceSink) {\n    trace.instant(0, \"t\", \"n\", 0.0, vec![]);\n}\n";
        let f = lint_source("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "sink-guard");
        assert_eq!(f[0].line, 2);

        let good = "fn f(trace: &TraceSink) {\n    if trace.is_enabled() {\n        \
                    trace.instant(0, \"t\", \"n\", 0.0, vec![]);\n    }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn allow_pragma_above_fn_suppresses() {
        let src =
            "// wsvd-lint: allow(sink-guard) — caller guards\nfn f(trace: &TraceSink) {\n    \
                   trace.counter(0, \"t\", \"n\", 0.0, 1.0);\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn snapshot_readers_do_not_fire() {
        // `snap.counter(...)` is a Snapshot reader, not a sink producer.
        let src =
            "fn f(snap: &Snapshot) -> f64 {\n    snap.counter(\"e\", \"k\", None, \"n\")\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_in_scope_only() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        assert_eq!(lint_source("crates/gpu-sim/src/x.rs", src).len(), 1);
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_fires_in_registry_scope_only() {
        let src = "use std::collections::HashMap;\n";
        let f = lint_source("crates/metrics/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-hashmap");
        assert!(lint_source("crates/linalg/src/matrix.rs", src).is_empty());
        // Masked occurrences never fire.
        assert!(lint_source("crates/metrics/src/lib.rs", "// HashMap\n").is_empty());
    }

    #[test]
    fn float_eq_detects_literals_both_sides() {
        for src in [
            "fn f(x: f64) -> bool { x == 0.0 }\n",
            "fn f(x: f64) -> bool { 1e-8 != x }\n",
            "fn f(x: f64) -> bool { x != 2.5e3 }\n",
        ] {
            let f = lint_source("crates/jacobi/src/onesided.rs", src);
            assert_eq!(f.len(), 1, "{src}");
            assert_eq!(f[0].rule, "no-float-eq");
        }
        // Integer comparisons and out-of-scope files stay silent.
        assert!(lint_source(
            "crates/jacobi/src/onesided.rs",
            "fn f(x: usize) { x == 0; }\n"
        )
        .is_empty());
        assert!(lint_source(
            "crates/linalg/src/householder.rs",
            "fn f(b: f64) { b == 0.0; }\n"
        )
        .is_empty());
    }

    #[test]
    fn partial_cmp_fires_everywhere_in_crate_sources() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        for rel in [
            "crates/jacobi/src/evd.rs",
            "crates/serve/src/server.rs",
            "crates/bench/src/metrics_report.rs",
        ] {
            let f = lint_source(rel, src);
            assert_eq!(f.len(), 1, "{rel}");
            assert_eq!(f[0].rule, "no-partial-cmp-sort");
            assert_eq!(f[0].line, 2);
        }
        // total_cmp is the fix, and pragmas opt a deliberate partial order out.
        assert!(lint_source(
            "crates/jacobi/src/evd.rs",
            "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n"
        )
        .is_empty());
        let pragma = "fn f(a: f64, b: f64) {\n    // wsvd-lint: allow(no-partial-cmp-sort) — \
                      deliberate partial order\n    let _ = a.partial_cmp(&b);\n}\n";
        assert!(lint_source("crates/jacobi/src/evd.rs", pragma).is_empty());
        // Out of crate sources (root tests, binaries outside src/) stays silent.
        assert!(lint_source("tests/serve_integration.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) { let _ = x == 0.0; }\n}\n";
        assert!(lint_source("crates/jacobi/src/onesided.rs", src).is_empty());
    }
}
