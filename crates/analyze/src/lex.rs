//! A comment- and string-aware Rust source scanner.
//!
//! The lint pass needs to see *code* tokens only: a `HashMap` inside a doc
//! comment or a `"no float == here"` string must not fire a lint. The
//! vendored dependency set has no `syn`, so this module implements the small
//! lexical subset the lints need by hand: it blanks out comments (line,
//! nested block, doc), string literals (plain, raw, byte), and char
//! literals, replacing every masked byte with a space so line numbers and
//! column positions survive intact.

/// Returns `src` with comments, strings and char literals replaced by
/// spaces (newlines preserved). Lints run their token patterns over the
/// result; pragma scanning runs over the raw source.
pub fn mask_non_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (incl. /// and //!): mask to end of line.
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nesting per the Rust grammar.
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // Raw (byte) string: r"...", r#"..."#, br##"..."##.
                let mut j = i;
                if b[j] == b'b' {
                    out.push(b' ');
                    j += 1;
                }
                out.push(b' '); // the 'r'
                j += 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    out.push(b' ');
                    j += 1;
                }
                out.push(b' '); // opening quote
                j += 1;
                'raw: while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            out.extend(std::iter::repeat_n(b' ', hashes + 1));
                            j += hashes + 1;
                            break 'raw;
                        }
                    }
                    out.push(if b[j] == b'\n' { b'\n' } else { b' ' });
                    j += 1;
                }
                i = j;
            }
            b'"' | b'b' if b[i] == b'"' || (i + 1 < b.len() && b[i + 1] == b'"') => {
                // Plain or byte string with escapes.
                if b[i] == b'b' {
                    out.push(b' ');
                    i += 1;
                }
                out.push(b' '); // opening quote
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals; 'ident
                // (no closing quote right after one symbol) is a lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < b.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    // Lifetime: keep the tick (harmless) and move on.
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking only substitutes ASCII spaces")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Byte spans (inclusive start line, exclusive end line, 1-based) of
/// `#[cfg(test)]`-gated regions: from the attribute to the closing brace of
/// the item it gates. Lints skip findings inside them — test code may
/// legitimately compare floats exactly or build events unguarded.
pub fn test_region_lines(masked: &str, raw: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let raw_lines: Vec<&str> = raw.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    for (idx, line) in raw_lines.iter().enumerate() {
        if !line.trim_start().starts_with("#[cfg(test)]") {
            continue;
        }
        // Find the gated item's opening brace, then match depth to close.
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = raw_lines.len();
        for (j, m) in masked_lines.iter().enumerate().skip(idx) {
            for c in m.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                end = j + 1;
                break;
            }
        }
        regions.push((idx + 1, end + 1));
    }
    regions
}

/// The 1-based line spans of every `fn` item in the masked source, innermost
/// usable via [`enclosing_fn`]. Each entry is `(header_line, end_line)`.
pub fn fn_spans(masked: &str) -> Vec<(usize, usize)> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut spans = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = find_fn_keyword(line) else {
            continue;
        };
        // Walk from the keyword to the body's opening brace, then match.
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = lines.len();
        let mut col = pos;
        'outer: for (j, l) in lines.iter().enumerate().skip(idx) {
            let chars: Vec<char> = l.chars().collect();
            while col < chars.len() {
                match chars[col] {
                    ';' if !opened => {
                        // Trait method declaration without a body.
                        end = j + 1;
                        break 'outer;
                    }
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j + 1;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
                col += 1;
            }
            col = 0;
        }
        spans.push((idx + 1, end));
    }
    spans
}

/// The innermost `fn` span containing `line` (1-based), if any.
pub fn enclosing_fn(spans: &[(usize, usize)], line: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .filter(|&&(s, e)| s <= line && line <= e)
        .max_by_key(|&&(s, _)| s)
        .copied()
}

fn find_fn_keyword(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut i = 0;
    while let Some(off) = line[i..].find("fn") {
        let at = i + off;
        let before_ok = at == 0 || !b[at - 1].is_ascii_alphanumeric() && b[at - 1] != b'_';
        let after = at + 2;
        let after_ok = after >= b.len() || (!b[after].is_ascii_alphanumeric() && b[after] != b'_');
        if before_ok && after_ok {
            return Some(at);
        }
        i = at + 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"HashMap\"; // HashMap\nlet b = 1; /* == 0.0 */";
        let m = mask_non_code(src);
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("=="));
        assert!(m.contains("let a ="));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner == */ still */ let x = r#\"std::time\"#;";
        let m = mask_non_code(src);
        assert!(!m.contains("=="));
        assert!(!m.contains("std::time"));
        assert!(m.contains("let x ="));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '='; let d = '\\n'; }";
        let m = mask_non_code(src);
        assert!(!m.contains("'='"));
        assert!(m.contains("fn f"));
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let src = "fn a() {\n  body();\n}\nfn b() { x(); }\n";
        let m = mask_non_code(src);
        let spans = fn_spans(&m);
        assert_eq!(spans, vec![(1, 3), (4, 4)]);
        assert_eq!(enclosing_fn(&spans, 2), Some((1, 3)));
        assert_eq!(enclosing_fn(&spans, 4), Some((4, 4)));
    }

    #[test]
    fn test_regions_cover_gated_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { let x = 0.0 == y; }\n}\n";
        let m = mask_non_code(src);
        let regions = test_region_lines(&m, src);
        assert_eq!(regions.len(), 1);
        let (s, e) = regions[0];
        assert!(s <= 4 && 4 < e, "line 4 must be inside {regions:?}");
    }
}
