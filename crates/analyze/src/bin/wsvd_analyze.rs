//! Standalone static-analysis driver.
//!
//! ```text
//! wsvd-analyze [lint [--root DIR]]       run the project-invariant lints
//! wsvd-analyze certify [--out FILE]      build + summarize the certificate
//!              [--max-blocks N]          store for every device model
//! wsvd-analyze self-test                 planted-bug probes (lints must
//!                                        fire on fixtures, bad plans must
//!                                        be rejected, broken interleaving
//!                                        models must violate)
//! wsvd-analyze                           all of the above, workspace root
//! ```
//!
//! Exit status is non-zero on any finding, rejection failure, or sweep
//! false-rejection — CI runs this as the `Static analysis` step.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wsvd_analyze::interleave::{
    self, cas_blind_store, cas_commit, cas_load, cas_no_lost_update, ring_newest_wins,
    ring_publish_guarded, ring_publish_unguarded, ring_reserve, CasLocal, CasState, RingLocal,
    RingState,
};
use wsvd_analyze::lint::{lint_source, lint_workspace};
use wsvd_analyze::plan_space::{
    certify_all_devices, planted_rejections, sweep_reachability, DEFAULT_MAX_BLOCKS,
};
use wsvd_gpu_sim::V100;

fn workspace_root() -> PathBuf {
    // crates/analyze -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/analyze")
        .to_path_buf()
}

fn run_lint(root: &Path) -> Result<(), String> {
    let findings = lint_workspace(root).map_err(|e| format!("lint walk failed: {e}"))?;
    if findings.is_empty() {
        println!("lint: workspace clean");
        Ok(())
    } else {
        for f in &findings {
            println!("{f}");
        }
        Err(format!("lint: {} finding(s)", findings.len()))
    }
}

fn run_certify(out: Option<&Path>, max_blocks: usize) -> Result<(), String> {
    let store = certify_all_devices(max_blocks).map_err(|e| format!("certification: {e}"))?;
    let sweep = sweep_reachability(&store).map_err(|e| format!("false rejection: {e}"))?;
    println!(
        "certify: {} certificates across {} devices; atlas proves {} schedule(s) up to {} \
         blocks ({} pairs)",
        store.len(),
        store.devices.len(),
        store.atlas.proofs,
        store.atlas.max_blocks,
        store.atlas.pairs,
    );
    println!(
        "certify: sweep accepted {} selections over {} workloads ({} distinct families)",
        sweep.selections,
        sweep.workloads,
        sweep.selected_families.len(),
    );
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&store).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("certify: store written to {}", path.display());
    }
    Ok(())
}

fn run_self_test(root: &Path) -> Result<(), String> {
    // 1. Planted plans must be statically rejected.
    let (smem, sched) = planted_rejections(&V100);
    println!("self-test: oversized-smem plan rejected ({smem})");
    println!("self-test: conflicting-schedule plan rejected ({sched})");

    // 2. Every lint must fire on its fixture.
    let fixtures = [
        ("sink-guard", "sink_guard.rs", "crates/core/src/fixture.rs"),
        (
            "no-wall-clock",
            "wall_clock.rs",
            "crates/core/src/fixture.rs",
        ),
        ("no-hashmap", "hashmap.rs", "crates/metrics/src/fixture.rs"),
        ("no-float-eq", "float_eq.rs", "crates/core/src/wcycle.rs"),
        (
            "no-partial-cmp-sort",
            "partial_cmp.rs",
            "crates/core/src/fixture.rs",
        ),
    ];
    for (rule, file, pretend) in fixtures {
        let path = root.join("crates/analyze/fixtures").join(file);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let findings = lint_source(pretend, &src);
        if findings.iter().any(|f| f.rule == rule) {
            println!("self-test: lint '{rule}' fires on {file}");
        } else {
            return Err(format!(
                "self-test: lint '{rule}' did NOT fire on its fixture {file}"
            ));
        }
    }

    // 3. The interleaving checker must reject the broken protocol variants.
    let guarded: &[interleave::Op<RingState, RingLocal>] = &[ring_reserve, ring_publish_guarded];
    let blind: &[interleave::Op<RingState, RingLocal>] = &[ring_reserve, ring_publish_unguarded];
    let locals = [RingLocal::default(), RingLocal::default()];
    if !interleave::explore(
        &RingState::default(),
        &locals,
        [guarded, guarded],
        &ring_newest_wins,
    )
    .holds()
    {
        return Err("self-test: guarded ring publish violated newest-wins".into());
    }
    if interleave::explore(
        &RingState::default(),
        &locals,
        [blind, blind],
        &ring_newest_wins,
    )
    .holds()
    {
        return Err("self-test: blind ring publish went unnoticed (vacuous checker)".into());
    }
    let cas: &[interleave::Op<CasState, CasLocal>] = &[cas_load, cas_commit];
    let racy: &[interleave::Op<CasState, CasLocal>] = &[cas_load, cas_blind_store];
    let deltas = [
        CasLocal {
            observed: 0,
            delta: 3,
        },
        CasLocal {
            observed: 0,
            delta: 5,
        },
    ];
    if !interleave::explore(
        &CasState::default(),
        &deltas,
        [cas, cas],
        &cas_no_lost_update,
    )
    .holds()
    {
        return Err("self-test: CAS loop lost an update".into());
    }
    if interleave::explore(
        &CasState::default(),
        &deltas,
        [racy, racy],
        &cas_no_lost_update,
    )
    .holds()
    {
        return Err("self-test: load-add-store race went unnoticed (vacuous checker)".into());
    }
    println!("self-test: interleaving checker sound on both protocols, catches both planted bugs");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = workspace_root();
    let mut out: Option<PathBuf> = None;
    let mut max_blocks = DEFAULT_MAX_BLOCKS;
    let mut cmd: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--max-blocks" if i + 1 < args.len() => {
                max_blocks = match args[i + 1].parse() {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("wsvd-analyze: bad --max-blocks: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            c if cmd.is_none() && !c.starts_with('-') => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => {
                eprintln!("wsvd-analyze: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match cmd.as_deref() {
        Some("lint") => run_lint(&root),
        Some("certify") => run_certify(out.as_deref(), max_blocks),
        Some("self-test") => run_self_test(&root),
        None => run_lint(&root)
            .and_then(|()| run_certify(out.as_deref(), max_blocks))
            .and_then(|()| run_self_test(&root)),
        Some(other) => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wsvd-analyze: {e}");
            ExitCode::FAILURE
        }
    }
}
