//! `wsvd-analyze`: ahead-of-time static analysis for the W-cycle SVD
//! workspace.
//!
//! Two prongs (DESIGN.md §12):
//!
//! 1. **Plan-space certification** ([`plan_space`]): enumerate every plan
//!    family the auto-tuner or a pinned experiment configuration can reach,
//!    and statically prove each one safe on every device model — shared-
//!    memory fit (including the Observation-2 terminal boundary), schedule
//!    conflict-freedom and exactly-once coverage up to a proven block
//!    count, thread-shape and barrier discipline. The result is a
//!    [`wsvd_core::certify::CertificateStore`] the runtime consults at
//!    plan-selection time: a certified plan skips per-launch
//!    re-verification, an uncertified plan is a hard error *before* any
//!    launch.
//! 2. **Project-invariant lints** ([`lint`]): source-level checks for the
//!    invariants this workspace's design notes promise but the compiler
//!    cannot see — sink producers guarded by `is_enabled()`, no wall-clock
//!    reads in simulated-time paths, no `HashMap` iteration in
//!    registry/exposition code, no float `==` in convergence logic.
//!
//! [`interleave`] adds an exhaustive two-thread interleaving checker for
//! the workspace's two lock-free protocols, and [`lex`] the comment/string
//! masking scanner the lints run on (no `syn` in the vendored set).

pub mod interleave;
pub mod lex;
pub mod lint;
pub mod plan_space;
