//! Exhaustive two-thread interleaving exploration.
//!
//! The workspace has three lock-free protocols whose correctness arguments
//! live in comments: the flight-recorder ring's reserve-then-publish
//! protocol (`wsvd_health::FlightRecorder::record` — "never overwrite newer
//! with older"), the cluster model's CAS accumulation loop
//! (`wsvd_gpu_sim::cluster` — "a plain load-add-store here loses updates"),
//! and the elastic work deque's claim protocol
//! (`wsvd_gpu_sim::cluster::queue::RankQueue::claim` — a single `fetch_add`
//! hands each chunk to exactly one puller, whether owner or thief).
//! `loom` is not vendorable, so this module implements the small fragment
//! needed to *prove* those comments: each protocol is modelled as two
//! threads of atomic steps over a shared state, and a depth-first search
//! enumerates **every** interleaving, checking an invariant at each
//! terminal state.
//!
//! A step is a plain function `fn(&mut S, &mut L) -> Step`; `Step::Goto`
//! expresses CAS-retry back-edges. Exploration clones the state at each
//! branch point, so models stay small (the real ones here have ≤ 4 steps
//! per thread and < 100 distinct executions).
//!
//! The checker itself is validated by *planted-bug* models: the same
//! protocols with the guard removed (unconditional publish; non-atomic
//! load-add-store) must exhibit a violating interleaving. A checker that
//! passes those models would be vacuous, and the tests fail.

/// Outcome of executing one atomic step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Fall through to the next op in the thread's program.
    Next,
    /// Jump to op `0`-based index — the CAS-retry back-edge.
    Goto(usize),
    /// Terminate this thread early.
    Done,
}

/// One atomic step: observes/mutates the shared state `S` and this
/// thread's local state `L` indivisibly.
pub type Op<S, L> = fn(&mut S, &mut L) -> Step;

/// Result of exploring every interleaving of a two-thread model.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Number of distinct complete executions visited.
    pub executions: usize,
    /// Invariant violations, one message per failing execution, each
    /// prefixed with the schedule (`"ABBA: ..."`) that produced it.
    pub violations: Vec<String>,
}

impl Exploration {
    /// True when every interleaving satisfied the invariant.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-execution step budget: a `Goto` loop that cannot be broken by the
/// other thread's progress would otherwise run the DFS forever. Real CAS
/// loops here retry at most once per competing thread, so 16 is generous;
/// exceeding it is reported as a violation (a livelock is a bug too). The
/// budget also bounds the whole search at `2^16` paths in the worst case —
/// combined with [`MAX_VIOLATIONS`] pruning, a livelocking model terminates
/// promptly instead of enumerating every doomed schedule.
const STEP_BUDGET: usize = 16;

/// Exploration stops growing the violation list past this point: the model
/// is already proven broken, and a pathological model (e.g. a pure spin
/// loop) would otherwise produce exponentially many failing schedules.
const MAX_VIOLATIONS: usize = 64;

/// A terminal-state invariant: checked once per complete interleaving.
pub type Invariant<S, L> = dyn Fn(&S, &[L; 2]) -> Result<(), String>;

/// Runs every interleaving of the two thread programs from `shared` /
/// `locals`, checking `invariant` at each terminal state. The search is
/// exhaustive: every total order of the threads' atomic steps (including
/// retry re-executions) is visited exactly once.
pub fn explore<S: Clone, L: Clone>(
    shared: &S,
    locals: &[L; 2],
    programs: [&[Op<S, L>]; 2],
    invariant: &Invariant<S, L>,
) -> Exploration {
    let mut out = Exploration {
        executions: 0,
        violations: Vec::new(),
    };
    let mut schedule = String::new();
    dfs(
        shared,
        locals,
        programs,
        [0, 0],
        0,
        &mut schedule,
        invariant,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs<S: Clone, L: Clone>(
    shared: &S,
    locals: &[L; 2],
    programs: [&[Op<S, L>]; 2],
    pc: [usize; 2],
    steps: usize,
    schedule: &mut String,
    invariant: &Invariant<S, L>,
    out: &mut Exploration,
) {
    if out.violations.len() >= MAX_VIOLATIONS {
        return;
    }
    let runnable: Vec<usize> = (0..2).filter(|&t| pc[t] < programs[t].len()).collect();
    if runnable.is_empty() {
        out.executions += 1;
        if let Err(msg) = invariant(shared, locals) {
            out.violations.push(format!("{schedule}: {msg}"));
        }
        return;
    }
    if steps >= STEP_BUDGET {
        out.violations
            .push(format!("{schedule}: step budget exhausted (livelock?)"));
        return;
    }
    for t in runnable {
        let mut s = shared.clone();
        let mut l = locals.clone();
        let step = (programs[t][pc[t]])(&mut s, &mut l[t]);
        let mut next_pc = pc;
        next_pc[t] = match step {
            Step::Next => pc[t] + 1,
            Step::Goto(i) => i,
            Step::Done => programs[t].len(),
        };
        schedule.push(if t == 0 { 'A' } else { 'B' });
        dfs(
            &s,
            &l,
            programs,
            next_pc,
            steps + 1,
            schedule,
            invariant,
            out,
        );
        schedule.pop();
    }
}

// ---------------------------------------------------------------------------
// Model: flight-recorder ring publish protocol.
// ---------------------------------------------------------------------------

/// Shared state of the ring model: the reservation cursor and one slot
/// (capacity 1 forces both writers onto the same slot — the only case
/// where the publish guard matters).
#[derive(Clone, Debug, Default)]
pub struct RingState {
    /// The `fetch_add` cursor.
    pub cursor: u64,
    /// The single slot's published sequence number.
    pub slot: Option<u64>,
}

/// Writer-local state: the reserved sequence number.
#[derive(Clone, Debug, Default)]
pub struct RingLocal {
    /// Sequence reserved by this writer's `fetch_add`.
    pub seq: Option<u64>,
}

/// Step 1 of `FlightRecorder::record`: `cursor.fetch_add(1)` — atomic.
pub fn ring_reserve(s: &mut RingState, l: &mut RingLocal) -> Step {
    l.seq = Some(s.cursor);
    s.cursor += 1;
    Step::Next
}

/// Step 2 of `FlightRecorder::record`: publish under the slot lock with the
/// newest-wins guard `old.seq <= seq`.
pub fn ring_publish_guarded(s: &mut RingState, l: &mut RingLocal) -> Step {
    let seq = l.seq.expect("reserve ran first");
    if s.slot.is_none_or(|old| old <= seq) {
        s.slot = Some(seq);
    }
    Step::Next
}

/// The planted bug: publish without the guard (blind overwrite). Some
/// interleaving must then leave a lapped writer's *older* event in the slot.
pub fn ring_publish_unguarded(s: &mut RingState, l: &mut RingLocal) -> Step {
    s.slot = Some(l.seq.expect("reserve ran first"));
    Step::Next
}

/// Invariant of the ring model: once both writers finish, the slot holds
/// the newest sequence that mapped to it.
pub fn ring_newest_wins(s: &RingState, _l: &[RingLocal; 2]) -> Result<(), String> {
    if s.slot == Some(1) {
        Ok(())
    } else {
        Err(format!("slot holds {:?}, expected Some(1)", s.slot))
    }
}

// ---------------------------------------------------------------------------
// Model: cluster sync CAS accumulation.
// ---------------------------------------------------------------------------

/// Shared accumulator of the cluster model (`sync_seconds` as integer
/// "seconds" so the invariant is exact).
#[derive(Clone, Debug, Default)]
pub struct CasState {
    /// The accumulated value.
    pub total: u64,
}

/// Shard-local state: the observed snapshot for the pending CAS.
#[derive(Clone, Debug, Default)]
pub struct CasLocal {
    /// Value read by the last `load`.
    pub observed: u64,
    /// This shard's contribution.
    pub delta: u64,
}

/// Load half of the `fetch_update` loop: observe the current total.
pub fn cas_load(s: &mut CasState, l: &mut CasLocal) -> Step {
    l.observed = s.total;
    Step::Next
}

/// Compare-and-swap: commit `observed + delta` iff nothing changed since
/// the load, else retry from the load (the `fetch_update` back-edge).
pub fn cas_commit(s: &mut CasState, l: &mut CasLocal) -> Step {
    if s.total == l.observed {
        s.total = l.observed + l.delta;
        Step::Next
    } else {
        Step::Goto(0)
    }
}

/// The planted bug: blind store (`load-add-store` without the compare).
pub fn cas_blind_store(s: &mut CasState, l: &mut CasLocal) -> Step {
    s.total = l.observed + l.delta;
    Step::Next
}

/// Invariant of the accumulation model: no update is lost.
pub fn cas_no_lost_update(s: &CasState, l: &[CasLocal; 2]) -> Result<(), String> {
    let want = l[0].delta + l[1].delta;
    if s.total == want {
        Ok(())
    } else {
        Err(format!("total {} != sum of deltas {want}", s.total))
    }
}

// ---------------------------------------------------------------------------
// Model: elastic work-deque claim (owner pop vs thief steal).
// ---------------------------------------------------------------------------

/// Shared state of one rank's work deque: the claim cursor over `len`
/// queued chunks. Owner `pop_own` and a thief's `steal` race on the same
/// cursor — the protocol's whole correctness story is that the claim is one
/// `fetch_add`.
#[derive(Clone, Debug, Default)]
pub struct DequeState {
    /// The `fetch_add` claim cursor (`RankQueue::next`).
    pub next: usize,
    /// Number of chunks in the queue.
    pub len: usize,
}

/// Puller-local state: the cursor snapshot of a split (lossy) claim, and
/// the chunks this puller won.
#[derive(Clone, Debug, Default)]
pub struct DequeLocal {
    /// Cursor value read by the lossy variant's separate load.
    pub observed: Option<usize>,
    /// Chunk indices claimed by this puller.
    pub claimed: Vec<usize>,
}

/// The real protocol, one atomic step: `next.fetch_add(1)` and the bounds
/// check happen indivisibly, exactly like `RankQueue::claim`.
pub fn deque_claim_atomic(s: &mut DequeState, l: &mut DequeLocal) -> Step {
    let i = s.next;
    s.next += 1;
    if i < s.len {
        l.claimed.push(i);
    }
    Step::Next
}

/// First half of the planted lossy variant: read the cursor...
pub fn deque_load_cursor(s: &mut DequeState, l: &mut DequeLocal) -> Step {
    l.observed = Some(s.next);
    Step::Next
}

/// ...second half: bump it and take the chunk at the *stale* snapshot. Two
/// pullers that both loaded the same cursor claim the same chunk — and the
/// chunk behind it is silently never run.
pub fn deque_store_claim_lossy(s: &mut DequeState, l: &mut DequeLocal) -> Step {
    let i = l.observed.take().expect("load ran first");
    s.next = i + 1;
    if i < s.len {
        l.claimed.push(i);
    }
    Step::Next
}

/// Invariant of the deque model: every queued chunk is claimed by exactly
/// one puller — no double execution, no lost work.
pub fn deque_exactly_once(s: &DequeState, l: &[DequeLocal; 2]) -> Result<(), String> {
    let mut seen = vec![0usize; s.len];
    for local in l {
        for &c in &local.claimed {
            seen[c] += 1;
        }
    }
    for (i, &n) in seen.iter().enumerate() {
        if n != 1 {
            return Err(format!("chunk {i} claimed {n} times (want exactly once)"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_publish_protocol_is_newest_wins_under_all_interleavings() {
        let prog: &[Op<RingState, RingLocal>] = &[ring_reserve, ring_publish_guarded];
        let r = explore(
            &RingState::default(),
            &[RingLocal::default(), RingLocal::default()],
            [prog, prog],
            &ring_newest_wins,
        );
        // 4 steps, 2 threads: C(4,2) = 6 interleavings, all clean.
        assert_eq!(r.executions, 6);
        assert!(r.holds(), "{:?}", r.violations);
    }

    #[test]
    fn unguarded_publish_exhibits_the_lapped_overwrite() {
        let prog: &[Op<RingState, RingLocal>] = &[ring_reserve, ring_publish_unguarded];
        let r = explore(
            &RingState::default(),
            &[RingLocal::default(), RingLocal::default()],
            [prog, prog],
            &ring_newest_wins,
        );
        assert_eq!(r.executions, 6);
        assert!(
            !r.holds(),
            "checker is vacuous: blind overwrite went unnoticed"
        );
        // The violating schedule is the lap: B reserves+publishes seq 1,
        // then parked writer A publishes its older seq 0 last.
        assert!(
            r.violations.iter().any(|v| v.contains("Some(0)")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn cas_loop_never_loses_an_update() {
        let prog: &[Op<CasState, CasLocal>] = &[cas_load, cas_commit];
        let locals = [
            CasLocal {
                observed: 0,
                delta: 3,
            },
            CasLocal {
                observed: 0,
                delta: 5,
            },
        ];
        let r = explore(
            &CasState::default(),
            &locals,
            [prog, prog],
            &cas_no_lost_update,
        );
        assert!(r.holds(), "{:?}", r.violations);
        // Retries add executions beyond the interleaving count of the
        // straight-line programs.
        assert!(r.executions >= 6, "{r:?}");
    }

    #[test]
    fn blind_store_loses_an_update_somewhere() {
        let prog: &[Op<CasState, CasLocal>] = &[cas_load, cas_blind_store];
        let locals = [
            CasLocal {
                observed: 0,
                delta: 3,
            },
            CasLocal {
                observed: 0,
                delta: 5,
            },
        ];
        let r = explore(
            &CasState::default(),
            &locals,
            [prog, prog],
            &cas_no_lost_update,
        );
        assert_eq!(r.executions, 6);
        assert!(!r.holds(), "checker is vacuous: lost update went unnoticed");
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("total 3") || v.contains("total 5")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn deque_claim_is_exactly_once_under_all_interleavings() {
        // Two chunks, two pullers (owner + thief), each trying two claims:
        // overshooting claims past `len` are the empty-pop no-op.
        let prog: &[Op<DequeState, DequeLocal>] = &[deque_claim_atomic, deque_claim_atomic];
        let r = explore(
            &DequeState { next: 0, len: 2 },
            &[DequeLocal::default(), DequeLocal::default()],
            [prog, prog],
            &deque_exactly_once,
        );
        assert_eq!(r.executions, 6);
        assert!(r.holds(), "{:?}", r.violations);
    }

    #[test]
    fn split_claim_double_runs_a_chunk_somewhere() {
        let prog: &[Op<DequeState, DequeLocal>] = &[
            deque_load_cursor,
            deque_store_claim_lossy,
            deque_load_cursor,
            deque_store_claim_lossy,
        ];
        let r = explore(
            &DequeState { next: 0, len: 2 },
            &[DequeLocal::default(), DequeLocal::default()],
            [prog, prog],
            &deque_exactly_once,
        );
        assert!(
            !r.holds(),
            "checker is vacuous: the torn claim went unnoticed"
        );
        // The signature failure: two pullers loaded the same cursor value,
        // so some chunk runs twice (and the one behind it is lost).
        assert!(
            r.violations.iter().any(|v| v.contains("claimed 2 times")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn livelock_is_reported_not_hung() {
        fn spin(_s: &mut CasState, _l: &mut CasLocal) -> Step {
            Step::Goto(0)
        }
        let prog: &[Op<CasState, CasLocal>] = &[spin];
        let r = explore(
            &CasState::default(),
            &[CasLocal::default(), CasLocal::default()],
            [prog, prog],
            &cas_no_lost_update,
        );
        assert!(!r.holds());
        assert!(
            r.violations.iter().any(|v| v.contains("livelock")),
            "{:?}",
            r.violations
        );
    }
}
