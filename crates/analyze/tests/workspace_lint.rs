//! The two halves of the lint acceptance criteria: every lint fires on its
//! planted-violation fixture, and the real workspace is lint-clean.

use std::path::{Path, PathBuf};

use wsvd_analyze::lint::{lint_source, lint_workspace, Finding, RULES};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/analyze")
        .to_path_buf()
}

fn lint_fixture(file: &str, pretend: &str) -> Vec<Finding> {
    let path = workspace_root().join("crates/analyze/fixtures").join(file);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    lint_source(pretend, &src)
}

#[test]
fn sink_guard_fires_on_fixture() {
    let f = lint_fixture("sink_guard.rs", "crates/core/src/fixture.rs");
    // Exactly the unguarded producer, not the guarded one below it.
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "sink-guard");
    assert!(f[0].message.contains("trace.instant"), "{}", f[0].message);
}

#[test]
fn wall_clock_fires_on_fixture() {
    let f = lint_fixture("wall_clock.rs", "crates/core/src/fixture.rs");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-wall-clock");
}

#[test]
fn hashmap_fires_on_fixture() {
    let f = lint_fixture("hashmap.rs", "crates/metrics/src/fixture.rs");
    assert_eq!(f.len(), 2, "use + field: {f:?}");
    assert!(f.iter().all(|x| x.rule == "no-hashmap"));
}

#[test]
fn float_eq_fires_on_fixture() {
    let f = lint_fixture("float_eq.rs", "crates/core/src/wcycle.rs");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-float-eq");
}

#[test]
fn every_rule_has_a_firing_fixture() {
    let fired: Vec<&str> = [
        lint_fixture("sink_guard.rs", "crates/core/src/fixture.rs"),
        lint_fixture("wall_clock.rs", "crates/core/src/fixture.rs"),
        lint_fixture("hashmap.rs", "crates/metrics/src/fixture.rs"),
        lint_fixture("float_eq.rs", "crates/core/src/wcycle.rs"),
        lint_fixture("partial_cmp.rs", "crates/core/src/fixture.rs"),
    ]
    .iter()
    .flat_map(|fs| fs.iter().map(|f| f.rule))
    .collect();
    for rule in RULES {
        assert!(fired.contains(&rule), "no fixture exercises `{rule}`");
    }
}

#[test]
fn partial_cmp_fires_on_fixture() {
    let f = lint_fixture("partial_cmp.rs", "crates/core/src/fixture.rs");
    // Exactly the planted sort comparator, not the pragma'd partial order.
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-partial-cmp-sort");
}

#[test]
fn workspace_is_lint_clean() {
    let findings = lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
