//! # wsvd-apps
//!
//! Applications of the batched W-cycle SVD:
//! * [`assimilation`] — the ocean-model data-assimilation analysis step of
//!   §V-F (per-grid-point SVDs of mixed sizes, vs the MAGMA-like baseline);
//! * [`compression`] — low-rank image compression over batched tiles (the
//!   motivating workload of the paper's introduction);
//! * [`filters`] — separable approximation of CNN filter banks (the
//!   paper's ref. \[3\]).

#![warn(missing_docs)]

pub mod assimilation;
pub mod compression;
pub mod filters;

pub use assimilation::{
    analysis_chunks, analysis_fingerprint, analysis_resume_elastic_with, analysis_step,
    analysis_step_distributed, analysis_step_distributed_with, analysis_step_elastic_with,
    analysis_step_with, AnalysisResult, AssimilationProblem, ElasticAnalysis, SvdEngine,
};
pub use compression::{compress, synthetic_image, tile_image, Compressed};
pub use filters::{separate_filter_bank, synthetic_filter_bank, SeparableFilter};
