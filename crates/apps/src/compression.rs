//! Low-rank image compression via batched tile SVDs.
//!
//! The paper's introduction motivates batched small-matrix SVD with image
//! compression/reconstruction: keep the leading singular values of each
//! image tile. This module tiles an image, runs one batched W-cycle SVD
//! over all tiles, truncates each to rank `k`, and reassembles.

use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_linalg::Matrix;

/// A grayscale image stored as a matrix (row = y, col = x).
pub type Image = Matrix;

/// Generates a synthetic test image with smooth structure plus texture —
/// compressible, but not trivially rank-1.
pub fn synthetic_image(height: usize, width: usize) -> Image {
    Matrix::from_fn(height, width, |y, x| {
        let (fy, fx) = (y as f64 / height as f64, x as f64 / width as f64);
        ((fy * 6.0).sin() * (fx * 4.0).cos())
            + 0.3 * ((fy * 40.0).sin() * (fx * 35.0).sin())
            + 0.1 * (((x * 7 + y * 13) % 17) as f64 / 17.0)
    })
}

/// Splits an image into `tile x tile` tiles (ragged edges kept).
pub fn tile_image(img: &Image, tile: usize) -> Vec<(usize, usize, Matrix)> {
    let mut tiles = Vec::new();
    let mut y = 0;
    while y < img.rows() {
        let h = tile.min(img.rows() - y);
        let mut x = 0;
        while x < img.cols() {
            let w = tile.min(img.cols() - x);
            tiles.push((y, x, img.sub_matrix(y, x, h, w)));
            x += w;
        }
        y += h;
    }
    tiles
}

/// Result of compressing an image.
#[derive(Debug)]
pub struct Compressed {
    /// The reconstructed image.
    pub image: Image,
    /// Relative Frobenius reconstruction error.
    pub relative_error: f64,
    /// Stored floats after truncation / original floats.
    pub storage_ratio: f64,
}

/// Compresses by keeping rank `k` per tile (batched SVD over all tiles).
pub fn compress(gpu: &Gpu, img: &Image, tile: usize, k: usize) -> Result<Compressed, KernelError> {
    let tiles = tile_image(img, tile);
    let mats: Vec<Matrix> = tiles.iter().map(|(_, _, t)| t.clone()).collect();
    let out = wcycle_svd(gpu, &mats, &WCycleConfig::default())?;

    let mut rebuilt = Matrix::zeros(img.rows(), img.cols());
    let mut stored = 0usize;
    for ((y, x, t), svd) in tiles.iter().zip(&out.results) {
        let r = k.min(svd.sigma.len());
        let v = svd.v.as_ref().expect("want_v default on");
        let mut approx = Matrix::zeros(t.rows(), t.cols());
        for rank in 0..r {
            let s = svd.sigma[rank];
            for col in 0..t.cols() {
                let vv = v[(col, rank)] * s;
                for row in 0..t.rows() {
                    approx[(row, col)] += svd.u[(row, rank)] * vv;
                }
            }
        }
        stored += r * (t.rows() + t.cols() + 1);
        rebuilt.set_sub_matrix(*y, *x, &approx);
    }
    let relative_error = rebuilt.sub(img).fro_norm() / img.fro_norm().max(1e-300);
    let storage_ratio = stored as f64 / img.len() as f64;
    Ok(Compressed {
        image: rebuilt,
        relative_error,
        storage_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;

    #[test]
    fn tiling_covers_image_exactly() {
        let img = synthetic_image(50, 70);
        let tiles = tile_image(&img, 32);
        let area: usize = tiles.iter().map(|(_, _, t)| t.len()).sum();
        assert_eq!(area, 50 * 70);
        assert_eq!(tiles.len(), 2 * 3);
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let gpu = Gpu::new(V100);
        let img = synthetic_image(32, 32);
        let c = compress(&gpu, &img, 16, 16).unwrap();
        assert!(c.relative_error < 1e-9, "err = {}", c.relative_error);
    }

    #[test]
    fn more_rank_means_less_error() {
        let gpu = Gpu::new(V100);
        let img = synthetic_image(48, 48);
        let lo = compress(&gpu, &img, 24, 2).unwrap();
        let hi = compress(&gpu, &img, 24, 8).unwrap();
        assert!(hi.relative_error < lo.relative_error);
        assert!(hi.storage_ratio > lo.storage_ratio);
    }

    #[test]
    fn smooth_image_compresses_well() {
        let gpu = Gpu::new(V100);
        let img = synthetic_image(64, 64);
        let c = compress(&gpu, &img, 32, 6).unwrap();
        assert!(c.relative_error < 0.2, "err = {}", c.relative_error);
        assert!(c.storage_ratio < 0.8);
    }
}
