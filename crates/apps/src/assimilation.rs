//! Data assimilation on an oceanic model grid (§V-F).
//!
//! On a 0.1°-resolution latitude–longitude mesh, the analysis step of an
//! ensemble smoother computes, at every grid point, a local update weight
//! matrix from the SVD of the scaled observation-anomaly matrix
//! `S = (HZ) / sqrt(N-1)`: with `S = U Σ V^T`, the Kalman-style weights are
//! `W = V (Σ^2 + I)^{-1} Σ U^T d` (observation innovations `d`). The matrix
//! size per point varies with local observation density from `50x50` to
//! `1024x1024` — exactly the mixed-size batched-SVD workload the W-cycle is
//! built for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsvd_baselines::magma_batched_svd;
use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::Matrix;

/// Which SVD engine the analysis step uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvdEngine {
    /// The W-cycle batched SVD.
    WCycle,
    /// The MAGMA-like serial two-stage SVD.
    Magma,
}

/// A synthetic ocean-grid assimilation problem.
#[derive(Debug)]
pub struct AssimilationProblem {
    /// Per-grid-point observation-anomaly matrices `S_k`.
    pub anomalies: Vec<Matrix>,
    /// Per-grid-point innovation vectors `d_k` (length = rows of `S_k`).
    pub innovations: Vec<Vec<f64>>,
}

impl AssimilationProblem {
    /// Builds a grid of `points` local problems with matrix sizes drawn
    /// log-uniformly in `[min_dim, max_dim]` (the paper's 50..1024 range).
    pub fn generate(points: usize, min_dim: usize, max_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut anomalies = Vec::with_capacity(points);
        let mut innovations = Vec::with_capacity(points);
        for k in 0..points {
            let u: f64 = rng.gen();
            let dim = (min_dim as f64 * (max_dim as f64 / min_dim as f64).powf(u)).round() as usize;
            // Ensemble size fixed at ~dim (square local problems dominate).
            let s = random_uniform(dim, dim, seed.wrapping_add(17 + k as u64));
            let d: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            anomalies.push(s);
            innovations.push(d);
        }
        Self {
            anomalies,
            innovations,
        }
    }
}

/// The analysis result: per-grid-point weight vectors `w_k = V g` where
/// `g_i = σ_i / (σ_i^2 + 1) · (U^T d)_i`.
#[derive(Debug)]
pub struct AnalysisResult {
    /// Per-point weights in ensemble space.
    pub weights: Vec<Vec<f64>>,
    /// Simulated seconds spent in the SVDs.
    pub svd_seconds: f64,
}

impl AnalysisResult {
    /// A scale-invariant checksum for cross-engine comparison (the weights
    /// are sign-ambiguous per singular vector, so compare norms).
    pub fn weight_norms(&self) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| w.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect()
    }
}

/// Runs the analysis step with the chosen SVD engine under the process-wide
/// default [`WCycleConfig`].
pub fn analysis_step(
    gpu: &Gpu,
    problem: &AssimilationProblem,
    engine: SvdEngine,
) -> Result<AnalysisResult, KernelError> {
    analysis_step_with(gpu, problem, engine, &WCycleConfig::default())
}

/// Runs the analysis step with an explicit [`WCycleConfig`] (only consulted
/// by the W-cycle engine). This is how experiments opt a single run into the
/// fused launch pipeline without flipping the process-wide default.
pub fn analysis_step_with(
    gpu: &Gpu,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> Result<AnalysisResult, KernelError> {
    let before = gpu.elapsed_seconds();
    // (u, sigma, v) triplets per point.
    let factors: Vec<(Matrix, Vec<f64>, Matrix)> = match engine {
        SvdEngine::WCycle => {
            let out = wcycle_svd(gpu, &problem.anomalies, cfg)?;
            out.results
                .into_iter()
                .map(|r| {
                    let v = r.v.expect("want_v on by default");
                    (r.u, r.sigma, v)
                })
                .collect()
        }
        SvdEngine::Magma => magma_batched_svd(gpu, &problem.anomalies)?
            .into_iter()
            .map(|r| {
                let v = r.v.expect("magma always returns V");
                (r.u, r.sigma, v)
            })
            .collect(),
    };
    let svd_seconds = gpu.elapsed_seconds() - before;

    let weights = factors
        .iter()
        .zip(&problem.innovations)
        .map(|((u, sigma, v), d)| {
            // g = diag(σ/(σ²+1)) U^T d; w = V g (leading r columns of V).
            let r = sigma.len();
            let mut g = vec![0.0; r];
            for i in 0..r {
                let mut ud = 0.0;
                for (row, &dv) in d.iter().enumerate() {
                    ud += u[(row, i)] * dv;
                }
                g[i] = sigma[i] / (sigma[i] * sigma[i] + 1.0) * ud;
            }
            let n = v.rows();
            let mut w = vec![0.0; n];
            for (i, &gi) in g.iter().enumerate() {
                for (row, wr) in w.iter_mut().enumerate() {
                    *wr += v[(row, i)] * gi;
                }
            }
            w
        })
        .collect();

    Ok(AnalysisResult {
        weights,
        svd_seconds,
    })
}

/// Distributed analysis step over a multi-GPU cluster (the artifact's
/// `test_Cluster` branch): grid points are sharded across devices, each
/// device runs the batched SVD analysis on its shard, and the weights are
/// gathered with one collective.
pub fn analysis_step_distributed(
    cluster: &wsvd_gpu_sim::GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
) -> Result<AnalysisResult, KernelError> {
    analysis_step_distributed_with(cluster, problem, engine, &WCycleConfig::default())
}

/// Distributed analysis step with an explicit [`WCycleConfig`] for the
/// per-shard SVDs (see [`analysis_step_with`]).
pub fn analysis_step_distributed_with(
    cluster: &wsvd_gpu_sim::GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> Result<AnalysisResult, KernelError> {
    let indices: Vec<usize> = (0..problem.anomalies.len()).collect();
    let shards = cluster.shard(&indices);
    let n_ranks = shards.len();
    let alive: Vec<usize> = (0..n_ranks).filter(|&r| cluster.is_alive(r)).collect();
    if alive.is_empty() {
        return Err(KernelError::Other(
            "analysis step: every cluster rank is dead; no shard can run".to_string(),
        ));
    }
    // A dead rank's shard fails over to the next alive rank (wrapping), so a
    // killed device costs throughput but never the analysis. With nothing
    // killed this is the identity mapping and the schedule is unchanged.
    let mut work: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
    for (rank, shard) in shards.iter().enumerate() {
        let target = if cluster.is_alive(rank) {
            rank
        } else {
            *alive.iter().find(|&&a| a > rank).unwrap_or(&alive[0])
        };
        work[target].extend(shard.iter().copied());
    }
    let mut weights: Vec<Option<Vec<f64>>> = vec![None; problem.anomalies.len()];
    let mut gathered_bytes = 0u64;
    for (rank, shard) in work.iter().enumerate() {
        if shard.is_empty() {
            continue;
        }
        let local = AssimilationProblem {
            anomalies: shard
                .iter()
                .map(|&i| problem.anomalies[i].clone())
                .collect(),
            innovations: shard
                .iter()
                .map(|&i| problem.innovations[i].clone())
                .collect(),
        };
        let local_result = analysis_step_with(cluster.gpu(rank), &local, engine, cfg)?;
        for (&i, w) in shard.iter().zip(local_result.weights) {
            gathered_bytes += (w.len() * 8) as u64;
            weights[i] = Some(w);
        }
    }
    cluster.sync(gathered_bytes); // gather of the analysis weights
    Ok(AnalysisResult {
        weights: weights
            .into_iter()
            .map(|w| w.expect("all points assigned"))
            .collect(),
        svd_seconds: cluster.elapsed_seconds(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{GpuCluster, V100, VEGA20};

    #[test]
    fn problem_generation_sizes_in_range() {
        let p = AssimilationProblem::generate(12, 10, 40, 3);
        assert_eq!(p.anomalies.len(), 12);
        for (s, d) in p.anomalies.iter().zip(&p.innovations) {
            assert!(s.rows() >= 10 && s.rows() <= 40);
            assert_eq!(d.len(), s.rows());
        }
    }

    #[test]
    fn engines_agree_on_weights() {
        let gpu = Gpu::new(V100);
        let p = AssimilationProblem::generate(6, 12, 40, 7);
        let w = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        let m = analysis_step(&gpu, &p, SvdEngine::Magma).unwrap();
        for (a, b) in w.weight_norms().iter().zip(m.weight_norms()) {
            assert!((a - b).abs() < 1e-7 * (1.0 + b), "{a} vs {b}");
        }
    }

    #[test]
    fn wcycle_is_faster_than_magma_on_the_grid() {
        // The Fig-14(b) shape at reduced scale.
        let p = AssimilationProblem::generate(10, 16, 64, 11);
        let gpu_w = Gpu::new(V100);
        let w = analysis_step(&gpu_w, &p, SvdEngine::WCycle).unwrap();
        let gpu_m = Gpu::new(V100);
        let m = analysis_step(&gpu_m, &p, SvdEngine::Magma).unwrap();
        assert!(
            w.svd_seconds < m.svd_seconds,
            "wcycle {} !< magma {}",
            w.svd_seconds,
            m.svd_seconds
        );
    }

    #[test]
    fn distributed_matches_single_device_weights() {
        let p = AssimilationProblem::generate(9, 12, 32, 17);
        let gpu = Gpu::new(VEGA20);
        let single = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        let cluster = GpuCluster::new(VEGA20, 3);
        let dist = analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap();
        for (a, b) in dist.weights.iter().zip(&single.weights) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn more_gpus_cut_the_makespan() {
        // The serial MAGMA engine is compute-bound per grid point, so the
        // data-parallel decomposition divides its time almost perfectly.
        // (The W-cycle at this reduced grid is launch-bound: sharding cannot
        // help until a device is saturated, so we only require no loss.)
        let p = AssimilationProblem::generate(16, 16, 48, 19);
        let time = |gpus: usize, engine| {
            let cluster = GpuCluster::new(VEGA20, gpus);
            analysis_step_distributed(&cluster, &p, engine)
                .unwrap()
                .svd_seconds
        };
        let (m1, m4) = (time(1, SvdEngine::Magma), time(4, SvdEngine::Magma));
        assert!(
            m4 < 0.5 * m1,
            "4 GPUs ({m4}) should scale MAGMA well vs 1 ({m1})"
        );
        let (w1, w4) = (time(1, SvdEngine::WCycle), time(4, SvdEngine::WCycle));
        assert!(w4 <= w1 + 1e-4, "sharding must never hurt: {w4} vs {w1}");
    }

    #[test]
    fn fused_distributed_analysis_is_bit_identical_and_no_slower() {
        // Sizes above the shared-memory fit so each level issues several
        // kernels — the regime where a fused graph has launches to coalesce.
        let p = AssimilationProblem::generate(8, 40, 120, 23);
        let serial_cfg = WCycleConfig {
            fused: false,
            ..WCycleConfig::default()
        };
        let fused_cfg = WCycleConfig {
            fused: true,
            ..WCycleConfig::default()
        };
        let run = |cfg: &WCycleConfig| {
            let cluster = GpuCluster::new(VEGA20, 4);
            let res = analysis_step_distributed_with(&cluster, &p, SvdEngine::WCycle, cfg).unwrap();
            let share: f64 = (0..4)
                .map(|r| cluster.gpu(r).timeline().overhead_seconds)
                .sum();
            (res, share)
        };
        let (serial, serial_overhead) = run(&serial_cfg);
        let (fused, fused_overhead) = run(&fused_cfg);
        for (a, b) in serial.weights.iter().zip(&fused.weights) {
            assert_eq!(a, b, "fusing must not perturb the analysis weights");
        }
        assert!(fused_overhead < serial_overhead);
        assert!(fused.svd_seconds <= serial.svd_seconds);
    }

    #[test]
    fn killed_rank_fails_over_and_fires_one_incident() {
        let p = AssimilationProblem::generate(9, 12, 32, 17);
        let gpu = Gpu::new(VEGA20);
        let single = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();

        let sink = wsvd_health::HealthSink::enabled();
        sink.set_context("assimilation-failover", 17);
        let mut cluster = GpuCluster::new(VEGA20, 3);
        cluster.set_health(sink.clone());
        cluster.kill(1);
        let dist = analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap();
        // The surviving ranks cover every grid point with identical numerics.
        for (a, b) in dist.weights.iter().zip(&single.weights) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
        let incidents = sink.incidents();
        assert_eq!(incidents.len(), 1, "exactly one shard-dead incident");
        assert_eq!(incidents[0].kind, "shard-dead");
    }

    #[test]
    fn all_ranks_dead_is_an_error() {
        let p = AssimilationProblem::generate(4, 10, 20, 5);
        let cluster = GpuCluster::new(VEGA20, 2);
        cluster.kill(0);
        cluster.kill(1);
        let err = analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap_err();
        assert!(format!("{err}").contains("every cluster rank is dead"));
    }

    #[test]
    fn weights_are_finite_and_bounded() {
        let gpu = Gpu::new(V100);
        let p = AssimilationProblem::generate(4, 10, 24, 13);
        let res = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        for w in &res.weights {
            assert!(w.iter().all(|x| x.is_finite()));
        }
        // σ/(σ²+1) <= 1/2, so ||w|| <= ||d||/2 * cond-ish bound; just check
        // nothing exploded.
        for (w, d) in res.weight_norms().iter().zip(&p.innovations) {
            let dn = d.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(*w <= dn, "weight norm {w} exceeds innovation norm {dn}");
        }
    }
}
