//! Data assimilation on an oceanic model grid (§V-F).
//!
//! On a 0.1°-resolution latitude–longitude mesh, the analysis step of an
//! ensemble smoother computes, at every grid point, a local update weight
//! matrix from the SVD of the scaled observation-anomaly matrix
//! `S = (HZ) / sqrt(N-1)`: with `S = U Σ V^T`, the Kalman-style weights are
//! `W = V (Σ^2 + I)^{-1} Σ U^T d` (observation innovations `d`). The matrix
//! size per point varies with local observation density from `50x50` to
//! `1024x1024` — exactly the mixed-size batched-SVD workload the W-cycle is
//! built for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsvd_baselines::magma_batched_svd;
use wsvd_core::{wcycle_svd, ChunkPayload, RunCheckpoint, WCycleConfig, WCycleStats};
use wsvd_gpu_sim::cluster::{
    resume_elastic, run_elastic, size_class_chunks, ElasticConfig, GpuCluster, RecoveryCounters,
    TaskChunk,
};
use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::Matrix;

/// Which SVD engine the analysis step uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvdEngine {
    /// The W-cycle batched SVD.
    WCycle,
    /// The MAGMA-like serial two-stage SVD.
    Magma,
}

/// A synthetic ocean-grid assimilation problem.
#[derive(Debug)]
pub struct AssimilationProblem {
    /// Per-grid-point observation-anomaly matrices `S_k`.
    pub anomalies: Vec<Matrix>,
    /// Per-grid-point innovation vectors `d_k` (length = rows of `S_k`).
    pub innovations: Vec<Vec<f64>>,
}

impl AssimilationProblem {
    /// Builds a grid of `points` local problems with matrix sizes drawn
    /// log-uniformly in `[min_dim, max_dim]` (the paper's 50..1024 range).
    pub fn generate(points: usize, min_dim: usize, max_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut anomalies = Vec::with_capacity(points);
        let mut innovations = Vec::with_capacity(points);
        for k in 0..points {
            let u: f64 = rng.gen();
            let dim = (min_dim as f64 * (max_dim as f64 / min_dim as f64).powf(u)).round() as usize;
            // Ensemble size fixed at ~dim (square local problems dominate).
            let s = random_uniform(dim, dim, seed.wrapping_add(17 + k as u64));
            let d: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            anomalies.push(s);
            innovations.push(d);
        }
        Self {
            anomalies,
            innovations,
        }
    }
}

/// The per-point matrix dimensions of the §V-F mixture **without**
/// materializing the matrices: replays the exact RNG stream of
/// [`AssimilationProblem::generate`] (one log-uniform dimension draw plus
/// `dim` innovation draws per point), so the serve layer can build arrival
/// traces over the same observation-density mixture the assimilation
/// experiments solve, at zero allocation cost.
pub fn mixture_dims(points: usize, min_dim: usize, max_dim: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..points)
        .map(|_| {
            let u: f64 = rng.gen();
            let dim = (min_dim as f64 * (max_dim as f64 / min_dim as f64).powf(u)).round() as usize;
            for _ in 0..dim {
                let _: f64 = rng.gen_range(-1.0..1.0);
            }
            dim
        })
        .collect()
}

/// The analysis result: per-grid-point weight vectors `w_k = V g` where
/// `g_i = σ_i / (σ_i^2 + 1) · (U^T d)_i`.
#[derive(Debug)]
pub struct AnalysisResult {
    /// Per-point weights in ensemble space.
    pub weights: Vec<Vec<f64>>,
    /// Simulated seconds spent in the SVDs.
    pub svd_seconds: f64,
}

impl AnalysisResult {
    /// A scale-invariant checksum for cross-engine comparison (the weights
    /// are sign-ambiguous per singular vector, so compare norms).
    pub fn weight_norms(&self) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| w.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect()
    }
}

/// Runs the analysis step with the chosen SVD engine under the process-wide
/// default [`WCycleConfig`].
pub fn analysis_step(
    gpu: &Gpu,
    problem: &AssimilationProblem,
    engine: SvdEngine,
) -> Result<AnalysisResult, KernelError> {
    analysis_step_with(gpu, problem, engine, &WCycleConfig::default())
}

/// Runs the analysis step with an explicit [`WCycleConfig`] (only consulted
/// by the W-cycle engine). This is how experiments opt a single run into the
/// fused launch pipeline without flipping the process-wide default.
pub fn analysis_step_with(
    gpu: &Gpu,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> Result<AnalysisResult, KernelError> {
    let before = gpu.elapsed_seconds();
    let (factors, _) = factor_batch(gpu, &problem.anomalies, engine, cfg)?;
    let svd_seconds = gpu.elapsed_seconds() - before;
    Ok(AnalysisResult {
        weights: weights_from_factors(&factors, &problem.innovations),
        svd_seconds,
    })
}

/// `(U, Σ, V)` per grid point.
type SvdFactors = Vec<(Matrix, Vec<f64>, Matrix)>;

/// Runs the chosen SVD engine over one batch of anomalies, returning
/// `(U, Σ, V)` per point plus the W-cycle's run stats (the Magma engine
/// records none).
fn factor_batch(
    gpu: &Gpu,
    anomalies: &[Matrix],
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> Result<(SvdFactors, Option<WCycleStats>), KernelError> {
    match engine {
        SvdEngine::WCycle => {
            let out = wcycle_svd(gpu, anomalies, cfg)?;
            let factors = out
                .results
                .into_iter()
                .map(|r| {
                    let v = r.v.expect("want_v on by default");
                    (r.u, r.sigma, v)
                })
                .collect();
            Ok((factors, Some(out.stats)))
        }
        SvdEngine::Magma => Ok((
            magma_batched_svd(gpu, anomalies)?
                .into_iter()
                .map(|r| {
                    let v = r.v.expect("magma always returns V");
                    (r.u, r.sigma, v)
                })
                .collect(),
            None,
        )),
    }
}

/// The Kalman-style weight update: per point, `g = diag(σ/(σ²+1)) U^T d`
/// and `w = V g` over the leading `r` columns of `V`.
fn weights_from_factors(
    factors: &[(Matrix, Vec<f64>, Matrix)],
    innovations: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    factors
        .iter()
        .zip(innovations)
        .map(|((u, sigma, v), d)| {
            let r = sigma.len();
            let mut g = vec![0.0; r];
            for i in 0..r {
                let mut ud = 0.0;
                for (row, &dv) in d.iter().enumerate() {
                    ud += u[(row, i)] * dv;
                }
                g[i] = sigma[i] / (sigma[i] * sigma[i] + 1.0) * ud;
            }
            let n = v.rows();
            let mut w = vec![0.0; n];
            for (i, &gi) in g.iter().enumerate() {
                for (row, wr) in w.iter_mut().enumerate() {
                    *wr += v[(row, i)] * gi;
                }
            }
            w
        })
        .collect()
}

/// Distributed analysis step over a multi-GPU cluster (the artifact's
/// `test_Cluster` branch): grid points are sharded across devices, each
/// device runs the batched SVD analysis on its shard, and the weights are
/// gathered with one collective.
pub fn analysis_step_distributed(
    cluster: &wsvd_gpu_sim::GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
) -> Result<AnalysisResult, KernelError> {
    analysis_step_distributed_with(cluster, problem, engine, &WCycleConfig::default())
}

/// Distributed analysis step with an explicit [`WCycleConfig`] for the
/// per-shard SVDs (see [`analysis_step_with`]).
///
/// With every rank alive this is the pinned static path: contiguous shards,
/// one batched SVD per rank, one gather — bit-identical to every release
/// since the cluster model landed. When a rank is already dead, the dead
/// rank's shard is *requeued* through the elastic executor and absorbed by
/// the surviving ranks (replacing the old identity failover, which
/// reassigned whole shards to a fixed neighbour).
pub fn analysis_step_distributed_with(
    cluster: &GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> Result<AnalysisResult, KernelError> {
    let indices: Vec<usize> = (0..problem.anomalies.len()).collect();
    let shards = cluster.shard(&indices);
    let n_ranks = shards.len();
    let alive: Vec<usize> = (0..n_ranks).filter(|&r| cluster.is_alive(r)).collect();
    if alive.is_empty() {
        return Err(KernelError::Other(
            "analysis step: every cluster rank is dead; no shard can run".to_string(),
        ));
    }
    if alive.len() < n_ranks {
        // Shards become chunks (one per rank, preserving the static batch
        // compositions); the elastic executor drains the dead ranks' queues
        // into the requeue pool and the survivors absorb them.
        let chunks: Vec<TaskChunk> = shards
            .iter()
            .enumerate()
            .map(|(rank, shard)| TaskChunk {
                id: rank,
                indices: shard.clone(),
                size_class: usize::MAX,
                home_rank: rank,
                retries: 0,
                requeued: false,
            })
            .filter(|c| !c.indices.is_empty())
            .collect();
        let run = run_elastic(cluster, chunks, &ElasticConfig::default(), |gpu, chunk| {
            run_analysis_chunk(gpu, problem, chunk, engine, cfg)
        })?;
        let (weights, gathered_bytes) = scatter_weights(problem.anomalies.len(), &run.completed);
        cluster.sync(gathered_bytes);
        return Ok(AnalysisResult {
            weights,
            svd_seconds: cluster.elapsed_seconds(),
        });
    }
    let mut weights: Vec<Option<Vec<f64>>> = vec![None; problem.anomalies.len()];
    let mut gathered_bytes = 0u64;
    for (rank, shard) in shards.iter().enumerate() {
        if shard.is_empty() {
            continue;
        }
        let local = AssimilationProblem {
            anomalies: shard
                .iter()
                .map(|&i| problem.anomalies[i].clone())
                .collect(),
            innovations: shard
                .iter()
                .map(|&i| problem.innovations[i].clone())
                .collect(),
        };
        let local_result = analysis_step_with(cluster.gpu(rank), &local, engine, cfg)?;
        for (&i, w) in shard.iter().zip(local_result.weights) {
            gathered_bytes += (w.len() * 8) as u64;
            weights[i] = Some(w);
        }
    }
    cluster.sync(gathered_bytes); // gather of the analysis weights
    Ok(AnalysisResult {
        weights: weights
            .into_iter()
            .map(|w| w.expect("all points assigned"))
            .collect(),
        svd_seconds: cluster.elapsed_seconds(),
    })
}

/// Executes one elastic chunk: a batched SVD analysis over the chunk's grid
/// points on one device, with the per-sweep convergence trajectory recorded
/// into the payload so a checkpoint carries the partially converged W-cycle
/// state.
fn run_analysis_chunk(
    gpu: &Gpu,
    problem: &AssimilationProblem,
    chunk: &TaskChunk,
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> Result<ChunkPayload, KernelError> {
    let anomalies: Vec<Matrix> = chunk
        .indices
        .iter()
        .map(|&i| problem.anomalies[i].clone())
        .collect();
    let innovations: Vec<Vec<f64>> = chunk
        .indices
        .iter()
        .map(|&i| problem.innovations[i].clone())
        .collect();
    let chunk_cfg = WCycleConfig {
        record_convergence: true,
        ..cfg.clone()
    };
    let (factors, stats) = factor_batch(gpu, &anomalies, engine, &chunk_cfg)?;
    let weights = weights_from_factors(&factors, &innovations);
    let (convergence, widths) = stats
        .map(|s| (s.convergence, s.widths_per_level))
        .unwrap_or_default();
    Ok(ChunkPayload {
        weights,
        convergence,
        widths,
    })
}

/// Scatters completed chunk payloads back to grid-point order, returning the
/// full weight table and the gather size in bytes.
fn scatter_weights(points: usize, completed: &[(TaskChunk, ChunkPayload)]) -> (Vec<Vec<f64>>, u64) {
    let mut weights: Vec<Option<Vec<f64>>> = vec![None; points];
    let mut bytes = 0u64;
    for (chunk, payload) in completed {
        for (&i, w) in chunk.indices.iter().zip(&payload.weights) {
            bytes += (w.len() * 8) as u64;
            weights[i] = Some(w.clone());
        }
    }
    (
        weights
            .into_iter()
            .map(|w| w.expect("all points assigned"))
            .collect(),
        bytes,
    )
}

/// Outcome of an elastic analysis run: the analysis itself plus the
/// recovery accounting and, when the run was stopped early, a serializable
/// checkpoint to resume from.
#[derive(Debug)]
pub struct ElasticAnalysis {
    /// The gathered analysis (empty weights when a checkpoint was taken —
    /// the run is incomplete by construction).
    pub result: AnalysisResult,
    /// Stolen / requeued / retried chunk accounting.
    pub counters: RecoveryCounters,
    /// `Some` when the run stopped at the configured checkpoint.
    pub checkpoint: Option<RunCheckpoint>,
}

/// The size-class chunking of an assimilation problem for `ranks` devices:
/// Table-VI caps, chunk target `max(1, points / (4 * ranks))` so each rank
/// sees several chunks (the granularity stealing and requeue work at).
pub fn analysis_chunks(problem: &AssimilationProblem, ranks: usize) -> Vec<TaskChunk> {
    let caps: Vec<usize> = wsvd_datasets::TABLE_VI.iter().map(|g| g.cap).collect();
    let dims: Vec<(usize, usize)> = problem
        .anomalies
        .iter()
        .map(|a| (a.rows(), a.cols()))
        .collect();
    let target = (dims.len() / (4 * ranks)).max(1);
    size_class_chunks(&dims, &caps, ranks, target)
}

/// The configuration fingerprint stamped into (and verified against) an
/// elastic checkpoint: resuming under a different cluster shape, chunking
/// or engine would break the bit-identity contract, so
/// [`RunCheckpoint::thaw`] refuses it.
pub fn analysis_fingerprint(
    cluster: &GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
) -> String {
    let engine = match engine {
        SvdEngine::WCycle => "wcycle",
        SvdEngine::Magma => "magma",
    };
    format!(
        "{}x{}/points{}/{engine}/tol{:e}/fused{}",
        cluster.gpu(0).device().name,
        cluster.len(),
        problem.anomalies.len(),
        cfg.tol,
        cfg.fused,
    )
}

/// Elastic distributed analysis: size-class chunks on the shared work
/// deque, pull/steal scheduling, faults from `ecfg`, and chunk-granular
/// checkpointing. `workload_seed` is stamped into the checkpoint for seed
/// provenance.
pub fn analysis_step_elastic_with(
    cluster: &GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
    ecfg: &ElasticConfig,
    workload_seed: u64,
) -> Result<ElasticAnalysis, KernelError> {
    let chunks = analysis_chunks(problem, cluster.len());
    let run = run_elastic(cluster, chunks, ecfg, |gpu, chunk| {
        run_analysis_chunk(gpu, problem, chunk, engine, cfg)
    })?;
    finish_elastic(cluster, problem, engine, cfg, run, workload_seed)
}

/// Resumes an elastic analysis from a serialized checkpoint on a **fresh**
/// cluster. The checkpoint's fingerprint must match the current
/// configuration; the resumed run is bit-identical to one that was never
/// interrupted.
pub fn analysis_resume_elastic_with(
    cluster: &GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
    ecfg: &ElasticConfig,
    checkpoint: RunCheckpoint,
) -> Result<ElasticAnalysis, KernelError> {
    let workload_seed = checkpoint.workload_seed;
    let fingerprint = analysis_fingerprint(cluster, problem, engine, cfg);
    let restored = checkpoint.thaw(&fingerprint).map_err(KernelError::Other)?;
    let run = resume_elastic(cluster, restored, ecfg, |gpu, chunk| {
        run_analysis_chunk(gpu, problem, chunk, engine, cfg)
    })?;
    finish_elastic(cluster, problem, engine, cfg, run, workload_seed)
}

fn finish_elastic(
    cluster: &GpuCluster,
    problem: &AssimilationProblem,
    engine: SvdEngine,
    cfg: &WCycleConfig,
    run: wsvd_gpu_sim::cluster::ElasticRun<ChunkPayload>,
    workload_seed: u64,
) -> Result<ElasticAnalysis, KernelError> {
    let mut counters = run.counters;
    if let Some(ckpt) = run.checkpoint {
        // Interrupted on purpose: serialize, no gather (the run is not
        // done), report how big the checkpoint is.
        let fingerprint = analysis_fingerprint(cluster, problem, engine, cfg);
        let frozen = RunCheckpoint::freeze("ext-cluster", workload_seed, &fingerprint, &ckpt);
        let bytes = frozen.to_json().len() as u64;
        counters.checkpoint_bytes = bytes;
        let health = cluster.health();
        if health.is_enabled() {
            health.checkpoint_taken(bytes, cluster.elapsed_seconds());
        }
        return Ok(ElasticAnalysis {
            result: AnalysisResult {
                weights: Vec::new(),
                svd_seconds: cluster.elapsed_seconds(),
            },
            counters,
            checkpoint: Some(frozen),
        });
    }
    let (weights, gathered_bytes) = scatter_weights(problem.anomalies.len(), &run.completed);
    cluster.sync(gathered_bytes);
    Ok(ElasticAnalysis {
        result: AnalysisResult {
            weights,
            svd_seconds: cluster.elapsed_seconds(),
        },
        counters,
        checkpoint: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{GpuCluster, V100, VEGA20};

    #[test]
    fn problem_generation_sizes_in_range() {
        let p = AssimilationProblem::generate(12, 10, 40, 3);
        assert_eq!(p.anomalies.len(), 12);
        for (s, d) in p.anomalies.iter().zip(&p.innovations) {
            assert!(s.rows() >= 10 && s.rows() <= 40);
            assert_eq!(d.len(), s.rows());
        }
    }

    #[test]
    fn mixture_dims_match_the_generated_problem() {
        let dims = mixture_dims(12, 10, 40, 3);
        let p = AssimilationProblem::generate(12, 10, 40, 3);
        let got: Vec<usize> = p.anomalies.iter().map(|a| a.rows()).collect();
        assert_eq!(dims, got);
    }

    #[test]
    fn engines_agree_on_weights() {
        let gpu = Gpu::new(V100);
        let p = AssimilationProblem::generate(6, 12, 40, 7);
        let w = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        let m = analysis_step(&gpu, &p, SvdEngine::Magma).unwrap();
        for (a, b) in w.weight_norms().iter().zip(m.weight_norms()) {
            assert!((a - b).abs() < 1e-7 * (1.0 + b), "{a} vs {b}");
        }
    }

    #[test]
    fn wcycle_is_faster_than_magma_on_the_grid() {
        // The Fig-14(b) shape at reduced scale.
        let p = AssimilationProblem::generate(10, 16, 64, 11);
        let gpu_w = Gpu::new(V100);
        let w = analysis_step(&gpu_w, &p, SvdEngine::WCycle).unwrap();
        let gpu_m = Gpu::new(V100);
        let m = analysis_step(&gpu_m, &p, SvdEngine::Magma).unwrap();
        assert!(
            w.svd_seconds < m.svd_seconds,
            "wcycle {} !< magma {}",
            w.svd_seconds,
            m.svd_seconds
        );
    }

    #[test]
    fn distributed_matches_single_device_weights() {
        let p = AssimilationProblem::generate(9, 12, 32, 17);
        let gpu = Gpu::new(VEGA20);
        let single = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        let cluster = GpuCluster::new(VEGA20, 3);
        let dist = analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap();
        for (a, b) in dist.weights.iter().zip(&single.weights) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn more_gpus_cut_the_makespan() {
        // The serial MAGMA engine is compute-bound per grid point, so the
        // data-parallel decomposition divides its time almost perfectly.
        // (The W-cycle at this reduced grid is launch-bound: sharding cannot
        // help until a device is saturated, so we only require no loss.)
        let p = AssimilationProblem::generate(16, 16, 48, 19);
        let time = |gpus: usize, engine| {
            let cluster = GpuCluster::new(VEGA20, gpus);
            analysis_step_distributed(&cluster, &p, engine)
                .unwrap()
                .svd_seconds
        };
        let (m1, m4) = (time(1, SvdEngine::Magma), time(4, SvdEngine::Magma));
        assert!(
            m4 < 0.5 * m1,
            "4 GPUs ({m4}) should scale MAGMA well vs 1 ({m1})"
        );
        let (w1, w4) = (time(1, SvdEngine::WCycle), time(4, SvdEngine::WCycle));
        assert!(w4 <= w1 + 1e-4, "sharding must never hurt: {w4} vs {w1}");
    }

    #[test]
    fn fused_distributed_analysis_is_bit_identical_and_no_slower() {
        // Sizes above the shared-memory fit so each level issues several
        // kernels — the regime where a fused graph has launches to coalesce.
        let p = AssimilationProblem::generate(8, 40, 120, 23);
        let serial_cfg = WCycleConfig {
            fused: false,
            ..WCycleConfig::default()
        };
        let fused_cfg = WCycleConfig {
            fused: true,
            ..WCycleConfig::default()
        };
        let run = |cfg: &WCycleConfig| {
            let cluster = GpuCluster::new(VEGA20, 4);
            let res = analysis_step_distributed_with(&cluster, &p, SvdEngine::WCycle, cfg).unwrap();
            let share: f64 = (0..4)
                .map(|r| cluster.gpu(r).timeline().overhead_seconds)
                .sum();
            (res, share)
        };
        let (serial, serial_overhead) = run(&serial_cfg);
        let (fused, fused_overhead) = run(&fused_cfg);
        for (a, b) in serial.weights.iter().zip(&fused.weights) {
            assert_eq!(a, b, "fusing must not perturb the analysis weights");
        }
        assert!(fused_overhead < serial_overhead);
        assert!(fused.svd_seconds <= serial.svd_seconds);
    }

    #[test]
    fn killed_rank_fails_over_and_fires_one_incident() {
        let p = AssimilationProblem::generate(9, 12, 32, 17);
        let gpu = Gpu::new(VEGA20);
        let single = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();

        let sink = wsvd_health::HealthSink::enabled();
        sink.set_context("assimilation-failover", 17);
        let mut cluster = GpuCluster::new(VEGA20, 3);
        cluster.set_health(sink.clone());
        cluster.kill(1);
        let dist = analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap();
        // The surviving ranks cover every grid point with identical numerics.
        for (a, b) in dist.weights.iter().zip(&single.weights) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
        let incidents = sink.incidents();
        assert_eq!(incidents.len(), 1, "exactly one shard-dead incident");
        assert_eq!(incidents[0].kind, "shard-dead");
        assert!(
            incidents[0].recovered,
            "the requeued shard completed, so the incident must read recovered"
        );
    }

    #[test]
    fn elastic_analysis_matches_single_device_weights() {
        let p = AssimilationProblem::generate(9, 12, 32, 17);
        let gpu = Gpu::new(VEGA20);
        let single = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        let cluster = GpuCluster::new(VEGA20, 3);
        let run = analysis_step_elastic_with(
            &cluster,
            &p,
            SvdEngine::WCycle,
            &WCycleConfig::default(),
            &ElasticConfig::default(),
            17,
        )
        .unwrap();
        assert!(run.checkpoint.is_none());
        // Idle ranks may steal even in a fault-free run, but nothing should
        // have died, requeued, or been lost.
        assert_eq!(run.counters.requeued_chunks, 0);
        assert_eq!(run.counters.retried_chunks, 0);
        assert_eq!(run.counters.unrecovered_chunks, 0);
        assert_eq!(run.counters.killed_ranks, 0);
        for (a, b) in run.result.weights.iter().zip(&single.weights) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn elastic_checkpoint_resume_is_bit_identical_to_straight_through() {
        use wsvd_gpu_sim::cluster::FaultPlan;
        let p = AssimilationProblem::generate(12, 12, 32, 29);
        let faults = FaultPlan::none().straggler(1, 2.0);
        let straight = {
            let cluster = GpuCluster::new(VEGA20, 3);
            let ecfg = ElasticConfig {
                faults: faults.clone(),
                checkpoint_after: None,
            };
            analysis_step_elastic_with(
                &cluster,
                &p,
                SvdEngine::WCycle,
                &WCycleConfig::default(),
                &ecfg,
                29,
            )
            .unwrap()
        };
        // Interrupt after 3 chunks, serialize the checkpoint through JSON,
        // and resume on a *fresh* cluster.
        let ckpt = {
            let cluster = GpuCluster::new(VEGA20, 3);
            let ecfg = ElasticConfig {
                faults: faults.clone(),
                checkpoint_after: Some(3),
            };
            let run = analysis_step_elastic_with(
                &cluster,
                &p,
                SvdEngine::WCycle,
                &WCycleConfig::default(),
                &ecfg,
                29,
            )
            .unwrap();
            assert!(
                run.result.weights.is_empty(),
                "interrupted run has no gather"
            );
            assert!(run.counters.checkpoint_bytes > 0);
            run.checkpoint.expect("checkpoint requested")
        };
        let rehydrated = RunCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(rehydrated.workload_seed, 29);
        let cluster = GpuCluster::new(VEGA20, 3);
        let ecfg = ElasticConfig {
            faults,
            checkpoint_after: None,
        };
        let resumed = analysis_resume_elastic_with(
            &cluster,
            &p,
            SvdEngine::WCycle,
            &WCycleConfig::default(),
            &ecfg,
            rehydrated,
        )
        .unwrap();
        assert_eq!(straight.result.weights, resumed.result.weights);
        assert_eq!(
            straight.result.svd_seconds.to_bits(),
            resumed.result.svd_seconds.to_bits(),
            "simulated clock must replay exactly"
        );
        assert_eq!(straight.counters, resumed.counters);
    }

    #[test]
    fn resume_under_a_different_configuration_is_refused() {
        let p = AssimilationProblem::generate(8, 12, 24, 31);
        let cluster = GpuCluster::new(VEGA20, 2);
        let ecfg = ElasticConfig {
            faults: wsvd_gpu_sim::cluster::FaultPlan::none(),
            checkpoint_after: Some(2),
        };
        let run = analysis_step_elastic_with(
            &cluster,
            &p,
            SvdEngine::WCycle,
            &WCycleConfig::default(),
            &ecfg,
            31,
        )
        .unwrap();
        let ckpt = run.checkpoint.unwrap();
        // Resuming on a 3-rank cluster changes the fingerprint: refused.
        let other = GpuCluster::new(VEGA20, 3);
        let err = analysis_resume_elastic_with(
            &other,
            &p,
            SvdEngine::WCycle,
            &WCycleConfig::default(),
            &ElasticConfig::default(),
            ckpt,
        )
        .unwrap_err();
        assert!(format!("{err}").contains("fingerprint"));
    }

    #[test]
    fn all_ranks_dead_is_an_error() {
        let p = AssimilationProblem::generate(4, 10, 20, 5);
        let cluster = GpuCluster::new(VEGA20, 2);
        cluster.kill(0);
        cluster.kill(1);
        let err = analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap_err();
        assert!(format!("{err}").contains("every cluster rank is dead"));
    }

    #[test]
    fn weights_are_finite_and_bounded() {
        let gpu = Gpu::new(V100);
        let p = AssimilationProblem::generate(4, 10, 24, 13);
        let res = analysis_step(&gpu, &p, SvdEngine::WCycle).unwrap();
        for w in &res.weights {
            assert!(w.iter().all(|x| x.is_finite()));
        }
        // σ/(σ²+1) <= 1/2, so ||w|| <= ||d||/2 * cond-ish bound; just check
        // nothing exploded.
        for (w, d) in res.weight_norms().iter().zip(&p.innovations) {
            let dn = d.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(*w <= dn, "weight norm {w} exceeds innovation norm {dn}");
        }
    }
}
