//! Separable approximation of convolution filter banks (the paper's
//! ref. \[3\]: *Improving performance of convolutional neural networks by
//! separable filters*).
//!
//! A 2D convolution with a `k x k` filter `F` costs `k^2` MACs per pixel; if
//! `F ≈ σ u v^T` (rank 1), the convolution splits into a column pass and a
//! row pass costing `2k`. The quality of the split is governed by the
//! filter's spectrum — obtained here with one **batched** W-cycle SVD over
//! the whole filter bank (hundreds of tiny matrices, the regime
//! `gesvdjBatched` targets).

use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_linalg::Matrix;

/// A rank-`r` separable approximation of one filter.
#[derive(Debug)]
pub struct SeparableFilter {
    /// Column factors scaled by the singular values (`k x r`).
    pub col_passes: Matrix,
    /// Row factors (`k x r`).
    pub row_passes: Matrix,
    /// Fraction of the filter's energy captured (`Σ_{i<r} σ_i² / Σ σ_i²`).
    pub energy_captured: f64,
}

impl SeparableFilter {
    /// Reconstructs the approximated filter.
    pub fn reconstruct(&self) -> Matrix {
        wsvd_linalg::matmul(&self.col_passes, &self.row_passes.transpose())
    }

    /// MACs per output pixel of the separable form vs the dense filter.
    pub fn mac_ratio(&self, k: usize) -> f64 {
        let r = self.col_passes.cols();
        (2 * k * r) as f64 / (k * k) as f64
    }
}

/// Approximates every filter of a bank by its leading `rank` singular
/// triplets, using one batched SVD for the whole bank.
pub fn separate_filter_bank(
    gpu: &Gpu,
    filters: &[Matrix],
    rank: usize,
) -> Result<Vec<SeparableFilter>, KernelError> {
    let out = wcycle_svd(gpu, filters, &WCycleConfig::default())?;
    Ok(filters
        .iter()
        .zip(out.results)
        .map(|(f, svd)| {
            let r = rank.min(svd.sigma.len()).max(1);
            let total: f64 = svd.sigma.iter().map(|s| s * s).sum();
            let kept: f64 = svd.sigma.iter().take(r).map(|s| s * s).sum();
            let v = svd.v.expect("want_v on by default");
            let mut col_passes = Matrix::zeros(f.rows(), r);
            let mut row_passes = Matrix::zeros(f.cols(), r);
            for j in 0..r {
                let s = svd.sigma[j];
                for i in 0..f.rows() {
                    col_passes[(i, j)] = svd.u[(i, j)] * s;
                }
                for i in 0..f.cols() {
                    row_passes[(i, j)] = v[(i, j)];
                }
            }
            SeparableFilter {
                col_passes,
                row_passes,
                energy_captured: if total > 0.0 { kept / total } else { 1.0 },
            }
        })
        .collect())
}

/// A synthetic "trained" filter bank: oriented edge/texture filters with a
/// dominant direction (realistic CNN first-layer statistics — mostly
/// low-rank) plus noise.
pub fn synthetic_filter_bank(count: usize, k: usize, seed: u64) -> Vec<Matrix> {
    (0..count)
        .map(|idx| {
            let theta = std::f64::consts::PI * (idx as f64) / (count as f64);
            let (c, s) = (theta.cos(), theta.sin());
            let noise = wsvd_linalg::generate::random_uniform(k, k, seed + idx as u64);
            Matrix::from_fn(k, k, |y, x| {
                let (fy, fx) = (y as f64 - k as f64 / 2.0, x as f64 - k as f64 / 2.0);
                let along = c * fx + s * fy;
                let across = -s * fx + c * fy;
                // Oriented Gabor-ish edge response plus 5% noise.
                (along * 1.2).sin() * (-across * across / (k as f64)).exp() + 0.05 * noise[(y, x)]
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;

    #[test]
    fn full_rank_is_exact() {
        let gpu = Gpu::new(V100);
        let bank = synthetic_filter_bank(4, 7, 1);
        let seps = separate_filter_bank(&gpu, &bank, 7).unwrap();
        for (f, s) in bank.iter().zip(&seps) {
            assert!(s.reconstruct().sub(f).max_abs() < 1e-10);
            assert!((s.energy_captured - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_one_captures_most_energy_of_oriented_filters() {
        let gpu = Gpu::new(V100);
        let bank = synthetic_filter_bank(8, 9, 2);
        let seps = separate_filter_bank(&gpu, &bank, 1).unwrap();
        // Axis-aligned filters are nearly rank 1; oblique ones less so, but
        // the bank average must be strongly low-rank.
        let mean: f64 = seps.iter().map(|s| s.energy_captured).sum::<f64>() / seps.len() as f64;
        assert!(mean > 0.6, "mean energy captured {mean}");
    }

    #[test]
    fn mac_ratio_favors_separable_for_rank_one() {
        let gpu = Gpu::new(V100);
        let bank = synthetic_filter_bank(2, 15, 3);
        let seps = separate_filter_bank(&gpu, &bank, 1).unwrap();
        // 2k/k^2 = 2/15 < 1.
        assert!((seps[0].mac_ratio(15) - 2.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn energy_monotone_in_rank() {
        let gpu = Gpu::new(V100);
        let bank = synthetic_filter_bank(3, 9, 4);
        let r1 = separate_filter_bank(&gpu, &bank, 1).unwrap();
        let r3 = separate_filter_bank(&gpu, &bank, 3).unwrap();
        for (a, b) in r1.iter().zip(&r3) {
            assert!(b.energy_captured >= a.energy_captured);
        }
    }
}
