//! `wsvd-metrics` — a deterministic metrics registry for the W-cycle stack.
//!
//! The simulator and the algorithm layers above it already compute every
//! quantity the paper argues performance through (TLP, arithmetic intensity,
//! occupancy, GM transactions — Eqs. 8–10), but until this crate they were
//! only reachable as raw per-`Gpu` structs or PR 1's event traces. The
//! registry aggregates them into **counters**, **gauges** and **fixed-bucket
//! histograms** keyed by `(experiment, kernel, level)`, so a whole `repro`
//! invocation becomes one queryable, machine-readable snapshot.
//!
//! Design rules, mirroring `wsvd-trace` and the sanitizer:
//!
//! * **Zero-cost no-op mode.** [`MetricsSink::default()`] is disabled: every
//!   recording method returns after one `Option` check. Producers guard any
//!   metrics-only computation behind [`MetricsSink::is_enabled`], so with the
//!   sink off, simulated time and numerics are bit-identical to a build
//!   without the crate.
//! * **Determinism.** All recording happens in the host-side serial
//!   orchestration code (kernel *bodies* run under rayon, but launches retire
//!   serially), and the registry stores everything in `BTreeMap`s — two
//!   identical runs produce byte-identical [`Snapshot`] JSON.
//! * **Per-run deltas.** Counters backed by process-cumulative state (the
//!   autotune plan cache) are recorded as *increments*, and
//!   [`Snapshot::since`] subtracts an earlier snapshot, so per-experiment and
//!   per-region queries work even across a warm cache.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Separator between the `experiment`, `kernel`, `level` and metric-name
/// components of a flattened registry key. None of the stack's experiment
/// ids or kernel labels contain it.
pub const KEY_SEP: char = '/';

/// Flattens `(experiment, kernel, level, name)` into the registry's string
/// key: `experiment/kernel/L<level>/name` (level `-` when not applicable).
pub fn metric_key(experiment: &str, kernel: &str, level: Option<usize>, name: &str) -> String {
    let lvl = match level {
        Some(l) => format!("L{l}"),
        None => "-".to_string(),
    };
    format!("{experiment}{KEY_SEP}{kernel}{KEY_SEP}{lvl}{KEY_SEP}{name}")
}

/// Splits a flattened key back into `(experiment, kernel, level, name)`.
/// Returns `None` for keys that do not have exactly four components.
pub fn parse_key(key: &str) -> Option<(&str, &str, Option<usize>, &str)> {
    let mut it = key.splitn(4, KEY_SEP);
    let experiment = it.next()?;
    let kernel = it.next()?;
    let lvl = it.next()?;
    let name = it.next()?;
    let level = if lvl == "-" {
        None
    } else {
        Some(lvl.strip_prefix('L')?.parse().ok()?)
    };
    Some((experiment, kernel, level, name))
}

/// One retained histogram exemplar: the identity and value of the largest
/// observation that landed in a bucket. The id is producer-chosen (the
/// serve layer records its request id), so a tail bucket links directly to
/// a replayable request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Producer-chosen identifier of the observation (e.g. a request id).
    pub id: u64,
    /// The observed value.
    pub value: f64,
}

/// One fixed-bucket histogram: `counts[i]` holds observations
/// `<= bounds[i]`, with one extra overflow bucket at the end.
///
/// Serialization is hand-written (not derived): the `exemplars` field is
/// emitted only when non-empty and defaults to empty when absent, so
/// snapshots recorded before exemplars existed parse unchanged and
/// exemplar-free histograms serialize byte-identically to them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending. The bucket layout is fixed by the
    /// first observation of a key and never changes afterwards.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`
    /// (the last entry counts observations above every bound).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Per-bucket retained exemplars, parallel to `counts`. Empty unless an
    /// identified observation ([`MetricsSink::observe_exemplar`]) has been
    /// recorded; retention is deterministic (strictly larger value wins,
    /// first observation wins ties), so identical runs carry byte-identical
    /// exemplars. Skipped in JSON when empty, keeping pre-exemplar
    /// snapshots parse- and byte-compatible.
    pub exemplars: Vec<Option<Exemplar>>,
}

impl Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = vec![
            ("bounds".to_string(), self.bounds.to_value()),
            ("counts".to_string(), self.counts.to_value()),
            ("total".to_string(), self.total.to_value()),
            ("sum".to_string(), self.sum.to_value()),
        ];
        if !self.exemplars.is_empty() {
            m.push(("exemplars".to_string(), self.exemplars.to_value()));
        }
        serde::Value::Map(m)
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::msg("expected JSON object for Histogram"))?;
        Ok(Histogram {
            bounds: Deserialize::from_value(serde::map_field(m, "bounds", "Histogram")?)?,
            counts: Deserialize::from_value(serde::map_field(m, "counts", "Histogram")?)?,
            total: Deserialize::from_value(serde::map_field(m, "total", "Histogram")?)?,
            sum: Deserialize::from_value(serde::map_field(m, "sum", "Histogram")?)?,
            exemplars: match m.iter().find(|(k, _)| k == "exemplars") {
                Some((_, v)) => Deserialize::from_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
            exemplars: Vec::new(),
        }
    }

    /// Bucket index `value` falls into (the overflow bucket for values
    /// above every bound).
    fn bucket_index(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    fn observe_exemplar(&mut self, value: f64, id: u64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        if self.exemplars.is_empty() {
            self.exemplars = vec![None; self.counts.len()];
        }
        // Max-observation retention: a strictly larger value replaces the
        // bucket's exemplar; ties keep the first observation, so retention
        // is independent of everything but the observation order.
        let slot = &mut self.exemplars[idx];
        if slot.map(|e| value > e.value).unwrap_or(true) {
            *slot = Some(Exemplar { id, value });
        }
    }

    /// The retained exemplar of bucket `idx` (`None` when the bucket never
    /// saw an identified observation, or `idx` is out of range).
    pub fn exemplar(&self, idx: usize) -> Option<Exemplar> {
        self.exemplars.get(idx).copied().flatten()
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total > 0 {
            self.sum / self.total as f64
        } else {
            0.0
        }
    }

    /// Rank-based quantile at bucket resolution: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * total)`
    /// observations, or `f64::INFINITY` when that rank lands in the
    /// overflow bucket. The answer is exact given the fixed bucket layout
    /// (no interpolation), so two identical runs report bit-identical
    /// quantiles; resolution is limited to the bucket bounds. Returns
    /// `None` for an empty histogram or `q` outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || q.is_nan() || q <= 0.0 || q > 1.0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        None
    }
}

#[derive(Default)]
struct Registry {
    /// Experiment scope stamped into every key recorded from now on.
    experiment: String,
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A cheaply clonable handle producers record into.
///
/// `MetricsSink::default()` is **disabled**: every recording method returns
/// after one `Option` check, and [`MetricsSink::snapshot`] yields an empty
/// snapshot. An enabled sink shares one registry across clones (the `Gpu`,
/// the W-cycle, the autotuner and the bench harness all see the same maps).
#[derive(Clone, Default)]
pub struct MetricsSink {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl MetricsSink {
    /// A recording sink with an empty registry and no experiment scope.
    pub fn enabled() -> Self {
        MetricsSink {
            inner: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// A no-op sink (same as `default()`).
    pub fn disabled() -> Self {
        MetricsSink::default()
    }

    /// Whether metrics are being recorded. Producers must guard any
    /// computation done *only* for metrics behind this, preserving the
    /// bit-identity guarantee of the disabled mode.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the experiment component stamped into subsequently recorded
    /// keys (e.g. `"fig9"`). Empty until first set.
    pub fn set_experiment(&self, id: &str) {
        if let Some(m) = &self.inner {
            let mut reg = m.lock().unwrap_or_else(|e| e.into_inner());
            reg.experiment = id.to_string();
        }
    }

    /// The current experiment scope (empty when unset or disabled).
    pub fn experiment(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(m) => m
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .experiment
                .clone(),
        }
    }

    /// Adds `delta` to the counter `(experiment, kernel, level, name)`.
    /// Counters are monotone sums over a run; record increments, not
    /// cumulative process-wide values.
    pub fn counter_add(&self, kernel: &str, level: Option<usize>, name: &str, delta: f64) {
        if let Some(m) = &self.inner {
            let mut reg = m.lock().unwrap_or_else(|e| e.into_inner());
            let key = metric_key(&reg.experiment, kernel, level, name);
            *reg.counters.entry(key).or_insert(0.0) += delta;
        }
    }

    /// Sets the gauge `(experiment, kernel, level, name)` to `value`
    /// (last write wins — device constants, chosen plan parameters).
    pub fn gauge_set(&self, kernel: &str, level: Option<usize>, name: &str, value: f64) {
        if let Some(m) = &self.inner {
            let mut reg = m.lock().unwrap_or_else(|e| e.into_inner());
            let key = metric_key(&reg.experiment, kernel, level, name);
            reg.gauges.insert(key, value);
        }
    }

    /// Observes `value` in the fixed-bucket histogram
    /// `(experiment, kernel, level, name)`. The bucket layout is taken from
    /// `bounds` on the key's first observation and kept thereafter.
    pub fn observe(
        &self,
        kernel: &str,
        level: Option<usize>,
        name: &str,
        bounds: &[f64],
        value: f64,
    ) {
        if let Some(m) = &self.inner {
            let mut reg = m.lock().unwrap_or_else(|e| e.into_inner());
            let key = metric_key(&reg.experiment, kernel, level, name);
            reg.histograms
                .entry(key)
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value);
        }
    }

    /// Like [`MetricsSink::observe`], additionally offering `(id, value)`
    /// as the target bucket's exemplar: the bucket retains the largest
    /// identified observation it has seen (ties keep the first), so a
    /// histogram's tail bucket always names a concrete, replayable
    /// observation. Counting is identical to `observe`.
    pub fn observe_exemplar(
        &self,
        kernel: &str,
        level: Option<usize>,
        name: &str,
        bounds: &[f64],
        value: f64,
        id: u64,
    ) {
        if let Some(m) = &self.inner {
            let mut reg = m.lock().unwrap_or_else(|e| e.into_inner());
            let key = metric_key(&reg.experiment, kernel, level, name);
            reg.histograms
                .entry(key)
                .or_insert_with(|| Histogram::new(bounds))
                .observe_exemplar(value, id);
        }
    }

    /// Deterministic snapshot of the whole registry (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            None => Snapshot::default(),
            Some(m) => {
                let reg = m.lock().unwrap_or_else(|e| e.into_inner());
                Snapshot {
                    counters: reg.counters.clone(),
                    gauges: reg.gauges.clone(),
                    histograms: reg.histograms.clone(),
                }
            }
        }
    }
}

/// An immutable, serializable copy of the registry at one point in time.
/// Maps are `BTreeMap`s over the flattened keys of [`metric_key`], so JSON
/// serialization is deterministic (sorted keys, shortest-round-trip floats).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotone sums keyed by `experiment/kernel/level/name`.
    pub counters: BTreeMap<String, f64>,
    /// Last-write-wins values keyed like `counters`.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms keyed like `counters`.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// The delta accumulated between `earlier` and `self`: counters and
    /// histogram counts subtract (clamped at zero for keys that shrank,
    /// which a well-behaved producer never does), gauges keep the later
    /// value. This is what makes process-cumulative producers (the global
    /// autotune plan cache) queryable per run.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let base = earlier.counters.get(k).copied().unwrap_or(0.0);
                (k.clone(), (v - base).max(0.0))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) if e.bounds == h.bounds => Histogram {
                        bounds: h.bounds.clone(),
                        counts: h
                            .counts
                            .iter()
                            .zip(&e.counts)
                            .map(|(&a, &b)| a.saturating_sub(b))
                            .collect(),
                        total: h.total.saturating_sub(e.total),
                        sum: h.sum - e.sum,
                        // Exemplars are max-retained, not additive: the
                        // later snapshot's exemplar is the best known
                        // representative of each bucket, so the delta
                        // keeps it as-is.
                        exemplars: h.exemplars.clone(),
                    },
                    _ => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Counter value for the exact key, 0.0 when absent.
    pub fn counter(&self, experiment: &str, kernel: &str, level: Option<usize>, name: &str) -> f64 {
        self.counters
            .get(&metric_key(experiment, kernel, level, name))
            .copied()
            .unwrap_or(0.0)
    }

    /// Gauge value for the exact key, if set.
    pub fn gauge(
        &self,
        experiment: &str,
        kernel: &str,
        level: Option<usize>,
        name: &str,
    ) -> Option<f64> {
        self.gauges
            .get(&metric_key(experiment, kernel, level, name))
            .copied()
    }

    /// Histogram for the exact key, if observed.
    pub fn histogram(
        &self,
        experiment: &str,
        kernel: &str,
        level: Option<usize>,
        name: &str,
    ) -> Option<&Histogram> {
        self.histograms
            .get(&metric_key(experiment, kernel, level, name))
    }

    /// Distinct experiment ids present in any map, sorted.
    pub fn experiments(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for key in self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
        {
            if let Some((exp, _, _, _)) = parse_key(key) {
                if out.last().map(String::as_str) != Some(exp) && !out.iter().any(|e| e == exp) {
                    out.push(exp.to_string());
                }
            }
        }
        out.sort();
        out
    }

    /// Distinct kernel labels recorded under `experiment` (counters only),
    /// sorted.
    pub fn kernels(&self, experiment: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for key in self.counters.keys() {
            if let Some((exp, kernel, _, _)) = parse_key(key) {
                if exp == experiment && !out.iter().any(|k| k == kernel) {
                    out.push(kernel.to_string());
                }
            }
        }
        out.sort();
        out
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Pretty-printed JSON (deterministic: sorted keys, shortest
    /// round-trip floats).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        serde_json::from_str(s).map_err(|e| format!("snapshot parse error: {e:?}"))
    }

    /// Prometheus text exposition of the whole snapshot: one metric family
    /// per metric *name* (a `# HELP` line, a `# TYPE` line, then its
    /// samples), with `experiment`, `kernel` and `level` labels. Histograms
    /// follow the cumulative `_bucket`/`_sum`/`_count` convention. Label
    /// values escape backslash, double quote and line feed per the text
    /// exposition format. A `_bucket` row whose bucket retains an exemplar
    /// carries it in OpenMetrics exemplar syntax —
    /// `… <count> # {request_id="<id>"} <value>` — linking the bucket to
    /// the replayable observation behind its largest member.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut families: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        let labels = |key: &str| -> Option<(String, String)> {
            let (exp, kernel, level, name) = parse_key(key)?;
            let lvl = level.map(|l| l.to_string()).unwrap_or_default();
            Some((
                prom_name(name),
                format!(
                    "experiment=\"{}\",kernel=\"{}\",level=\"{}\"",
                    prom_escape(exp),
                    prom_escape(kernel),
                    lvl
                ),
            ))
        };
        for (kind, map) in [("counter", &self.counters), ("gauge", &self.gauges)] {
            for (key, &value) in map {
                let Some((fam, lbl)) = labels(key) else {
                    continue;
                };
                families
                    .entry(format!("{kind} {fam}"))
                    .or_default()
                    .push((lbl, fmt_prom(value)));
            }
        }
        for (key, h) in &self.histograms {
            let Some((fam, lbl)) = labels(key) else {
                continue;
            };
            let rows = families.entry(format!("histogram {fam}")).or_default();
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => fmt_prom(*b),
                    None => "+Inf".to_string(),
                };
                let value = match h.exemplar(i) {
                    Some(ex) => format!(
                        "{} # {{request_id=\"{}\"}} {}",
                        cumulative,
                        ex.id,
                        fmt_prom(ex.value)
                    ),
                    None => cumulative.to_string(),
                };
                rows.push((format!("{lbl},le=\"{le}\"#bucket"), value));
            }
            rows.push((format!("{lbl}#sum"), fmt_prom(h.sum)));
            rows.push((format!("{lbl}#count"), h.total.to_string()));
        }
        for (family, rows) in families {
            let (kind, name) = family.split_once(' ').expect("family has kind prefix");
            let _ = writeln!(
                out,
                "# HELP {name} wsvd-metrics {kind} series recorded by the repro harness."
            );
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (lbl, value) in rows {
                // Histogram rows smuggle their series suffix after a '#'.
                let (lbl, suffix) = lbl.split_once('#').unwrap_or((lbl.as_str(), ""));
                let series = if suffix.is_empty() {
                    name.to_string()
                } else {
                    format!("{name}_{suffix}")
                };
                let _ = writeln!(out, "{series}{{{lbl}}} {value}");
            }
        }
        out
    }
}

/// Sanitizes a metric-name component into a full Prometheus metric name.
/// Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`: every illegal
/// character maps to `_`, and the `wsvd_` prefix keeps the first character
/// legal even when the component starts with a digit.
fn prom_name(name: &str) -> String {
    let mut out = String::from("wsvd_");
    out.extend(
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }),
    );
    out
}

/// Escapes a label value: the text exposition format requires `\\` for
/// backslash, `\"` for double quote and `\n` for line feed.
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Deterministic float formatting for Prometheus rows: integers print
/// without a fraction, everything else with shortest round-trip.
fn fmt_prom(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

static GLOBAL: OnceLock<MetricsSink> = OnceLock::new();

/// Installs `sink` as the process-wide sink that [`global`] hands out.
/// Returns `false` if a sink was already installed (the first one wins).
///
/// Components that cannot be handed a sink explicitly (a `Gpu` built deep
/// inside an experiment, the global plan cache) pick this up lazily.
pub fn install_global(sink: MetricsSink) -> bool {
    GLOBAL.set(sink).is_ok()
}

/// The installed global sink, or a disabled one if none was installed.
pub fn global() -> MetricsSink {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let s = MetricsSink::disabled();
        assert!(!s.is_enabled());
        s.set_experiment("e");
        s.counter_add("k", None, "c", 1.0);
        s.gauge_set("k", None, "g", 2.0);
        s.observe("k", None, "h", &[1.0], 0.5);
        assert!(s.snapshot().is_empty());
        assert_eq!(s.experiment(), "");
    }

    #[test]
    fn keys_round_trip() {
        let k = metric_key("fig9", "gram_gemm", Some(2), "flops");
        assert_eq!(k, "fig9/gram_gemm/L2/flops");
        assert_eq!(parse_key(&k), Some(("fig9", "gram_gemm", Some(2), "flops")));
        let k = metric_key("e", "k", None, "n");
        assert_eq!(parse_key(&k), Some(("e", "k", None, "n")));
        assert_eq!(parse_key("only/three/parts"), None);
    }

    #[test]
    fn counters_accumulate_and_scope_by_experiment() {
        let s = MetricsSink::enabled();
        s.set_experiment("a");
        s.counter_add("k", None, "c", 1.0);
        s.counter_add("k", None, "c", 2.0);
        s.set_experiment("b");
        s.counter_add("k", None, "c", 5.0);
        let snap = s.snapshot();
        assert_eq!(snap.counter("a", "k", None, "c"), 3.0);
        assert_eq!(snap.counter("b", "k", None, "c"), 5.0);
        assert_eq!(snap.experiments(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(snap.kernels("a"), vec!["k".to_string()]);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let s = MetricsSink::enabled();
        s.set_experiment("e");
        let bounds = [0.25, 0.5, 1.0];
        for v in [0.1, 0.25, 0.6, 2.0] {
            s.observe("k", None, "occ", &bounds, v);
        }
        let snap = s.snapshot();
        let h = snap.histogram("e", "k", None, "occ").unwrap();
        assert_eq!(h.counts, vec![2, 0, 1, 1]);
        assert_eq!(h.total, 4);
        assert!((h.sum - 2.95).abs() < 1e-12);
        assert!((h.mean() - 0.7375).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_rank_based_bucket_bounds() {
        let s = MetricsSink::enabled();
        s.set_experiment("e");
        let bounds = [1.0, 2.0, 4.0, 8.0];
        // 10 observations: 5 in (..1], 3 in (1..2], 1 in (2..4], 1 overflow.
        for v in [0.1, 0.2, 0.3, 0.5, 1.0, 1.5, 1.6, 2.0, 3.0, 100.0] {
            s.observe("k", None, "lat", &bounds, v);
        }
        let snap = s.snapshot();
        let h = snap.histogram("e", "k", None, "lat").unwrap();
        // rank(0.5) = 5 -> first bucket; rank(0.8) = 8 -> second bucket;
        // rank(0.9) = 9 -> third; rank(0.99) = 10 -> overflow.
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.8), Some(2.0));
        assert_eq!(h.quantile(0.9), Some(4.0));
        assert_eq!(h.quantile(0.99), Some(f64::INFINITY));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(Histogram::default().quantile(0.5), None);
    }

    #[test]
    fn since_subtracts_counters_and_histograms_keeps_gauges() {
        let s = MetricsSink::enabled();
        s.set_experiment("e");
        s.counter_add("k", Some(1), "c", 10.0);
        s.gauge_set("k", Some(1), "g", 1.0);
        s.observe("k", None, "h", &[1.0], 0.5);
        let first = s.snapshot();
        s.counter_add("k", Some(1), "c", 7.0);
        s.gauge_set("k", Some(1), "g", 9.0);
        s.observe("k", None, "h", &[1.0], 2.0);
        let second = s.snapshot();
        let d = second.since(&first);
        assert_eq!(d.counter("e", "k", Some(1), "c"), 7.0);
        assert_eq!(d.gauge("e", "k", Some(1), "g"), Some(9.0));
        let h = d.histogram("e", "k", None, "h").unwrap();
        assert_eq!(h.counts, vec![0, 1]);
        assert_eq!(h.total, 1);
        // A self-delta is empty-valued but keeps the keys.
        let zero = second.since(&second);
        assert_eq!(zero.counter("e", "k", Some(1), "c"), 0.0);
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let record = || {
            let s = MetricsSink::enabled();
            s.set_experiment("e");
            s.counter_add("b", None, "c", 1.5);
            s.counter_add("a", Some(3), "c", 2.0);
            s.gauge_set("a", None, "g", 0.125);
            s.observe("a", None, "h", &[0.5, 1.0], 0.75);
            s.snapshot()
        };
        let (s1, s2) = (record(), record());
        assert_eq!(
            s1.to_json(),
            s2.to_json(),
            "snapshots must be byte-identical"
        );
        let parsed = Snapshot::from_json(&s1.to_json()).unwrap();
        assert_eq!(parsed, s1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let s = MetricsSink::enabled();
        s.set_experiment("fig9");
        s.counter_add("gemm", Some(1), "flops", 100.0);
        s.gauge_set("gemm", None, "peak_flops", 7.0e12);
        s.observe("gemm", None, "occupancy", &[0.5, 1.0], 0.75);
        let text = s.snapshot().to_prometheus();
        assert!(text.contains("# TYPE wsvd_flops counter"), "{text}");
        assert!(
            text.contains("wsvd_flops{experiment=\"fig9\",kernel=\"gemm\",level=\"1\"} 100"),
            "{text}"
        );
        assert!(text.contains("# TYPE wsvd_occupancy histogram"), "{text}");
        assert!(text.contains("wsvd_occupancy_bucket"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("wsvd_occupancy_count"), "{text}");
        assert!(text.contains("# TYPE wsvd_peak_flops gauge"), "{text}");
    }

    #[test]
    fn prometheus_exposition_conforms_to_the_text_format() {
        // Line-level audit against the Prometheus text exposition format:
        // metric and label names match the identifier grammar, every family
        // gets exactly one `# HELP` + `# TYPE` pair (HELP first), sample
        // values parse as floats, and label values escape `\`, `"` and
        // line feeds so no sample ever spans two lines.
        fn valid_name(s: &str) -> bool {
            let mut ch = s.chars();
            matches!(ch.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
                && ch.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        fn valid_label_name(s: &str) -> bool {
            let mut ch = s.chars();
            matches!(ch.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
                && ch.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        // Parses `name="value",...`, rejecting bad escapes and raw quotes.
        fn parse_labels(s: &str) -> Result<Vec<String>, String> {
            let mut names = Vec::new();
            let mut it = s.chars();
            loop {
                let mut name = String::new();
                for c in it.by_ref() {
                    if c == '=' {
                        break;
                    }
                    name.push(c);
                }
                if it.next() != Some('"') {
                    return Err(format!("label '{name}': missing open quote"));
                }
                loop {
                    match it.next() {
                        Some('\\') => match it.next() {
                            Some('\\') | Some('"') | Some('n') => {}
                            other => return Err(format!("bad escape \\{other:?}")),
                        },
                        Some('"') => break,
                        Some(_) => {}
                        None => return Err("unterminated label value".to_string()),
                    }
                }
                names.push(name);
                match it.next() {
                    Some(',') => continue,
                    None => return Ok(names),
                    Some(c) => return Err(format!("unexpected '{c}' after label value")),
                }
            }
        }

        let s = MetricsSink::enabled();
        // A hostile experiment name: quote, backslash and a line feed, all
        // of which must be escaped in label values.
        s.set_experiment("we\"ird\\exp\nline");
        // A metric component with a leading digit: the emitted family name
        // must still start with a legal character.
        s.counter_add("gemm", Some(1), "2nd_pass_flops", 100.0);
        s.gauge_set("gemm", None, "peak_flops", 7.0e12);
        s.observe("gemm", None, "occupancy", &[0.5, 1.0], 0.75);
        // An identified observation: its bucket row must carry a
        // well-formed OpenMetrics exemplar.
        s.observe_exemplar("serve", None, "e2e_us", &[10.0, 100.0], 42.5, 7);
        let text = s.snapshot().to_prometheus();
        assert!(
            text.contains("# {request_id=\"7\"} 42.5"),
            "exemplar missing from exposition: {text}"
        );

        let mut helped: Vec<String> = Vec::new();
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has text");
                assert!(valid_name(name), "bad HELP name in: {line}");
                assert!(!help.is_empty());
                helped.push(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has kind");
                assert!(valid_name(name), "bad TYPE name in: {line}");
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
                assert_eq!(
                    helped.last().map(String::as_str),
                    Some(name),
                    "HELP must immediately precede TYPE: {line}"
                );
                assert!(!typed.contains(&name.to_string()), "duplicate TYPE: {line}");
                typed.push(name.to_string());
            } else {
                // An OpenMetrics exemplar rides after the sample value as
                // ` # {request_id="<id>"} <value>`; split it off and check
                // it separately so the base sample still parses strictly.
                let (sample, exemplar) = match line.split_once(" # {") {
                    Some((base, ex)) => (base, Some(ex)),
                    None => (line, None),
                };
                if let Some(ex) = exemplar {
                    let (ex_labels, ex_value) = ex.rsplit_once("} ").expect("exemplar has value");
                    let names = parse_labels(ex_labels).unwrap_or_else(|e| {
                        panic!("bad exemplar label block '{ex_labels}': {e}");
                    });
                    assert_eq!(names, vec!["request_id".to_string()], "{line}");
                    ex_value.parse::<f64>().unwrap_or_else(|e| {
                        panic!("unparseable exemplar value '{ex_value}': {e}");
                    });
                    assert!(
                        sample.contains("_bucket{"),
                        "exemplar outside a _bucket row: {line}"
                    );
                }
                let (series, rest) = sample.split_once('{').expect("sample has labels");
                assert!(valid_name(series), "bad series name in: {line}");
                let family = typed.last().expect("samples follow their TYPE");
                assert!(
                    series == *family
                        || ["_bucket", "_sum", "_count"]
                            .iter()
                            .any(|sfx| series == format!("{family}{sfx}")),
                    "sample '{series}' outside family '{family}'"
                );
                let (labels, value) = rest.rsplit_once("} ").expect("sample has value");
                value.parse::<f64>().unwrap_or_else(|e| {
                    panic!("unparseable sample value '{value}': {e}");
                });
                let names = parse_labels(labels).unwrap_or_else(|e| {
                    panic!("bad label block '{labels}': {e}");
                });
                for n in &names {
                    assert!(valid_label_name(n), "bad label name '{n}' in: {line}");
                }
            }
        }
        assert_eq!(helped, typed, "every family has exactly one HELP + TYPE");
        assert!(
            text.contains("\\n"),
            "line feed in a label value must be escaped: {text}"
        );
        assert!(
            text.contains("wsvd_2nd_pass_flops"),
            "leading-digit component keeps the wsvd_ prefix: {text}"
        );
    }

    #[test]
    fn exemplars_retain_the_max_observation_per_bucket() {
        let s = MetricsSink::enabled();
        s.set_experiment("e");
        let bounds = [1.0, 10.0];
        // Bucket 0: 0.5 then 0.9 (max wins), then a tie at 0.9 (first wins).
        s.observe_exemplar("k", None, "lat", &bounds, 0.5, 1);
        s.observe_exemplar("k", None, "lat", &bounds, 0.9, 2);
        s.observe_exemplar("k", None, "lat", &bounds, 0.9, 3);
        // Bucket 1 via the unidentified path: counted, no exemplar.
        s.observe("k", None, "lat", &bounds, 5.0);
        // Overflow bucket.
        s.observe_exemplar("k", None, "lat", &bounds, 99.0, 4);
        let snap = s.snapshot();
        let h = snap.histogram("e", "k", None, "lat").unwrap();
        assert_eq!(h.counts, vec![3, 1, 1]);
        assert_eq!(h.total, 5);
        assert_eq!(h.exemplar(0), Some(Exemplar { id: 2, value: 0.9 }));
        assert_eq!(h.exemplar(1), None);
        assert_eq!(h.exemplar(2), Some(Exemplar { id: 4, value: 99.0 }));
        assert_eq!(h.exemplar(3), None, "out of range is None");
    }

    #[test]
    fn exemplar_snapshots_are_deterministic_and_round_trip() {
        let record = || {
            let s = MetricsSink::enabled();
            s.set_experiment("e");
            for (i, v) in [3.0, 0.5, 42.0, 0.25].into_iter().enumerate() {
                s.observe_exemplar("k", None, "lat", &[1.0, 10.0], v, i as u64);
            }
            s.snapshot()
        };
        let (a, b) = (record(), record());
        assert_eq!(a.to_json(), b.to_json(), "exemplars must be byte-stable");
        let parsed = Snapshot::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
        // A histogram without exemplars serializes without the field, so a
        // pre-exemplar snapshot parses (and re-serializes) unchanged.
        let s = MetricsSink::enabled();
        s.set_experiment("e");
        s.observe("k", None, "h", &[1.0], 0.5);
        let json = s.snapshot().to_json();
        assert!(!json.contains("exemplars"), "{json}");
        let old = r#"{"counters":{},"gauges":{},"histograms":{"e/k/-/h":
            {"bounds":[1.0],"counts":[1,0],"total":1,"sum":0.5}}}"#;
        let parsed = Snapshot::from_json(old).unwrap();
        assert_eq!(parsed.histogram("e", "k", None, "h").unwrap().total, 1);
        assert!(parsed
            .histogram("e", "k", None, "h")
            .unwrap()
            .exemplars
            .is_empty());
    }

    #[test]
    fn since_keeps_the_later_exemplars() {
        let s = MetricsSink::enabled();
        s.set_experiment("e");
        s.observe_exemplar("k", None, "lat", &[1.0], 0.5, 1);
        let first = s.snapshot();
        s.observe_exemplar("k", None, "lat", &[1.0], 0.75, 2);
        let d = s.snapshot().since(&first);
        let h = d.histogram("e", "k", None, "lat").unwrap();
        assert_eq!(h.total, 1, "counts subtract");
        assert_eq!(h.exemplar(0), Some(Exemplar { id: 2, value: 0.75 }));
    }

    #[test]
    fn global_defaults_to_disabled() {
        // install_global is process-wide; only assert the uninstalled view.
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
