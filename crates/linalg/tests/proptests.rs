//! Property-based tests of the linear-algebra substrate.

use proptest::prelude::*;
use wsvd_linalg::generate::{random_uniform, with_spectrum};
use wsvd_linalg::householder::{bidiagonalize, seeded_orthogonal};
use wsvd_linalg::verify::orthonormality_error;
use wsvd_linalg::{gemm, gram, matmul, singular_values, svd_reference, Matrix, Op};

fn arb_mat(max_m: usize, max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_m, 1..=max_n, any::<u64>()).prop_map(|(m, n, s)| random_uniform(m, n, s))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn svd_reference_reconstructs_anything(a in arb_mat(24, 24)) {
        let svd = svd_reference(&a).unwrap();
        prop_assert!(svd.relative_residual(&a) < 1e-10);
        prop_assert!(svd.orthogonality_error() < 1e-10);
        prop_assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn singular_values_invariant_under_transpose(a in arb_mat(16, 16)) {
        let s1 = singular_values(&a).unwrap();
        let s2 = singular_values(&a.transpose()).unwrap();
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-10 * (1.0 + y));
        }
    }

    #[test]
    fn singular_values_invariant_under_orthogonal_mixing(
        a in arb_mat(12, 12), seed in any::<u64>()
    ) {
        let q = seeded_orthogonal(a.rows(), seed);
        let qa = matmul(&q, &a);
        let s1 = singular_values(&a).unwrap();
        let s2 = singular_values(&qa).unwrap();
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y));
        }
    }

    #[test]
    fn gemm_is_associative_with_identity(a in arb_mat(10, 10)) {
        let i = Matrix::identity(a.cols());
        let ai = matmul(&a, &i);
        prop_assert!(ai.sub(&a).max_abs() < 1e-14);
    }

    #[test]
    fn gram_is_psd_diagonal_dominant_trace(a in arb_mat(16, 12)) {
        let g = gram(&a);
        // Symmetric.
        prop_assert!(g.sub(&g.transpose()).max_abs() < 1e-12);
        // trace(A^T A) = ||A||_F^2.
        let tr: f64 = g.diag().iter().sum();
        prop_assert!((tr - a.fro_norm().powi(2)).abs() < 1e-9 * (1.0 + tr.abs()));
        // Non-negative diagonal.
        prop_assert!(g.diag().iter().all(|&d| d >= -1e-12));
    }

    #[test]
    fn gemm_transpose_flags_agree(
        m in 1usize..9, k in 1usize..9, n in 1usize..9, seed in any::<u64>()
    ) {
        // (A B)^T == B^T A^T via the Op flags.
        let a = random_uniform(m, k, seed);
        let b = random_uniform(k, n, seed ^ 0xabcd);
        let ab = matmul(&a, &b);
        let mut btat = Matrix::zeros(n, m);
        gemm(1.0, &b, Op::Trans, &a, Op::Trans, 0.0, &mut btat);
        prop_assert!(ab.transpose().sub(&btat).max_abs() < 1e-11);
    }

    #[test]
    fn bidiagonalization_preserves_frobenius(a in arb_mat(20, 12)) {
        prop_assume!(a.rows() >= a.cols());
        let bd = bidiagonalize(&a);
        let b_fro: f64 = bd
            .diag
            .iter()
            .chain(bd.superdiag.iter())
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt();
        prop_assert!((b_fro - a.fro_norm()).abs() < 1e-9 * (1.0 + a.fro_norm()));
        prop_assert!(orthonormality_error(&bd.u) < 1e-10);
        prop_assert!(orthonormality_error(&bd.v) < 1e-10);
    }

    #[test]
    fn prescribed_spectrum_is_realized(
        r in 1usize..8, pad in 0usize..6, seed in any::<u64>()
    ) {
        let sigma: Vec<f64> = (0..r).map(|k| (r - k) as f64 * 1.5).collect();
        let a = with_spectrum(r + pad, r, &sigma, seed);
        let got = singular_values(&a).unwrap();
        for (g, w) in got.iter().zip(&sigma) {
            prop_assert!((g - w).abs() < 1e-9 * (1.0 + w));
        }
    }
}
