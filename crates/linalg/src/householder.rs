//! Householder reflectors and Golub–Kahan bidiagonalization.
//!
//! This is the substrate for the MAGMA-like baseline (two-stage SVD:
//! bidiagonalize, then implicit-shift QR on the bidiagonal), and doubles as
//! an independent numerical oracle for testing the Jacobi kernels.

use crate::gemm::dot;
use crate::matrix::Matrix;

/// A Householder reflector `H = I - beta * v v^T` stored as `(v, beta)`.
///
/// `v[0]` is normalized to 1 so only the tail needs storage in packed forms;
/// we keep the full vector for clarity.
#[derive(Clone, Debug)]
pub struct Reflector {
    /// The Householder vector with `v[0] = 1`.
    pub v: Vec<f64>,
    /// The scalar `beta = 2 / (v^T v)` (or 0 for the identity reflector).
    pub beta: f64,
}

/// Computes a reflector that maps `x` onto `(±||x||, 0, …, 0)`.
///
/// Uses the sign choice that avoids cancellation. Returns the reflector and
/// the resulting leading entry `±||x||`.
pub fn householder(x: &[f64]) -> (Reflector, f64) {
    let n = x.len();
    assert!(n > 0);
    let sigma: f64 = x[1..].iter().map(|v| v * v).sum();
    let mut v = x.to_vec();
    v[0] = 1.0;
    if sigma == 0.0 {
        // Already of the form (x0, 0, ..., 0): reflect only if x0 < 0.
        if x[0] >= 0.0 {
            return (Reflector { v, beta: 0.0 }, x[0]);
        }
        return (Reflector { v, beta: 2.0 }, -x[0]);
    }
    let mu = (x[0] * x[0] + sigma).sqrt();
    let v0 = if x[0] <= 0.0 {
        x[0] - mu
    } else {
        -sigma / (x[0] + mu)
    };
    let beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
    for item in v.iter_mut().skip(1) {
        *item /= v0;
    }
    v[0] = 1.0;
    (Reflector { v, beta }, mu)
}

/// Applies `H = I - beta v v^T` from the left to the trailing block of `a`
/// starting at `(row, col)`: rows `row..row+v.len()`, columns `col..`.
pub fn apply_left(a: &mut Matrix, h: &Reflector, row: usize, col: usize) {
    if h.beta == 0.0 {
        return;
    }
    let k = h.v.len();
    for j in col..a.cols() {
        let mut s = 0.0;
        for i in 0..k {
            s += h.v[i] * a[(row + i, j)];
        }
        s *= h.beta;
        for i in 0..k {
            a[(row + i, j)] -= s * h.v[i];
        }
    }
}

/// Applies `H` from the right to the trailing block of `a` starting at
/// `(row, col)`: columns `col..col+v.len()`, rows `row..`.
pub fn apply_right(a: &mut Matrix, h: &Reflector, row: usize, col: usize) {
    if h.beta == 0.0 {
        return;
    }
    let k = h.v.len();
    for i in row..a.rows() {
        let mut s = 0.0;
        for j in 0..k {
            s += h.v[j] * a[(i, col + j)];
        }
        s *= h.beta;
        for j in 0..k {
            a[(i, col + j)] -= s * h.v[j];
        }
    }
}

/// Result of the Golub–Kahan bidiagonalization `A = U B V^T` for `m >= n`.
#[derive(Clone, Debug)]
pub struct Bidiagonal {
    /// Thin left factor, `m x n`, orthonormal columns.
    pub u: Matrix,
    /// Main diagonal of the upper-bidiagonal `B`, length `n`.
    pub diag: Vec<f64>,
    /// Superdiagonal of `B`, length `n - 1`.
    pub superdiag: Vec<f64>,
    /// Right factor, `n x n`, orthogonal.
    pub v: Matrix,
}

/// Golub–Kahan bidiagonalization of a tall (or square) matrix (`m >= n`).
///
/// Alternates left reflectors (zeroing below the diagonal) and right
/// reflectors (zeroing right of the superdiagonal), accumulating both factor
/// matrices. This is the first stage of the MAGMA-like two-stage SVD.
pub fn bidiagonalize(a: &Matrix) -> Bidiagonal {
    let (m, n) = a.shape();
    assert!(
        m >= n,
        "bidiagonalize requires m >= n (got {m}x{n}); transpose first"
    );
    let mut work = a.clone();
    let mut left: Vec<(Reflector, usize)> = Vec::with_capacity(n);
    let mut right: Vec<(Reflector, usize)> = Vec::with_capacity(n.saturating_sub(2));

    for k in 0..n {
        // Zero below the diagonal in column k.
        let x: Vec<f64> = (k..m).map(|i| work[(i, k)]).collect();
        let (h, _) = householder(&x);
        apply_left(&mut work, &h, k, k);
        left.push((h, k));
        // Zero right of the superdiagonal in row k.
        if k + 2 < n {
            let x: Vec<f64> = (k + 1..n).map(|j| work[(k, j)]).collect();
            let (h, _) = householder(&x);
            apply_right(&mut work, &h, k, k + 1);
            right.push((h, k + 1));
        }
    }

    // Accumulate U (thin, m x n): apply the left reflectors to I in reverse.
    let mut u = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
    for (h, k) in left.iter().rev() {
        apply_left(&mut u, h, *k, *k);
    }
    // Accumulate V (n x n).
    let mut v = Matrix::identity(n);
    for (h, c) in right.iter().rev() {
        apply_left(&mut v, h, *c, 0);
    }

    let diag: Vec<f64> = (0..n).map(|i| work[(i, i)]).collect();
    let superdiag: Vec<f64> = (0..n.saturating_sub(1)).map(|i| work[(i, i + 1)]).collect();
    Bidiagonal {
        u,
        diag,
        superdiag,
        v,
    }
}

/// Generates a random-ish orthogonal matrix deterministically from a seed by
/// composing Householder reflectors of pseudo-random vectors.
///
/// Not cryptographic; a cheap LCG drives the vectors. Used by the dataset
/// generators (which need orthogonal factors with a prescribed spectrum).
pub fn seeded_orthogonal(n: usize, seed: u64) -> Matrix {
    let mut q = Matrix::identity(n);
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map the top 53 bits to (-1, 1).
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // n reflectors are enough to mix all directions.
    for _ in 0..n.clamp(2, 16) {
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let nrm = dot(&x, &x).sqrt();
        if nrm == 0.0 {
            continue;
        }
        let (h, _) = householder(&x);
        apply_left(&mut q, &h, 0, 0);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gram, matmul};

    fn is_orthogonal(q: &Matrix, tol: f64) -> bool {
        let g = gram(q);
        g.sub(&Matrix::identity(q.cols())).max_abs() < tol
    }

    #[test]
    fn householder_annihilates_tail() {
        let x = vec![3.0, 1.0, -2.0, 0.5];
        let (h, alpha) = householder(&x);
        // Apply H to x: should give (alpha, 0, 0, 0).
        let s: f64 = h.beta * dot(&h.v, &x);
        let hx: Vec<f64> = x.iter().zip(&h.v).map(|(xi, vi)| xi - s * vi).collect();
        assert!((hx[0].abs() - alpha.abs()).abs() < 1e-12);
        for &t in &hx[1..] {
            assert!(t.abs() < 1e-12, "tail not annihilated: {hx:?}");
        }
        // Norm preserved.
        assert!((dot(&hx, &hx) - dot(&x, &x)).abs() < 1e-10);
    }

    #[test]
    fn householder_identity_case() {
        let x = vec![5.0, 0.0, 0.0];
        let (h, alpha) = householder(&x);
        assert_eq!(h.beta, 0.0);
        assert_eq!(alpha, 5.0);
    }

    #[test]
    fn householder_negative_leading() {
        let x = vec![-5.0, 0.0];
        let (h, alpha) = householder(&x);
        assert_eq!(alpha, 5.0);
        assert!(h.beta != 0.0);
    }

    #[test]
    fn bidiagonalize_reconstructs() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let bd = bidiagonalize(&a);
        // Rebuild B.
        let n = 4;
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = bd.diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = bd.superdiag[i];
            }
        }
        let rebuilt = matmul(&matmul(&bd.u, &b), &bd.v.transpose());
        assert!(rebuilt.sub(&a).max_abs() < 1e-10, "reconstruction failed");
        assert!(is_orthogonal(&bd.u, 1e-12));
        assert!(is_orthogonal(&bd.v, 1e-12));
    }

    #[test]
    fn bidiagonalize_square() {
        let a = Matrix::from_fn(5, 5, |i, j| (1.0 + i as f64) / (1.0 + j as f64 + i as f64));
        let bd = bidiagonalize(&a);
        let n = 5;
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = bd.diag[i];
            if i + 1 < n {
                b[(i, i + 1)] = bd.superdiag[i];
            }
        }
        let rebuilt = matmul(&matmul(&bd.u, &b), &bd.v.transpose());
        assert!(rebuilt.sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn seeded_orthogonal_is_orthogonal() {
        for seed in [1u64, 42, 12345] {
            let q = seeded_orthogonal(8, seed);
            assert!(is_orthogonal(&q, 1e-12), "seed {seed} not orthogonal");
        }
    }

    #[test]
    fn seeded_orthogonal_differs_by_seed() {
        let a = seeded_orthogonal(6, 1);
        let b = seeded_orthogonal(6, 2);
        assert!(a.sub(&b).max_abs() > 1e-3);
    }
}
