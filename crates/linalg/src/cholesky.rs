//! Cholesky factorization and the CholeskyQR preconditioner.
//!
//! The paper's ref. \[5\] (*On using the Cholesky QR method in the
//! full-blocked one-sided Jacobi algorithm*) preconditions tall panels with
//! CholeskyQR: `G = A^T A`, `R = chol(G)`, `Q = A R^{-1}`. One Gram GEMM and
//! one triangular solve replace the latency-bound Householder panel — the
//! GPU-friendly alternative to [`crate::qr::qr_thin`], at the price of a
//! squared condition number in the Gram stage.

use crate::gemm::gram;
use crate::matrix::Matrix;

/// Error from a failed Cholesky factorization.
#[derive(Clone, Debug, PartialEq)]
pub struct NotPositiveDefinite {
    /// The pivot index where positivity failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `G = L L^T`.
pub fn cholesky(g: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "cholesky requires a square matrix");
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = g[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { pivot: j });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = g[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Solves `X R = B` in place for upper-triangular `R` (right division,
/// `X = B R^{-1}`), column by column with back-substitution.
pub fn solve_right_upper(b: &mut Matrix, r: &Matrix) {
    let n = r.rows();
    assert_eq!(r.cols(), n);
    assert_eq!(b.cols(), n, "dimension mismatch in triangular solve");
    let m = b.rows();
    for j in 0..n {
        // x_j = (b_j - sum_{k<j} x_k r_kj) / r_jj
        for k in 0..j {
            let rkj = r[(k, j)];
            if rkj != 0.0 {
                for i in 0..m {
                    let t = b[(i, k)] * rkj;
                    b[(i, j)] -= t;
                }
            }
        }
        let rjj = r[(j, j)];
        for i in 0..m {
            b[(i, j)] /= rjj;
        }
    }
}

/// CholeskyQR: `A = Q R` via one Gram product, one Cholesky and one
/// triangular solve. Fails (gracefully) when `A^T A` is numerically
/// indefinite, i.e. `cond(A)` near `1/sqrt(eps)` — callers fall back to
/// Householder QR.
pub fn cholesky_qr(a: &Matrix) -> Result<(Matrix, Matrix), NotPositiveDefinite> {
    let g = gram(a);
    let l = cholesky(&g)?;
    let r = l.transpose(); // G = R^T R with R upper triangular
    let mut q = a.clone();
    solve_right_upper(&mut q, &r);
    Ok((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::generate::{random_uniform, with_condition_number};
    use crate::verify::orthonormality_error;

    #[test]
    fn cholesky_reconstructs_spd() {
        let g = crate::generate::random_spd(6, 3);
        // Make it safely positive definite.
        let g = Matrix::from_fn(6, 6, |i, j| g[(i, j)] + if i == j { 1.0 } else { 0.0 });
        let l = cholesky(&g).unwrap();
        let rebuilt = matmul(&l, &l.transpose());
        assert!(rebuilt.sub(&g).max_abs() < 1e-12);
        // Lower triangular with positive diagonal.
        for j in 0..6 {
            assert!(l[(j, j)] > 0.0);
            for i in 0..j {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let g = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        let err = cholesky(&g).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn triangular_solve_inverts() {
        let r = Matrix::from_rows(3, 3, &[2.0, 1.0, -1.0, 0.0, 3.0, 0.5, 0.0, 0.0, 1.5]);
        let x = random_uniform(4, 3, 9);
        let mut b = matmul(&x, &r);
        solve_right_upper(&mut b, &r);
        assert!(b.sub(&x).max_abs() < 1e-12);
    }

    #[test]
    fn cholesky_qr_factors_well_conditioned() {
        let a = random_uniform(40, 8, 11);
        let (q, r) = cholesky_qr(&a).unwrap();
        assert!(orthonormality_error(&q) < 1e-10, "Q not orthonormal");
        assert!(matmul(&q, &r).sub(&a).max_abs() < 1e-11);
        for j in 0..8 {
            for i in (j + 1)..8 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_qr_fails_gracefully_near_rank_deficiency() {
        // cond ~ 1e9 squares to 1e18 > 1/eps in the Gram: must error or
        // produce a usable Q — never panic.
        let a = with_condition_number(30, 10, 1e9, 5);
        match cholesky_qr(&a) {
            Err(e) => assert!(e.pivot < 10),
            Ok((q, _)) => {
                // If it succeeds, orthogonality will be poor but finite.
                assert!(q.is_finite());
            }
        }
    }

    #[test]
    fn cholesky_qr_matches_householder_r_up_to_signs() {
        let a = random_uniform(25, 5, 21);
        let (_, r_chol) = cholesky_qr(&a).unwrap();
        let (_, r_house) = crate::qr::qr_thin(&a);
        for j in 0..5 {
            for i in 0..=j {
                assert!(
                    (r_chol[(i, j)].abs() - r_house[(i, j)].abs()).abs() < 1e-9,
                    "R mismatch at ({i},{j})"
                );
            }
        }
    }
}
