//! # wsvd-linalg
//!
//! Dense linear-algebra substrate for the W-cycle SVD reproduction
//! (Xiao et al., *W-Cycle SVD: A Multilevel Algorithm for Batched SVD on
//! GPUs*, SC 2022).
//!
//! Provides:
//! * a column-major [`Matrix`] tuned for column-oriented Jacobi methods;
//! * GEMM kernels ([`mod@gemm`]), Gram products and right-updates — the two GEMM
//!   shapes at every W-cycle level;
//! * Jacobi/Givens plane rotations ([`givens`]) with the paper's Eq. (4) and
//!   Eq. (6) formulas;
//! * Householder reflectors and Golub–Kahan bidiagonalization
//!   ([`householder`]) plus implicit-shift QR ([`bidiag_svd`]) — the
//!   MAGMA-style two-stage SVD used both as a baseline and a test oracle;
//! * seeded workload generators ([`generate`]) and verification helpers
//!   ([`verify`]).

#![warn(missing_docs)]

pub mod bidiag_svd;
pub mod cholesky;
pub mod gemm;
pub mod generate;
pub mod givens;
pub mod householder;
pub mod lowp;
pub mod matrix;
pub mod qr;
pub mod svd;
pub mod verify;

pub use gemm::{gemm, gram, matmul, Op};
pub use givens::{one_sided_rotation, rotate_columns, two_sided_rotation, Rotation};
pub use matrix::Matrix;
pub use svd::{singular_values, svd_reference, Svd};
