//! Verification utilities shared by tests, examples and the repro harness.

use crate::gemm::{dot, gram};
use crate::matrix::Matrix;

/// `||Q^T Q - I||_max` — deviation of `Q`'s columns from orthonormality.
pub fn orthonormality_error(q: &Matrix) -> f64 {
    gram(q).sub(&Matrix::identity(q.cols())).max_abs()
}

/// Maximum normalized pairwise column coherence
/// `max_{i<j} |a_i . a_j| / (||a_i|| ||a_j||)`.
///
/// This is the convergence measure of the one-sided Jacobi method: the sweep
/// loop stops when it drops below working accuracy (§II-B). Columns whose
/// norm falls below `eps * ||A||_F` are numerically zero and excluded
/// (de Rijk deflation) — between such columns the "coherence" is pure
/// round-off noise, and including it would stall convergence on matrices
/// with condition numbers near `1/eps` (Table VII's `flower_7_1`).
pub fn max_column_coherence(a: &Matrix) -> f64 {
    let n = a.cols();
    let norms: Vec<f64> = (0..n).map(|j| dot(a.col(j), a.col(j)).sqrt()).collect();
    let deflate = f64::EPSILON * norms.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut worst = 0.0f64;
    for j in 0..n {
        if norms[j] <= deflate {
            continue;
        }
        for i in 0..j {
            if norms[i] <= deflate {
                continue;
            }
            let d = norms[i] * norms[j];
            worst = worst.max(dot(a.col(i), a.col(j)).abs() / d);
        }
    }
    worst
}

/// Schedule- and conditioning-robust convergence test for one-sided Jacobi:
/// every column pair must satisfy `|a_i . a_j| <= tol * ||a_i|| ||a_j||`
/// (relative orthogonality) **or** `|a_i . a_j| <= eps * ||A||_F^2` (the
/// round-off floor — couplings at machine-noise level cannot be reduced
/// further and contribute below-eps absolute error to the spectrum). The
/// second clause is what lets matrices with condition numbers approaching
/// `1/eps` (Table VII's `flower_7_1`) terminate.
pub fn columns_converged(a: &Matrix, tol: f64) -> bool {
    let n = a.cols();
    let norms: Vec<f64> = (0..n).map(|j| dot(a.col(j), a.col(j)).sqrt()).collect();
    let fro2: f64 = norms.iter().map(|x| x * x).sum();
    let floor = f64::EPSILON * fro2;
    for j in 0..n {
        for i in 0..j {
            let aij = dot(a.col(i), a.col(j)).abs();
            if aij > tol * norms[i] * norms[j] && aij > floor {
                return false;
            }
        }
    }
    true
}

/// Root-sum-square of normalized off-diagonal Gram entries — the "error"
/// metric plotted against sweeps in Fig. 15(a).
pub fn column_orthogonality_residual(a: &Matrix) -> f64 {
    let n = a.cols();
    let norms: Vec<f64> = (0..n).map(|j| dot(a.col(j), a.col(j)).sqrt()).collect();
    let mut s = 0.0;
    for j in 0..n {
        for i in 0..j {
            let d = norms[i] * norms[j];
            if d > 0.0 {
                let c = dot(a.col(i), a.col(j)) / d;
                s += c * c;
            }
        }
    }
    s.sqrt()
}

/// Asserts two spectra agree to `tol` (absolute on each value), with a
/// readable panic message. For use in integration tests.
pub fn assert_spectra_close(got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len(), "spectrum length mismatch");
    for (k, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol * (1.0 + w.abs()),
            "singular value {k}: got {g}, want {w} (tol {tol})"
        );
    }
}

/// Relative gap between two spectra: `max_k |g_k - w_k| / (1 + |w_k|)`.
pub fn spectrum_distance(got: &[f64], want: &[f64]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() / (1.0 + w.abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_zero_errors() {
        let q = Matrix::identity(5);
        assert_eq!(orthonormality_error(&q), 0.0);
        assert_eq!(max_column_coherence(&q), 0.0);
        assert_eq!(column_orthogonality_residual(&q), 0.0);
    }

    #[test]
    fn coherence_of_duplicated_column_is_one() {
        let mut a = Matrix::zeros(3, 2);
        a.col_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        a.col_mut(1).copy_from_slice(&[2.0, 4.0, 6.0]);
        assert!((max_column_coherence(&a) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn residual_accumulates_pairs() {
        // Three mutually 45-degree columns in 2D cannot exist; use a simple
        // construction where two pairs have known coherence.
        let a = Matrix::from_rows(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        // cols: (1,0) and (1,1): coherence = 1/sqrt(2).
        let c = max_column_coherence(&a);
        assert!((c - 1.0 / 2f64.sqrt()).abs() < 1e-14);
        assert!((column_orthogonality_residual(&a) - c).abs() < 1e-14);
    }

    #[test]
    fn columns_converged_relative_clause() {
        let q = Matrix::identity(4);
        assert!(columns_converged(&q, 1e-12));
        let a = Matrix::from_rows(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(!columns_converged(&a, 1e-12));
        assert!(columns_converged(&a, 0.9)); // coherence 1/sqrt(2) < 0.9
    }

    #[test]
    fn columns_converged_roundoff_floor_clause() {
        // Two columns: one O(1), one at machine-noise scale whose coherence
        // with the first is O(1) but whose coupling is below eps*||A||^2.
        let mut a = Matrix::zeros(3, 2);
        a.col_mut(0).copy_from_slice(&[1.0, 1.0, 1.0]);
        a.col_mut(1).copy_from_slice(&[1e-17, 1e-17, 0.0]);
        assert!(max_column_coherence(&a) < 1e-12 || columns_converged(&a, 1e-12));
        assert!(
            columns_converged(&a, 1e-12),
            "noise-level coupling must count as converged"
        );
    }

    #[test]
    fn spectrum_distance_zero_for_equal() {
        assert_eq!(spectrum_distance(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(spectrum_distance(&[1.0, 2.1], &[1.0, 2.0]) > 0.0);
    }

    #[test]
    #[should_panic]
    fn assert_spectra_close_panics_on_gap() {
        assert_spectra_close(&[1.0], &[2.0], 1e-6);
    }
}
