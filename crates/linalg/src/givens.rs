//! Givens / Jacobi plane rotations.
//!
//! Two flavours appear in the paper:
//! * the **one-sided** rotation (Eq. 3–4) orthogonalizing a pair of columns
//!   from the three inner products `a_i^T a_i`, `a_i^T a_j`, `a_j^T a_j`;
//! * the **two-sided** rotation (§II-D) annihilating the symmetric pair
//!   `b_ij = b_ji` from `b_ii`, `b_ij`, `b_jj`.
//!
//! Both reduce to the same stable `t = sign(x) / (|x| + sqrt(1 + x^2))`
//! formula with a different definition of `x`.

/// A 2x2 plane rotation `[[c, -s], [s, c]]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rotation {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
}

impl Rotation {
    /// The identity rotation (no-op).
    pub const IDENTITY: Rotation = Rotation { c: 1.0, s: 0.0 };

    /// True when this rotation is (numerically) the identity.
    pub fn is_identity(&self) -> bool {
        self.s == 0.0 && self.c == 1.0
    }

    /// Checks `c^2 + s^2 = 1` to the given tolerance.
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        (self.c * self.c + self.s * self.s - 1.0).abs() <= tol
    }
}

/// Stable tangent of the Jacobi angle: `t = sign(x) / (|x| + sqrt(1 + x^2))`.
#[inline]
fn jacobi_tangent(x: f64) -> f64 {
    let sign = if x >= 0.0 { 1.0 } else { -1.0 };
    sign / (x.abs() + (1.0 + x * x).sqrt())
}

/// One-sided Jacobi rotation (Eq. 4) from the three column inner products.
///
/// `aii = a_i^T a_i`, `aij = a_i^T a_j`, `ajj = a_j^T a_j`. Returns the
/// rotation that makes the updated columns orthogonal. When `aij` is already
/// negligible relative to the column norms the identity is returned.
pub fn one_sided_rotation(aii: f64, aij: f64, ajj: f64) -> Rotation {
    if aij == 0.0 {
        return Rotation::IDENTITY;
    }
    let tau = (aii - ajj) / (2.0 * aij);
    let t = jacobi_tangent(tau);
    let c = 1.0 / (1.0 + t * t).sqrt();
    Rotation { c, s: t * c }
}

/// Two-sided Jacobi (Givens) rotation (§II-D) zeroing `b_ij` of a symmetric
/// 2x2 block `[[b_ii, b_ij], [b_ij, b_jj]]`.
pub fn two_sided_rotation(bii: f64, bij: f64, bjj: f64) -> Rotation {
    if bij == 0.0 {
        return Rotation::IDENTITY;
    }
    let rho = (bii - bjj) / (2.0 * bij);
    let t = jacobi_tangent(rho);
    let c = 1.0 / (1.0 + t * t).sqrt();
    Rotation { c, s: t * c }
}

/// Applies `(x, y) <- (x, y) * [[c, -s], [s, c]]` to two column vectors:
/// `x' = c*x + s*y`, `y' = -s*x + c*y` (Eq. 3 with our sign convention).
#[inline]
pub fn rotate_columns(rot: Rotation, x: &mut [f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let (c, s) = (rot.c, rot.s);
    for k in 0..x.len() {
        let xi = x[k];
        let yi = y[k];
        x[k] = c * xi + s * yi;
        y[k] = -s * xi + c * yi;
    }
}

/// New inner products after a one-sided rotation, per Eq. (6):
/// returns `(a_i'^T a_i', a_j'^T a_j')`. Used by the inner-product caching
/// optimization (§IV-B2) to skip two-thirds of the dot products.
#[inline]
pub fn rotated_norms(rot: Rotation, aii: f64, aij: f64, ajj: f64) -> (f64, f64) {
    let (c, s) = (rot.c, rot.s);
    let new_ii = c * c * aii + 2.0 * c * s * aij + s * s * ajj;
    let new_jj = s * s * aii - 2.0 * c * s * aij + c * c * ajj;
    (new_ii, new_jj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_orthogonal() {
        let r = one_sided_rotation(4.0, 0.0, 1.0);
        assert!(r.is_identity());
        let r = two_sided_rotation(4.0, 0.0, 1.0);
        assert!(r.is_identity());
    }

    #[test]
    fn rotation_is_orthonormal() {
        for &(aii, aij, ajj) in &[(3.0, 1.5, 1.0), (1.0, -2.0, 5.0), (1e-8, 1e8, 2.0)] {
            let r = one_sided_rotation(aii, aij, ajj);
            assert!(r.is_orthonormal(1e-14), "rotation {r:?} not orthonormal");
        }
    }

    #[test]
    fn one_sided_orthogonalizes_columns() {
        let mut x = vec![1.0, 2.0, 0.5];
        let mut y = vec![0.7, -1.0, 3.0];
        let aii = crate::gemm::dot(&x, &x);
        let aij = crate::gemm::dot(&x, &y);
        let ajj = crate::gemm::dot(&y, &y);
        let r = one_sided_rotation(aii, aij, ajj);
        rotate_columns(r, &mut x, &mut y);
        assert!(crate::gemm::dot(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_frobenius() {
        let mut x = vec![1.0, 2.0, 0.5];
        let mut y = vec![0.7, -1.0, 3.0];
        let before = crate::gemm::dot(&x, &x) + crate::gemm::dot(&y, &y);
        let r = one_sided_rotation(
            crate::gemm::dot(&x, &x),
            crate::gemm::dot(&x, &y),
            crate::gemm::dot(&y, &y),
        );
        rotate_columns(r, &mut x, &mut y);
        let after = crate::gemm::dot(&x, &x) + crate::gemm::dot(&y, &y);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn two_sided_annihilates_offdiag() {
        let (bii, bij, bjj) = (4.0, 2.0, 1.0);
        let r = two_sided_rotation(bii, bij, bjj);
        let (c, s) = (r.c, r.s);
        // b'_ij of G^T B G for G = [[c,-s],[s,c]].
        let b_off = c * s * (bjj - bii) + (c * c - s * s) * bij;
        assert!(b_off.abs() < 1e-14);
        // Trace (sum of eigenvalues) preserved.
        let b_ii = c * c * bii + 2.0 * c * s * bij + s * s * bjj;
        let b_jj = s * s * bii - 2.0 * c * s * bij + c * c * bjj;
        assert!((b_ii + b_jj - (bii + bjj)).abs() < 1e-12);
    }

    #[test]
    fn rotated_norms_matches_direct() {
        let x = vec![1.0, 2.0, 0.5, -0.3];
        let y = vec![0.7, -1.0, 3.0, 0.2];
        let aii = crate::gemm::dot(&x, &x);
        let aij = crate::gemm::dot(&x, &y);
        let ajj = crate::gemm::dot(&y, &y);
        let r = one_sided_rotation(aii, aij, ajj);
        let (pred_ii, pred_jj) = rotated_norms(r, aii, aij, ajj);
        let (mut x2, mut y2) = (x.clone(), y.clone());
        rotate_columns(r, &mut x2, &mut y2);
        assert!((pred_ii - crate::gemm::dot(&x2, &x2)).abs() < 1e-12);
        assert!((pred_jj - crate::gemm::dot(&y2, &y2)).abs() < 1e-12);
    }

    #[test]
    fn tangent_extreme_tau_is_stable() {
        // Huge tau -> tiny rotation; must not overflow.
        let r = one_sided_rotation(1e300, 1.0, 0.0);
        assert!(r.c.is_finite() && r.s.is_finite());
        assert!(r.is_orthonormal(1e-12));
    }
}
