//! Implicit-shift QR iteration on a bidiagonal matrix.
//!
//! Second stage of the two-stage (MAGMA-style) SVD: given the bidiagonal
//! `B = U_b^T A V_b`, diagonalize `B = P Σ Q^T` with chains of Givens
//! rotations, accumulating `P` into `U` and `Q` into `V`. The control
//! structure (deflation cases, Wilkinson-like shift, bulge chase) follows the
//! classic Golub–Reinsch / JAMA formulation.

use crate::matrix::Matrix;

const MAX_ITERS_PER_VALUE: usize = 75;

/// Machine epsilon used in the negligibility tests.
const EPS: f64 = f64::EPSILON;
/// Underflow guard (2^-966, as in LAPACK's dbdsqr port).
const TINY: f64 = 1.2037062152420224e-291;

#[inline]
fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

#[inline]
fn rotate_cols(m: &mut Matrix, j: usize, k: usize, cs: f64, sn: f64) {
    let rows = m.rows();
    let (cj, ck) = m.col_pair_mut(j, k);
    for i in 0..rows {
        let t = cs * cj[i] + sn * ck[i];
        ck[i] = -sn * cj[i] + cs * ck[i];
        cj[i] = t;
    }
}

/// Diagonalizes an upper-bidiagonal matrix in place.
///
/// * `s` — main diagonal (length `n`), overwritten with the singular values
///   (non-negative, unordered on return).
/// * `e` — superdiagonal (length `n`; `e[n-1]` must be 0), destroyed.
/// * `u` — if `Some`, an `m x n` matrix whose columns are combined by the
///   left rotations (pass `U_b` from the bidiagonalization).
/// * `v` — if `Some`, an `n x n` matrix combined by the right rotations.
///
/// Returns the number of QR iterations performed, or `Err` if a singular
/// value failed to converge (never observed for finite input; guards against
/// NaN poisoning).
pub fn bidiag_qr(
    s: &mut [f64],
    e: &mut [f64],
    mut u: Option<&mut Matrix>,
    mut v: Option<&mut Matrix>,
) -> Result<usize, String> {
    let n = s.len();
    assert_eq!(
        e.len(),
        n,
        "superdiagonal buffer must have length n (last element 0)"
    );
    if n == 0 {
        return Ok(0);
    }
    // Norm-level threshold for the escalation path below: when a cluster of
    // noise-floor values (|s| ~ eps*||B||) stalls the relative negligibility
    // test, couplings below eps*||B|| are deflated absolutely — they carry
    // no information above the round-off of the factorization itself.
    let amax = s
        .iter()
        .chain(e.iter())
        .fold(0.0f64, |m, &x| m.max(x.abs()));
    let abs_thresh = EPS * amax;

    let mut p = n;
    let mut total_iters = 0usize;
    let mut iter = 0usize;

    while p > 0 {
        if iter == MAX_ITERS_PER_VALUE / 2 {
            // Escalate: absolute deflation of noise-level couplings.
            for x in e[..p - 1].iter_mut() {
                if x.abs() <= abs_thresh {
                    *x = 0.0;
                }
            }
        }
        if iter > MAX_ITERS_PER_VALUE {
            return Err(format!("bidiagonal QR failed to converge (p = {p})"));
        }

        // Find the largest k such that e[k] is negligible (split point).
        let mut k = p as isize - 2;
        while k >= 0 {
            let ku = k as usize;
            if e[ku].abs() <= TINY + EPS * (s[ku].abs() + s[ku + 1].abs()) {
                e[ku] = 0.0;
                break;
            }
            k -= 1;
        }

        let kase;
        if k == p as isize - 2 {
            kase = 4; // s[p-1] has converged.
        } else {
            let mut ks = p as isize - 1;
            while ks > k {
                let ksu = ks as usize;
                let t = (if ks != p as isize - 1 {
                    e[ksu].abs()
                } else {
                    0.0
                }) + (if ks != k + 1 { e[ksu - 1].abs() } else { 0.0 });
                if s[ksu].abs() <= TINY + EPS * t {
                    s[ksu] = 0.0;
                    break;
                }
                ks -= 1;
            }
            if ks == k {
                kase = 3; // QR step on the unreduced block.
            } else if ks == p as isize - 1 {
                kase = 1; // Deflate negligible s[p-1].
            } else {
                kase = 2; // Split at negligible s[ks].
                k = ks;
            }
        }
        let k = (k + 1) as usize;

        match kase {
            // Deflate negligible s[p-1]: chase e[p-2] up with right rotations.
            1 => {
                let mut f = e[p - 2];
                e[p - 2] = 0.0;
                for j in (k..p - 1).rev() {
                    let t = hypot(s[j], f);
                    let cs = s[j] / t;
                    let sn = f / t;
                    s[j] = t;
                    if j != k {
                        f = -sn * e[j - 1];
                        e[j - 1] *= cs;
                    }
                    if let Some(v) = v.as_deref_mut() {
                        rotate_cols(v, j, p - 1, cs, sn);
                    }
                }
            }
            // Split at negligible s[k-1]: chase e[k-1] right with left rotations.
            2 => {
                let mut f = e[k - 1];
                e[k - 1] = 0.0;
                for j in k..p {
                    let t = hypot(s[j], f);
                    let cs = s[j] / t;
                    let sn = f / t;
                    s[j] = t;
                    f = -sn * e[j];
                    e[j] *= cs;
                    if let Some(u) = u.as_deref_mut() {
                        rotate_cols(u, j, k - 1, cs, sn);
                    }
                }
            }
            // One implicit-shift QR step.
            3 => {
                // Shift from the trailing 2x2 of B^T B, scaled for safety.
                let scale = s[p - 1]
                    .abs()
                    .max(s[p - 2].abs())
                    .max(e[p - 2].abs())
                    .max(s[k].abs())
                    .max(e[k].abs());
                let sp = s[p - 1] / scale;
                let spm1 = s[p - 2] / scale;
                let epm1 = e[p - 2] / scale;
                let sk = s[k] / scale;
                let ek = e[k] / scale;
                let b = ((spm1 + sp) * (spm1 - sp) + epm1 * epm1) / 2.0;
                let c = (sp * epm1) * (sp * epm1);
                let mut shift = 0.0;
                if b != 0.0 || c != 0.0 {
                    shift = (b * b + c).sqrt();
                    if b < 0.0 {
                        shift = -shift;
                    }
                    shift = c / (b + shift);
                }
                let mut f = (sk + sp) * (sk - sp) + shift;
                let mut g = sk * ek;

                // Chase the bulge.
                for j in k..p - 1 {
                    let t = hypot(f, g);
                    let cs = f / t;
                    let sn = g / t;
                    if j != k {
                        e[j - 1] = t;
                    }
                    f = cs * s[j] + sn * e[j];
                    e[j] = cs * e[j] - sn * s[j];
                    g = sn * s[j + 1];
                    s[j + 1] *= cs;
                    if let Some(v) = v.as_deref_mut() {
                        rotate_cols(v, j, j + 1, cs, sn);
                    }
                    let t = hypot(f, g);
                    let cs = f / t;
                    let sn = g / t;
                    s[j] = t;
                    f = cs * e[j] + sn * s[j + 1];
                    s[j + 1] = -sn * e[j] + cs * s[j + 1];
                    if j < p - 2 {
                        g = sn * e[j + 1];
                        e[j + 1] *= cs;
                    }
                    if let Some(u) = u.as_deref_mut() {
                        rotate_cols(u, j, j + 1, cs, sn);
                    }
                }
                e[p - 2] = f;
                iter += 1;
                total_iters += 1;
            }
            // Convergence of s[p-1].
            _ => {
                // Make the singular value non-negative.
                if s[p - 1] < 0.0 {
                    s[p - 1] = -s[p - 1];
                    if let Some(v) = v.as_deref_mut() {
                        let col = v.col_mut(p - 1);
                        for x in col.iter_mut() {
                            *x = -*x;
                        }
                    }
                }
                iter = 0;
                p -= 1;
            }
        }
    }
    Ok(total_iters)
}

/// Sorts singular values descending, permuting the columns of `u`/`v` in step.
pub fn sort_svd(s: &mut [f64], mut u: Option<&mut Matrix>, mut v: Option<&mut Matrix>) {
    let n = s.len();
    // Selection sort: n is small and we need synchronized column swaps.
    for i in 0..n {
        let mut max_j = i;
        for j in i + 1..n {
            if s[j] > s[max_j] {
                max_j = j;
            }
        }
        if max_j != i {
            s.swap(i, max_j);
            if let Some(u) = u.as_deref_mut() {
                u.swap_cols(i, max_j);
            }
            if let Some(v) = v.as_deref_mut() {
                v.swap_cols(i, max_j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gram, matmul};

    fn rebuild(s: &[f64], u: &Matrix, v: &Matrix) -> Matrix {
        let mut sigma = Matrix::zeros(u.cols(), v.cols());
        for (i, &x) in s.iter().enumerate() {
            sigma[(i, i)] = x;
        }
        matmul(&matmul(u, &sigma), &v.transpose())
    }

    #[test]
    fn diagonal_input_is_fixed_point() {
        let mut s = vec![3.0, 1.0, 2.0];
        let mut e = vec![0.0, 0.0, 0.0];
        let iters = bidiag_qr(&mut s, &mut e, None, None).unwrap();
        assert_eq!(iters, 0);
        assert_eq!(s, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn two_by_two_known_values() {
        // B = [[1, 1], [0, 1]]: singular values are golden-ratio related:
        // sigma = sqrt((3 ± sqrt(5))/2).
        let mut s = vec![1.0, 1.0];
        let mut e = vec![1.0, 0.0];
        let mut u = Matrix::identity(2);
        let mut v = Matrix::identity(2);
        bidiag_qr(&mut s, &mut e, Some(&mut u), Some(&mut v)).unwrap();
        sort_svd(&mut s, Some(&mut u), Some(&mut v));
        let exp_hi = ((3.0 + 5f64.sqrt()) / 2.0).sqrt();
        let exp_lo = ((3.0 - 5f64.sqrt()) / 2.0).sqrt();
        assert!((s[0] - exp_hi).abs() < 1e-12);
        assert!((s[1] - exp_lo).abs() < 1e-12);
        let b = Matrix::from_rows(2, 2, &[1., 1., 0., 1.]);
        assert!(rebuild(&s, &u, &v).sub(&b).max_abs() < 1e-12);
    }

    #[test]
    fn random_bidiagonal_reconstruction_and_orthogonality() {
        let n = 12;
        let mut s: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 19) as f64 - 9.0).collect();
        let mut e: Vec<f64> = (0..n).map(|i| ((i * 23 + 5) % 17) as f64 - 8.0).collect();
        e[n - 1] = 0.0;
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = s[i];
            if i + 1 < n {
                b[(i, i + 1)] = e[i];
            }
        }
        let mut u = Matrix::identity(n);
        let mut v = Matrix::identity(n);
        bidiag_qr(&mut s, &mut e, Some(&mut u), Some(&mut v)).unwrap();
        sort_svd(&mut s, Some(&mut u), Some(&mut v));

        assert!(s.iter().all(|&x| x >= 0.0), "negative singular value");
        assert!(s.windows(2).all(|w| w[0] >= w[1]), "not sorted descending");
        assert!(gram(&u).sub(&Matrix::identity(n)).max_abs() < 1e-12);
        assert!(gram(&v).sub(&Matrix::identity(n)).max_abs() < 1e-12);
        assert!(rebuild(&s, &u, &v).sub(&b).max_abs() < 1e-10);
    }

    #[test]
    fn handles_zero_diagonal_entry() {
        // A zero on the diagonal forces the kase-2 split path.
        let mut s = vec![2.0, 0.0, 3.0];
        let mut e = vec![1.0, 1.0, 0.0];
        let mut b = Matrix::zeros(3, 3);
        for i in 0..3 {
            b[(i, i)] = s[i];
            if i < 2 {
                b[(i, i + 1)] = e[i];
            }
        }
        let mut u = Matrix::identity(3);
        let mut v = Matrix::identity(3);
        bidiag_qr(&mut s, &mut e, Some(&mut u), Some(&mut v)).unwrap();
        sort_svd(&mut s, Some(&mut u), Some(&mut v));
        assert!(rebuild(&s, &u, &v).sub(&b).max_abs() < 1e-12);
    }

    #[test]
    fn sort_is_descending_and_consistent() {
        let mut s = vec![1.0, 4.0, 2.0];
        let mut u = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let u0 = u.clone();
        sort_svd(&mut s, Some(&mut u), None);
        assert_eq!(s, vec![4.0, 2.0, 1.0]);
        assert_eq!(u.col(0), u0.col(1));
        assert_eq!(u.col(1), u0.col(2));
        assert_eq!(u.col(2), u0.col(0));
    }
}
