//! Full SVD driver and result type.
//!
//! `svd_reference` is the two-stage (bidiagonalize + implicit-shift QR) SVD;
//! it is the numerical core of the MAGMA-like baseline and the oracle used to
//! validate every Jacobi kernel in the workspace.

use crate::bidiag_svd::{bidiag_qr, sort_svd};
use crate::gemm::{gram, matmul};
use crate::householder::bidiagonalize;
use crate::matrix::Matrix;

/// The factorization `A = U Σ V^T` in thin form.
#[derive(Clone, Debug)]
pub struct Svd {
    /// `m x r` matrix with orthonormal columns (`r = min(m, n)`).
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// `n x r` matrix with orthonormal columns.
    pub v: Matrix,
}

impl Svd {
    /// Rebuilds `U Σ V^T`.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..r {
            let s = self.sigma[j];
            for x in us.col_mut(j) {
                *x *= s;
            }
        }
        matmul(&us, &self.v.transpose())
    }

    /// `||A - U Σ V^T||_F / ||A||_F` (0 for a zero matrix that rebuilt to 0).
    pub fn relative_residual(&self, a: &Matrix) -> f64 {
        let denom = a.fro_norm();
        let diff = self.reconstruct().sub(a).fro_norm();
        if denom == 0.0 {
            diff
        } else {
            diff / denom
        }
    }

    /// `max(||U^T U - I||_max, ||V^T V - I||_max)`.
    pub fn orthogonality_error(&self) -> f64 {
        let eu = gram(&self.u)
            .sub(&Matrix::identity(self.u.cols()))
            .max_abs();
        let ev = gram(&self.v)
            .sub(&Matrix::identity(self.v.cols()))
            .max_abs();
        eu.max(ev)
    }

    /// 2-norm condition number `σ_max / σ_min` (∞ if rank-deficient).
    pub fn condition_number(&self) -> f64 {
        match (self.sigma.first(), self.sigma.last()) {
            (Some(&hi), Some(&lo)) if lo > 0.0 => hi / lo,
            (Some(_), Some(_)) => f64::INFINITY,
            _ => 1.0,
        }
    }
}

/// Two-stage reference SVD (Golub–Reinsch): bidiagonalize, then QR-iterate.
///
/// Handles `m < n` by decomposing the transpose and swapping the factors.
pub fn svd_reference(a: &Matrix) -> Result<Svd, String> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            sigma: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    if m < n {
        let t = svd_reference(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        });
    }
    let bd = bidiagonalize(a);
    let mut s = bd.diag.clone();
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(&bd.superdiag);
    let mut u = bd.u;
    let mut v = bd.v;
    bidiag_qr(&mut s, &mut e, Some(&mut u), Some(&mut v))?;
    sort_svd(&mut s, Some(&mut u), Some(&mut v));
    Ok(Svd { u, sigma: s, v })
}

/// Singular values only (no factor accumulation — faster for spectra checks).
pub fn singular_values(a: &Matrix) -> Result<Vec<f64>, String> {
    let (m, n) = a.shape();
    if m < n {
        return singular_values(&a.transpose());
    }
    if n == 0 {
        return Ok(vec![]);
    }
    let bd = bidiagonalize(a);
    let mut s = bd.diag.clone();
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(&bd.superdiag);
    bidiag_qr(&mut s, &mut e, None, None)?;
    sort_svd(&mut s, None, None);
    Ok(s)
}

/// Symmetric eigendecomposition via the SVD machinery is *not* generally
/// valid (signs are lost); this helper instead measures how far `B` deviates
/// from `J Λ J^T` for a candidate eigendecomposition — used by EVD tests.
pub fn evd_residual(b: &Matrix, j: &Matrix, lambda: &[f64]) -> f64 {
    let mut jl = j.clone();
    for (k, &l) in lambda.iter().enumerate() {
        for x in jl.col_mut(k) {
            *x *= l;
        }
    }
    let rebuilt = matmul(&jl, &j.transpose());
    let denom = b.fro_norm().max(1e-300);
    rebuilt.sub(b).fro_norm() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::seeded_orthogonal;

    fn conditioned(m: usize, n: usize, sigma: &[f64], seed: u64) -> Matrix {
        let r = m.min(n);
        assert_eq!(sigma.len(), r);
        let u = seeded_orthogonal(m, seed);
        let v = seeded_orthogonal(n, seed ^ 0xdead_beef);
        let mut s = Matrix::zeros(m, n);
        for (i, &x) in sigma.iter().enumerate() {
            s[(i, i)] = x;
        }
        matmul(&matmul(&u, &s), &v.transpose())
    }

    #[test]
    fn recovers_known_spectrum_square() {
        let sigma = vec![10.0, 5.0, 2.0, 0.5];
        let a = conditioned(4, 4, &sigma, 7);
        let svd = svd_reference(&a).unwrap();
        for (got, want) in svd.sigma.iter().zip(&sigma) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
        assert!(svd.relative_residual(&a) < 1e-12);
        assert!(svd.orthogonality_error() < 1e-12);
    }

    #[test]
    fn recovers_known_spectrum_tall() {
        let sigma = vec![4.0, 3.0, 1.0];
        let a = conditioned(8, 3, &sigma, 13);
        let svd = svd_reference(&a).unwrap();
        for (got, want) in svd.sigma.iter().zip(&sigma) {
            assert!((got - want).abs() < 1e-10);
        }
        assert!(svd.relative_residual(&a) < 1e-12);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let sigma = vec![6.0, 2.0];
        let a = conditioned(2, 9, &sigma, 21);
        let svd = svd_reference(&a).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (9, 2));
        for (got, want) in svd.sigma.iter().zip(&sigma) {
            assert!((got - want).abs() < 1e-10);
        }
        assert!(svd.relative_residual(&a) < 1e-12);
        assert!(svd.orthogonality_error() < 1e-12);
    }

    #[test]
    fn rank_deficient() {
        let sigma = vec![3.0, 1.0, 0.0];
        let a = conditioned(5, 3, &sigma, 3);
        let svd = svd_reference(&a).unwrap();
        assert!(svd.sigma[2].abs() < 1e-12);
        assert!(svd.relative_residual(&a) < 1e-12);
        // The numerically smallest value may be a tiny positive round-off,
        // so the condition number is "effectively infinite".
        assert!(svd.condition_number() > 1e12);
    }

    #[test]
    fn singular_values_match_full_svd() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 13 + j * 29) % 23) as f64 / 23.0 - 0.4);
        let s1 = singular_values(&a).unwrap();
        let s2 = svd_reference(&a).unwrap().sigma;
        for (a, b) in s1.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let svd = svd_reference(&a).unwrap();
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(1, 1, &[-3.0]);
        let svd = svd_reference(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-15);
        assert!(svd.relative_residual(&a) < 1e-15);
    }

    #[test]
    fn ill_conditioned_keeps_relative_accuracy_of_large_values() {
        let sigma = vec![1e8, 1.0, 1e-8];
        let a = conditioned(6, 3, &sigma, 99);
        let svd = svd_reference(&a).unwrap();
        assert!((svd.sigma[0] - 1e8).abs() / 1e8 < 1e-12);
        assert!((svd.sigma[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn condition_number_matches_spectrum() {
        let a = conditioned(4, 4, &[8.0, 4.0, 2.0, 1.0], 5);
        let svd = svd_reference(&a).unwrap();
        assert!((svd.condition_number() - 8.0).abs() < 1e-9);
    }
}
