//! Dense column-major matrix type.
//!
//! Column-major storage is the natural layout for one-sided Jacobi methods:
//! every primitive of the algorithm (column inner products, plane rotations,
//! column-block pairing) touches whole columns, which are contiguous here.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, column-major, `f64` matrix.
///
/// Element `(i, j)` lives at `data[i + j * rows]`. Columns are contiguous.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from column-major data. Panics if the length mismatches.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "column-major data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row-major data (convenience for literals in tests).
    pub fn from_rows(rows: usize, cols: usize, row_major: &[f64]) -> Self {
        assert_eq!(row_major.len(), rows * cols);
        Self::from_fn(rows, cols, |i, j| row_major[i * cols + j])
    }

    /// Builds a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage footprint in bytes (the quantity checked against SM capacity).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Contiguous column slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable contiguous column slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct mutable column slices (for plane rotations).
    ///
    /// Panics if `a == b`.
    pub fn col_pair_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "col_pair_mut requires distinct columns");
        let r = self.rows;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.data.split_at_mut(hi * r);
        let lo_col = &mut left[lo * r..(lo + 1) * r];
        let hi_col = &mut right[..r];
        if a < b {
            (lo_col, hi_col)
        } else {
            (hi_col, lo_col)
        }
    }

    /// Underlying column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its column-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Copies columns `[start, start + width)` into a new matrix.
    pub fn col_block(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols);
        let data = self.data[start * self.rows..(start + width) * self.rows].to_vec();
        Matrix {
            rows: self.rows,
            cols: width,
            data,
        }
    }

    /// Copies a pair of equally wide column blocks `[i*w, i*w+w)` and
    /// `[j*w, j*w+w)` into one `rows x 2w` matrix `A_ij = [A_i, A_j]`.
    pub fn paired_col_blocks(&self, i: usize, j: usize, w: usize) -> Matrix {
        assert!(i * w + w <= self.cols && j * w + w <= self.cols);
        let mut data = Vec::with_capacity(self.rows * 2 * w);
        data.extend_from_slice(&self.data[i * w * self.rows..(i * w + w) * self.rows]);
        data.extend_from_slice(&self.data[j * w * self.rows..(j * w + w) * self.rows]);
        Matrix {
            rows: self.rows,
            cols: 2 * w,
            data,
        }
    }

    /// Writes `block` (of width `2w`) back into column blocks `i` and `j`.
    pub fn store_paired_col_blocks(&mut self, i: usize, j: usize, w: usize, block: &Matrix) {
        assert_eq!(block.rows, self.rows);
        assert_eq!(block.cols, 2 * w);
        let r = self.rows;
        self.data[i * w * r..(i * w + w) * r].copy_from_slice(&block.data[..w * r]);
        self.data[j * w * r..(j * w + w) * r].copy_from_slice(&block.data[w * r..]);
    }

    /// Copies the rectangular sub-matrix with top-left `(row, col)`.
    pub fn sub_matrix(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> Matrix {
        assert!(row + nrows <= self.rows && col + ncols <= self.cols);
        Matrix::from_fn(nrows, ncols, |i, j| self[(row + i, col + j)])
    }

    /// Writes `block` into the rectangle with top-left `(row, col)`.
    pub fn set_sub_matrix(&mut self, row: usize, col: usize, block: &Matrix) {
        assert!(row + block.rows <= self.rows && col + block.cols <= self.cols);
        for j in 0..block.cols {
            for i in 0..block.rows {
                self[(row + i, col + j)] = block[(i, j)];
            }
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Element-wise `self - other` as a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Off-diagonal Frobenius norm (convergence measure for two-sided Jacobi).
    pub fn off_diag_norm(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.cols {
            for i in 0..self.rows {
                if i != j {
                    s += self[(i, j)] * self[(i, j)];
                }
            }
        }
        s.sqrt()
    }

    /// Main-diagonal entries.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Swaps two columns in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let r = self.rows;
        let (ca, cb) = self.col_pair_mut(a, b);
        for i in 0..r {
            std::mem::swap(&mut ca[i], &mut cb[i]);
        }
    }

    /// True if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {:?}",
            self.shape()
        );
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {:?}",
            self.shape()
        );
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diag() {
        let m = Matrix::identity(4);
        assert_eq!(m.diag(), vec![1.0; 4]);
        assert_eq!(m.off_diag_norm(), 0.0);
    }

    #[test]
    fn col_major_layout() {
        let m = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.col(1), &[2.0, 5.0]);
        assert_eq!(m.as_slice(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn col_pair_mut_both_orders() {
        let mut m = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        {
            let (a, b) = m.col_pair_mut(0, 2);
            assert_eq!(a, &[1.0, 4.0]);
            assert_eq!(b, &[3.0, 6.0]);
        }
        {
            let (a, b) = m.col_pair_mut(2, 0);
            assert_eq!(a, &[3.0, 6.0]);
            assert_eq!(b, &[1.0, 4.0]);
        }
    }

    #[test]
    #[should_panic]
    fn col_pair_mut_same_col_panics() {
        let mut m = Matrix::zeros(2, 2);
        let _ = m.col_pair_mut(1, 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(4, 7, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(3, 2)], m[(2, 3)]);
    }

    #[test]
    fn paired_col_blocks_roundtrip() {
        let m = Matrix::from_fn(4, 8, |i, j| (i + j * 4) as f64);
        let blk = m.paired_col_blocks(0, 3, 2);
        assert_eq!(blk.shape(), (4, 4));
        assert_eq!(blk.col(0), m.col(0));
        assert_eq!(blk.col(3), m.col(7));
        let mut m2 = m.clone();
        m2.store_paired_col_blocks(0, 3, 2, &blk);
        assert_eq!(m2, m);
    }

    #[test]
    fn sub_matrix_and_set() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let s = m.sub_matrix(1, 2, 2, 3);
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::zeros(5, 5);
        z.set_sub_matrix(1, 2, &s);
        assert_eq!(z[(2, 4)], m[(2, 4)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(2, 2, &[3., 0., 0., 4.]);
        assert_eq!(m.fro_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        let n = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        assert!((n.off_diag_norm() - (4.0f64 + 9.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn swap_cols_works() {
        let mut m = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        m.swap_cols(0, 1);
        assert_eq!(m.col(0), &[2.0, 4.0]);
        m.swap_cols(1, 1);
        assert_eq!(m.col(1), &[1.0, 3.0]);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let m = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn bytes_counts_f64() {
        assert_eq!(Matrix::zeros(4, 4).bytes(), 16 * 8);
    }
}
