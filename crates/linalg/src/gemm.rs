//! General matrix multiplication kernels.
//!
//! These are the CPU reference kernels underlying the batched GEMM layer.
//! `gemm` is a cache-blocked triple loop in `jki` order (column-major
//! friendly: the innermost loop streams down contiguous columns of `A` and
//! `C`). The `gram` and `apply_right` helpers are the two GEMM shapes that
//! dominate the W-cycle workflow (Algorithm 1, lines 5 and 7).

use crate::matrix::Matrix;

/// Operation applied to a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    NoTrans,
    /// Use the transpose of the stored matrix.
    Trans,
}

impl Op {
    fn dims(self, m: &Matrix) -> (usize, usize) {
        match self {
            Op::NoTrans => (m.rows(), m.cols()),
            Op::Trans => (m.cols(), m.rows()),
        }
    }
}

/// Cache-block edge for the k dimension.
const KC: usize = 256;

/// `C = alpha * op_a(A) * op_b(B) + beta * C`.
///
/// Panics on dimension mismatch.
pub fn gemm(alpha: f64, a: &Matrix, op_a: Op, b: &Matrix, op_b: Op, beta: f64, c: &mut Matrix) {
    let (m, ka) = op_a.dims(a);
    let (kb, n) = op_b.dims(b);
    assert_eq!(ka, kb, "gemm inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.as_mut_slice().fill(0.0);
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Materialize op_a(A) column-major once when A is transposed so the inner
    // loops always stream contiguous columns.
    let a_eff;
    let a_ref = match op_a {
        Op::NoTrans => a,
        Op::Trans => {
            a_eff = a.transpose();
            &a_eff
        }
    };

    for k0 in (0..k).step_by(KC) {
        let k1 = (k0 + KC).min(k);
        for j in 0..n {
            for p in k0..k1 {
                let b_pj = match op_b {
                    Op::NoTrans => b[(p, j)],
                    Op::Trans => b[(j, p)],
                };
                if b_pj == 0.0 {
                    continue;
                }
                let s = alpha * b_pj;
                let a_col = a_ref.col(p);
                let c_col = c.col_mut(j);
                for i in 0..m {
                    c_col[i] += s * a_col[i];
                }
            }
        }
    }
}

/// Convenience: `A * B` as a fresh matrix.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, Op::NoTrans, b, Op::NoTrans, 0.0, &mut c);
    c
}

/// Gram matrix `B = A^T A` (first batched GEMM of each W-cycle level).
///
/// Exploits symmetry: only the upper triangle is computed, then mirrored.
pub fn gram(a: &Matrix) -> Matrix {
    let n = a.cols();
    let mut b = Matrix::zeros(n, n);
    for j in 0..n {
        let aj = a.col(j);
        for i in 0..=j {
            let ai = a.col(i);
            let mut s = 0.0;
            for r in 0..a.rows() {
                s += ai[r] * aj[r];
            }
            b[(i, j)] = s;
            b[(j, i)] = s;
        }
    }
    b
}

/// In-place right update `A <- A * J` (second batched GEMM of each level).
pub fn apply_right(a: &mut Matrix, j: &Matrix) {
    assert_eq!(a.cols(), j.rows());
    let result = matmul(a, j);
    *a = result;
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut s = 0.0;
    for i in 0..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// FLOP count of `C += op(A)*op(B)` with inner dimension `k`: one FMA per
/// `m*n*k` (counted as 2 floating point ops, the convention of the paper's
/// `num_FMA` model in §IV-D2 uses FMA instructions; we expose both).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape() && a.sub(b).max_abs() < tol
    }

    #[test]
    fn small_matmul() {
        let a = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_rows(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        let expect = Matrix::from_rows(2, 2, &[58., 64., 139., 154.]);
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_trans_a() {
        let a = Matrix::from_rows(3, 2, &[1., 4., 2., 5., 3., 6.]);
        let b = Matrix::from_rows(3, 2, &[7., 10., 8., 11., 9., 12.]);
        let mut c = Matrix::zeros(2, 2);
        gemm(1.0, &a, Op::Trans, &b, Op::NoTrans, 0.0, &mut c);
        // A^T is [[1,2,3],[4,5,6]]
        let expect = Matrix::from_rows(2, 2, &[50., 68., 122., 167.]);
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_trans_b() {
        let a = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_rows(2, 3, &[7., 9., 11., 8., 10., 12.]);
        let mut c = Matrix::zeros(2, 2);
        gemm(1.0, &a, Op::NoTrans, &b, Op::Trans, 0.0, &mut c);
        let expect = Matrix::from_rows(2, 2, &[58., 64., 139., 154.]);
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        let mut c = Matrix::from_rows(2, 2, &[10., 10., 10., 10.]);
        gemm(2.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.5, &mut c);
        let expect = Matrix::from_rows(2, 2, &[7., 9., 11., 13.]);
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 7.0);
        let g = gram(&a);
        let mut g2 = Matrix::zeros(3, 3);
        gemm(1.0, &a, Op::Trans, &a, Op::NoTrans, 0.0, &mut g2);
        assert!(approx_eq(&g, &g2, 1e-12));
        // Symmetry.
        assert!(approx_eq(&g, &g.transpose(), 0.0 + f64::EPSILON));
    }

    #[test]
    fn apply_right_identity_is_noop() {
        let mut a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let orig = a.clone();
        apply_right(&mut a, &Matrix::identity(3));
        assert!(approx_eq(&a, &orig, 1e-15));
    }

    #[test]
    fn blocked_k_matches_unblocked() {
        // k larger than KC exercises the k-blocking path.
        let k = KC + 17;
        let a = Matrix::from_fn(4, k, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(k, 3, |i, j| ((i * 5 + j * 11) % 17) as f64 - 8.0);
        let c = matmul(&a, &b);
        let mut expect = Matrix::zeros(4, 3);
        for i in 0..4 {
            for j in 0..3 {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[(i, p)] * b[(p, j)];
                }
                expect[(i, j)] = s;
            }
        }
        assert!(approx_eq(&c, &expect, 1e-9));
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
    }

    #[test]
    fn flops_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
