//! Householder QR factorization.
//!
//! Used as the *preconditioning* stage for one-sided Jacobi on tall
//! matrices (the paper's refs. \[5\] "On using the Cholesky QR method in the
//! full-blocked one-sided Jacobi algorithm" and \[42\] "New preconditioning
//! for the one-sided block-Jacobi SVD algorithm"): a tall `m x n` input is
//! reduced to its square `n x n` triangular factor, the Jacobi sweeps run on
//! `R`, and the left factor is recovered as `Q U_R`.

use crate::householder::{apply_left, householder, Reflector};
use crate::matrix::Matrix;

/// Thin QR factorization `A = Q R` for `m >= n`: `Q` is `m x n` with
/// orthonormal columns, `R` is `n x n` upper triangular.
pub fn qr_thin(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    assert!(m >= n, "qr_thin requires m >= n (got {m}x{n})");
    let mut work = a.clone();
    let mut reflectors: Vec<(Reflector, usize)> = Vec::with_capacity(n);
    for k in 0..n {
        let x: Vec<f64> = (k..m).map(|i| work[(i, k)]).collect();
        let (h, _) = householder(&x);
        apply_left(&mut work, &h, k, k);
        reflectors.push((h, k));
    }
    // R: the upper triangle of the reduced matrix.
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..=j {
            r[(i, j)] = work[(i, j)];
        }
    }
    // Q (thin): apply the reflectors to the leading columns of I in reverse.
    let mut q = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
    for (h, k) in reflectors.iter().rev() {
        apply_left(&mut q, h, *k, *k);
    }
    (q, r)
}

/// Frobenius-relative QR residual `||A - QR||_F / ||A||_F`.
pub fn qr_residual(a: &Matrix, q: &Matrix, r: &Matrix) -> f64 {
    let rebuilt = crate::gemm::matmul(q, r);
    rebuilt.sub(a).fro_norm() / a.fro_norm().max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;
    use crate::verify::orthonormality_error;

    #[test]
    fn qr_reconstructs_tall() {
        let a = random_uniform(20, 7, 3);
        let (q, r) = qr_thin(&a);
        assert_eq!(q.shape(), (20, 7));
        assert_eq!(r.shape(), (7, 7));
        assert!(qr_residual(&a, &q, &r) < 1e-12);
        assert!(orthonormality_error(&q) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_uniform(12, 6, 5);
        let (_, r) = qr_thin(&a);
        for j in 0..6 {
            for i in (j + 1)..6 {
                assert_eq!(r[(i, j)], 0.0, "below-diagonal entry at ({i},{j})");
            }
        }
    }

    #[test]
    fn qr_square() {
        let a = random_uniform(8, 8, 7);
        let (q, r) = qr_thin(&a);
        assert!(qr_residual(&a, &q, &r) < 1e-12);
    }

    #[test]
    fn qr_preserves_singular_values() {
        // R has the same singular values as A (Q is orthogonal).
        let a = random_uniform(30, 6, 11);
        let (_, r) = qr_thin(&a);
        let sa = crate::svd::singular_values(&a).unwrap();
        let sr = crate::svd::singular_values(&r).unwrap();
        for (x, y) in sa.iter().zip(&sr) {
            assert!((x - y).abs() < 1e-11 * (1.0 + y));
        }
    }

    #[test]
    fn qr_of_orthonormal_input_gives_identity_r_signs() {
        let q0 = crate::householder::seeded_orthogonal(9, 13);
        let (q, r) = qr_thin(&q0);
        // R must be diagonal ±1.
        for j in 0..9 {
            for i in 0..j {
                assert!(r[(i, j)].abs() < 1e-12);
            }
            assert!((r[(j, j)].abs() - 1.0).abs() < 1e-12);
        }
        assert!(orthonormality_error(&q) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn qr_rejects_wide() {
        let a = random_uniform(3, 5, 1);
        let _ = qr_thin(&a);
    }
}
