//! Matrix generators for workloads and tests.
//!
//! All generators are seeded and deterministic so every experiment in the
//! repro harness is repeatable bit-for-bit.

use crate::gemm::matmul;
use crate::householder::seeded_orthogonal;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random matrix with entries in `(-1, 1)`.
pub fn random_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    wsvd_health::global().note_seed(seed);
    uniform_core(rows, cols, seed)
}

/// [`random_uniform`] without the health-seed note: batch generators derive
/// per-matrix seeds from their own batch seed, and incidents must carry the
/// *workload* seed (the one a replay needs), not the last derived one.
fn uniform_core(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Random symmetric matrix (`B = (C + C^T) / 2`).
pub fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let c = random_uniform(n, n, seed);
    Matrix::from_fn(n, n, |i, j| 0.5 * (c[(i, j)] + c[(j, i)]))
}

/// Random symmetric positive semi-definite matrix (`B = C^T C`, scaled).
pub fn random_spd(n: usize, seed: u64) -> Matrix {
    let c = random_uniform(n, n, seed);
    let mut b = crate::gemm::gram(&c);
    b.scale(1.0 / n as f64);
    b
}

/// Matrix with a prescribed singular-value spectrum:
/// `A = U diag(sigma) V^T` with seeded orthogonal `U`, `V`.
pub fn with_spectrum(rows: usize, cols: usize, sigma: &[f64], seed: u64) -> Matrix {
    wsvd_health::global().note_seed(seed);
    let r = rows.min(cols);
    assert!(
        sigma.len() == r,
        "need exactly min(m, n) = {r} singular values"
    );
    let u = seeded_orthogonal(rows, seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1));
    let v = seeded_orthogonal(cols, seed.wrapping_mul(0xc2b2ae3d27d4eb4f).wrapping_add(2));
    let mut s = Matrix::zeros(rows, cols);
    for (i, &x) in sigma.iter().enumerate() {
        s[(i, i)] = x;
    }
    matmul(&matmul(&u, &s), &v.transpose())
}

/// Log-spaced spectrum from `sigma_max` down to `sigma_max / cond`.
///
/// This is the standard way to hit a target 2-norm condition number.
pub fn log_spaced_spectrum(r: usize, sigma_max: f64, cond: f64) -> Vec<f64> {
    assert!(r > 0 && sigma_max > 0.0 && cond >= 1.0);
    if r == 1 {
        return vec![sigma_max];
    }
    let lo = sigma_max / cond;
    let ratio = (lo / sigma_max).ln() / (r - 1) as f64;
    (0..r)
        .map(|i| sigma_max * (ratio * i as f64).exp())
        .collect()
}

/// Matrix with a prescribed 2-norm condition number (log-spaced spectrum).
pub fn with_condition_number(rows: usize, cols: usize, cond: f64, seed: u64) -> Matrix {
    let sigma = log_spaced_spectrum(rows.min(cols), 1.0, cond);
    with_spectrum(rows, cols, &sigma, seed)
}

/// A batch of `count` random matrices of the same size, distinct seeds.
pub fn random_batch(count: usize, rows: usize, cols: usize, seed: u64) -> Vec<Matrix> {
    wsvd_health::global().note_seed(seed);
    (0..count)
        .map(|k| {
            uniform_core(
                rows,
                cols,
                seed.wrapping_add((k as u64).wrapping_mul(0x2545f4914f6cdd1d)),
            )
        })
        .collect()
}

/// A batch with per-matrix sizes drawn from `sizes` (cycled), random entries.
pub fn mixed_size_batch(sizes: &[(usize, usize)], count: usize, seed: u64) -> Vec<Matrix> {
    wsvd_health::global().note_seed(seed);
    (0..count)
        .map(|k| {
            let (m, n) = sizes[k % sizes.len()];
            uniform_core(
                m,
                n,
                seed.wrapping_add((k as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            )
        })
        .collect()
}

/// Mixed sizes sampled uniformly from `[min_dim, max_dim]` for both axes.
pub fn random_size_batch(count: usize, min_dim: usize, max_dim: usize, seed: u64) -> Vec<Matrix> {
    wsvd_health::global().note_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|k| {
            let m = rng.gen_range(min_dim..=max_dim);
            let n = rng.gen_range(min_dim..=max_dim);
            uniform_core(m, n, seed.wrapping_add(1 + k as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::singular_values;

    #[test]
    fn random_uniform_is_deterministic() {
        assert_eq!(
            random_uniform(4, 4, 9).as_slice(),
            random_uniform(4, 4, 9).as_slice()
        );
        assert_ne!(
            random_uniform(4, 4, 9).as_slice(),
            random_uniform(4, 4, 10).as_slice()
        );
    }

    #[test]
    fn symmetric_is_symmetric() {
        let b = random_symmetric(6, 3);
        assert!(b.sub(&b.transpose()).max_abs() < 1e-15);
    }

    #[test]
    fn spd_has_nonnegative_diag_dominated_spectrum() {
        let b = random_spd(5, 11);
        let s = singular_values(&b).unwrap();
        // For SPD, singular values == eigenvalues >= 0.
        assert!(s.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn with_spectrum_hits_target() {
        let sigma = vec![9.0, 4.0, 1.0];
        let a = with_spectrum(6, 3, &sigma, 17);
        let got = singular_values(&a).unwrap();
        for (g, w) in got.iter().zip(&sigma) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn log_spaced_spectrum_endpoints() {
        let s = log_spaced_spectrum(5, 2.0, 100.0);
        assert!((s[0] - 2.0).abs() < 1e-14);
        assert!((s[4] - 0.02).abs() < 1e-14);
        assert!(s.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn condition_number_achieved() {
        let a = with_condition_number(8, 8, 1e4, 23);
        let s = singular_values(&a).unwrap();
        let cond = s[0] / s[7];
        assert!((cond / 1e4 - 1.0).abs() < 1e-6, "cond = {cond}");
    }

    #[test]
    fn mixed_size_batch_cycles_sizes() {
        let b = mixed_size_batch(&[(4, 4), (6, 2)], 5, 1);
        assert_eq!(b[0].shape(), (4, 4));
        assert_eq!(b[1].shape(), (6, 2));
        assert_eq!(b[4].shape(), (4, 4));
    }

    #[test]
    fn random_size_batch_respects_bounds() {
        let b = random_size_batch(20, 3, 9, 77);
        assert!(b.iter().all(|m| {
            let (r, c) = m.shape();
            (3..=9).contains(&r) && (3..=9).contains(&c)
        }));
    }
}
