//! Low-precision storage simulation (the paper's §V-E future-work sketch).
//!
//! ML/AI workloads run batched SVDs on `f32`/`bf16` data. Two effects
//! matter for the W-cycle: (1) halving (or quartering) the element size
//! doubles (quadruples) the matrices that fit the 48 KiB shared memory,
//! allowing *larger `w_h` and deeper recursion*; (2) the reduced mantissa
//! bounds the final accuracy. These helpers quantize `f64` data through the
//! lower-precision representation so both effects can be measured with the
//! existing `f64` kernels.

use crate::matrix::Matrix;

/// Storage precision of the simulated shared-memory working set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// IEEE double (8 bytes) — the paper's evaluation setting.
    F64,
    /// IEEE single (4 bytes).
    F32,
    /// bfloat16 (2 bytes): f32 with an 8-bit mantissa.
    Bf16,
}

impl Precision {
    /// Bytes per element in shared memory.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
            Precision::Bf16 => 2,
        }
    }

    /// Unit roundoff of the representation.
    pub fn epsilon(self) -> f64 {
        match self {
            Precision::F64 => f64::EPSILON,
            Precision::F32 => f32::EPSILON as f64,
            Precision::Bf16 => 2.0f64.powi(-8),
        }
    }

    /// Rounds one value through this precision.
    pub fn round(self, x: f64) -> f64 {
        match self {
            Precision::F64 => x,
            Precision::F32 => x as f32 as f64,
            Precision::Bf16 => bf16_round(x),
        }
    }

    /// Quantizes a whole matrix through this precision.
    pub fn quantize(self, a: &Matrix) -> Matrix {
        if self == Precision::F64 {
            return a.clone();
        }
        let data = a.as_slice().iter().map(|&x| self.round(x)).collect();
        Matrix::from_col_major(a.rows(), a.cols(), data)
    }
}

/// Rounds an `f64` to the nearest bfloat16 (round-to-nearest-even on the
/// f32 representation's top 16 bits).
fn bf16_round(x: f64) -> f64 {
    let bits = (x as f32).to_bits();
    let lower = bits & 0xFFFF;
    let mut upper = bits >> 16;
    // Round to nearest, ties to even.
    if lower > 0x8000 || (lower == 0x8000 && (upper & 1) == 1) {
        upper += 1;
    }
    f32::from_bits(upper << 16) as f64
}

/// Shared-memory element budget multiplier relative to `f64` storage: how
/// much more data fits per block at this precision.
pub fn capacity_multiplier(p: Precision) -> usize {
    8 / p.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;

    #[test]
    fn f64_is_identity() {
        let a = random_uniform(5, 5, 1);
        assert_eq!(Precision::F64.quantize(&a).as_slice(), a.as_slice());
        assert_eq!(Precision::F64.round(1.234567890123), 1.234567890123);
    }

    #[test]
    fn f32_rounding_error_is_bounded() {
        let a = random_uniform(16, 16, 2);
        let q = Precision::F32.quantize(&a);
        let err = q.sub(&a).max_abs();
        assert!(err > 0.0, "quantization should change something");
        assert!(err <= Precision::F32.epsilon(), "err {err}");
    }

    #[test]
    fn bf16_rounding_error_is_bounded_and_larger() {
        let a = random_uniform(16, 16, 3);
        let qf = Precision::F32.quantize(&a);
        let qb = Precision::Bf16.quantize(&a);
        let ef = qf.sub(&a).max_abs();
        let eb = qb.sub(&a).max_abs();
        assert!(eb > ef);
        assert!(eb <= Precision::Bf16.epsilon());
    }

    #[test]
    fn bf16_exact_values_survive() {
        for x in [0.0, 1.0, -2.0, 0.5, 256.0] {
            assert_eq!(Precision::Bf16.round(x), x);
        }
    }

    #[test]
    fn bf16_ties_round_to_even() {
        // 1 + 2^-8 is exactly halfway between two bf16 values around 1.0.
        let x = 1.0 + 2.0f64.powi(-9);
        let r = bf16_round(x);
        assert!(r == 1.0 || r == 1.0 + 2.0f64.powi(-8));
    }

    #[test]
    fn capacity_multipliers() {
        assert_eq!(capacity_multiplier(Precision::F64), 1);
        assert_eq!(capacity_multiplier(Precision::F32), 2);
        assert_eq!(capacity_multiplier(Precision::Bf16), 4);
    }
}
