//! MAGMA-like baseline: two-stage SVD (`gesvd`).
//!
//! MAGMA's dense SVD is Householder bidiagonalization (panel-blocked, GEMM
//! rich, GM resident) followed by implicit-shift QR on the bidiagonal. The
//! numerics here are the real algorithm (`wsvd_linalg::svd_reference`); the
//! cost model charges the launches a panel-factorization pipeline would
//! issue: one panel + trailing-update launch pair per `NB` columns for the
//! bidiagonalization, then a rotation-chain phase for the QR iteration whose
//! parallelism is bounded by the vector length (rotations are applied to
//! `U`/`V` columns; the chase itself is sequential).

use wsvd_gpu_sim::{Gpu, KernelConfig, KernelError};
use wsvd_linalg::svd::Svd;
use wsvd_linalg::{svd_reference, Matrix};

use crate::block::BlockSvd;

/// Panel width of the blocked bidiagonalization.
const NB: usize = 32;

/// Host-side overhead per `gesvd` call (CPU/GPU hybrid synchronization).
const PER_CALL_HOST_SECONDS: f64 = 60e-6;

/// MAGMA-like single-matrix SVD: real two-stage numerics plus the cost of
/// the panel-blocked pipeline on the simulated device.
pub fn magma_gesvd(gpu: &Gpu, a: &Matrix) -> Result<BlockSvd, KernelError> {
    gpu.add_host_seconds(PER_CALL_HOST_SECONDS);
    let (m, n) = a.shape();
    let (tall_m, tall_n) = if m >= n { (m, n) } else { (n, m) };

    // --- Stage 1: bidiagonalization cost ---------------------------------
    // `gebrd`-style pipeline: the panel factorization is latency-bound —
    // every column requires a norm/reflector kernel and a GEMV-shaped panel
    // update before the next column can start (two dependent launches per
    // column), then each NB-wide panel issues one GEMM-rich trailing update
    // that re-reads the trailing matrix from GM. For small matrices the
    // 2·n dependent launches dominate; for large ones the trailing GEMMs do
    // — both regimes are the ones MAGMA shows on real hardware.
    let panels = tall_n.div_ceil(NB);
    for p in 0..panels {
        let rem_rows = tall_m - (p * NB).min(tall_m.saturating_sub(1));
        let rem_cols = tall_n - p * NB;
        let cols_in_panel = NB.min(rem_cols);
        for _c in 0..cols_in_panel {
            // The column norm is read back by the host to build the
            // reflector (the classic unblocked-gebrd synchronization):
            // a dependent round-trip per column.
            gpu.add_host_seconds(15e-6);
            // Reflector build: a norm reduction plus scaling, one block.
            let kc = KernelConfig::new(1, 256, 4 * 1024, "magma_reflector");
            gpu.launch_collect(kc, |_, ctx| {
                ctx.count_gm_load(rem_rows);
                ctx.team_reduce(1, 256, rem_rows);
                ctx.serial_step(30);
                ctx.count_gm_store(rem_rows);
                Ok(())
            })?;
            // Panel GEMV update (left + right reflector application).
            let kc = KernelConfig::new(1, 256, 4 * 1024, "magma_panel_gemv");
            gpu.launch_collect(kc, |_, ctx| {
                ctx.count_gm_load(rem_rows * cols_in_panel.min(8));
                ctx.par_step(rem_rows * cols_in_panel.min(8), 4);
                ctx.count_gm_store(rem_rows * cols_in_panel.min(8));
                Ok(())
            })?;
        }
        // Trailing update: two blocked GEMMs over the trailing matrix.
        let grid = (rem_rows.div_ceil(128)).max(1);
        let kc = KernelConfig::new(grid, 256, 24 * 1024, "magma_trailing");
        gpu.launch_collect(kc, |_, ctx| {
            let rows = rem_rows.div_ceil(grid);
            ctx.count_gm_load(rows * rem_cols + rows * NB);
            ctx.par_step(rows * rem_cols, 4 * NB as u64);
            ctx.count_gm_store(rows * rem_cols);
            Ok(())
        })?;
    }

    // --- Stage 2: bidiagonal QR iteration --------------------------------
    // MAGMA runs the implicit-shift QR on the host CPU (hybrid design):
    // O(n^2) rotations on the bidiagonal plus O(n^2 m) vector updates that
    // it applies back on the GPU in grouped launches.
    gpu.add_host_seconds(2e-9 * (tall_n * tall_n) as f64);
    let qr_groups = tall_n.div_ceil(16).max(1);
    for _ in 0..qr_groups {
        let kc = KernelConfig::new(
            (tall_m.div_ceil(256)).max(1),
            256,
            8 * 1024,
            "magma_qr_apply",
        );
        gpu.launch_collect(kc, |_, ctx| {
            ctx.count_gm_load(tall_m * 32);
            ctx.par_step(tall_m * 32, 6 * (tall_n as u64).min(64));
            ctx.count_gm_store(tall_m * 32);
            Ok(())
        })?;
    }

    // --- Real numerics ---------------------------------------------------
    let Svd { u, sigma, v } = svd_reference(a).map_err(KernelError::Other)?;
    Ok(BlockSvd {
        u,
        sigma,
        v: Some(v),
        sweeps: 0,
        rotations: 0,
    })
}

/// MAGMA has no batched `gesvd`; batches loop serially over the single API
/// (the protocol of Fig. 9 / Fig. 14(b)).
pub fn magma_batched_svd(gpu: &Gpu, mats: &[Matrix]) -> Result<Vec<BlockSvd>, KernelError> {
    mats.iter().map(|a| magma_gesvd(gpu, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::{random_batch, random_uniform, with_spectrum};

    #[test]
    fn magma_values_are_exact_reference() {
        let gpu = Gpu::new(V100);
        let sigma = vec![7.0, 3.0, 1.0];
        let a = with_spectrum(12, 3, &sigma, 3);
        let out = magma_gesvd(&gpu, &a).unwrap();
        for (g, w) in out.sigma.iter().zip(&sigma) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn magma_charges_panel_launches() {
        let gpu = Gpu::new(V100);
        let a = random_uniform(128, 128, 5);
        magma_gesvd(&gpu, &a).unwrap();
        let t = gpu.timeline();
        // 4 panels x 2 launches + QR groups + host overhead.
        assert!(t.launches >= 8, "launches = {}", t.launches);
        assert!(t.seconds > PER_CALL_HOST_SECONDS);
    }

    #[test]
    fn batched_is_serial_sum() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(3, 64, 64, 7);
        magma_batched_svd(&gpu, &mats).unwrap();
        let t3 = gpu.elapsed_seconds();
        let gpu1 = Gpu::new(V100);
        magma_gesvd(&gpu1, &mats[0]).unwrap();
        let t1 = gpu1.elapsed_seconds();
        assert!(t3 > 2.5 * t1, "batched {t3} vs single {t1}");
    }

    #[test]
    fn wide_matrices_supported() {
        let gpu = Gpu::new(V100);
        let a = random_uniform(10, 40, 9);
        let out = magma_gesvd(&gpu, &a).unwrap();
        assert_eq!(out.sigma.len(), 10);
        let want = wsvd_linalg::singular_values(&a).unwrap();
        for (g, w) in out.sigma.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
