//! cuSOLVER-like baseline (`gesvdjBatched` / `gesvdj`).
//!
//! Models the two properties of the closed-source library the paper's
//! evaluation protocol relies on (§V):
//!
//! * `gesvdjBatched` only accepts matrices with `m, n <= 32`; its kernel is
//!   static — one *thread* per column pair (no α-warp teams) and no
//!   inner-product caching — so it leaves thread-level parallelism on the
//!   table exactly where Fig. 7 shows W-cycle winning;
//! * larger matrices must go through the single-matrix `gesvdj` API, which
//!   the paper's baseline calls *serially* over the batch; each call is a
//!   separate launch sequence with fixed block width `w = 16` (a static
//!   "one-size-fits-all" configuration) and un-tailored GEMMs.

use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_jacobi::batch::batched_svd_sm;
use wsvd_jacobi::onesided::OneSidedConfig;
use wsvd_linalg::Matrix;

use crate::block::{block_jacobi_svd, BlockJacobiConfig, BlockSvd, RotationSource};

/// The batched-API size limit (`cusolverDnXgesvdjBatched`).
pub const BATCHED_API_MAX_DIM: usize = 32;

/// Host-side driver overhead per serial `gesvdj` call, in seconds.
const PER_CALL_HOST_SECONDS: f64 = 20e-6;

/// The static block width `gesvdj` uses for large matrices.
const GESVDJ_BLOCK_W: usize = 16;

/// Result type shared with the block-Jacobi machinery.
pub type CusolverSvd = BlockSvd;

/// `gesvdjBatched`: batched Jacobi SVD for matrices up to 32x32.
///
/// Returns an error if any matrix exceeds the API limit.
pub fn gesvdj_batched(gpu: &Gpu, mats: &[Matrix]) -> Result<Vec<CusolverSvd>, KernelError> {
    for m in mats {
        if m.rows() > BATCHED_API_MAX_DIM || m.cols() > BATCHED_API_MAX_DIM {
            return Err(KernelError::Other(format!(
                "gesvdjBatched requires m,n <= {BATCHED_API_MAX_DIM}, got {:?}",
                m.shape()
            )));
        }
    }
    // Static kernel: one thread per pair, no inner-product caching, and a
    // working set re-staged from global memory every sweep (`gesvdj` exits
    // per iteration for the host-side convergence test) — the GM-transaction
    // gap the paper profiles in Fig. 11(b).
    let cfg = OneSidedConfig {
        threads_per_pair: 1,
        cache_norms: false,
        accumulate_v: true,
        gm_stage_per_sweep: true,
        ..Default::default()
    };
    let (svds, _) = batched_svd_sm(gpu, mats, &cfg, 128)?;
    // Host-side convergence round-trip per sweep.
    let max_sweeps = svds.iter().map(|s| s.stats.sweeps).max().unwrap_or(0);
    gpu.add_host_seconds(6e-6 * max_sweeps as f64);
    Ok(svds
        .into_iter()
        .map(|s| BlockSvd {
            u: s.u,
            sigma: s.sigma,
            v: Some(s.v),
            sweeps: s.stats.sweeps,
            rotations: s.stats.rotations,
        })
        .collect())
}

/// `gesvdj`: single-matrix Jacobi SVD for arbitrary sizes.
pub fn gesvdj(gpu: &Gpu, a: &Matrix) -> Result<CusolverSvd, KernelError> {
    gpu.add_host_seconds(PER_CALL_HOST_SECONDS);
    if a.rows() <= BATCHED_API_MAX_DIM && a.cols() <= BATCHED_API_MAX_DIM {
        return Ok(gesvdj_batched(gpu, std::slice::from_ref(a))?.pop().unwrap());
    }
    // Static blocked Jacobi, batch of one: low occupancy per step, and the
    // pre-W-cycle kernel generation (serialized two-sided EVD, no α-warp
    // teams, no norm cache).
    let work = if a.rows() < a.cols() {
        a.transpose()
    } else {
        a.clone()
    };
    let cfg = BlockJacobiConfig {
        w: GESVDJ_BLOCK_W,
        rotation: RotationSource::GramEvd,
        tailor: false,
        evd_variant: wsvd_jacobi::EvdVariant::Sequential,
        svd_threads_per_pair: 32,
        svd_cache_norms: false,
        ..Default::default()
    };
    let mut out = block_jacobi_svd(gpu, std::slice::from_ref(&work), &cfg)?
        .pop()
        .unwrap();
    if a.rows() < a.cols() {
        // Swap factors for the wide input.
        let v_t = out.v.take().expect("want_v on");
        let r = out.sigma.len();
        let u_new = Matrix::from_fn(v_t.rows(), r, |i, j| v_t[(i, j)]);
        out = BlockSvd {
            v: Some(out.u),
            u: u_new,
            sigma: out.sigma,
            sweeps: out.sweeps,
            rotations: out.rotations,
        };
    }
    Ok(out)
}

/// The paper's baseline for batches of matrices beyond the batched-API
/// limit: *serially* call `gesvdj` per matrix (§V: "the baseline is set to
/// serially call a single SVD API in cuSOLVER").
pub fn gesvdj_serial_batch(gpu: &Gpu, mats: &[Matrix]) -> Result<Vec<CusolverSvd>, KernelError> {
    mats.iter().map(|a| gesvdj(gpu, a)).collect()
}

/// Dispatch as the paper's evaluation does: the batched API when every
/// matrix is within the limit, the serial loop otherwise.
pub fn cusolver_batched_svd(gpu: &Gpu, mats: &[Matrix]) -> Result<Vec<CusolverSvd>, KernelError> {
    let all_small = mats
        .iter()
        .all(|m| m.rows() <= BATCHED_API_MAX_DIM && m.cols() <= BATCHED_API_MAX_DIM);
    if all_small {
        gesvdj_batched(gpu, mats)
    } else {
        gesvdj_serial_batch(gpu, mats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::{random_batch, random_uniform};
    use wsvd_linalg::singular_values;

    fn check_sigma(a: &Matrix, got: &[f64]) {
        let want = singular_values(a).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8 * (1.0 + w), "{g} vs {w}");
        }
    }

    #[test]
    fn batched_api_works_up_to_32() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(6, 32, 32, 1);
        let outs = gesvdj_batched(&gpu, &mats).unwrap();
        for (a, o) in mats.iter().zip(&outs) {
            check_sigma(a, &o.sigma);
        }
    }

    #[test]
    fn batched_api_rejects_large() {
        let gpu = Gpu::new(V100);
        let mats = vec![random_uniform(33, 16, 2)];
        assert!(gesvdj_batched(&gpu, &mats).is_err());
    }

    #[test]
    fn single_api_handles_large() {
        let gpu = Gpu::new(V100);
        let a = random_uniform(80, 80, 3);
        let out = gesvdj(&gpu, &a).unwrap();
        check_sigma(&a, &out.sigma);
    }

    #[test]
    fn single_api_handles_wide() {
        let gpu = Gpu::new(V100);
        let a = random_uniform(24, 72, 5);
        let out = gesvdj(&gpu, &a).unwrap();
        check_sigma(&a, &out.sigma);
        assert_eq!(out.u.shape(), (24, 24));
    }

    #[test]
    fn serial_batch_pays_per_call_overhead() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(4, 40, 40, 7);
        let before = gpu.timeline().launches;
        gesvdj_serial_batch(&gpu, &mats).unwrap();
        let t = gpu.timeline();
        // Each serial call issues its own launch sequence.
        assert!(t.launches >= before + 4 * 2);
        assert!(t.seconds > 4.0 * PER_CALL_HOST_SECONDS);
    }

    #[test]
    fn dispatch_picks_batched_for_small() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(3, 16, 16, 9);
        let outs = cusolver_batched_svd(&gpu, &mats).unwrap();
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn one_thread_per_pair_has_longer_span_than_wcycle_kernel() {
        // The static kernel must be slower (per Fig. 7's mechanism).
        let mats = random_batch(4, 32, 32, 11);
        let gpu_a = Gpu::new(V100);
        gesvdj_batched(&gpu_a, &mats).unwrap();
        let cusolver_t = gpu_a.elapsed_seconds();

        let gpu_b = Gpu::new(V100);
        let cfg = OneSidedConfig::default(); // α-warp teams + caching, in SM
        wsvd_jacobi::batch::batched_svd_sm(&gpu_b, &mats, &cfg, 128).unwrap();
        let wcycle_t = gpu_b.elapsed_seconds();
        assert!(
            cusolver_t > 1.5 * wcycle_t,
            "expected static kernel to be slower: {cusolver_t} vs {wcycle_t}"
        );
    }
}
