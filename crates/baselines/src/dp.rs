//! The state-of-the-art batched methods of ref. \[19\] (Boukaram et al.,
//! *Batched QR and SVD algorithms on GPUs*): `Batched_DP_Direct` and
//! `Batched_DP_Gram` — uniform-width block Jacobi with a static
//! "one-size-fits-all" configuration (the Table-IV comparators).

use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_linalg::Matrix;

use crate::block::{block_jacobi_svd, BlockJacobiConfig, BlockSvd, RotationSource};
use wsvd_jacobi::evd::EvdVariant;

/// The static block width both methods use (chosen so the Gram matrix of a
/// pair block fits in shared memory on every supported size).
pub const DP_BLOCK_W: usize = 16;

/// Ref. \[19\] predates the W-cycle's kernel optimizations: rotations use the
/// classic one-warp-per-pair assignment without the Eq.-(6) norm cache, and
/// the Gram route diagonalizes with the serialized two-sided Jacobi.
fn dp_config(rotation: RotationSource) -> BlockJacobiConfig {
    BlockJacobiConfig {
        w: DP_BLOCK_W,
        rotation,
        tailor: false,
        evd_variant: EvdVariant::Sequential,
        svd_threads_per_pair: 32,
        svd_cache_norms: false,
        ..Default::default()
    }
}

/// `Batched_DP_Direct`: rotations from direct SVDs of the pair blocks
/// (register/SM resident when they fit, global memory otherwise).
pub fn batched_dp_direct(gpu: &Gpu, mats: &[Matrix]) -> Result<Vec<BlockSvd>, KernelError> {
    let prepared: Vec<Matrix> = mats
        .iter()
        .map(|a| {
            if a.rows() < a.cols() {
                a.transpose()
            } else {
                a.clone()
            }
        })
        .collect();
    block_jacobi_svd(gpu, &prepared, &dp_config(RotationSource::DirectSvd))
}

/// `Batched_DP_Gram`: rotations from EVDs of the pair blocks' Gram matrices.
pub fn batched_dp_gram(gpu: &Gpu, mats: &[Matrix]) -> Result<Vec<BlockSvd>, KernelError> {
    let prepared: Vec<Matrix> = mats
        .iter()
        .map(|a| {
            if a.rows() < a.cols() {
                a.transpose()
            } else {
                a.clone()
            }
        })
        .collect();
    block_jacobi_svd(gpu, &prepared, &dp_config(RotationSource::GramEvd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::random_batch;
    use wsvd_linalg::singular_values;

    #[test]
    fn both_variants_compute_correct_values() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(2, 64, 64, 1);
        for outs in [
            batched_dp_direct(&gpu, &mats).unwrap(),
            batched_dp_gram(&gpu, &mats).unwrap(),
        ] {
            for (a, o) in mats.iter().zip(&outs) {
                let want = singular_values(a).unwrap();
                for (g, w) in o.sigma.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-8 * (1.0 + w));
                }
            }
        }
    }

    #[test]
    fn gram_beats_direct_on_large_matrices() {
        // Table IV: for 512-size matrices Gram wins over Direct (the direct
        // route falls into the GM kernel); at our scaled-down size the same
        // ordering must hold.
        let mats = random_batch(2, 256, 256, 3);
        let gpu_d = Gpu::new(V100);
        batched_dp_direct(&gpu_d, &mats).unwrap();
        let gpu_g = Gpu::new(V100);
        batched_dp_gram(&gpu_g, &mats).unwrap();
        assert!(
            gpu_g.elapsed_seconds() < gpu_d.elapsed_seconds(),
            "gram {} !< direct {}",
            gpu_g.elapsed_seconds(),
            gpu_d.elapsed_seconds()
        );
    }
}
