//! Uniform-width block Jacobi (Algorithm 1 of the paper), the common core of
//! the size-sensitive baselines.
//!
//! Unlike the W-cycle, this is a *single-level* method: one static column
//! block width `w` is applied to every matrix in the batch, the
//! "one-size-fits-all" design the paper argues against. Rotations come from
//! either a direct SVD of the pair block (falling back to the slow
//! global-memory kernel when it does not fit in SM — the size-sensitivity)
//! or from the Gram + EVD route.

use wsvd_batched::gemm::{batched_gram, batched_update, GemmStrategy};
use wsvd_batched::models::TailorPlan;
use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_jacobi::batch::{batched_evd_sm, batched_svd_gm, batched_svd_sm};
use wsvd_jacobi::evd::{EvdConfig, EvdVariant};
use wsvd_jacobi::fits::svd_fits_in_sm;
use wsvd_jacobi::onesided::OneSidedConfig;
use wsvd_jacobi::Ordering;
use wsvd_linalg::gemm::dot;
use wsvd_linalg::verify::columns_converged;
use wsvd_linalg::Matrix;

/// How pair-block rotations are generated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotationSource {
    /// Direct one-sided Jacobi SVD of `A_ij` (SM when it fits, GM
    /// otherwise) — the `Batched_DP_Direct` style of ref. \[19\].
    DirectSvd,
    /// Gram matrix + two-sided Jacobi EVD — the `Batched_DP_Gram` style.
    GramEvd,
}

/// Configuration of the uniform-width block Jacobi.
#[derive(Clone, Copy, Debug)]
pub struct BlockJacobiConfig {
    /// The static column-block width (same for every matrix).
    pub w: usize,
    /// Rotation generation route.
    pub rotation: RotationSource,
    /// Use the tailoring strategy for the batched GEMMs.
    pub tailor: bool,
    /// Accumulate right singular matrices.
    pub want_v: bool,
    /// Coherence tolerance.
    pub tol: f64,
    /// Sweep cap.
    pub max_sweeps: usize,
    /// Threads per block for the SM kernels.
    pub kernel_threads: usize,
    /// Two-sided Jacobi variant for the Gram route. Pre-W-cycle codes
    /// (ref. \[19\], vendor kernels) use the serialized textbook form.
    pub evd_variant: EvdVariant,
    /// Threads per column pair inside the direct-SVD route (32 = the
    /// classic one-warp-per-pair assignment).
    pub svd_threads_per_pair: usize,
    /// Enable the Eq.-(6) inner-product cache inside the direct-SVD route.
    pub svd_cache_norms: bool,
}

impl Default for BlockJacobiConfig {
    fn default() -> Self {
        Self {
            w: 16,
            rotation: RotationSource::GramEvd,
            tailor: false,
            want_v: true,
            tol: 1e-12,
            max_sweeps: 40,
            kernel_threads: 256,
            evd_variant: EvdVariant::Parallel,
            svd_threads_per_pair: 8,
            svd_cache_norms: true,
        }
    }
}

/// Result of one matrix under block Jacobi.
#[derive(Debug)]
pub struct BlockSvd {
    /// Left singular vectors, `m x r`.
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n x n`), when requested.
    pub v: Option<Matrix>,
    /// Sweeps until convergence.
    pub sweeps: usize,
    /// Block rotations applied for this matrix.
    pub rotations: u64,
}

/// Runs Algorithm 1 over a batch with one fixed `w` (inputs must be tall or
/// square; transpose wide matrices first).
pub fn block_jacobi_svd(
    gpu: &Gpu,
    mats: &[Matrix],
    cfg: &BlockJacobiConfig,
) -> Result<Vec<BlockSvd>, KernelError> {
    let smem = gpu.device().smem_per_block_bytes;
    let mut tasks: Vec<Matrix> = mats.to_vec();
    let mut vs: Vec<Option<Matrix>> = tasks
        .iter()
        .map(|t| cfg.want_v.then(|| Matrix::identity(t.cols())))
        .collect();
    let mut sweeps = vec![0usize; tasks.len()];
    let mut rotations = vec![0u64; tasks.len()];
    let mut active: Vec<bool> = tasks.iter().map(|t| t.cols() >= 2).collect();

    let strategy = if cfg.tailor {
        let m_star = tasks.iter().map(|t| t.rows()).max().unwrap_or(8);
        GemmStrategy::Tailored(TailorPlan::new(cfg.w, m_star, cfg.kernel_threads))
    } else {
        GemmStrategy::OneBlockPerGemm {
            threads: cfg.kernel_threads,
        }
    };

    let parts: Vec<Vec<(usize, usize)>> = tasks
        .iter()
        .map(|t| partition_cols(t.cols(), cfg.w.min(t.cols() / 2).max(1)))
        .collect();

    for _ in 0..cfg.max_sweeps {
        if !active.iter().any(|&a| a) {
            break;
        }
        let schedules: Vec<_> = parts
            .iter()
            .zip(&active)
            .map(|(p, &a)| {
                if a {
                    wsvd_jacobi::ordering::round_robin(p.len())
                } else {
                    Vec::new()
                }
            })
            .collect();
        let max_steps = schedules.iter().map(|s| s.len()).max().unwrap_or(0);

        // (task index, (row block, col block), (rows, cols)) per pair block.
        type PairRef = (usize, (usize, usize), (usize, usize));
        for step in 0..max_steps {
            let mut refs: Vec<PairRef> = Vec::new();
            let mut blocks: Vec<Matrix> = Vec::new();
            for (t, sched) in schedules.iter().enumerate() {
                if !active[t] || step >= sched.len() {
                    continue;
                }
                for &(bi, bj) in &sched[step] {
                    refs.push((t, parts[t][bi], parts[t][bj]));
                    blocks.push(gather(&tasks[t], parts[t][bi], parts[t][bj]));
                }
            }
            if blocks.is_empty() {
                continue;
            }
            for &(t, _, _) in &refs {
                rotations[t] += 1;
            }

            let js: Vec<Matrix> = match cfg.rotation {
                RotationSource::DirectSvd => {
                    // Size-sensitive split: SM when the pair block fits,
                    // the slow GM kernel otherwise. No recursion.
                    let mut js: Vec<Option<Matrix>> = vec![None; blocks.len()];
                    let (sm_idx, gm_idx): (Vec<usize>, Vec<usize>) =
                        (0..blocks.len()).partition(|&i| {
                            let (m, nn) = blocks[i].shape();
                            svd_fits_in_sm(m, nn, smem)
                        });
                    // Tighter than the outer convergence test (see the
                    // inner-tolerance note in wsvd-core): a pair block that
                    // stops at the outer tol would stall the sweep loop.
                    let one_sided = OneSidedConfig {
                        tol: (cfg.tol * 1e-2).max(1e-15),
                        accumulate_v: true,
                        ordering: Ordering::RoundRobin,
                        threads_per_pair: cfg.svd_threads_per_pair,
                        cache_norms: cfg.svd_cache_norms,
                        ..Default::default()
                    };
                    if !sm_idx.is_empty() {
                        let sub: Vec<Matrix> = sm_idx.iter().map(|&i| blocks[i].clone()).collect();
                        let (svds, _) = batched_svd_sm(gpu, &sub, &one_sided, cfg.kernel_threads)?;
                        for (&i, svd) in sm_idx.iter().zip(svds) {
                            blocks[i] = rotated(&svd, blocks[i].shape());
                            js[i] = Some(svd.v);
                        }
                    }
                    if !gm_idx.is_empty() {
                        let sub: Vec<Matrix> = gm_idx.iter().map(|&i| blocks[i].clone()).collect();
                        let (svds, _) = batched_svd_gm(gpu, &sub, &one_sided, cfg.kernel_threads)?;
                        for (&i, svd) in gm_idx.iter().zip(svds) {
                            blocks[i] = rotated(&svd, blocks[i].shape());
                            js[i] = Some(svd.v);
                        }
                    }
                    js.into_iter().map(|j| j.unwrap()).collect()
                }
                RotationSource::GramEvd => {
                    let (grams, _) = batched_gram(gpu, &blocks, strategy)?;
                    let evd_cfg = EvdConfig {
                        tol: 1e-15,
                        max_sweeps: 30,
                        variant: cfg.evd_variant,
                    };
                    let (evds, _) = batched_evd_sm(gpu, &grams, &evd_cfg, cfg.kernel_threads)?;
                    let js: Vec<Matrix> = evds.into_iter().map(|e| e.j).collect();
                    batched_update(gpu, &mut blocks, &js, strategy)?;
                    js
                }
            };

            // Scatter and V accumulation.
            let mut v_blocks = Vec::new();
            let mut v_meta = Vec::new();
            for ((&(t, bi, bj), block), j) in refs.iter().zip(&blocks).zip(&js) {
                scatter(&mut tasks[t], bi, bj, block);
                if vs[t].is_some() {
                    v_blocks.push(gather(vs[t].as_ref().unwrap(), bi, bj));
                    v_meta.push((t, bi, bj, j.clone()));
                }
            }
            if !v_blocks.is_empty() {
                let v_js: Vec<Matrix> = v_meta.iter().map(|(_, _, _, j)| j.clone()).collect();
                batched_update(gpu, &mut v_blocks, &v_js, strategy)?;
                for ((t, bi, bj, _), vb) in v_meta.into_iter().zip(v_blocks) {
                    scatter(vs[t].as_mut().unwrap(), bi, bj, &vb);
                }
            }
        }

        for t in 0..tasks.len() {
            if active[t] {
                sweeps[t] += 1;
                if columns_converged(&tasks[t], cfg.tol) {
                    active[t] = false;
                }
            }
        }
    }

    Ok(tasks
        .iter()
        .zip(vs)
        .zip(sweeps.iter().zip(&rotations))
        .map(|((conv, v), (&sweeps, &rotations))| {
            let (u, sigma, v) = extract(conv, v);
            BlockSvd {
                u,
                sigma,
                v,
                sweeps,
                rotations,
            }
        })
        .collect())
}

/// Block rotations in a single sweep for an `n`-column matrix at width `w`
/// (the analytic `(⌊n/w⌋ - 1) · ⌊n/(2w)⌋` count of §II-B, used by Fig. 2).
pub fn rotations_per_sweep(n: usize, w: usize) -> u64 {
    let blocks = n.div_ceil(w.max(1));
    if blocks < 2 {
        return 0;
    }
    // Round-robin: blocks-1 steps (even) of ⌊blocks/2⌋ pairs.
    let steps = if blocks.is_multiple_of(2) {
        blocks - 1
    } else {
        blocks
    };
    (steps * (blocks / 2)) as u64
}

fn partition_cols(n: usize, w: usize) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut start = 0;
    while start < n {
        let width = w.min(n - start);
        parts.push((start, width));
        start += width;
    }
    parts
}

fn gather(m: &Matrix, (si, wi): (usize, usize), (sj, wj): (usize, usize)) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), wi + wj);
    for c in 0..wi {
        out.col_mut(c).copy_from_slice(m.col(si + c));
    }
    for c in 0..wj {
        out.col_mut(wi + c).copy_from_slice(m.col(sj + c));
    }
    out
}

fn scatter(m: &mut Matrix, (si, wi): (usize, usize), (sj, wj): (usize, usize), block: &Matrix) {
    for c in 0..wi {
        m.col_mut(si + c).copy_from_slice(block.col(c));
    }
    for c in 0..wj {
        m.col_mut(sj + c).copy_from_slice(block.col(wi + c));
    }
}

fn rotated(svd: &wsvd_jacobi::JacobiSvd, shape: (usize, usize)) -> Matrix {
    let (m, n) = shape;
    let mut out = Matrix::zeros(m, n);
    for (k, &s) in svd.sigma.iter().enumerate() {
        let src = svd.u.col(k);
        let dst = out.col_mut(k);
        for i in 0..m {
            dst[i] = s * src[i];
        }
    }
    out
}

fn extract(conv: &Matrix, v: Option<Matrix>) -> (Matrix, Vec<f64>, Option<Matrix>) {
    let (m, n) = conv.shape();
    let norms: Vec<f64> = (0..n).map(|j| dot(conv.col(j), conv.col(j))).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]));
    let r = m.min(n);
    let mut u = Matrix::zeros(m, r);
    let mut sigma = Vec::with_capacity(r);
    for (k, &j) in order.iter().take(r).enumerate() {
        let s = norms[j].sqrt();
        sigma.push(s);
        if s > 0.0 {
            let src = conv.col(j);
            let dst = u.col_mut(k);
            for i in 0..m {
                dst[i] = src[i] / s;
            }
        } else if k < m {
            u[(k, k)] = 1.0;
        }
    }
    let v = v.map(|v| {
        let mut out = Matrix::zeros(v.rows(), v.cols());
        for (k, &j) in order.iter().enumerate() {
            out.col_mut(k).copy_from_slice(v.col(j));
        }
        out
    });
    (u, sigma, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::{random_batch, random_uniform};
    use wsvd_linalg::singular_values;
    use wsvd_linalg::verify::orthonormality_error;

    fn check(a: &Matrix, out: &BlockSvd) {
        let want = singular_values(a).unwrap();
        for (g, w) in out.sigma.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8 * (1.0 + w), "{g} vs {w}");
        }
        assert!(orthonormality_error(&out.u) < 1e-8);
        if let Some(v) = &out.v {
            assert!(orthonormality_error(v) < 1e-8);
        }
    }

    #[test]
    fn gram_route_converges() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(2, 64, 64, 3);
        let outs = block_jacobi_svd(&gpu, &mats, &BlockJacobiConfig::default()).unwrap();
        for (a, o) in mats.iter().zip(&outs) {
            check(a, o);
            assert!(o.sweeps > 0 && o.rotations > 0);
        }
    }

    #[test]
    fn direct_route_converges() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(2, 48, 48, 5);
        let cfg = BlockJacobiConfig {
            rotation: RotationSource::DirectSvd,
            w: 8,
            ..Default::default()
        };
        let outs = block_jacobi_svd(&gpu, &mats, &cfg).unwrap();
        for (a, o) in mats.iter().zip(&outs) {
            check(a, o);
        }
    }

    #[test]
    fn direct_route_falls_back_to_gm_for_big_blocks() {
        // 700-row pair blocks of width 16 don't fit the SM SVD kernel
        // (700*16+256+32 elems is fine... use width 24: 700*48 = 33600 elems
        // overflow): the GM fallback must still produce a correct result.
        let gpu = Gpu::new(V100);
        let a = random_uniform(700, 48, 7);
        let cfg = BlockJacobiConfig {
            rotation: RotationSource::DirectSvd,
            w: 24,
            max_sweeps: 30,
            ..Default::default()
        };
        let outs = block_jacobi_svd(&gpu, std::slice::from_ref(&a), &cfg).unwrap();
        check(&a, &outs[0]);
    }

    #[test]
    fn larger_w_needs_fewer_rotations_per_sweep() {
        assert!(rotations_per_sweep(1536, 24) > rotations_per_sweep(1536, 48));
        assert_eq!(rotations_per_sweep(64, 32), 1);
        assert_eq!(rotations_per_sweep(96, 16), 5 * 3);
        assert_eq!(rotations_per_sweep(16, 16), 0);
    }

    #[test]
    fn measured_rotations_match_analytic_per_sweep() {
        let gpu = Gpu::new(V100);
        let a = random_uniform(64, 64, 9);
        let cfg = BlockJacobiConfig {
            w: 16,
            max_sweeps: 1,
            tol: 0.0,
            ..Default::default()
        };
        let outs = block_jacobi_svd(&gpu, std::slice::from_ref(&a), &cfg).unwrap();
        assert_eq!(outs[0].rotations, rotations_per_sweep(64, 16));
    }

    #[test]
    fn tailored_gemms_do_not_change_numerics() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(1, 80, 80, 11);
        let plain = block_jacobi_svd(&gpu, &mats, &BlockJacobiConfig::default()).unwrap();
        let cfg = BlockJacobiConfig {
            tailor: true,
            ..Default::default()
        };
        let tailored = block_jacobi_svd(&gpu, &mats, &cfg).unwrap();
        for (p, t) in plain[0].sigma.iter().zip(&tailored[0].sigma) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn want_v_false_is_cheaper_and_valueless() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(1, 64, 64, 13);
        let cfg = BlockJacobiConfig {
            want_v: false,
            ..Default::default()
        };
        let outs = block_jacobi_svd(&gpu, &mats, &cfg).unwrap();
        assert!(outs[0].v.is_none());
        let want = singular_values(&mats[0]).unwrap();
        for (g, w) in outs[0].sigma.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8 * (1.0 + w));
        }
    }
}
