//! # wsvd-baselines
//!
//! Comparator implementations for the W-cycle SVD evaluation:
//!
//! * [`cusolver`] — a cuSOLVER-like baseline (`gesvdjBatched` for `m,n <=
//!   32`, serial `gesvdj` loop above it), with the static kernel design the
//!   paper's Fig. 7/8 measure against;
//! * [`magma`] — a MAGMA-like two-stage SVD (real Householder
//!   bidiagonalization + implicit-shift QR numerics, panel-pipeline cost);
//! * [`dp`] — `Batched_DP_Direct` / `Batched_DP_Gram` of ref. \[19\], the
//!   Table-IV state of the art;
//! * [`block`] — the shared uniform-width block Jacobi (Algorithm 1) they
//!   are built from.

#![warn(missing_docs)]

pub mod block;
pub mod cusolver;
pub mod dp;
pub mod magma;

pub use block::{
    block_jacobi_svd, rotations_per_sweep, BlockJacobiConfig, BlockSvd, RotationSource,
};
pub use cusolver::{
    cusolver_batched_svd, gesvdj, gesvdj_batched, gesvdj_serial_batch, BATCHED_API_MAX_DIM,
};
pub use dp::{batched_dp_direct, batched_dp_gram, DP_BLOCK_W};
pub use magma::{magma_batched_svd, magma_gesvd};
