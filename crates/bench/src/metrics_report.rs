//! Per-kernel profiler reports and the perf-regression snapshot format.
//!
//! This module turns a [`wsvd_metrics::Snapshot`] into the two artifacts the
//! BENCH trajectory is built on:
//!
//! * **Reports** — for each experiment in the snapshot, a per-kernel table
//!   attributing simulated time, achieved occupancy, arithmetic intensity and
//!   the roofline ceiling of Eqs. 8–10 (via the *same*
//!   [`wsvd_gpu_sim::KernelObservation::derive`] arithmetic the profiler
//!   uses — there is exactly one roofline implementation in the tree), plus
//!   GM-transaction efficiency and the launch/graph overhead share.
//! * **[`BenchSnapshot`]** — a stable, deterministic JSON snapshot of one
//!   `repro` invocation (`repro --bench-out BENCH_<n>.json`), compared by the
//!   `wsvd-bench-diff` binary under configurable relative tolerances so CI
//!   can gate on a committed baseline.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wsvd_gpu_sim::{time_share_percent, KernelDerived, KernelObservation};
use wsvd_metrics::{parse_key, Snapshot};

use crate::report::Report;

/// Snapshot format version; bumped when the metric key schema changes.
pub const BENCH_SNAPSHOT_VERSION: u64 = 1;

/// One real kernel's metrics within one experiment, ready for rendering.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel label as recorded by the simulator (e.g. `evd-batched`).
    pub kernel: String,
    /// Total simulated seconds (kernel body + launch overhead).
    pub seconds: f64,
    /// Number of launches.
    pub launches: f64,
    /// Time-weighted achieved SM-slot occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// The raw observation fed to the roofline model.
    pub observation: KernelObservation,
    /// Eqs. 8–10 derived quantities (AI, ceiling, roof fraction, ...).
    pub derived: KernelDerived,
}

/// Extracts the per-kernel rows for `experiment`, sorted by descending
/// simulated time. Pseudo-kernels (`device`, `launch-graph`, `wcycle`,
/// `autotune`, `plan-cache`) carry no `launches` counter and are skipped.
pub fn kernel_rows(snap: &Snapshot, experiment: &str) -> Vec<KernelRow> {
    let peak_flops = snap
        .gauge(experiment, "device", None, "peak_fp64_flops")
        .unwrap_or(0.0);
    let gm_bandwidth = snap
        .gauge(experiment, "device", None, "gm_bandwidth_bytes_per_s")
        .unwrap_or(0.0);
    let gm_transaction_bytes = snap
        .gauge(experiment, "device", None, "gm_transaction_bytes")
        .unwrap_or(32.0);
    let mut rows = Vec::new();
    for kernel in snap.kernels(experiment) {
        let launches = snap.counter(experiment, &kernel, None, "launches");
        if launches <= 0.0 {
            continue; // pseudo-kernel track, not a launched kernel
        }
        let c = |name: &str| snap.counter(experiment, &kernel, None, name);
        let kernel_seconds = c("kernel_seconds");
        let overhead_seconds = c("overhead_seconds");
        let seconds = kernel_seconds + overhead_seconds;
        let observation = KernelObservation {
            flops: c("flops"),
            gm_bytes: c("gm_load_bytes") + c("gm_store_bytes"),
            gm_transactions: c("gm_transactions"),
            kernel_seconds,
            overhead_seconds,
            peak_flops,
            gm_bandwidth,
            gm_transaction_bytes,
        };
        let occupancy = if seconds > 0.0 {
            c("occ_seconds") / seconds
        } else {
            0.0
        };
        rows.push(KernelRow {
            kernel,
            seconds,
            launches,
            occupancy,
            derived: observation.derive(),
            observation,
        });
    }
    rows.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then_with(|| a.kernel.cmp(&b.kernel))
    });
    rows
}

/// Builds the per-kernel profiler [`Report`] for one experiment in the
/// snapshot: time share, achieved occupancy, AI, roofline-ceiling
/// attribution, roof fraction, GM-transaction efficiency and launch-overhead
/// share, one row per kernel.
pub fn kernel_report(snap: &Snapshot, experiment: &str) -> Report {
    let rows = kernel_rows(snap, experiment);
    let total: f64 = rows.iter().map(|r| r.seconds).sum();
    let mut rep = Report::new(
        &format!("report-{experiment}"),
        &format!("Per-kernel profiler report — {experiment}"),
        "derived from the wsvd-metrics registry (Eqs. 8-10 attribution)",
        &[
            "kernel",
            "time%",
            "occ",
            "AI",
            "bound",
            "roof%",
            "GM-tx eff",
            "ovh%",
            "launches",
        ],
        "roofline ceiling per kernel: compute-bound hits peak FLOPS, memory-bound hits AI*BW",
    );
    for r in &rows {
        let d = &r.derived;
        rep.push_row(vec![
            r.kernel.clone(),
            format!("{:.1}%", time_share_percent(r.seconds, total)),
            format!("{:.3}", r.occupancy),
            if d.ai.is_finite() {
                format!("{:.2}", d.ai)
            } else {
                "inf".to_string()
            },
            if d.compute_bound { "compute" } else { "memory" }.to_string(),
            format!("{:.1}%", 100.0 * d.roof_fraction),
            format!("{:.3}", d.gm_transaction_efficiency),
            format!("{:.1}%", 100.0 * d.overhead_share),
            format!("{:.0}", r.launches),
        ]);
    }
    rep
}

/// Renders the full `repro --report` text: one per-kernel table per
/// experiment recorded in the snapshot, followed by the launch-graph
/// summary counters when the fused pipeline ran.
pub fn render_report(snap: &Snapshot) -> String {
    let mut out = String::new();
    for exp in snap.experiments() {
        let rep = kernel_report(snap, &exp);
        if rep.rows.is_empty() {
            continue;
        }
        out.push_str(&rep.render());
        let graphs = snap.counter(&exp, "launch-graph", None, "graphs");
        if graphs > 0.0 {
            out.push_str(&format!(
                "   launch graphs: {:.0} ({:.0} nodes, {:.0} coalesced); overhead saved {:.3e} s\n",
                graphs,
                snap.counter(&exp, "launch-graph", None, "nodes"),
                snap.counter(&exp, "launch-graph", None, "coalesced"),
                snap.counter(&exp, "launch-graph", None, "overhead_saved_seconds"),
            ));
        }
        out.push('\n');
    }
    out
}

/// A stable perf snapshot of one `repro` invocation: which experiments ran,
/// at which scale, and every metric series the registry accumulated.
/// Written by `repro --bench-out`, compared by `wsvd-bench-diff`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Format version ([`BENCH_SNAPSHOT_VERSION`]).
    pub version: f64,
    /// Scale the experiments ran at (`reduced` or `full`).
    pub scale: String,
    /// Experiment ids, in run order.
    pub experiments: Vec<String>,
    /// The metrics registry contents at the end of the run.
    pub metrics: Snapshot,
}

/// Relative tolerances for [`BenchSnapshot::compare`].
#[derive(Clone, Debug)]
pub struct Tolerances {
    /// Allowed relative drift on time-like series (names ending `seconds`).
    pub time: f64,
    /// Allowed relative drift on every other counter/gauge/histogram count.
    pub counter: f64,
    /// Accept series present only in the new snapshot (series present only
    /// in the baseline still violate). This is how CI gates a snapshot that
    /// legitimately *adds* experiments against the previous baseline.
    pub allow_new: bool,
    /// Key prefixes whose *value drift* is accepted as an intended change
    /// when gating against the previous release's baseline. Missing or
    /// extra series under an accepted prefix still violate — the flag
    /// waives a documented behavior change, not a lost series.
    pub accept_prefixes: Vec<String>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            time: 0.01,
            counter: 0.0,
            allow_new: false,
            accept_prefixes: Vec::new(),
        }
    }
}

impl Tolerances {
    fn accepts(&self, key: &str) -> bool {
        self.accept_prefixes.iter().any(|p| key.starts_with(p))
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// `true` when the series name carries simulated time (tolerated drift);
/// everything else is a count and held to the counter tolerance.
fn is_time_series(key: &str) -> bool {
    parse_key(key).is_some_and(|(_, _, _, name)| name.ends_with("seconds"))
}

impl BenchSnapshot {
    /// Serializes to deterministic pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses a snapshot written by [`BenchSnapshot::to_json`].
    pub fn from_json(s: &str) -> Result<BenchSnapshot, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Compares `self` (the baseline) against `fresh`, returning one
    /// human-readable violation per series outside tolerance. Missing or
    /// extra series are always violations; time-like series (`*seconds`)
    /// use `tol.time`, all other counters/gauges use `tol.counter`, and
    /// histogram bucket counts are compared under `tol.counter`. Value
    /// drift on a series under `tol.accept_prefixes` is waived (missing
    /// or extra series under a prefix still violate).
    pub fn compare(&self, fresh: &BenchSnapshot, tol: &Tolerances) -> Vec<String> {
        let mut out = Vec::new();
        if self.version != fresh.version {
            out.push(format!(
                "snapshot version mismatch: baseline v{} vs new v{}",
                self.version, fresh.version
            ));
            return out;
        }
        if self.scale != fresh.scale {
            out.push(format!(
                "scale mismatch: baseline '{}' vs new '{}'",
                self.scale, fresh.scale
            ));
        }
        compare_maps(
            "counter",
            &self.metrics.counters,
            &fresh.metrics.counters,
            tol,
            &mut out,
        );
        compare_maps(
            "gauge",
            &self.metrics.gauges,
            &fresh.metrics.gauges,
            tol,
            &mut out,
        );
        let keys: std::collections::BTreeSet<&String> = self
            .metrics
            .histograms
            .keys()
            .chain(fresh.metrics.histograms.keys())
            .collect();
        for key in keys {
            match (
                self.metrics.histograms.get(key),
                fresh.metrics.histograms.get(key),
            ) {
                (Some(a), Some(b)) => {
                    let d = rel_diff(a.total as f64, b.total as f64);
                    if d > tol.counter && !tol.accepts(key) {
                        out.push(format!(
                            "histogram {key}: baseline count {} vs new {} (rel {:.2e} > tol {:.2e})",
                            a.total, b.total, d, tol.counter
                        ));
                    }
                }
                (Some(_), None) => out.push(format!("histogram {key}: missing from new snapshot")),
                (None, Some(_)) if !tol.allow_new => {
                    out.push(format!("histogram {key}: not in baseline"))
                }
                _ => {}
            }
        }
        out
    }

    /// Total number of metric series in the snapshot (for diff summaries).
    pub fn series_count(&self) -> usize {
        self.metrics.counters.len() + self.metrics.gauges.len() + self.metrics.histograms.len()
    }
}

fn compare_maps(
    kind: &str,
    base: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tol: &Tolerances,
    out: &mut Vec<String>,
) {
    let keys: std::collections::BTreeSet<&String> = base.keys().chain(fresh.keys()).collect();
    for key in keys {
        match (base.get(key), fresh.get(key)) {
            (Some(&a), Some(&b)) => {
                let t = if is_time_series(key) {
                    tol.time
                } else {
                    tol.counter
                };
                let d = rel_diff(a, b);
                if d > t && !tol.accepts(key) {
                    out.push(format!(
                        "{kind} {key}: baseline {a} vs new {b} (rel {d:.2e} > tol {t:.2e})"
                    ));
                }
            }
            (Some(_), None) => out.push(format!("{kind} {key}: missing from new snapshot")),
            (None, Some(_)) if !tol.allow_new => out.push(format!("{kind} {key}: not in baseline")),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_metrics::MetricsSink;

    fn sample_snapshot() -> Snapshot {
        let sink = MetricsSink::enabled();
        sink.set_experiment("t");
        sink.counter_add("evd", None, "launches", 2.0);
        sink.counter_add("evd", None, "flops", 1.0e9);
        sink.counter_add("evd", None, "gm_load_bytes", 1.0e6);
        sink.counter_add("evd", None, "gm_store_bytes", 1.0e6);
        sink.counter_add("evd", None, "gm_transactions", 70_000.0);
        sink.counter_add("evd", None, "kernel_seconds", 1.0e-3);
        sink.counter_add("evd", None, "overhead_seconds", 1.0e-5);
        sink.counter_add("evd", None, "occ_seconds", 0.75 * 1.01e-3);
        sink.gauge_set("device", None, "peak_fp64_flops", 7.0e12);
        sink.gauge_set("device", None, "gm_bandwidth_bytes_per_s", 9.0e11);
        sink.gauge_set("device", None, "gm_transaction_bytes", 32.0);
        sink.snapshot()
    }

    #[test]
    fn kernel_rows_skip_pseudo_kernels_and_derive_roofline() {
        let snap = sample_snapshot();
        let rows = kernel_rows(&snap, "t");
        assert_eq!(rows.len(), 1, "device gauge track must not become a row");
        let r = &rows[0];
        assert_eq!(r.kernel, "evd");
        assert_eq!(r.launches, 2.0);
        assert!((r.occupancy - 0.75).abs() < 1e-12);
        // AI = 1e9 / 2e6 = 500 >= ridge (7e12/9e11 ~ 7.8) -> compute bound.
        assert!(r.derived.compute_bound);
        assert!((r.derived.ai - 500.0).abs() < 1e-9);
        let rep = kernel_report(&snap, "t");
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.rows[0][1], "100.0%");
        assert_eq!(rep.rows[0][4], "compute");
    }

    #[test]
    fn bench_snapshot_round_trips_and_self_compares_clean() {
        let snap = BenchSnapshot {
            version: BENCH_SNAPSHOT_VERSION as f64,
            scale: "reduced".to_string(),
            experiments: vec!["fig7".to_string()],
            metrics: sample_snapshot(),
        };
        let json = snap.to_json();
        let back = BenchSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert!(snap.compare(&back, &Tolerances::default()).is_empty());
        assert_eq!(json, back.to_json(), "serialization must be deterministic");
    }

    #[test]
    fn compare_classifies_time_vs_counter_series() {
        let base = BenchSnapshot {
            version: 1.0,
            scale: "reduced".to_string(),
            experiments: vec![],
            metrics: sample_snapshot(),
        };
        let mut fresh = base.clone();
        // 0.5% drift on a time series: inside the 1% time tolerance.
        if let Some(v) = fresh.metrics.counters.get_mut("t/evd/-/kernel_seconds") {
            *v *= 1.005;
        }
        let tol = Tolerances::default();
        assert!(base.compare(&fresh, &tol).is_empty());
        // Any drift on a count series violates the exact counter tolerance.
        if let Some(v) = fresh.metrics.counters.get_mut("t/evd/-/launches") {
            *v += 1.0;
        }
        let violations = base.compare(&fresh, &tol);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("launches"));
    }

    #[test]
    fn compare_flags_missing_and_extra_series() {
        let base = BenchSnapshot {
            version: 1.0,
            scale: "reduced".to_string(),
            experiments: vec![],
            metrics: sample_snapshot(),
        };
        let mut fresh = base.clone();
        fresh.metrics.counters.remove("t/evd/-/flops");
        fresh
            .metrics
            .counters
            .insert("t/new/-/thing".to_string(), 1.0);
        let violations = base.compare(&fresh, &Tolerances::default());
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("missing from new")));
        assert!(violations.iter().any(|v| v.contains("not in baseline")));
    }

    #[test]
    fn allow_new_accepts_added_series_but_not_removed_ones() {
        let base = BenchSnapshot {
            version: 1.0,
            scale: "reduced".to_string(),
            experiments: vec![],
            metrics: sample_snapshot(),
        };
        let mut fresh = base.clone();
        fresh
            .metrics
            .counters
            .insert("t/new/-/thing".to_string(), 1.0);
        let tol = Tolerances {
            allow_new: true,
            ..Tolerances::default()
        };
        assert!(base.compare(&fresh, &tol).is_empty());
        fresh.metrics.counters.remove("t/evd/-/flops");
        let violations = base.compare(&fresh, &tol);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing from new"));
    }

    #[test]
    fn accept_prefixes_waive_value_drift_but_not_lost_series() {
        let base = BenchSnapshot {
            version: 1.0,
            scale: "reduced".to_string(),
            experiments: vec![],
            metrics: sample_snapshot(),
        };
        let mut fresh = base.clone();
        if let Some(v) = fresh.metrics.counters.get_mut("t/evd/-/launches") {
            *v += 7.0;
        }
        let tol = Tolerances {
            accept_prefixes: vec!["t/evd/-/launches".to_string()],
            ..Tolerances::default()
        };
        assert!(
            base.compare(&fresh, &tol).is_empty(),
            "drift on the accepted key must be waived"
        );
        // Drift outside the accepted prefix still violates...
        if let Some(v) = fresh.metrics.counters.get_mut("t/evd/-/flops") {
            *v += 1.0;
        }
        let violations = base.compare(&fresh, &tol);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("flops"));
        // ...and an accepted series going missing is never waived.
        if let Some(v) = fresh.metrics.counters.get_mut("t/evd/-/flops") {
            *v -= 1.0;
        }
        fresh.metrics.counters.remove("t/evd/-/launches");
        let violations = base.compare(&fresh, &tol);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing from new"));
    }
}
