//! # wsvd-bench
//!
//! The reproduction harness: one function per table/figure of the paper's
//! evaluation (exposed through the `repro` binary) plus Criterion
//! micro-benchmarks (`benches/`). Each experiment returns a [`Report`]
//! whose rows mirror the paper's artifact output; DESIGN.md §4 maps ids to
//! paper artifacts and EXPERIMENTS.md records paper-vs-measured shapes.

#![warn(missing_docs)]

pub mod exp_accuracy;
pub mod exp_apps;
pub mod exp_baselines;
pub mod exp_cluster;
pub mod exp_extensions;
pub mod exp_health;
pub mod exp_kernels;
pub mod exp_serve;
pub mod exp_tail;
pub mod exp_tailoring;
pub mod metrics_report;
pub mod report;
pub mod scale;

pub use metrics_report::{BenchSnapshot, Tolerances, BENCH_SNAPSHOT_VERSION};
pub use report::Report;
pub use scale::Scale;

/// An experiment runner: reduced-or-full scale in, rendered report out.
pub type Experiment = fn(Scale) -> Report;

/// Every experiment in DESIGN.md §4, as `(id, runner)` pairs in paper order.
pub fn all_experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("fig1", exp_kernels::fig1 as Experiment),
        ("fig2", exp_kernels::fig2),
        ("tab1", exp_tailoring::tab1),
        ("fig7", exp_baselines::fig7),
        ("fig8a", exp_baselines::fig8a),
        ("fig8b", exp_baselines::fig8b),
        ("fig9", exp_baselines::fig9),
        ("tab4", exp_baselines::tab4),
        ("fig10a", exp_kernels::fig10a),
        ("fig10b", exp_kernels::fig10b),
        ("fig11a", exp_tailoring::fig11a),
        ("fig11b", exp_tailoring::fig11b),
        ("fig12", exp_tailoring::fig12),
        ("tab5", exp_tailoring::tab5),
        ("tab6", exp_baselines::tab6),
        ("fig13", exp_baselines::fig13),
        ("fig14a", exp_baselines::fig14a),
        ("fig14b", exp_apps::fig14b),
        ("tab7", exp_accuracy::tab7),
        ("fig15a", exp_accuracy::fig15a),
        ("fig15b", exp_accuracy::fig15b),
        ("ext-ablation", exp_extensions::ext_ablation),
        ("ext-lowp", exp_extensions::ext_lowp),
        ("ext-profile", exp_extensions::ext_profile),
        ("ext-trace", exp_extensions::ext_trace),
        ("ext-sanitize", exp_extensions::ext_sanitize),
        ("ext-fused", exp_extensions::ext_fused),
        ("ext-metrics", exp_extensions::ext_metrics),
        ("ext-certify", exp_extensions::ext_certify),
        ("ext-health", exp_health::ext_health),
        ("ext-cluster", exp_cluster::ext_cluster),
        ("ext-serve", exp_serve::ext_serve),
        ("ext-tail", exp_tail::ext_tail),
    ]
}
