//! Kernel-level experiments: Fig. 1, Fig. 2, Fig. 10(a), Fig. 10(b).

use wsvd_baselines::block::{block_jacobi_svd, BlockJacobiConfig, RotationSource};
use wsvd_baselines::rotations_per_sweep;
use wsvd_batched::gemm::{batched_gram, batched_update, GemmStrategy};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_jacobi::batch::{batched_evd_sm, batched_svd_gm, batched_svd_sm};
use wsvd_jacobi::evd::{EvdConfig, EvdVariant};
use wsvd_jacobi::fits::{evd_fits_in_sm, svd_fits_in_sm};
use wsvd_jacobi::onesided::OneSidedConfig;
use wsvd_linalg::generate::{random_batch, random_symmetric};

use crate::report::{fmt_secs, fmt_speedup, Report};
use crate::scale::Scale;

/// Fig. 1: time of one-sided Jacobi rotation generation in different cases —
/// SVD of `A_ij` in SM vs EVD of `B_ij` in SM vs SVD of `A_ij` in GM.
pub fn fig1(scale: Scale) -> Report {
    // 192 rows keeps the 2w = 24 column pair inside the SM SVD footprint at
    // reduced scale, so three of the four rows exercise all three kernels.
    let m = scale.pick(192, 1024);
    let batch = scale.pick(16, 64);
    let mut rep = Report::new(
        "fig1",
        "Time of one-sided Jacobi methods in different cases (Fig. 1)",
        &scale.note(format!("pair blocks {m} rows, batch {batch}").as_str()),
        &["pair width 2w", "SVD in SM", "EVD(B) in SM", "SVD in GM"],
        "SVD-in-SM < EVD-in-SM < SVD-in-GM wherever SVD fits in SM",
    );
    for &w in &[4usize, 8, 12, 16] {
        let nn = 2 * w;
        let blocks = random_batch(batch, m, nn, 42 + w as u64);
        let smem = V100.smem_per_block_bytes;

        let svd_sm = if svd_fits_in_sm(m, nn, smem) {
            let gpu = Gpu::new(V100);
            batched_svd_sm(&gpu, &blocks, &OneSidedConfig::default(), 256).unwrap();
            Some(gpu.elapsed_seconds())
        } else {
            None
        };
        let evd_sm = {
            let gpu = Gpu::new(V100);
            let strat = GemmStrategy::OneBlockPerGemm { threads: 256 };
            let (grams, _) = batched_gram(&gpu, &blocks, strat).unwrap();
            let (evds, _) = batched_evd_sm(&gpu, &grams, &EvdConfig::default(), 256).unwrap();
            let js: Vec<_> = evds.into_iter().map(|e| e.j).collect();
            let mut b = blocks.clone();
            batched_update(&gpu, &mut b, &js, strat).unwrap();
            gpu.elapsed_seconds()
        };
        let svd_gm = {
            let gpu = Gpu::new(V100);
            batched_svd_gm(&gpu, &blocks, &OneSidedConfig::default(), 256).unwrap();
            gpu.elapsed_seconds()
        };
        rep.push_row(vec![
            nn.to_string(),
            svd_sm.map(fmt_secs).unwrap_or_else(|| "overflow".into()),
            fmt_secs(evd_sm),
            fmt_secs(svd_gm),
        ]);
    }
    rep
}

/// Fig. 2: block Jacobi of a batch vs the block width `w` — rotations per
/// sweep shrink as `w` grows, but beyond the SM boundary (w > 24) the pair
/// blocks fall out of shared memory and time blows up.
pub fn fig2(scale: Scale) -> Report {
    let n = scale.dim(1536, 4, 256);
    let batch = scale.dim(100, 10, 4);
    let mut rep = Report::new(
        "fig2",
        "One-sided Jacobi vs column-block width w (Fig. 2)",
        &scale.note(&format!(
            "{batch} matrices of {n}x{n} (paper: 100 of 1536x1536)"
        )),
        &["w", "rotations/sweep", "sweeps", "time", "in SM?"],
        "rotations/sweep decreases with w; time jumps once w > 24 (SM overflow)",
    );
    let mats = random_batch(batch, n, n, 7);
    for &w in &[4usize, 8, 16, 24, 32, 48] {
        let gpu = Gpu::new(V100);
        // Rotations resolve in SM while the 2w x 2w Gram EVD fits (w <= 24);
        // beyond that only the GM-resident direct SVD remains — the blow-up
        // Fig. 2 shows past the SM boundary.
        let rotation = if evd_fits_in_sm(2 * w, V100.smem_per_block_bytes) {
            RotationSource::GramEvd
        } else {
            RotationSource::DirectSvd
        };
        let cfg = BlockJacobiConfig {
            w,
            rotation,
            max_sweeps: 30,
            ..Default::default()
        };
        let outs = block_jacobi_svd(&gpu, &mats, &cfg).unwrap();
        let sweeps = outs.iter().map(|o| o.sweeps).max().unwrap_or(0);
        let fits = svd_fits_in_sm(n, 2 * w, V100.smem_per_block_bytes)
            || evd_fits_in_sm(2 * w, V100.smem_per_block_bytes);
        rep.push_row(vec![
            w.to_string(),
            rotations_per_sweep(n, w).to_string(),
            sweeps.to_string(),
            fmt_secs(gpu.elapsed_seconds()),
            if fits { "yes" } else { "no" }.to_string(),
        ]);
    }
    rep
}

/// Fig. 10(a): α-warp column-pair teams vs the usual one-full-warp-per-pair
/// assignment, batched SVD kernel on 32x32 matrices.
pub fn fig10a(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig10a",
        "α-warp vs one-warp column-rotation assignment (Fig. 10a)",
        &scale.note("32x32 matrices"),
        &["batch", "one warp/pair", "α-warp (GCF)", "speedup"],
        "α-warp teams win while the kernel is span-bound; at full occupancy both saturate FP64 throughput",
    );
    let batches: &[usize] = scale.pick(&[10usize, 50, 100, 200][..], &[10, 100, 300, 500][..]);
    for &batch in batches {
        let mats = random_batch(batch, 32, 32, 13);
        // Fixed sweep count: this is a kernel-cost comparison, as in the
        // paper's Fig. 10 (both assignments perform identical rotations).
        let run = |tpp: usize| {
            let gpu = Gpu::new(V100);
            let cfg = OneSidedConfig {
                threads_per_pair: tpp,
                max_sweeps: 8,
                tol: 0.0,
                ..Default::default()
            };
            batched_svd_sm(&gpu, &mats, &cfg, 128).unwrap();
            gpu.elapsed_seconds()
        };
        let one_warp = run(32);
        let alpha = run(wsvd_batched::alpha_gcf(32).min(16)); // α < 1 teams
        rep.push_row(vec![
            batch.to_string(),
            fmt_secs(one_warp),
            fmt_secs(alpha),
            fmt_speedup(one_warp, alpha),
        ]);
    }
    rep
}

/// Fig. 10(b): the parallel two-sided Jacobi EVD kernel vs the sequential
/// textbook implementation, batched 32x32 EVDs.
pub fn fig10b(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig10b",
        "Parallel vs sequential two-sided Jacobi EVD (Fig. 10b)",
        &scale.note("32x32 symmetric matrices"),
        &["batch", "sequential", "parallel", "speedup"],
        "parallel all-element update is ~6x faster (paper: >6x at 32x32)",
    );
    let batches: &[usize] = scale.pick(&[10usize, 50, 100][..], &[10, 100, 500][..]);
    for &batch in batches {
        let mats: Vec<_> = (0..batch)
            .map(|k| random_symmetric(32, 100 + k as u64))
            .collect();
        // Fixed sweep count: kernel-cost comparison (the sequential variant
        // would otherwise converge in fewer, far more expensive sweeps).
        let run = |variant: EvdVariant| {
            let gpu = Gpu::new(V100);
            let cfg = EvdConfig {
                variant,
                max_sweeps: 6,
                tol: 0.0,
            };
            batched_evd_sm(&gpu, &mats, &cfg, 256).unwrap();
            gpu.elapsed_seconds()
        };
        let seq = run(EvdVariant::Sequential);
        let par = run(EvdVariant::Parallel);
        rep.push_row(vec![
            batch.to_string(),
            fmt_secs(seq),
            fmt_secs(par),
            fmt_speedup(seq, par),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(cell: &str) -> f64 {
        // parse "x.xxx s|ms|us"
        let mut it = cell.split_whitespace();
        let v: f64 = it.next().unwrap().parse().unwrap();
        match it.next().unwrap() {
            "s" => v,
            "ms" => v * 1e-3,
            _ => v * 1e-6,
        }
    }

    #[test]
    fn fig1_sm_faster_than_gm() {
        let rep = fig1(Scale::Reduced);
        assert_eq!(rep.rows.len(), 4);
        for row in &rep.rows {
            if row[1] != "overflow" {
                assert!(secs(&row[1]) < secs(&row[3]), "SM !< GM in {row:?}");
            }
        }
    }

    #[test]
    fn fig2_rotations_decrease_with_w() {
        let rep = fig2(Scale::Reduced);
        let rots: Vec<u64> = rep.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(rots.windows(2).all(|w| w[0] >= w[1]), "{rots:?}");
        // SM boundary: w = 32, 48 are out.
        assert_eq!(rep.rows[4][4], "no");
        assert_eq!(rep.rows[1][4], "yes");
    }

    #[test]
    fn fig10b_parallel_wins() {
        let rep = fig10b(Scale::Reduced);
        for row in &rep.rows {
            let s: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(s > 2.0, "speedup too small: {row:?}");
        }
    }
}
