//! Application experiment: Fig. 14(b) — data assimilation vs MAGMA.

use wsvd_apps::{analysis_step_distributed, AssimilationProblem, SvdEngine};
use wsvd_gpu_sim::{GpuCluster, VEGA20};

use crate::report::{fmt_secs, fmt_speedup, Report};
use crate::scale::Scale;

/// Fig. 14(b): the oceanic data-assimilation analysis step on a
/// distributed-memory system of Vega20 GPUs (the artifact's `test_Cluster`
/// setup), W-cycle vs MAGMA, for growing grids and GPU counts.
pub fn fig14b(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig14b",
        "Data assimilation on a Vega20 cluster (Fig. 14b)",
        &scale.note("paper: sizes 50..1024 per grid point; reduced: 24..112"),
        &["gpus", "grid points", "MAGMA", "W-cycle", "speedup"],
        "2.73~3.09x over MAGMA across grid sizes and GPU counts",
    );
    let (min_dim, max_dim) = scale.pick((24usize, 112usize), (50, 1024));
    let grids: &[usize] = scale.pick(&[24usize, 48][..], &[64, 128, 256][..]);
    for &gpus in &[1usize, 4] {
        for &points in grids {
            let problem = AssimilationProblem::generate(points, min_dim, max_dim, 4242);
            let cm = GpuCluster::new(VEGA20, gpus);
            let magma = analysis_step_distributed(&cm, &problem, SvdEngine::Magma).unwrap();
            let cw = GpuCluster::new(VEGA20, gpus);
            let wcycle = analysis_step_distributed(&cw, &problem, SvdEngine::WCycle).unwrap();
            // Both engines must agree on the analysis weights.
            let (wn, mn) = (wcycle.weight_norms(), magma.weight_norms());
            for (a, b) in wn.iter().zip(&mn) {
                assert!(
                    (a - b).abs() < 1e-6 * (1.0 + b),
                    "engines disagree: {a} vs {b}"
                );
            }
            rep.push_row(vec![
                gpus.to_string(),
                points.to_string(),
                fmt_secs(magma.svd_seconds),
                fmt_secs(wcycle.svd_seconds),
                fmt_speedup(magma.svd_seconds, wcycle.svd_seconds),
            ]);
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14b_wcycle_wins_and_engines_agree() {
        let rep = fig14b(Scale::Reduced);
        for row in &rep.rows {
            let s: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(s > 1.0, "{row:?}");
        }
    }
}
