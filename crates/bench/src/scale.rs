//! Experiment scaling.
//!
//! The paper's workloads (e.g. 100 matrices of 1536x1536 to convergence)
//! are sized for a V100; our numerics execute on the host CPU, so each
//! experiment defines a *reduced* default that preserves the comparison
//! shape, and accepts `--scale full` to run at paper scale. EXPERIMENTS.md
//! records the scale used for every reported number.

/// Global scale selector for the repro harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CPU-friendly reduced sizes (default).
    Reduced,
    /// The paper's exact sizes (slow on a CPU).
    Full,
}

impl Scale {
    /// Picks `reduced` or `full`.
    pub fn pick<T: Copy>(self, reduced: T, full: T) -> T {
        match self {
            Scale::Reduced => reduced,
            Scale::Full => full,
        }
    }

    /// Scales a dimension: `full` at full scale, `full/div` (min `min`)
    /// reduced.
    pub fn dim(self, full: usize, div: usize, min: usize) -> usize {
        match self {
            Scale::Reduced => (full / div.max(1)).max(min),
            Scale::Full => full,
        }
    }

    /// Human-readable note for reports.
    pub fn note(self, detail: &str) -> String {
        match self {
            Scale::Reduced => format!("reduced ({detail})"),
            Scale::Full => "paper scale".to_string(),
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reduced" => Ok(Scale::Reduced),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (use reduced|full)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_and_dim() {
        assert_eq!(Scale::Reduced.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::Reduced.dim(1536, 4, 64), 384);
        assert_eq!(Scale::Reduced.dim(100, 64, 8), 8);
        assert_eq!(Scale::Full.dim(1536, 4, 64), 1536);
    }

    #[test]
    fn parse() {
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("nope".parse::<Scale>().is_err());
    }
}
