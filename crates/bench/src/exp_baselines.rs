//! Comparisons against cuSOLVER, MAGMA and the ref.\[19\] methods:
//! Fig. 7, Fig. 8(a)/(b), Fig. 9, Table IV, Table VI, Fig. 13, Fig. 14(a).

use wsvd_baselines::{
    batched_dp_direct, batched_dp_gram, cusolver_batched_svd, gesvdj_serial_batch,
    magma_batched_svd,
};
use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_datasets::TABLE_VI;
use wsvd_gpu_sim::{DeviceSpec, Gpu, A100, P100, TITAN_X, V100, VEGA20};
use wsvd_linalg::generate::random_batch;
use wsvd_linalg::Matrix;

use crate::report::{fmt_secs, fmt_speedup, Report};
use crate::scale::Scale;

fn time_wcycle(device: DeviceSpec, mats: &[Matrix]) -> f64 {
    let gpu = Gpu::new(device);
    wcycle_svd(&gpu, mats, &WCycleConfig::default()).unwrap();
    gpu.elapsed_seconds()
}

fn time_cusolver(device: DeviceSpec, mats: &[Matrix]) -> f64 {
    let gpu = Gpu::new(device);
    cusolver_batched_svd(&gpu, mats).unwrap();
    gpu.elapsed_seconds()
}

fn time_magma(device: DeviceSpec, mats: &[Matrix]) -> f64 {
    let gpu = Gpu::new(device);
    magma_batched_svd(&gpu, mats).unwrap();
    gpu.elapsed_seconds()
}

/// Fig. 7: W-cycle vs cuSOLVER's batched kernel (`m, n <= 32`), over matrix
/// shapes and batch sizes.
pub fn fig7(scale: Scale) -> Report {
    fig7_on(
        scale,
        V100,
        "fig7",
        "W-cycle vs cuSOLVER gesvdjBatched (Fig. 7)",
    )
}

/// Fig. 13: the same grid on the A100, whose tensor cores accelerate the
/// per-level batched GEMMs.
pub fn fig13(scale: Scale) -> Report {
    let mut rep = fig7_on(
        scale,
        A100,
        "fig13",
        "W-cycle vs cuSOLVER on A100 with tensor cores (Fig. 13)",
    );
    rep.shape_claim =
        "speedups persist on A100; tensor cores push the envelope further".to_string();
    rep
}

fn fig7_on(scale: Scale, device: DeviceSpec, id: &str, title: &str) -> Report {
    let mut rep = Report::new(
        id,
        title,
        &scale.note("shapes (m,n) <= 32 as in the paper"),
        &["m", "n", "batch", "cuSOLVER", "W-cycle", "speedup"],
        "2.6~10.2x over cuSOLVER; larger batches help, smaller matrices help, m<=n helps",
    );
    let batches: &[usize] = scale.pick(&[10usize, 100][..], &[10, 100, 500][..]);
    for &(m, n) in &[(8usize, 32usize), (16, 32), (32, 32), (32, 16), (32, 8)] {
        for &batch in batches {
            let mats = random_batch(batch, m, n, (m * 100 + n) as u64);
            let cu = time_cusolver(device, &mats);
            let wc = time_wcycle(device, &mats);
            rep.push_row(vec![
                m.to_string(),
                n.to_string(),
                batch.to_string(),
                fmt_secs(cu),
                fmt_secs(wc),
                fmt_speedup(cu, wc),
            ]);
        }
    }
    rep
}

/// Fig. 8(a): single SVD (batch = 1) of large matrices vs the cuSOLVER
/// single API.
pub fn fig8a(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig8a",
        "Single SVD vs cuSOLVER gesvdj (Fig. 8a)",
        &scale.note("paper sweeps n = 500..10000; reduced sweeps n = 64..320"),
        &["n", "cuSOLVER", "W-cycle", "speedup"],
        "~1.37x average for batch size 1",
    );
    let sizes: &[usize] = scale.pick(&[64usize, 128, 192, 320][..], &[512, 1024, 2048, 4096][..]);
    for &n in sizes {
        let mats = random_batch(1, n, n, n as u64);
        let cu = time_cusolver(V100, &mats);
        let wc = time_wcycle(V100, &mats);
        rep.push_row(vec![
            n.to_string(),
            fmt_secs(cu),
            fmt_secs(wc),
            fmt_speedup(cu, wc),
        ]);
    }
    rep
}

/// Fig. 8(b): batched SVD of larger-than-32 matrices vs the serial cuSOLVER
/// loop, various batch sizes.
pub fn fig8b(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig8b",
        "Batched SVD vs cuSOLVER (Fig. 8b)",
        &scale.note("paper: n in 64..1024, batches 10..500"),
        &["n", "batch", "cuSOLVER (serial)", "W-cycle", "speedup"],
        "2~20x; the benefit is consistent as the batch grows",
    );
    let sizes: &[usize] = scale.pick(&[64usize, 128][..], &[64, 128, 256, 512, 1024][..]);
    let batches: &[usize] = scale.pick(&[10usize, 40][..], &[10, 100, 500][..]);
    for &n in sizes {
        for &batch in batches {
            let mats = random_batch(batch, n, n, (n + batch) as u64);
            let gpu = Gpu::new(V100);
            gesvdj_serial_batch(&gpu, &mats).unwrap();
            let cu = gpu.elapsed_seconds();
            let wc = time_wcycle(V100, &mats);
            rep.push_row(vec![
                n.to_string(),
                batch.to_string(),
                fmt_secs(cu),
                fmt_secs(wc),
                fmt_speedup(cu, wc),
            ]);
        }
    }
    rep
}

/// Fig. 9: W-cycle vs the MAGMA-like two-stage SVD.
pub fn fig9(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig9",
        "W-cycle vs MAGMA (Fig. 9)",
        &scale.note("two-stage gesvd looped serially over the batch"),
        &["n", "batch", "MAGMA", "W-cycle", "speedup"],
        ">=2.78x single, >=4.2x batched; consistent as batch grows",
    );
    let sizes: &[usize] = scale.pick(&[64usize, 128][..], &[128, 256, 512][..]);
    let batches: &[usize] = scale.pick(&[1usize, 10, 40][..], &[1, 10, 100][..]);
    for &n in sizes {
        for &batch in batches {
            let mats = random_batch(batch, n, n, (3 * n + batch) as u64);
            let mg = time_magma(V100, &mats);
            let wc = time_wcycle(V100, &mats);
            rep.push_row(vec![
                n.to_string(),
                batch.to_string(),
                fmt_secs(mg),
                fmt_secs(wc),
                fmt_speedup(mg, wc),
            ]);
        }
    }
    rep
}

/// Table IV: 200 same-size matrices on the P100 vs the ref.\[19\] methods.
pub fn tab4(scale: Scale) -> Report {
    let mut rep = Report::new(
        "tab4",
        "SVDs of 200 matrices on P100 (Table IV)",
        &scale.note("paper: 200 matrices of 100..512; reduced: 20 of 50..160"),
        &[
            "size",
            "DP_Direct",
            "DP_Gram",
            "cuSOLVER",
            "W-cycle",
            "vs best DP",
        ],
        "W-cycle beats Batched_DP_Direct/Gram by 4.1~8.6x / 3.6~11x",
    );
    let batch = scale.dim(200, 10, 8);
    let sizes: &[usize] = scale.pick(&[50usize, 64, 128, 160][..], &[100, 128, 256, 512][..]);
    for &n in sizes {
        let mats = random_batch(batch, n, n, n as u64 * 7);
        let run = |f: &dyn Fn(&Gpu, &[Matrix])| {
            let gpu = Gpu::new(P100);
            f(&gpu, &mats);
            gpu.elapsed_seconds()
        };
        let direct = run(&|g, m| {
            batched_dp_direct(g, m).unwrap();
        });
        let gram = run(&|g, m| {
            batched_dp_gram(g, m).unwrap();
        });
        let cu = run(&|g, m| {
            cusolver_batched_svd(g, m).unwrap();
        });
        let wc = run(&|g, m| {
            wcycle_svd(g, m, &WCycleConfig::default()).unwrap();
        });
        rep.push_row(vec![
            format!("{n}x{n}"),
            fmt_secs(direct),
            fmt_secs(gram),
            fmt_secs(cu),
            fmt_secs(wc),
            fmt_speedup(direct.min(gram), wc),
        ]);
    }
    rep
}

/// Table VI: variable-size batches (SuiteSparse-style groups).
pub fn tab6(scale: Scale) -> Report {
    let mut rep = Report::new(
        "tab6",
        "W-cycle with various matrix sizes (Table VI)",
        &scale.note("synthetic SuiteSparse-style mixed-size groups, scaled"),
        &["size cap", "batch", "cuSOLVER", "W-cycle", "speedup"],
        "2.21~15.0x over cuSOLVER; mid-size groups benefit most (tailoring)",
    );
    let factor = scale.pick(0.25, 1.0);
    for group in TABLE_VI {
        let mats = group.generate_scaled(99, factor);
        let batch = mats.len();
        let cu = time_cusolver(V100, &mats);
        let wc = time_wcycle(V100, &mats);
        rep.push_row(vec![
            format!("<= {}", ((group.cap as f64 * factor) as usize).max(4)),
            batch.to_string(),
            fmt_secs(cu),
            fmt_secs(wc),
            fmt_speedup(cu, wc),
        ]);
    }
    rep
}

/// Fig. 14(a): portability across device models.
pub fn fig14a(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig14a",
        "Portability across GPUs (Fig. 14a)",
        &scale.note("paper: 100 matrices of 512x512; reduced: 10 of 128x128"),
        &["device", "baseline", "baseline time", "W-cycle", "speedup"],
        "~4.5-4.9x over cuSOLVER on NVIDIA parts; ~2.85x over MAGMA on Vega20",
    );
    let n = scale.dim(512, 4, 96);
    let batch = scale.dim(100, 10, 4);
    let mats = random_batch(batch, n, n, 1234);
    for device in [V100, P100, TITAN_X] {
        let cu = time_cusolver(device, &mats);
        let wc = time_wcycle(device, &mats);
        rep.push_row(vec![
            device.name.to_string(),
            "cuSOLVER".into(),
            fmt_secs(cu),
            fmt_secs(wc),
            fmt_speedup(cu, wc),
        ]);
    }
    // AMD Vega20 is compared against MAGMA (no cuSOLVER under HIP).
    let mg = time_magma(VEGA20, &mats);
    let wc = time_wcycle(VEGA20, &mats);
    rep.push_row(vec![
        VEGA20.name.to_string(),
        "MAGMA".into(),
        fmt_secs(mg),
        fmt_secs(wc),
        fmt_speedup(mg, wc),
    ]);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn fig7_wcycle_wins_everywhere() {
        let rep = fig7(Scale::Reduced);
        for row in &rep.rows {
            assert!(speedup(&row[5]) > 1.0, "no speedup in {row:?}");
        }
    }

    #[test]
    fn fig7_speedups_stay_in_paper_band() {
        // The paper reports 2.6~10.2x; at reduced scale every cell must stay
        // comfortably inside a widened version of that band, and growing the
        // batch must never collapse the advantage.
        let rep = fig7(Scale::Reduced);
        for row in &rep.rows {
            let s = speedup(&row[5]);
            assert!((2.0..30.0).contains(&s), "speedup {s} out of band: {row:?}");
        }
        for pair in rep.rows.chunks(2) {
            assert!(
                speedup(&pair[1][5]) >= speedup(&pair[0][5]) * 0.5,
                "batch growth collapsed the win: {pair:?}"
            );
        }
    }

    #[test]
    fn tab4_wcycle_never_size_trapped() {
        // The size-sensitivity story of Table IV: Direct blows up once pair
        // blocks leave SM, Gram pays the serial EVD, cuSOLVER's serial loop
        // is worst everywhere; the W-cycle stays competitive at every size
        // and wins clearly at the extremes.
        let rep = tab4(Scale::Reduced);
        let secs = |cell: &str| {
            let mut it = cell.split_whitespace();
            let v: f64 = it.next().unwrap().parse().unwrap();
            match it.next().unwrap() {
                "s" => v,
                "ms" => v * 1e-3,
                _ => v * 1e-6,
            }
        };
        for row in &rep.rows {
            let (direct, gram) = (secs(&row[1]), secs(&row[2]));
            let (cu, wc) = (secs(&row[3]), secs(&row[4]));
            assert!(cu > direct.min(gram), "cuSOLVER not worst: {row:?}");
            assert!(wc < 1.5 * direct.min(gram), "W-cycle size-trapped: {row:?}");
        }
        assert!(
            speedup(&rep.rows[0][5]) > 2.0,
            "no clear win at the small end"
        );
        assert!(
            speedup(rep.rows.last().unwrap().last().unwrap()) > 2.0,
            "no clear win at the large end"
        );
    }

    #[test]
    fn fig9_wcycle_beats_magma_for_batches() {
        // At reduced scale the batch-1 rows are launch-overhead-bound (the
        // paper's batch-1 sizes start at 500); the batched rows must show
        // the W-cycle win, growing with the batch.
        let rep = fig9(Scale::Reduced);
        for row in rep
            .rows
            .iter()
            .filter(|r| r[1].parse::<usize>().unwrap() >= 10)
        {
            assert!(speedup(&row[4]) > 1.0, "{row:?}");
        }
        // Within each size, speedup grows with batch.
        for rows in rep.rows.chunks(3) {
            assert!(speedup(&rows[2][4]) > speedup(&rows[0][4]), "{rows:?}");
        }
    }

    #[test]
    fn tab6_covers_all_groups() {
        let rep = tab6(Scale::Reduced);
        assert_eq!(rep.rows.len(), 5);
        for row in &rep.rows {
            assert!(speedup(&row[4]) > 1.0, "{row:?}");
        }
    }
}
