//! Table rendering and result recording for the repro harness.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A rendered experiment: a title, column headers and string rows, plus a
/// machine-readable record for EXPERIMENTS.md tooling.
#[derive(Debug, Serialize, Deserialize, PartialEq)]
pub struct Report {
    /// Experiment id (`fig7`, `tab4`, ...).
    pub id: String,
    /// Human title (the paper caption).
    pub title: String,
    /// Scale note (e.g. "reduced: sizes /4, batches /10").
    pub scale_note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line statement of the paper-shape check this run supports.
    pub shape_claim: String,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        id: &str,
        title: &str,
        scale_note: &str,
        headers: &[&str],
        shape_claim: &str,
    ) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            scale_note: scale_note.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            shape_claim: shape_claim.to_string(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        if !self.scale_note.is_empty() {
            let _ = writeln!(out, "   scale: {}", self.scale_note);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("  ");
            for (w, c) in widths.iter().zip(cells) {
                let _ = write!(s, "| {c:>w$} ");
            }
            s.push('|');
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        if !self.shape_claim.is_empty() {
            let _ = writeln!(out, "   shape: {}", self.shape_claim);
        }
        out
    }

    /// Compares this report against a stored baseline, returning the first
    /// difference as a human-readable string (`None` when identical).
    ///
    /// Simulated time is fully deterministic, so any cell change signals a
    /// real behavioural change in the code — this is the regression check
    /// behind `repro --check`.
    pub fn diff(&self, baseline: &Report) -> Option<String> {
        if self.headers != baseline.headers {
            return Some(format!(
                "headers changed: {:?} vs {:?}",
                self.headers, baseline.headers
            ));
        }
        if self.rows.len() != baseline.rows.len() {
            return Some(format!(
                "row count {} vs baseline {}",
                self.rows.len(),
                baseline.rows.len()
            ));
        }
        for (k, (a, b)) in self.rows.iter().zip(&baseline.rows).enumerate() {
            if a != b {
                return Some(format!("row {k} changed: {a:?} vs baseline {b:?}"));
            }
        }
        None
    }
}

/// Formats seconds with engineering precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

/// Formats a speedup ratio.
pub fn fmt_speedup(baseline: f64, ours: f64) -> String {
    if ours > 0.0 {
        format!("{:.2}x", baseline / ours)
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "title", "full", &["a", "bbbb"], "claim");
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_row(vec!["100".into(), "2000000".into()]);
        let s = r.render();
        assert!(s.contains("== t — title"));
        assert!(s.contains("|   1 |"));
        assert!(s.contains("shape: claim"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("t", "t", "", &["a"], "");
        r.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn diff_detects_changes() {
        let mut a = Report::new("t", "t", "", &["x"], "");
        a.push_row(vec!["1".into()]);
        let mut b = Report::new("t", "t", "", &["x"], "");
        b.push_row(vec!["1".into()]);
        assert!(a.diff(&b).is_none());
        b.rows[0][0] = "2".into();
        assert!(a.diff(&b).unwrap().contains("row 0"));
        b.rows.push(vec!["3".into()]);
        assert!(a.diff(&b).unwrap().contains("row count"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = Report::new("id", "title", "scale", &["a"], "claim");
        r.push_row(vec!["v".into()]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500 us");
        assert_eq!(fmt_speedup(10.0, 2.0), "5.00x");
        assert_eq!(fmt_speedup(1.0, 0.0), "inf");
    }
}
