//! Accuracy and convergence experiments: Table VII, Fig. 15(a), Fig. 15(b).

use wsvd_baselines::block::{block_jacobi_svd, BlockJacobiConfig};
use wsvd_baselines::rotations_per_sweep;
use wsvd_batched::models::TailorPlan;
use wsvd_core::{wcycle_svd, Tuning, WCycleConfig};
use wsvd_datasets::named::TABLE_VII;
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_linalg::verify::spectrum_distance;
use wsvd_linalg::{singular_values, Matrix};

use crate::report::Report;
use crate::scale::Scale;

/// Smallest sweep count whose resulting spectrum is within `target` of the
/// reference (the paper's "number of sweeps, error is less than 1e-12").
fn sweeps_until(a: &Matrix, reference: &[f64], target: f64, wcycle: bool, cap: usize) -> usize {
    for k in 1..=cap {
        if error_after_sweeps(a, reference, k, wcycle) < target {
            return k;
        }
    }
    cap
}

/// Sweep counts to reach `error < 1e-12` per Table-VII matrix, cuSOLVER-like
/// (static blocked Jacobi) vs W-cycle.
pub fn tab7(scale: Scale) -> Report {
    // 0.4 keeps every stand-in large enough that the W-cycle takes the
    // block path (so both columns count block-level sweeps).
    let factor = scale.pick(0.4, 1.0);
    let mut rep = Report::new(
        "tab7",
        "Sweeps until error < 1e-12 on SuiteSparse stand-ins (Table VII)",
        &scale.note(&format!(
            "synthetic spectra at {factor} of paper dimensions"
        )),
        &[
            "matrix",
            "size",
            "cond",
            "cuSOLVER sweeps",
            "W-cycle sweeps",
        ],
        "W-cycle needs fewer sweeps; higher condition numbers delay both",
    );
    for spec in TABLE_VII {
        let a = spec.generate_scaled(factor);
        let reference = singular_values(&a).unwrap();
        // Our stand-ins have sigma_max = 1, so "error < 1e-12" is absolute.
        let cu = sweeps_until(&a, &reference, 1e-12, false, 25);
        let wc = sweeps_until(&a, &reference, 1e-12, true, 25);
        rep.push_row(vec![
            spec.name.to_string(),
            format!("{}x{}", a.rows(), a.cols()),
            format!("{:.2e}", spec.cond),
            cu.to_string(),
            wc.to_string(),
        ]);
    }
    rep
}

/// Spectrum error after `k` sweeps (forcing exactly `k` by `tol = 0`).
fn error_after_sweeps(a: &Matrix, reference: &[f64], k: usize, wcycle: bool) -> f64 {
    let gpu = Gpu::new(V100);
    let sigma = if wcycle {
        let cfg = WCycleConfig {
            max_sweeps: k,
            tol: 0.0,
            ..Default::default()
        };
        wcycle_svd(&gpu, std::slice::from_ref(a), &cfg)
            .unwrap()
            .results
            .pop()
            .unwrap()
            .sigma
    } else {
        let cfg = BlockJacobiConfig {
            max_sweeps: k,
            tol: 0.0,
            ..Default::default()
        };
        block_jacobi_svd(&gpu, std::slice::from_ref(a), &cfg)
            .unwrap()
            .pop()
            .unwrap()
            .sigma
    };
    spectrum_distance(&sigma, reference)
}

/// Fig. 15(a): singular-value error vs sweep count on `impcol_d`.
pub fn fig15a(scale: Scale) -> Report {
    let factor = scale.pick(0.15, 1.0);
    let spec = wsvd_datasets::by_name("impcol_d").unwrap();
    let a = spec.generate_scaled(factor);
    let reference = singular_values(&a).unwrap();
    let mut rep = Report::new(
        "fig15a",
        "Error vs sweeps on impcol_d (Fig. 15a)",
        &scale.note(&format!("{}x{} stand-in", a.rows(), a.cols())),
        &["sweeps", "cuSOLVER error", "W-cycle error"],
        "W-cycle reaches lower error at every sweep count",
    );
    for k in 1..=scale.pick(4, 8) {
        let cu = error_after_sweeps(&a, &reference, k, false);
        let wc = error_after_sweeps(&a, &reference, k, true);
        rep.push_row(vec![
            k.to_string(),
            format!("{cu:.3e}"),
            format!("{wc:.3e}"),
        ]);
    }
    rep
}

/// Fig. 15(b): rotations per sweep vs tile width `w_h` and height `δ_h`.
pub fn fig15b(scale: Scale) -> Report {
    let factor = scale.pick(0.15, 1.0);
    let spec = wsvd_datasets::by_name("impcol_d").unwrap();
    let a = spec.generate_scaled(factor);
    let n = a.cols();
    let mut rep = Report::new(
        "fig15b",
        "Rotations per sweep vs tile size (Fig. 15b)",
        &scale.note(&format!("{}x{} stand-in", a.rows(), a.cols())),
        &[
            "w",
            "δ",
            "rotations/sweep (analytic)",
            "rotations/sweep (measured)",
        ],
        "rotations/sweep shrink as w grows; δ does not affect convergence",
    );
    for &w in &[4usize, 8, 16] {
        for &delta in &[32usize, a.rows()] {
            let gpu = Gpu::new(V100);
            let cfg = WCycleConfig {
                tuning: Tuning::Fixed(TailorPlan::new(w, delta, 256)),
                max_sweeps: 1,
                tol: 0.0,
                ..Default::default()
            };
            let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &cfg).unwrap();
            let measured = out.stats.rotations_per_level.first().copied().unwrap_or(0);
            rep.push_row(vec![
                w.to_string(),
                delta.to_string(),
                rotations_per_sweep(n, w).to_string(),
                measured.to_string(),
            ]);
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab7_wcycle_needs_no_more_sweeps() {
        let rep = tab7(Scale::Reduced);
        assert_eq!(rep.rows.len(), 5);
        for row in &rep.rows {
            let cu: usize = row[3].parse().unwrap();
            let wc: usize = row[4].parse().unwrap();
            assert!(wc <= cu + 1, "W-cycle slower to converge: {row:?}");
        }
    }

    #[test]
    fn fig15a_error_decreases_with_sweeps() {
        let rep = fig15a(Scale::Reduced);
        let wc: Vec<f64> = rep.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(wc.first().unwrap() > wc.last().unwrap(), "{wc:?}");
    }

    #[test]
    fn fig15b_delta_does_not_change_rotations() {
        let rep = fig15b(Scale::Reduced);
        for pair in rep.rows.chunks(2) {
            assert_eq!(
                pair[0][3], pair[1][3],
                "δ changed the rotation count: {pair:?}"
            );
        }
    }
}
