//! Extension experiments beyond the paper's evaluation section:
//! * `ext-ablation` — the design-choice ablations DESIGN.md §5 calls out
//!   (the three advantages of §III-D plus the §IV optimizations);
//! * `ext-lowp` — the §V-E low-precision sketch (f32/bf16 storage);
//! * `ext-profile` — the per-kernel time/traffic breakdown behind §V-B;
//! * `ext-trace` — the structured-trace view of the fig7 workload
//!   (kernel spans, sweep telemetry, auto-tuner decisions);
//! * `ext-sanitize` — the wsvd-sanitizer in action: the fig7 workload under
//!   full hazard checking (clean), plus planted-bug kernels and schedules
//!   proving every hazard class is actually detected.
//! * `ext-fused` — the fused launch pipeline on the launch-bound rows the
//!   repro tables expose: fig9's batch-1 columns and fig14b's sharded
//!   cluster, serial vs fused, with the overhead share each pays.
//! * `ext-metrics` — the wsvd-metrics registry in action: the fig9 batch-1
//!   case runs with a metered GPU and the report is the per-kernel
//!   profiler view (time share, occupancy, AI, roofline ceiling
//!   attribution per Eqs. 8–10, GM-transaction efficiency).
//! * `ext-certify` — wsvd-analyze's ahead-of-time plan-space certification:
//!   every auto-tuner-reachable and pinned plan family proven safe on every
//!   device model, the reachability sweep showing zero false rejections,
//!   and the two planted bad plans statically rejected.

use wsvd_core::{wcycle_svd, AlphaSelect, Tuning, WCycleConfig};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_jacobi::fits::{evd_smem_elems, svd_smem_elems};
use wsvd_linalg::generate::random_batch;
use wsvd_linalg::lowp::Precision;
use wsvd_linalg::singular_values;
use wsvd_linalg::verify::spectrum_distance;

use crate::report::{fmt_secs, Report};
use crate::scale::Scale;

/// Ablations: switch off one design element at a time and measure the cost.
pub fn ext_ablation(scale: Scale) -> Report {
    let n = scale.dim(256, 2, 96);
    let batch = scale.dim(100, 5, 10);
    let mut rep = Report::new(
        "ext-ablation",
        "Design-choice ablations (extension)",
        &scale.note(&format!("{batch} matrices of {n}x{n}")),
        &["variant", "time", "sweeps", "vs full"],
        "each optimization pays where it engages (cache 1.1x here; tailoring needs the fig12 regime); static small w costs sweeps",
    );
    let mats = random_batch(batch, n, n, 4096 + n as u64);
    let variants: Vec<(&str, WCycleConfig)> = vec![
        ("full W-cycle", WCycleConfig::default()),
        (
            "no tailoring",
            WCycleConfig {
                tailor_gemm: false,
                ..Default::default()
            },
        ),
        (
            "no norm cache (Eq. 6 off)",
            WCycleConfig {
                cache_norms: false,
                ..Default::default()
            },
        ),
        (
            "one warp per pair (no α)",
            WCycleConfig {
                alpha: AlphaSelect::Fixed(32),
                ..Default::default()
            },
        ),
        (
            "static w = 8 (no multilevel)",
            WCycleConfig {
                tuning: Tuning::Widths(vec![8]),
                ..Default::default()
            },
        ),
        (
            "dynamic ordering (ref. [12])",
            WCycleConfig {
                dynamic_ordering: true,
                ..Default::default()
            },
        ),
        (
            "QR preconditioning (refs. [5]/[42])",
            WCycleConfig {
                qr_precondition: true,
                ..Default::default()
            },
        ),
    ];
    let mut full_time = 0.0f64;
    for (label, cfg) in &variants {
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, &mats, cfg).unwrap();
        let t = gpu.elapsed_seconds();
        if *label == "full W-cycle" {
            full_time = t;
        }
        let sweeps = out.results.iter().map(|r| r.sweeps).max().unwrap_or(0);
        rep.push_row(vec![
            label.to_string(),
            fmt_secs(t),
            sweeps.to_string(),
            format!("{:.2}x", t / full_time.max(f64::MIN_POSITIVE)),
        ]);
    }
    rep
}

/// Low-precision storage (§V-E): smaller elements let larger tiles live in
/// SM (larger feasible `w_h`), at a bounded accuracy cost.
pub fn ext_lowp(scale: Scale) -> Report {
    let n = scale.dim(256, 2, 96);
    let mut rep = Report::new(
        "ext-lowp",
        "Low-precision storage sketch (§V-E extension)",
        &scale.note(&format!(
            "one {n}x{n} matrix; f64 kernels on quantized data"
        )),
        &[
            "precision",
            "max w (EVD fit)",
            "max pair rows (SVD fit, 2w=32)",
            "spectrum error",
        ],
        "f32/bf16 double/quadruple the SM budget; error tracks the unit roundoff",
    );
    let a = wsvd_linalg::generate::random_uniform(n, n, 31415);
    let reference = singular_values(&a).unwrap();
    let sigma_max = reference[0];
    for p in [Precision::F64, Precision::F32, Precision::Bf16] {
        // Effective element budget at this precision.
        let budget_elems = 48 * 1024 / p.bytes();
        let max_w = {
            let mut w = 1;
            while evd_smem_elems(2 * (w + 1)) <= budget_elems {
                w += 1;
            }
            w
        };
        let max_rows = {
            let mut m = 32;
            while svd_smem_elems(m + 1, 32) <= budget_elems {
                m += 1;
            }
            m
        };
        // Accuracy: decompose the quantized matrix with the f64 kernels and
        // compare against the f64 reference spectrum.
        let q = p.quantize(&a);
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&q), &WCycleConfig::default()).unwrap();
        let err = spectrum_distance(&out.results[0].sigma, &reference) / sigma_max.max(1.0);
        rep.push_row(vec![
            format!("{p:?}"),
            max_w.to_string(),
            max_rows.to_string(),
            format!("{err:.2e}"),
        ]);
    }
    rep
}

/// Per-kernel profile of a representative batched run (the §V-B analysis).
pub fn ext_profile(scale: Scale) -> Report {
    let n = scale.dim(256, 2, 96);
    let batch = scale.dim(100, 5, 10);
    let gpu = Gpu::new(V100);
    let mats = random_batch(batch, n, n, 2718);
    wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    let profile = gpu.profile();
    let total = profile.total_seconds();

    let mut rep = Report::new(
        "ext-profile",
        "Per-kernel simulated-time breakdown (extension; §V-B view)",
        &scale.note(&format!("{batch} matrices of {n}x{n}")),
        &["kernel", "time%", "launches", "GM bytes", "occupancy"],
        "the EVD/SVD rotation kernels dominate; GEMMs carry the GM traffic",
    );
    let mut rows: Vec<_> = profile.iter().collect();
    rows.sort_by(|a, b| {
        b.1.seconds
            .total_cmp(&a.1.seconds)
            .then_with(|| a.0.cmp(b.0))
    });
    for (label, k) in rows {
        rep.push_row(vec![
            label.to_string(),
            format!("{:.1}%", wsvd_gpu_sim::time_share_percent(k.seconds, total)),
            k.launches.to_string(),
            format!("{:.2e}", k.totals.gm_bytes() as f64),
            format!("{:.3}", k.mean_occupancy()),
        ]);
    }
    rep
}

/// The wsvd-metrics registry on the fig9 n=128 batch-1 case (tentpole
/// extension): one matrix runs the full W-cycle on a metered [`Gpu`] and the
/// report renders what the registry accumulated — per-kernel time share,
/// achieved occupancy, arithmetic intensity, roofline ceiling attribution
/// (Eqs. 8–10, the same [`wsvd_gpu_sim::KernelObservation::derive`] path the
/// profiler uses), GM-transaction efficiency and launch-overhead share.
/// Under `repro --report` the experiment reuses the global sink, so its
/// series also land in `--bench-out` snapshots and `--prom` exports.
pub fn ext_metrics(scale: Scale) -> Report {
    let n = scale.pick(128, 256);
    let global = wsvd_metrics::global();
    let sink = if global.is_enabled() {
        global
    } else {
        wsvd_metrics::MetricsSink::enabled()
    };
    sink.set_experiment("ext-metrics");
    let before = sink.snapshot();
    let mut gpu = Gpu::new(V100);
    gpu.set_metrics(sink.clone());
    // The fig9 batch-1 column: a single n x n matrix, where per-launch
    // overhead and per-level plan choices are most visible.
    let mats = random_batch(1, n, n, (3 * n + 1) as u64);
    wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    // Per-run delta: only what *this* experiment recorded, even when the
    // process-global sink already carries earlier experiments' series.
    let snap = sink.snapshot().since(&before);

    let mut rep = crate::metrics_report::kernel_report(&snap, "ext-metrics");
    rep.id = "ext-metrics".to_string();
    rep.title = "Per-kernel metrics registry report (extension; fig9 batch-1 case)".to_string();
    rep.scale_note = scale.note(&format!("one {n}x{n} matrix"));
    rep
}

/// Structured-trace view of the fig7 workload (tentpole extension): each
/// shape runs with an enabled [`wsvd_trace::TraceSink`] and the report
/// summarizes what the trace recorded — kernel spans and simulated busy
/// time, per-sweep convergence instants, and the auto-tuner's plan choice.
/// Under `repro --trace FILE` these events also land in the exported
/// Perfetto timeline (the experiment reuses the global sink).
pub fn ext_trace(scale: Scale) -> Report {
    let batch = scale.dim(100, 5, 10);
    let mut rep = Report::new(
        "ext-trace",
        "Structured-trace telemetry on the fig7 workload (extension)",
        &scale.note(&format!("fig7 shapes plus one 96x96 multilevel row, batch {batch}")),
        &["m", "n", "kernel spans", "busy", "sweeps", "plan w", "final coherence"],
        "every launch, sweep and plan decision is visible in the timeline; coherence collapses below tol",
    );
    let global = wsvd_trace::global();
    let sink = if global.is_enabled() {
        global
    } else {
        wsvd_trace::TraceSink::enabled()
    };
    // The fig7 grid exercises the level-0 kernel spans; the trailing 96x96
    // row descends into the W-cycle, where the sweep/auto-tune telemetry
    // lives.
    for &(m, n) in &[
        (8usize, 32usize),
        (16, 32),
        (32, 32),
        (32, 16),
        (32, 8),
        (96, 96),
    ] {
        let before = sink.events().len();
        let gpu = Gpu::with_trace(V100, sink.clone());
        let mats = random_batch(batch, m, n, (m * 100 + n) as u64);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        let events: Vec<wsvd_trace::Event> = sink.events().into_iter().skip(before).collect();

        let kernel_spans = events
            .iter()
            .filter(|e| {
                e.track == "kernels" && matches!(e.kind, wsvd_trace::EventKind::Span { .. })
            })
            .count();
        let busy: f64 = events
            .iter()
            .filter(|e| e.track == "kernels")
            .filter_map(|e| match e.kind {
                wsvd_trace::EventKind::Span { dur, .. } => Some(dur),
                _ => None,
            })
            .sum();
        let sweeps: Vec<&wsvd_trace::Event> = events
            .iter()
            .filter(|e| e.track == "wcycle" && e.name == "sweep")
            .collect();
        let coherence = sweeps
            .last()
            .and_then(|e| {
                e.args.iter().find_map(|(k, v)| match (k, v) {
                    (&"coherence", wsvd_trace::ArgValue::F64(x)) => Some(*x),
                    _ => None,
                })
            })
            .unwrap_or(0.0);
        let plan_w = events
            .iter()
            .find(|e| e.track == "autotune" && e.name == "plan")
            .and_then(|e| {
                e.args.iter().find_map(|(k, v)| match (k, v) {
                    (&"w", wsvd_trace::ArgValue::U64(w)) => Some(*w),
                    _ => None,
                })
            });
        rep.push_row(vec![
            m.to_string(),
            n.to_string(),
            kernel_spans.to_string(),
            fmt_secs(busy),
            sweeps.len().to_string(),
            plan_w.map_or_else(|| "-".to_string(), |w| w.to_string()),
            format!("{coherence:.2e}"),
        ]);
    }
    rep
}

/// The wsvd-sanitizer demonstration (extension): every fig7 shape runs the
/// full W-cycle under dynamic hazard tracking *and* static schedule/smem
/// verification and must come out clean; a set of planted-bug kernels and
/// one corrupted pivot schedule then show that each violation class the
/// sanitizer knows about is detected, not merely absent.
pub fn ext_sanitize(scale: Scale) -> Report {
    use wsvd_gpu_sim::{KernelConfig, SanitizeMode};
    use wsvd_jacobi::ordering::Schedule;
    use wsvd_jacobi::verify::{verify_schedule, Coverage, ScheduleViolation};

    let batch = scale.dim(100, 5, 10);
    let mut rep = Report::new(
        "ext-sanitize",
        "Hazard sanitizer & static schedule verification (extension)",
        &scale.note(&format!(
            "fig7 shapes batch {batch} under full checking; planted bugs below"
        )),
        &[
            "workload",
            "blocks",
            "epochs",
            "accesses",
            "violations",
            "verdict",
        ],
        "the real workload is hazard-free; every planted bug class is detected",
    );
    for &(m, n) in &[
        (8usize, 32usize),
        (16, 32),
        (32, 32),
        (32, 16),
        (32, 8),
        (96, 96),
    ] {
        let gpu = Gpu::with_sanitize(V100, SanitizeMode::Full);
        let mats = random_batch(batch, m, n, (m * 100 + n) as u64);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        let r = gpu.sanitizer_report();
        rep.push_row(vec![
            format!("wcycle {m}x{n}"),
            r.stats.blocks_checked.to_string(),
            r.stats.epochs.to_string(),
            r.stats.accesses.to_string(),
            r.violations.len().to_string(),
            if r.is_clean() {
                "clean".to_string()
            } else {
                "VIOLATIONS".to_string()
            },
        ]);
    }

    // Planted dynamic bugs: one single-block kernel per hazard class. The
    // verdict quotes the sanitizer's own classification of what it caught.
    type Planted = (&'static str, fn(&mut wsvd_gpu_sim::BlockCtx));
    let planted: [Planted; 4] = [
        ("planted: unsynchronized writes", |ctx| {
            let buf = ctx.smem().alloc(8).unwrap();
            ctx.smem_write(0, &buf, 0, 8);
            ctx.smem_write(1, &buf, 0, 8); // same range, no barrier between
            ctx.sync_threads();
        }),
        ("planted: read past missing barrier", |ctx| {
            let buf = ctx.smem().alloc(32).unwrap();
            ctx.smem_write(0, &buf, 0, 16);
            ctx.smem_read(1, &buf, 8, 4); // overlaps the un-fenced write
            ctx.sync_threads();
        }),
        ("planted: divergent barrier", |ctx| {
            ctx.lane_sync(0);
            ctx.lane_sync(0);
            ctx.lane_sync(1); // lane 1 arrives once, lane 0 twice
        }),
        ("planted: leaked smem buffer", |ctx| {
            let buf = ctx.smem().alloc(64).unwrap();
            ctx.smem_write(0, &buf, 0, 64);
            ctx.sync_threads();
            std::mem::forget(buf); // never returned to the arena
        }),
    ];
    for (label, kernel) in planted {
        let gpu = Gpu::with_sanitize(V100, SanitizeMode::Full);
        let kc = KernelConfig::new(1, 32, 1024, "planted_bug");
        gpu.launch_collect(kc, |_b, ctx| {
            kernel(ctx);
            Ok(())
        })
        .unwrap();
        let r = gpu.sanitizer_report();
        let verdict = r
            .violations
            .first()
            .map_or_else(|| "MISSED".to_string(), |v| format!("detected: {}", v.kind));
        rep.push_row(vec![
            label.to_string(),
            r.stats.blocks_checked.to_string(),
            r.stats.epochs.to_string(),
            r.stats.accesses.to_string(),
            r.violations.len().to_string(),
            verdict,
        ]);
    }

    // Planted static bug: pairs (0,1) and (1,2) share column 1 in one step.
    let bad: Schedule = vec![vec![(0, 1), (1, 2)], vec![(0, 2)]];
    let verdict = match verify_schedule(&bad, 3, Coverage::ExactlyOnce) {
        Ok(_) => "MISSED".to_string(),
        Err(ScheduleViolation::Conflict { index, .. }) => {
            format!("rejected: conflict on column {index}")
        }
        Err(e) => format!("rejected: {e}"),
    };
    rep.push_row(vec![
        "planted: overlapping pivot pairs".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "1".to_string(),
        verdict,
    ]);
    rep
}

/// The fused launch pipeline (extension): replays each W-cycle level as one
/// [`wsvd_gpu_sim::LaunchGraph`] and measures what that buys on the two
/// launch-bound shapes the repro tables expose — fig9's batch-1 columns
/// (where per-kernel overhead swamps the tiny kernels) and fig14b's
/// cluster-sharded assimilation (where sharding shrinks each device's batch
/// back into the launch-bound regime). Serial and fused runs use identical
/// matrices; kernel times and numerics are bit-identical by construction, so
/// every gap in the table is launch overhead.
pub fn ext_fused(scale: Scale) -> Report {
    use wsvd_apps::{analysis_step_distributed_with, AssimilationProblem, SvdEngine};
    use wsvd_baselines::magma_batched_svd;
    use wsvd_gpu_sim::{GpuCluster, VEGA20};

    let mut rep = Report::new(
        "ext-fused",
        "Fused launch pipeline on launch-bound workloads (extension)",
        &scale.note("fig9 batch-1/batch-40 shapes plus the fig14b 4-GPU shard"),
        &[
            "workload",
            "MAGMA",
            "W-cycle",
            "fused W-cycle",
            "speedup",
            "fused speedup",
            "overhead%",
        ],
        "batch-1 rows are launch-bound: fusing moves them from MAGMA parity toward the paper's >=2.78x",
    );
    let serial_cfg = WCycleConfig {
        fused: false,
        ..WCycleConfig::default()
    };
    let fused_cfg = WCycleConfig {
        fused: true,
        ..WCycleConfig::default()
    };

    // Part A: fig9 rows (same sizes and seeds as the fig9 experiment). The
    // MAGMA column is this PR-invariant yardstick: the paper's fig9 reports
    // the W-cycle >=2.78x ahead at batch 1, while the serial pipeline sits
    // near parity — the fused column is the row moving toward that shape.
    let sizes: &[usize] = scale.pick(&[64usize, 128][..], &[128, 256, 512][..]);
    let deep_batch = scale.pick(40usize, 100);
    let mut shapes: Vec<(usize, usize)> = sizes.iter().map(|&n| (n, 1)).collect();
    shapes.push((sizes[sizes.len() - 1], deep_batch));
    for (n, batch) in shapes {
        let mats = random_batch(batch, n, n, (3 * n + batch) as u64);
        let magma = {
            let gpu = Gpu::new(V100);
            magma_batched_svd(&gpu, &mats).unwrap();
            gpu.elapsed_seconds()
        };
        let run = |cfg: &WCycleConfig| {
            let gpu = Gpu::new(V100);
            wcycle_svd(&gpu, &mats, cfg).unwrap();
            let t = gpu.timeline();
            (t.seconds, t.overhead_share())
        };
        let (ts, os) = run(&serial_cfg);
        let (tf, of) = run(&fused_cfg);
        rep.push_row(vec![
            format!("{batch} matrix(es) of {n}x{n}"),
            fmt_secs(magma),
            fmt_secs(ts),
            fmt_secs(tf),
            crate::report::fmt_speedup(magma, ts),
            crate::report::fmt_speedup(magma, tf),
            format!("{:.1}% -> {:.1}%", 100.0 * os, 100.0 * of),
        ]);
    }

    // Part B: the fig14b 4-GPU shard (same generator and seed as fig14b).
    // Sharding shrinks each device's batch back into the launch-bound
    // regime, which is why the serial W-cycle "gains less from sharding".
    let (min_dim, max_dim) = scale.pick((24usize, 112usize), (50, 1024));
    let points = scale.pick(24usize, 64);
    let problem = AssimilationProblem::generate(points, min_dim, max_dim, 4242);
    let run = |engine: SvdEngine, cfg: &WCycleConfig| {
        let cluster = GpuCluster::new(VEGA20, 4);
        let res = analysis_step_distributed_with(&cluster, &problem, engine, cfg).unwrap();
        let (mut overhead, mut busy) = (0.0f64, 0.0f64);
        for rank in 0..4 {
            let t = cluster.gpu(rank).timeline();
            overhead += t.overhead_seconds;
            busy += t.seconds;
        }
        (res.svd_seconds, overhead / busy.max(f64::MIN_POSITIVE))
    };
    let (magma, _) = run(SvdEngine::Magma, &serial_cfg);
    let (ts, os) = run(SvdEngine::WCycle, &serial_cfg);
    let (tf, of) = run(SvdEngine::WCycle, &fused_cfg);
    rep.push_row(vec![
        format!("4x Vega20 shard, {points} grid points"),
        fmt_secs(magma),
        fmt_secs(ts),
        fmt_secs(tf),
        crate::report::fmt_speedup(magma, ts),
        crate::report::fmt_speedup(magma, tf),
        format!("{:.1}% -> {:.1}%", 100.0 * os, 100.0 * of),
    ]);
    rep
}

/// `ext-certify` — the wsvd-analyze certification pipeline as a repro
/// artifact. Static analysis is scale-independent: both scales emit the
/// same deterministic counts (no timings, no randomness).
pub fn ext_certify(scale: Scale) -> Report {
    use wsvd_analyze::plan_space::{
        certify_all_devices, planted_rejections, sweep_reachability, DEFAULT_MAX_BLOCKS,
    };
    use wsvd_core::certify::PlanOrigin;

    let mut rep = Report::new(
        "ext-certify",
        "Ahead-of-time plan-space certification (extension)",
        &scale.note(
            "wsvd-analyze: certificates over the full reachable plan space; \
             scale-independent (static analysis, no simulated work)",
        ),
        &["subject", "detail", "verdict"],
        "every reachable plan family certified on every device; both planted bad \
         plans statically rejected",
    );

    let store = certify_all_devices(DEFAULT_MAX_BLOCKS).expect("plan space certifies");
    rep.push_row(vec![
        "schedule atlas".to_string(),
        format!(
            "{} orderings x blocks 2..={} ({} proofs, {} pairs)",
            store.atlas.orderings.len(),
            store.atlas.max_blocks,
            store.atlas.proofs,
            store.atlas.pairs
        ),
        "proved".to_string(),
    ]);
    for dev in store.devices.values() {
        let autotuned = dev
            .families
            .values()
            .filter(|c| matches!(c.origin, PlanOrigin::Autotuned))
            .count();
        let terminal = dev.families.values().filter(|c| c.terminal).count();
        rep.push_row(vec![
            dev.device.clone(),
            format!(
                "{} families ({} autotuned), {} terminal, {} B arena",
                dev.families.len(),
                autotuned,
                terminal,
                dev.smem_per_block_bytes
            ),
            "certified".to_string(),
        ]);
    }
    let sweep = sweep_reachability(&store).expect("no false rejections");
    rep.push_row(vec![
        "reachability sweep".to_string(),
        format!(
            "{} selections over {} workloads, {} distinct families",
            sweep.selections,
            sweep.workloads,
            sweep.selected_families.len()
        ),
        "zero false rejections".to_string(),
    ]);
    let (smem_msg, sched_msg) = planted_rejections(&V100);
    rep.push_row(vec![
        "planted: oversized smem".to_string(),
        smem_msg,
        "rejected".to_string(),
    ]);
    rep.push_row(vec![
        "planted: conflicting schedule".to_string(),
        sched_msg,
        "rejected".to_string(),
    ]);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certify_report_is_scale_independent_and_rejects_planted() {
        let a = ext_certify(Scale::Reduced);
        let b = ext_certify(Scale::Full);
        assert_eq!(a.rows, b.rows);
        assert_eq!(
            a.rows.iter().filter(|r| r[2] == "rejected").count(),
            2,
            "{:?}",
            a.rows
        );
        assert!(a.rows.iter().any(|r| r[2] == "zero false rejections"));
    }

    #[test]
    fn ablation_full_variant_is_fastest_or_close() {
        let rep = ext_ablation(Scale::Reduced);
        let full: f64 = rep.rows[0][3].trim_end_matches('x').parse().unwrap();
        assert!((full - 1.0).abs() < 1e-9);
        for row in &rep.rows[1..4] {
            let ratio: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(
                ratio >= 0.95,
                "removing an optimization should not help: {row:?}"
            );
        }
    }

    #[test]
    fn lowp_budgets_scale_with_precision() {
        let rep = ext_lowp(Scale::Reduced);
        let w: Vec<usize> = rep.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(w[1] > w[0] && w[2] > w[1], "{w:?}");
        let err: Vec<f64> = rep.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(err[0] < err[1] && err[1] < err[2], "{err:?}");
        assert!(err[1] < 1e-5, "f32 error too large: {}", err[1]);
    }

    #[test]
    fn trace_view_sees_kernels_and_convergence() {
        let rep = ext_trace(Scale::Reduced);
        assert_eq!(rep.rows.len(), 6);
        for row in &rep.rows {
            let spans: usize = row[2].parse().unwrap();
            assert!(spans > 0, "every shape launches kernels: {row:?}");
        }
        // fig7 shapes resolve whole at level 0: the SM kernel still records
        // per-sweep coherence, but no GEMM plan is tuned (the alpha-warp
        // selection carries threads-per-pair, not a width).
        assert!(
            rep.rows[0][4].parse::<usize>().unwrap() > 0,
            "expected kernel-recorded sweeps: {:?}",
            rep.rows[0]
        );
        assert_eq!(rep.rows[0][5], "-");
        // The 96x96 row descends: sweeps, a plan, and collapsed coherence.
        let deep = rep.rows.last().unwrap();
        assert!(
            deep[4].parse::<usize>().unwrap() > 0,
            "expected sweeps: {deep:?}"
        );
        assert!(
            deep[5].parse::<usize>().unwrap() > 0,
            "expected a plan width: {deep:?}"
        );
        let coherence: f64 = deep[6].parse().unwrap();
        assert!(coherence < 1e-9, "final coherence not converged: {deep:?}");
    }

    #[test]
    fn sanitize_report_is_clean_on_real_work_and_catches_planted_bugs() {
        let rep = ext_sanitize(Scale::Reduced);
        assert_eq!(rep.rows.len(), 6 + 4 + 1);
        for row in &rep.rows[..6] {
            assert_eq!(
                row[5], "clean",
                "real workload must be hazard-free: {row:?}"
            );
            assert!(
                row[1].parse::<u64>().unwrap() > 0,
                "blocks checked: {row:?}"
            );
            assert!(
                row[3].parse::<u64>().unwrap() > 0,
                "accesses recorded: {row:?}"
            );
        }
        for row in &rep.rows[6..] {
            assert!(
                row[5].starts_with("detected") || row[5].starts_with("rejected"),
                "planted bug must be caught: {row:?}"
            );
        }
        assert!(
            rep.rows[6][5].contains("write-write race"),
            "{:?}",
            rep.rows[6]
        );
        assert!(
            rep.rows[7][5].contains("read-write race"),
            "{:?}",
            rep.rows[7]
        );
        assert!(
            rep.rows[8][5].contains("barrier divergence"),
            "{:?}",
            rep.rows[8]
        );
        assert!(rep.rows[9][5].contains("smem leak"), "{:?}", rep.rows[9]);
        assert!(rep.rows[10][5].contains("column 1"), "{:?}", rep.rows[10]);
    }

    #[test]
    fn fused_pipeline_pays_off_on_launch_bound_rows() {
        let rep = ext_fused(Scale::Reduced);
        // Rows: batch-1 n=64, batch-1 n=128, batch-40 n=128, 4-GPU shard.
        // Columns: workload, MAGMA, serial, fused, serial-vs-MAGMA,
        // fused-vs-MAGMA, "serial% -> fused%" overhead share.
        assert_eq!(rep.rows.len(), 4);
        let x = |cell: &str| -> f64 { cell.trim_end_matches('x').parse().unwrap() };
        let shares = |cell: &str| -> (f64, f64) {
            let (a, b) = cell.split_once(" -> ").unwrap();
            (
                a.trim_end_matches('%').parse().unwrap(),
                b.trim_end_matches('%').parse().unwrap(),
            )
        };
        for row in &rep.rows {
            assert!(
                x(&row[5]) >= x(&row[4]),
                "fusing must never slow a run: {row:?}"
            );
            let (serial, fused) = shares(&row[6]);
            assert!(
                fused <= serial + 1e-9,
                "fused overhead share must not grow: {row:?}"
            );
        }
        // The acceptance row: fig9's batch-1 n=128 shape. Before this PR the
        // serial W-cycle sat at MAGMA parity there (repro_results/fig9.json:
        // MAGMA 3.586 ms vs W-cycle 3.574 ms, "1.00x"), so asserting the
        // fused-vs-MAGMA ratio >= 1.5 against the PR-invariant MAGMA column
        // pins a >= 1.5x total row movement (tuning-boundary fix + fusion;
        // measured ~2.5x) toward the paper's >= 2.78x batch-1 curve.
        assert!(
            x(&rep.rows[1][5]) >= 1.5,
            "batch-1 n=128 must move >= 1.5x vs MAGMA: {:?}",
            rep.rows[1]
        );
        // Fusing alone must still buy a solid chunk of that on this row.
        assert!(
            x(&rep.rows[1][5]) >= 1.25 * x(&rep.rows[1][4]),
            "fusing must pay >= 1.25x on the launch-bound row: {:?}",
            rep.rows[1]
        );
        // The 4-GPU shard's overhead share must strictly drop.
        let last = rep.rows.last().unwrap();
        let (serial, fused) = shares(&last[6]);
        assert!(
            fused < serial,
            "sharded overhead share must shrink: {last:?}"
        );
    }

    #[test]
    fn profile_covers_the_run() {
        let rep = ext_profile(Scale::Reduced);
        assert!(rep.rows.len() >= 3, "expected several kernel labels");
        assert!(rep
            .rows
            .iter()
            .any(|r| r[0].contains("svd") || r[0].contains("evd")));
    }
}
