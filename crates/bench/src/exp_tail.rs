//! `ext-tail` — tail-latency attribution per trace × policy (extension).
//!
//! The same three seeded traces as `ext-serve`, but offered at a rate
//! deliberately placed **between** the two policies' sustained capacities:
//! the eager `low_latency` policy (200 µs / 8) saturates the device — its
//! launch-heavy stream of small buckets cannot keep up, so a backlog of
//! dispatched buckets builds and the tail is device-bound — while the
//! patient `high_throughput` policy (20 000 µs / 64) amortizes launches
//! into large buckets, keeps the device ahead of arrivals, and pays for it
//! with admission wait, so its tail is policy-bound.
//!
//! Each row attributes the p99 tail of one (trace, policy) cell to the
//! waterfall components of DESIGN.md §15 (`admission` = trigger − arrival,
//! `backlog` = start − trigger, `service` = batched-SVD duration) and
//! names the dominant one. The experiment *pins the attribution itself*
//! with hard asserts: every `latency` tail must be backlog- or
//! service-bound and every `throughput` tail admission-bound — the
//! actionable signal (backlog-bound → add device or shrink buckets;
//! admission-bound → tighten `max_wait_us`) an operator reads off the
//! `wsvd-loadgen --why-slow` waterfall. Everything runs on simulated time
//! with seeded generators, so the table is bit-identical across runs.

use wsvd_gpu_sim::{Gpu, V100};
use wsvd_metrics::MetricsSink;
use wsvd_serve::{
    serve_trace, tail_report, BatchPolicy, Component, ServeConfig, TailReport, Trace,
};

use crate::report::Report;
use crate::scale::Scale;

/// Trace seed (distinct from `ext-serve` so the two tables decorrelate).
const SEED: u64 = 1717;

/// One (trace, policy) cell: a fresh device per run; the tail report is a
/// pure function of the outcome records, so no registry is needed.
fn run_cell(trace: &Trace, policy: BatchPolicy) -> TailReport {
    let gpu = Gpu::new(V100);
    let cfg = ServeConfig {
        policy,
        slo_e2e_us: 1.0e6,
        fused: true,
    };
    let outcome =
        serve_trace(&gpu, trace, &cfg, &MetricsSink::disabled()).expect("finite seeded payloads");
    tail_report(&outcome, 5)
}

/// The `ext-tail` experiment (see the module docs for the row contract).
pub fn ext_tail(scale: Scale) -> Report {
    let requests = scale.pick(384usize, 192);
    let (min_dim, max_dim) = scale.pick((8usize, 48usize), (16, 256));
    let points = scale.pick(384usize, 192);
    // Between the policies' sustained capacities at each scale (measured
    // from `ServeSummary::throughput_rps` at saturation: eager ≈210k vs
    // patient ≈807k r/s reduced, ≈1.9k vs ≈5.8k full), so the eager
    // policy backlogs while the patient one keeps up.
    let rate_hz = scale.pick(400_000.0, 3_500.0);
    // Bursts arrive at the base rate (not ext-serve's ×4): the point is
    // saturating the *eager* policy only, and ×4 would swamp both.
    let traces = [
        Trace::poisson(requests, rate_hz, (min_dim, max_dim), SEED),
        Trace::bursty(
            requests,
            (requests / 4).max(2),
            rate_hz,
            (4.0e6 / rate_hz) as u64,
            (min_dim, max_dim),
            SEED,
        ),
        Trace::assimilation(points, min_dim, max_dim, rate_hz, SEED),
    ];
    let policies = [
        ("latency", BatchPolicy::low_latency()),
        ("throughput", BatchPolicy::high_throughput()),
    ];
    let mut rep = Report::new(
        "ext-tail",
        "Tail-latency attribution: which waterfall component owns the p99 (extension)",
        &scale.note(&format!(
            "{requests}-request poisson/bursty traces of {min_dim}..{max_dim}, \
             {points}-point assimilation mixture, offered at {rate_hz} r/s \
             between the eager and patient sustained capacities"
        )),
        &[
            "trace",
            "policy",
            "requests",
            "tail-n",
            "p99-thresh",
            "admission",
            "backlog",
            "service",
            "dominant",
        ],
        "an overloaded eager policy owes its tail to device backlog (and service), a \
         keeping-up patient policy owes its tail to admission wait — the two halves of \
         queue_delay point at opposite remedies, bit-identical across seeded runs",
    );
    for trace in &traces {
        for (label, policy) in policies {
            let r = run_cell(trace, policy);
            let t = &r.tail;
            rep.push_row(vec![
                trace.name.clone(),
                label.to_string(),
                r.requests.to_string(),
                t.count.to_string(),
                fmt_us(t.threshold_us),
                format!("{:.1}%", t.share(Component::Admission)),
                format!("{:.1}%", t.share(Component::Backlog)),
                format!("{:.1}%", t.share(Component::Service)),
                t.dominant().as_str().to_string(),
            ]);
            // The attribution *is* the result: pin it. An eager policy
            // over capacity must blame the device, a patient policy under
            // capacity must blame itself.
            match label {
                "latency" => assert!(
                    matches!(t.dominant(), Component::Backlog | Component::Service),
                    "{}: eager tail should be device-bound, got {} \
                     (admission {:.1}% backlog {:.1}% service {:.1}%)",
                    trace.name,
                    t.dominant().as_str(),
                    t.share(Component::Admission),
                    t.share(Component::Backlog),
                    t.share(Component::Service),
                ),
                _ => assert!(
                    t.dominant() == Component::Admission,
                    "{}: patient tail should be admission-bound, got {} \
                     (admission {:.1}% backlog {:.1}% service {:.1}%)",
                    trace.name,
                    t.dominant().as_str(),
                    t.share(Component::Admission),
                    t.share(Component::Backlog),
                    t.share(Component::Service),
                ),
            }
        }
    }
    rep
}

/// Deterministic microsecond formatting for report cells.
fn fmt_us(us: f64) -> String {
    if us >= 1.0e4 {
        format!("{:.2} ms", us / 1.0e3)
    } else {
        format!("{us:.1} us")
    }
}
