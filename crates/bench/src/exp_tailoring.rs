//! Tailoring-strategy and profiling experiments:
//! Table I, Fig. 11(a), Fig. 11(b), Fig. 12, Table V.

use wsvd_batched::models::TailorPlan;
use wsvd_core::{wcycle_svd, Tuning, WCycleConfig};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_linalg::generate::random_batch;
use wsvd_linalg::Matrix;

use crate::report::{fmt_secs, fmt_speedup, Report};
use crate::scale::Scale;

fn time_with(mats: &[Matrix], cfg: &WCycleConfig) -> f64 {
    let gpu = Gpu::new(V100);
    wcycle_svd(&gpu, mats, cfg).unwrap();
    gpu.elapsed_seconds()
}

fn fixed_plan_cfg(w: usize, delta: usize, threads: usize) -> WCycleConfig {
    WCycleConfig {
        tuning: Tuning::Fixed(TailorPlan::new(w, delta, threads)),
        ..Default::default()
    }
}

/// Table I: time of the batched SVD as a function of the standard-plate
/// geometry (tile height δ x tile width 2w) of the two Level-1 GEMMs.
pub fn tab1(scale: Scale) -> Report {
    let mut rep = Report::new(
        "tab1",
        "Tile sizes for the two batched GEMMs (Table I)",
        &scale.note("paper: 100 matrices of 256/512; reduced: 12 of 96/160"),
        &["matrix", "tile w", "δ=32", "δ=64", "δ=128", "δ=m"],
        "a mid-sized plate (w≈16-32, δ≈m/2) minimizes time, as in Table I",
    );
    let batch = scale.dim(100, 8, 8);
    let sizes: &[usize] = scale.pick(&[96usize, 160][..], &[256, 512][..]);
    for &n in sizes {
        let mats = random_batch(batch, n, n, n as u64 + 5);
        for &w in &[4usize, 8, 16, 24] {
            let mut row = vec![format!("{n}x{n}"), w.to_string()];
            for &delta in &[32usize, 64, 128, n] {
                let t = time_with(&mats, &fixed_plan_cfg(w, delta, 256));
                row.push(fmt_secs(t));
            }
            rep.push_row(row);
        }
    }
    rep
}

/// Fig. 11(a): GPU occupancy of the W-cycle vs batch size.
pub fn fig11a(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig11a",
        "GPU occupancy rate vs batch size (Fig. 11a)",
        &scale.note("64x64 matrices"),
        &["batch", "mean occupancy"],
        "occupancy rises monotonically with batch size toward the peak",
    );
    let batches: &[usize] = scale.pick(&[10usize, 50, 100, 200][..], &[10, 50, 100, 200, 500][..]);
    for &batch in batches {
        let mats = random_batch(batch, 64, 64, 21);
        let gpu = Gpu::new(V100);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        let occ = gpu.timeline().mean_occupancy();
        rep.push_row(vec![batch.to_string(), format!("{:.3}", occ)]);
    }
    rep
}

/// Fig. 11(b): global-memory transactions of W-cycle relative to cuSOLVER.
pub fn fig11b(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig11b",
        "GM transactions: W-cycle / cuSOLVER (Fig. 11b)",
        &scale.note("batch 20 per size"),
        &["size", "cuSOLVER GM tx", "W-cycle GM tx", "ratio"],
        "W-cycle moves less data through GM at every size",
    );
    let batch = scale.pick(20, 100);
    for &n in &[8usize, 16, 32, 64, 96] {
        let mats = random_batch(batch, n, n, 31 + n as u64);
        let gpu_c = Gpu::new(V100);
        wsvd_baselines::cusolver_batched_svd(&gpu_c, &mats).unwrap();
        let cu_tx = gpu_c.timeline().totals.gm_transactions;
        let gpu_w = Gpu::new(V100);
        wcycle_svd(&gpu_w, &mats, &WCycleConfig::default()).unwrap();
        let wc_tx = gpu_w.timeline().totals.gm_transactions;
        rep.push_row(vec![
            format!("{n}x{n}"),
            cu_tx.to_string(),
            wc_tx.to_string(),
            format!("{:.2}", wc_tx as f64 / cu_tx.max(1) as f64),
        ]);
    }
    rep
}

/// Fig. 12: W-cycle with the tailoring strategy (auto-tuned) vs W-cycle
/// without tailoring, across batch and matrix sizes.
pub fn fig12(scale: Scale) -> Report {
    let mut rep = Report::new(
        "fig12",
        "Tailoring strategy speedup over no tailoring (Fig. 12)",
        &scale.note("paper: ~1.2x average, up to 1.48x at batch 500"),
        &["size", "batch", "no tailoring", "auto-tuned", "speedup"],
        "tailoring helps consistently; gains grow with batch and matrix size",
    );
    // Tailoring pays off when there are too few GEMM tasks to fill the
    // device (Challenge 2): few matrices, tall pair blocks. With very large
    // batches every strategy saturates the SMs and the gain fades — exactly
    // the second observation the paper makes about Fig. 12.
    //
    // The paper's V100 TLP threshold was calibrated against paper-scale
    // probes; at reduced scale no reduced workload can ever cross it and
    // the engine would (correctly) never split. Re-calibrating for the
    // reduced workload is the §IV-D3 procedure itself ("determined only
    // once for a particular platform").
    let threshold = match scale {
        Scale::Reduced => {
            let gpu = Gpu::new(V100);
            wsvd_batched::calibrate_threshold(&gpu, 0.05)
        }
        Scale::Full => wsvd_batched::V100_TLP_THRESHOLD,
    };
    let auto_cfg = WCycleConfig {
        tuning: Tuning::Auto { threshold },
        ..Default::default()
    };
    // GEMM work per rotation scales with the pair-block row count while the
    // EVD cost does not, so the GEMM-bound regime the paper reaches with
    // 512²..1024² squares is reached at reduced scale with tall matrices.
    let shapes: &[(usize, usize)] = scale.pick(
        &[(1024usize, 48usize), (2048, 64)][..],
        &[(512, 512), (1024, 1024)][..],
    );
    let batches: &[usize] = scale.pick(&[2usize, 8][..], &[10, 100, 500][..]);
    for &(m, n) in shapes {
        for &batch in batches {
            let mats = random_batch(batch, m, n, 7 * n as u64 + batch as u64);
            let plain = time_with(
                &mats,
                &WCycleConfig {
                    tailor_gemm: false,
                    ..auto_cfg.clone()
                },
            );
            let tailored = time_with(&mats, &auto_cfg);
            rep.push_row(vec![
                format!("{m}x{n}"),
                batch.to_string(),
                fmt_secs(plain),
                fmt_secs(tailored),
                fmt_speedup(plain, tailored),
            ]);
        }
    }
    rep
}

/// Table V: fixed tailoring plans vs the auto-tuning engine vs the
/// exhaustive ("theoretical") optimum.
pub fn tab5(scale: Scale) -> Report {
    let mut rep = Report::new(
        "tab5",
        "W-cycle with different tailoring plans (Table V)",
        &scale.note("paper sizes 64..1024; reduced 48..160, batch 10"),
        &["plan", "n=64", "n=96", "n=160"],
        "auto-tuning matches the exhaustive optimum (within 12% in the paper)",
    );
    let batch = scale.pick(10, 100);
    let sizes: Vec<usize> = scale
        .pick(&[64usize, 96, 160][..], &[64, 256, 1024][..])
        .to_vec();
    type NamedCfg = (String, Box<dyn Fn(usize) -> WCycleConfig>);
    let fixed: Vec<NamedCfg> = vec![
        (
            "δ=32, w=4".into(),
            Box::new(|_n| fixed_plan_cfg(4, 32, 256)),
        ),
        ("δ=m, w=4".into(), Box::new(|n| fixed_plan_cfg(4, n, 256))),
        (
            "δ=32, w=24".into(),
            Box::new(|_n| fixed_plan_cfg(24, 32, 256)),
        ),
        ("δ=m, w=24".into(), Box::new(|n| fixed_plan_cfg(24, n, 256))),
        (
            "δ=32, w=16".into(),
            Box::new(|_n| fixed_plan_cfg(16, 32, 256)),
        ),
    ];
    let mut best: Vec<f64> = vec![f64::INFINITY; sizes.len()];
    let mut all_rows: Vec<Vec<String>> = Vec::new();
    for (name, cfg_of) in &fixed {
        let mut row = vec![name.clone()];
        for (k, &n) in sizes.iter().enumerate() {
            let mats = random_batch(batch, n, n, 11 * n as u64);
            let t = time_with(&mats, &cfg_of(n));
            best[k] = best[k].min(t);
            row.push(fmt_secs(t));
        }
        all_rows.push(row);
    }
    // Auto-tuning row.
    let mut auto_row = vec!["auto-tuning".to_string()];
    let mut auto_times = Vec::new();
    for (k, &n) in sizes.iter().enumerate() {
        let mats = random_batch(batch, n, n, 11 * n as u64);
        let t = time_with(&mats, &WCycleConfig::default());
        best[k] = best[k].min(t);
        auto_times.push(t);
        auto_row.push(fmt_secs(t));
    }
    all_rows.push(auto_row);
    let mut best_row = vec!["theoretical optimal".to_string()];
    for &b in &best {
        best_row.push(fmt_secs(b));
    }
    all_rows.push(best_row);
    for row in all_rows {
        rep.push_row(row);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(cell: &str) -> f64 {
        let mut it = cell.split_whitespace();
        let v: f64 = it.next().unwrap().parse().unwrap();
        match it.next().unwrap() {
            "s" => v,
            "ms" => v * 1e-3,
            _ => v * 1e-6,
        }
    }

    #[test]
    fn fig11a_occupancy_grows_with_batch() {
        let rep = fig11a(Scale::Reduced);
        let occ: Vec<f64> = rep.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Strong upward trend end-to-end; small wobble allowed where the
        // auto-tuner flips plans between batch sizes.
        assert!(occ.last().unwrap() > &(occ[0] * 3.0), "{occ:?}");
        assert!(occ.windows(2).all(|w| w[1] >= w[0] * 0.85), "{occ:?}");
    }

    #[test]
    fn fig11a_batch_growth_survives_fusion_and_a_warm_plan_cache() {
        // Audit regression for the fig7 flat-batch-growth / fig11a batch-200
        // plan flip: the flip is a legitimate TLP crossing in the workload,
        // not a stale cached plan or a fusion artifact. Two checks:
        // occupancy and throughput must still scale with batch when the
        // fused pipeline is on, and the batch-200 point must reproduce
        // bit-identically on a warm plan cache.
        let fused_cfg = WCycleConfig {
            fused: true,
            ..WCycleConfig::default()
        };
        let run = |mats: &[Matrix]| {
            let gpu = Gpu::new(V100);
            wcycle_svd(&gpu, mats, &fused_cfg).unwrap();
            let t = gpu.timeline();
            (t.mean_occupancy(), t.seconds)
        };
        let batches = [10usize, 100, 200];
        let mut points = Vec::new();
        for &batch in &batches {
            points.push((batch, run(&random_batch(batch, 64, 64, 21))));
        }
        // Occupancy rises strongly with batch under fusion, as in fig11a.
        let occ: Vec<f64> = points.iter().map(|&(_, (o, _))| o).collect();
        assert!(occ.last().unwrap() > &(occ[0] * 3.0), "{points:?}");
        assert!(occ.windows(2).all(|w| w[1] >= w[0] * 0.85), "{points:?}");
        // The scheduler keeps amortizing: simulated seconds per matrix fall
        // monotonically as the batch grows.
        let per_mat: Vec<f64> = points.iter().map(|&(b, (_, s))| s / b as f64).collect();
        assert!(per_mat.windows(2).all(|w| w[1] < w[0]), "{points:?}");
        // Warm-cache determinism at the plan-flip point: the batch-200 run
        // above already tuned this workload, so this rerun hits the cache
        // (misses stay flat) and must be bit-identical to the cold result.
        let (h0, m0) = wsvd_batched::PlanCache::global().stats();
        let again = run(&random_batch(200, 64, 64, 21));
        let (h1, m1) = wsvd_batched::PlanCache::global().stats();
        assert_eq!(m1, m0, "batch-200 rerun must not re-tune");
        assert!(h1 > h0, "batch-200 rerun must hit the plan cache");
        let (occ200, sec200) = points[2].1;
        assert_eq!(again.0.to_bits(), occ200.to_bits());
        assert_eq!(again.1.to_bits(), sec200.to_bits());
    }

    #[test]
    fn fig11b_wcycle_moves_less_data() {
        let rep = fig11b(Scale::Reduced);
        for row in &rep.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio < 1.0, "W-cycle should move less GM data: {row:?}");
        }
    }

    #[test]
    fn fig12_tailoring_wins_where_the_engine_splits() {
        let rep = fig12(Scale::Reduced);
        // Batch-8 rows cross the calibrated TLP threshold: clear gains.
        for row in rep.rows.iter().filter(|r| r[1] == "8") {
            let s: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(s > 1.2, "no tailoring gain: {row:?}");
        }
        // Below the threshold the engine declines to split — never a loss.
        for row in &rep.rows {
            let s: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(s >= 0.99, "tailoring hurt: {row:?}");
        }
    }

    #[test]
    fn tab5_auto_close_to_best() {
        let rep = tab5(Scale::Reduced);
        let auto = rep.rows.iter().find(|r| r[0] == "auto-tuning").unwrap();
        let best = rep
            .rows
            .iter()
            .find(|r| r[0] == "theoretical optimal")
            .unwrap();
        for (a, b) in auto[1..].iter().zip(&best[1..]) {
            assert!(secs(a) <= secs(b) * 1.6, "auto {a} far from best {b}");
        }
    }
}
