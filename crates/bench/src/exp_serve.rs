//! `ext-serve` — the online serving layer's batching-policy tradeoff
//! (extension).
//!
//! Three seeded arrival traces (Poisson, bursty on/off, and the §V-F
//! ocean-assimilation mixture) are each served under two admission
//! policies:
//!
//! * **latency** — `max_wait_us = 200`, `max_batch = 8`: buckets dispatch
//!   almost immediately, so requests rarely wait but the device eats a
//!   launch-heavy stream of small batches.
//! * **throughput** — `max_wait_us = 20000`, `max_batch = 64`: requests
//!   wait for batch-mates, buckets are larger, the batched W-cycle
//!   amortizes launches — fewer, bigger dispatches.
//!
//! Each row reports the request count, dispatched buckets, p50/p99
//! end-to-end latency (rank-based quantiles over the registry's
//! fixed-bucket histograms — exact at bucket resolution), mean queueing
//! delay, sustained throughput and SLO violations. Everything runs on
//! simulated time with seeded generators, so the whole table is
//! bit-identical across runs and `repro --check` can pin it. The expected
//! shape is the serving tradeoff itself: for a given trace the throughput
//! policy dispatches **no more buckets** than the latency policy, and its
//! extra admission wait shows up in the queueing column.

use wsvd_gpu_sim::{Gpu, V100};
use wsvd_metrics::MetricsSink;
use wsvd_serve::{serve_trace, summarize, BatchPolicy, ServeConfig, ServeSummary, Trace};

use crate::report::Report;
use crate::scale::Scale;

/// Trace seed (shared by all three traces; payload seeds derive from it).
const SEED: u64 = 9292;

/// One (trace, policy) cell: a fresh device and a local sink per run so
/// rows never bleed into each other.
fn run_cell(trace: &Trace, policy: BatchPolicy, slo_e2e_us: f64) -> ServeSummary {
    let sink = MetricsSink::enabled();
    sink.set_experiment("ext-serve");
    let gpu = Gpu::new(V100);
    let cfg = ServeConfig {
        policy,
        slo_e2e_us,
        fused: true,
    };
    let outcome = serve_trace(&gpu, trace, &cfg, &sink).expect("finite seeded payloads");
    summarize(&sink.snapshot(), "ext-serve", &outcome)
}

/// The `ext-serve` experiment (see the module docs for the row contract).
pub fn ext_serve(scale: Scale) -> Report {
    let requests = scale.pick(24usize, 96);
    let (min_dim, max_dim) = scale.pick((8usize, 48usize), (16, 256));
    let points = 48; // the §V-F mixture size, both scales
    let rate_hz = scale.pick(3000.0, 1500.0);
    let slo_e2e_us = scale.pick(50_000.0, 400_000.0);
    let traces = [
        Trace::poisson(requests, rate_hz, (min_dim, max_dim), SEED),
        Trace::bursty(
            requests,
            (requests / 4).max(2),
            rate_hz * 4.0,
            (4.0e6 / rate_hz) as u64,
            (min_dim, max_dim),
            SEED,
        ),
        Trace::assimilation(points, min_dim, max_dim, rate_hz, SEED),
    ];
    let policies = [
        ("latency", BatchPolicy::low_latency()),
        ("throughput", BatchPolicy::high_throughput()),
    ];
    let mut rep = Report::new(
        "ext-serve",
        "Online serving: admission batching policies under open-loop load (extension)",
        &scale.note(&format!(
            "{requests}-request poisson/bursty traces of {min_dim}..{max_dim}, \
             {points}-point assimilation mixture; SLO p99 {slo_e2e_us} us"
        )),
        &[
            "trace",
            "policy",
            "requests",
            "batches",
            "p50-e2e",
            "p99-e2e",
            "mean-queue",
            "throughput",
            "slo-viol",
        ],
        "waiting longer for batch-mates dispatches fewer, larger buckets (higher sustained \
         throughput) at the cost of queueing delay and tail latency — the batching-policy \
         tradeoff, bit-identical across seeded runs",
    );
    for trace in &traces {
        let mut cells = Vec::new();
        for (label, policy) in policies {
            let s = run_cell(trace, policy, slo_e2e_us);
            cells.push(s.clone());
            rep.push_row(vec![
                trace.name.clone(),
                label.to_string(),
                s.requests.to_string(),
                s.batches.to_string(),
                fmt_us(s.p50_e2e_us),
                fmt_us(s.p99_e2e_us),
                fmt_us(s.mean_queue_us),
                format!("{:.1} r/s", s.throughput_rps),
                s.slo_violations.to_string(),
            ]);
        }
        // The tradeoff is deterministic on simulated time: the patient
        // policy can only merge buckets (never split them), merged buckets
        // amortize launches into higher sustained throughput, and the
        // admission wait it buys that with shows up in the tail.
        let (eager, patient) = (&cells[0], &cells[1]);
        assert!(
            patient.batches <= eager.batches,
            "{}: throughput policy dispatched more buckets ({}) than latency ({})",
            trace.name,
            patient.batches,
            eager.batches,
        );
        assert!(
            patient.throughput_rps >= eager.throughput_rps,
            "{}: batching lost sustained throughput ({:.1} vs {:.1} r/s)",
            trace.name,
            patient.throughput_rps,
            eager.throughput_rps,
        );
        assert!(
            patient.p99_e2e_us >= eager.p99_e2e_us,
            "{}: waiting longer somehow improved p99 ({:.1} vs {:.1} us)",
            trace.name,
            patient.p99_e2e_us,
            eager.p99_e2e_us,
        );
    }
    rep
}

/// Deterministic microsecond formatting for report cells.
fn fmt_us(us: f64) -> String {
    if us >= 1.0e4 {
        format!("{:.2} ms", us / 1.0e3)
    } else {
        format!("{us:.1} us")
    }
}
