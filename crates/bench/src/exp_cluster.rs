//! `ext-cluster` — elastic multi-GPU execution (extension).
//!
//! Scaling efficiency of the data-assimilation analysis step at 1/4/16
//! simulated GPUs under the elastic work-queue executor, with and without
//! injected faults:
//!
//! * **static / elastic clean** — the pinned contiguous-shard schedule vs
//!   the size-class work deque with stealing. On a balanced mixture the two
//!   land within noise of each other; the elastic rows additionally report
//!   the recovery counters (all zero on a clean run except steals, which
//!   idle ranks perform even without faults).
//! * **straggler rows** — one rank runs 2x slow. The static schedule eats
//!   the whole slowdown on the straggler's shard; the elastic schedule lets
//!   idle ranks steal the straggler's remainder, strictly shrinking the
//!   makespan at 4 and 16 GPUs (checked by the `steal-win` column).
//! * **kill row** — a rank dies mid-batch; its queued and in-flight chunks
//!   requeue onto the survivors. The analysis weights are **bit-identical**
//!   to the clean elastic run (chunks are deterministic, so where/when a
//!   chunk runs cannot perturb it) — the `identical` column asserts it.
//! * **resume row** — the killed run is additionally checkpointed after a
//!   few chunks, serialized to JSON, thawed, and resumed on a fresh
//!   cluster; weights *and the simulated clock* must replay bit-identically
//!   against the straight-through killed run.
//!
//! The grid points run under the serial MAGMA engine, deliberately: in the
//! simulator that engine is compute-bound, so a rank's clock is proportional
//! to the work it was assigned and scheduling effects (stealing, stragglers,
//! requeues) are visible in the makespan. The batched W-cycle at reduced
//! scale is launch-bound — a quarter batch costs nearly as much as the full
//! batch — which would mask exactly the effects this experiment measures
//! (the same regime note as `fig14b`'s scaling test). The W-cycle's own
//! checkpointed sweep state is exercised by the assimilation unit tests and
//! the `cluster_integration` suite instead.
//!
//! Faults are scenery here, exactly as in `ext-health`: every scenario
//! builds a local [`HealthSink`](wsvd_health::HealthSink) so planted kills
//! do not trip `repro --health`'s non-zero exit.

use wsvd_apps::assimilation::{
    analysis_resume_elastic_with, analysis_step_distributed_with, analysis_step_elastic_with,
    AssimilationProblem, SvdEngine,
};
use wsvd_core::{RunCheckpoint, WCycleConfig};
use wsvd_gpu_sim::cluster::{ElasticConfig, FaultPlan};
use wsvd_gpu_sim::{GpuCluster, VEGA20};
use wsvd_health::HealthSink;

use crate::report::{fmt_secs, Report};
use crate::scale::Scale;

/// Workload seed for the assimilation mixture (stamped into checkpoints).
const SEED: u64 = 4747;

/// One elastic scenario run on a fresh cluster with a local health sink.
struct ScenarioOut {
    makespan: f64,
    efficiency: f64,
    weights: Vec<Vec<f64>>,
    counters: wsvd_gpu_sim::cluster::RecoveryCounters,
    checkpoint: Option<RunCheckpoint>,
    recovered_incidents: usize,
}

fn elastic_run(problem: &AssimilationProblem, gpus: usize, ecfg: &ElasticConfig) -> ScenarioOut {
    let sink = HealthSink::enabled();
    sink.set_context("ext-cluster", SEED);
    let mut cluster = GpuCluster::new(VEGA20, gpus);
    cluster.set_health(sink.clone());
    let run = analysis_step_elastic_with(
        &cluster,
        problem,
        SvdEngine::Magma,
        &WCycleConfig::default(),
        ecfg,
        SEED,
    )
    .unwrap();
    ScenarioOut {
        makespan: cluster.elapsed_seconds(),
        efficiency: cluster.parallel_efficiency(),
        weights: run.result.weights,
        counters: run.counters,
        checkpoint: run.checkpoint,
        recovered_incidents: sink.incidents().iter().filter(|i| i.recovered).count(),
    }
}

/// The static contiguous-shard schedule under an optional straggler: each
/// rank runs its own shard, then the straggler's clock is scaled by the
/// slowdown factor (the static schedule has no way to shed the load).
fn static_run(
    problem: &AssimilationProblem,
    gpus: usize,
    straggler: Option<(usize, f64)>,
) -> (f64, f64) {
    let cluster = GpuCluster::new(VEGA20, gpus);
    analysis_step_distributed_with(
        &cluster,
        problem,
        SvdEngine::Magma,
        &WCycleConfig::default(),
    )
    .unwrap();
    if let Some((rank, factor)) = straggler {
        let gpu = cluster.gpu(rank);
        gpu.add_host_seconds((factor - 1.0) * gpu.elapsed_seconds());
    }
    (cluster.elapsed_seconds(), cluster.parallel_efficiency())
}

/// The `ext-cluster` experiment (see the module docs for the row contract).
pub fn ext_cluster(scale: Scale) -> Report {
    // Enough points that even at 16 ranks the straggler holds several
    // chunks — a one-chunk queue leaves nothing to steal.
    let points = scale.pick(48usize, 96);
    let (min_dim, max_dim) = scale.pick((12usize, 40usize), (50, 256));
    let problem = AssimilationProblem::generate(points, min_dim, max_dim, SEED);
    let mut rep = Report::new(
        "ext-cluster",
        "Elastic multi-GPU execution: work stealing, faults, checkpoint/resume (extension)",
        &scale.note(&format!(
            "assimilation mixture, {points} points of {min_dim}..{max_dim}; straggler 2x; \
             kill at 30% of the clean makespan"
        )),
        &[
            "gpus",
            "scenario",
            "makespan",
            "efficiency",
            "stolen",
            "requeued",
            "recovered",
            "ckpt-bytes",
            "steal-win",
            "identical",
        ],
        "stealing strictly beats static sharding under a 2x straggler at 4 and 16 GPUs; a \
         mid-batch kill and a killed-then-resumed run both reproduce the clean analysis \
         weights bit-identically",
    );
    let mut push = |gpus: usize,
                    scenario: &str,
                    makespan: f64,
                    eff: f64,
                    s: &wsvd_gpu_sim::cluster::RecoveryCounters,
                    recovered: usize,
                    steal_win: &str,
                    identical: &str| {
        rep.push_row(vec![
            gpus.to_string(),
            scenario.to_string(),
            fmt_secs(makespan),
            format!("{:.2}", eff),
            s.stolen_chunks.to_string(),
            s.requeued_chunks.to_string(),
            recovered.to_string(),
            s.checkpoint_bytes.to_string(),
            steal_win.to_string(),
            identical.to_string(),
        ]);
    };
    let zero = wsvd_gpu_sim::cluster::RecoveryCounters::default();
    for &gpus in &[1usize, 4, 16] {
        // -- clean ---------------------------------------------------------
        let (static_clean, static_eff) = static_run(&problem, gpus, None);
        push(
            gpus,
            "static-clean",
            static_clean,
            static_eff,
            &zero,
            0,
            "-",
            "-",
        );
        let clean = elastic_run(&problem, gpus, &ElasticConfig::default());
        assert_eq!(clean.counters.requeued_chunks, 0);
        push(
            gpus,
            "elastic-clean",
            clean.makespan,
            clean.efficiency,
            &clean.counters,
            clean.recovered_incidents,
            "-",
            "-",
        );
        // -- straggler -----------------------------------------------------
        let straggle = FaultPlan::none().straggler(0, 2.0);
        let (static_slow, slow_eff) = static_run(&problem, gpus, Some((0, 2.0)));
        push(
            gpus,
            "static-straggler",
            static_slow,
            slow_eff,
            &zero,
            0,
            "-",
            "-",
        );
        let slow = elastic_run(
            &problem,
            gpus,
            &ElasticConfig {
                faults: straggle.clone(),
                checkpoint_after: None,
            },
        );
        let steal_win = if gpus == 1 {
            // One rank: there is nobody to steal from, so parity is the
            // contract, not a win.
            "n/a"
        } else if slow.makespan < static_slow {
            "yes"
        } else {
            "NO"
        };
        push(
            gpus,
            "elastic-straggler",
            slow.makespan,
            slow.efficiency,
            &slow.counters,
            slow.recovered_incidents,
            steal_win,
            "-",
        );
        if gpus == 1 {
            continue; // killing the only rank is unrecoverable by definition
        }
        // -- mid-batch kill ------------------------------------------------
        let kill_at = 0.3 * clean.makespan;
        let kill_plan = FaultPlan::none().kill(1, kill_at);
        let killed = elastic_run(
            &problem,
            gpus,
            &ElasticConfig {
                faults: kill_plan.clone(),
                checkpoint_after: None,
            },
        );
        let identical = if killed.weights == clean.weights {
            "yes"
        } else {
            "NO"
        };
        push(
            gpus,
            "elastic-kill",
            killed.makespan,
            killed.efficiency,
            &killed.counters,
            killed.recovered_incidents,
            "-",
            identical,
        );
        // -- checkpoint / resume -------------------------------------------
        let interrupted = elastic_run(
            &problem,
            gpus,
            &ElasticConfig {
                faults: kill_plan.clone(),
                checkpoint_after: Some(3),
            },
        );
        let frozen = interrupted.checkpoint.expect("checkpoint requested");
        let json = frozen.to_json();
        let sink = HealthSink::enabled();
        sink.set_context("ext-cluster", SEED);
        let mut cluster = GpuCluster::new(VEGA20, gpus);
        cluster.set_health(sink.clone());
        let resumed = analysis_resume_elastic_with(
            &cluster,
            &problem,
            SvdEngine::Magma,
            &WCycleConfig::default(),
            &ElasticConfig {
                faults: kill_plan,
                checkpoint_after: None,
            },
            RunCheckpoint::from_json(&json).unwrap(),
        )
        .unwrap();
        let resumed_makespan = cluster.elapsed_seconds();
        let identical = if resumed.result.weights == killed.weights
            && resumed_makespan.to_bits() == killed.makespan.to_bits()
        {
            "yes"
        } else {
            "NO"
        };
        let mut counters = resumed.counters;
        counters.checkpoint_bytes = json.len() as u64;
        push(
            gpus,
            "resume",
            resumed_makespan,
            cluster.parallel_efficiency(),
            &counters,
            sink.incidents().iter().filter(|i| i.recovered).count(),
            "-",
            identical,
        );
    }
    // Surface the recovery story on the metrics registry when it is live
    // (`repro --bench-out` / `--report`); a disabled sink ignores this.
    let metrics = wsvd_metrics::global();
    if metrics.is_enabled() {
        for row in &rep.rows {
            if row[7] != "0" && row[7] != "-" {
                metrics.gauge_set("cluster", None, "checkpoint_bytes", row[7].parse().unwrap());
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealing_strictly_beats_static_under_a_straggler() {
        let rep = ext_cluster(Scale::Reduced);
        let wins: Vec<_> = rep
            .rows
            .iter()
            .filter(|r| r[1] == "elastic-straggler" && r[0] != "1")
            .collect();
        assert_eq!(wins.len(), 2, "4- and 16-GPU straggler rows");
        for row in wins {
            assert_eq!(
                row[8], "yes",
                "stealing must win at {} GPUs: {row:?}",
                row[0]
            );
            assert!(
                row[4].parse::<u64>().unwrap() > 0,
                "steals happened: {row:?}"
            );
        }
    }

    #[test]
    fn kill_and_resume_rows_are_bit_identical_and_recovered() {
        let rep = ext_cluster(Scale::Reduced);
        let checked: Vec<_> = rep
            .rows
            .iter()
            .filter(|r| r[1] == "elastic-kill" || r[1] == "resume")
            .collect();
        assert_eq!(checked.len(), 4, "kill+resume at 4 and 16 GPUs");
        for row in checked {
            assert_eq!(row[9], "yes", "bit-identity must hold: {row:?}");
            assert!(
                row[6].parse::<usize>().unwrap() >= 1,
                "the shard-dead incident must be marked recovered: {row:?}"
            );
            if row[1] == "elastic-kill" {
                assert!(
                    row[5].parse::<u64>().unwrap() > 0,
                    "a mid-batch kill must requeue work: {row:?}"
                );
            }
        }
    }

    #[test]
    fn resume_rows_report_the_checkpoint_size() {
        let rep = ext_cluster(Scale::Reduced);
        for row in rep.rows.iter().filter(|r| r[1] == "resume") {
            assert!(row[7].parse::<u64>().unwrap() > 0, "{row:?}");
        }
    }
}
