//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//!   repro --list
//!   repro <id> [<id> ...] [--scale reduced|full] [--json DIR] [--trace FILE]
//!   repro --all [--scale reduced|full] [--json DIR] [--trace FILE]
//!   repro --check DIR [<id> ...]     # regression-compare against stored JSON
//!   repro --sanitize [<id> ...]      # run under the wsvd-sanitizer (default: fig7)
//!   repro --certify [<id> ...]       # require ahead-of-time plan certificates
//!   repro --fused [<id> ...]         # run with the fused launch pipeline on
//!   repro --report [<id> ...]        # per-kernel profiler report (wsvd-metrics)
//!   repro --bench-out FILE [...]     # write a perf snapshot for wsvd-bench-diff
//!   repro --prom FILE [...]          # export the registry as Prometheus text
//!   repro --health [<id> ...]        # numerical-health watchdogs + flight recorder
//!   repro --health-dump FILE [...]   # also write the full health report as JSON
//!   repro --cluster-faults [...]     # elastic-cluster fault drill (default: ext-cluster)
//! ```
//!
//! `--trace FILE` records every simulated kernel launch, W-cycle sweep and
//! auto-tuner decision, writes a Chrome trace-event JSON timeline to FILE
//! (load it at <https://ui.perfetto.dev>) and prints a flame summary to
//! stderr.
//!
//! `--sanitize` turns on full dynamic hazard tracking (lane-level shared
//! memory races, barrier divergence, leaked buffers) and static schedule /
//! shared-memory verification for every simulated launch, then exits
//! non-zero if any violation was reported. Equivalent to `WSVD_SANITIZE=1`.
//!
//! `--certify` builds wsvd-analyze's ahead-of-time certificate store (every
//! auto-tuner-reachable and pinned plan family proven safe on every device
//! model) and requires it: a W-cycle level whose selected plan has no
//! certificate is a hard error before any kernel launches, and certified
//! levels skip the sanitizer's per-launch static re-verification. Simulated
//! time and numerics are bit-identical with certification on or off.
//!
//! `--report` turns on the wsvd-metrics registry (a strict no-op otherwise:
//! simulated time and numerics are bit-identical with metrics off) and, after
//! the experiments run, prints a per-kernel profiler table per experiment —
//! time share, achieved occupancy, arithmetic intensity and the roofline
//! ceiling each kernel is pinned to (Eqs. 8–10), GM-transaction efficiency
//! and launch-overhead share.
//!
//! `--bench-out FILE` (implies the registry on) writes a stable
//! [`wsvd_bench::BenchSnapshot`] JSON of the whole invocation; commit one as
//! `BENCH_<n>.json` and gate CI with `wsvd-bench-diff --gate`. `--prom FILE`
//! exports the same registry in Prometheus text exposition format.
//!
//! `--health` arms the wsvd-health watchdogs (another strict no-op when off):
//! NaN/Inf guards at kernel boundaries, per-sweep stagnation/divergence
//! detection, per-batch residual/orthogonality drift monitors, dead-shard
//! detection at cluster barriers, and an always-on flight recorder whose tail
//! is embedded in every structured incident. After the experiments run a
//! per-experiment summary is printed and the process exits non-zero if any
//! incident fired. `--health-dump FILE` (implies `--health`) additionally
//! writes the full [`wsvd_health::HealthReport`] — incidents, ring-buffer
//! tail, metrics snapshot and replayable seeds — as JSON.
//!
//! `--cluster-faults` runs the elastic-cluster fault drill (defaults the id
//! list to `ext-cluster`): work-stealing, mid-batch kills and
//! checkpoint/resume on a simulated multi-GPU cluster. After the experiments
//! run, the process exits non-zero if any chunk of work was left
//! unrecovered — a retry budget exhausted or every rank dead — anywhere in
//! the invocation.
//!
//! `--fused` makes every W-cycle run record its per-level launches into a
//! [`wsvd_gpu_sim::LaunchGraph`], paying the driver's launch overhead once
//! per level instead of once per kernel (back-to-back same-shape launches
//! coalesce onto already-resident SM slots). Counters and numerics are
//! bit-identical to the serial pipeline; simulated time can only improve,
//! so fused baselines live in their own directory (`repro_results/fused/`).

use std::io::Write;
use wsvd_bench::{all_experiments, Report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut json_dir: Option<String> = None;
    let mut check_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut run_all = false;
    let mut sanitize = false;
    let mut certify = false;
    let mut fused = false;
    let mut report = false;
    let mut bench_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut health = false;
    let mut health_dump: Option<String> = None;
    let mut cluster_faults = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                for (id, _) in all_experiments() {
                    println!("{id}");
                }
                return;
            }
            "--all" => run_all = true,
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--json" => json_dir = Some(it.next().expect("--json needs a directory")),
            "--check" => check_dir = Some(it.next().expect("--check needs a directory")),
            "--trace" => trace_path = Some(it.next().expect("--trace needs a file")),
            "--sanitize" => sanitize = true,
            "--certify" => certify = true,
            "--fused" => fused = true,
            "--report" => report = true,
            "--bench-out" => bench_out = Some(it.next().expect("--bench-out needs a file")),
            "--prom" => prom_out = Some(it.next().expect("--prom needs a file")),
            "--health" => health = true,
            "--health-dump" => health_dump = Some(it.next().expect("--health-dump needs a file")),
            "--cluster-faults" => cluster_faults = true,
            other => ids.push(other.to_string()),
        }
    }
    // Flip the fused default before any experiment builds a `WCycleConfig`.
    if fused {
        wsvd_core::set_fused_default(true);
    }
    // Like the trace sink, the sanitize mode must be set before the first
    // `Gpu` is constructed — every later GPU resolves it at build time.
    if sanitize {
        wsvd_gpu_sim::sanitize::set_global(wsvd_gpu_sim::SanitizeMode::Full);
        if ids.is_empty() && !run_all && check_dir.is_none() {
            ids.push("fig7".to_string());
        }
    }
    // The fault drill needs no global mode — faults are injected per-run by
    // the experiment — but it picks its default target the same way.
    if cluster_faults && ids.is_empty() && !run_all && check_dir.is_none() {
        ids.push("ext-cluster".to_string());
    }
    // Certification must also be armed before the first `Gpu`: the W-cycle
    // driver consults the mode at plan-selection time, every level.
    if certify {
        let store = wsvd_analyze::plan_space::certify_all_devices(
            wsvd_analyze::plan_space::DEFAULT_MAX_BLOCKS,
        )
        .unwrap_or_else(|e| {
            eprintln!("wsvd-analyze: plan-space certification failed: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wsvd-analyze: {} plan certificates installed ({} devices, schedules proven to \
             {} blocks); certification required for every selected plan",
            store.len(),
            store.devices.len(),
            store.atlas.max_blocks
        );
        wsvd_core::certify::install_store(std::sync::Arc::new(store));
        wsvd_core::certify::set_mode(wsvd_core::certify::CertifyMode::Require);
    }
    // The sink must be installed before any experiment constructs a `Gpu`,
    // which picks the global sink up at construction time.
    let trace_sink = trace_path.as_ref().map(|_| {
        let sink = wsvd_trace::TraceSink::enabled();
        wsvd_trace::install_global(sink.clone());
        sink
    });
    // Same construction-time rule for the metrics registry: `--report`,
    // `--bench-out` and `--prom` all need the global sink live before the
    // first `Gpu` exists. Off by default — the disabled sink is a strict
    // no-op and experiments stay bit-identical.
    let metrics_sink = (report || bench_out.is_some() || prom_out.is_some()).then(|| {
        let sink = wsvd_metrics::MetricsSink::enabled();
        wsvd_metrics::install_global(sink.clone());
        sink
    });
    // And for the health watchdogs: every `Gpu` resolves the global health
    // sink at construction time, so `--health` must install it up front.
    // Off by default — the disabled sink is a strict no-op and the simulated
    // clock stays bit-identical.
    let health_sink = (health || health_dump.is_some()).then(|| {
        let sink = wsvd_health::HealthSink::enabled();
        wsvd_health::install_global(sink.clone());
        if let Some(m) = &metrics_sink {
            sink.set_metrics(m.clone());
        }
        sink
    });
    let finish_health = |sink: &Option<wsvd_health::HealthSink>, ids: &[String]| -> bool {
        let Some(sink) = sink else { return false };
        if let Some(path) = &health_dump {
            std::fs::write(path, sink.report_json()).expect("write health report");
            eprintln!("wrote health report to {path}");
        }
        eprintln!(
            "wsvd-health: {} flight event(s) recorded, {} incident(s) ({} suppressed repeat(s))",
            sink.events_recorded(),
            sink.incident_count(),
            sink.suppressed(),
        );
        let summary = sink.summary();
        for id in ids {
            match summary.get(id) {
                Some(n) => eprintln!("  {id:>12}  {n} incident(s)"),
                None => eprintln!("  {id:>12}  OK"),
            }
        }
        for inc in sink.incidents() {
            eprintln!(
                "  INCIDENT [{}] {} (replay seed {}): {}",
                inc.kind, inc.experiment, inc.seed, inc.detail
            );
        }
        sink.incident_count() > 0
    };
    let dump_metrics =
        |sink: &Option<wsvd_metrics::MetricsSink>, scale: wsvd_bench::Scale, ids: &[String]| {
            let Some(sink) = sink else { return };
            let snap = sink.snapshot();
            if report {
                print!("{}", wsvd_bench::metrics_report::render_report(&snap));
            }
            if let Some(path) = &bench_out {
                let bench = wsvd_bench::BenchSnapshot {
                    version: wsvd_bench::BENCH_SNAPSHOT_VERSION as f64,
                    scale: format!("{scale:?}").to_lowercase(),
                    experiments: ids.to_vec(),
                    metrics: snap.clone(),
                };
                std::fs::write(path, bench.to_json()).expect("write bench snapshot");
                eprintln!("wrote perf snapshot to {path} (compare with wsvd-bench-diff)");
            }
            if let Some(path) = &prom_out {
                std::fs::write(path, snap.to_prometheus()).expect("write prometheus file");
                eprintln!("wrote Prometheus exposition to {path}");
            }
        };
    let dump_trace = |sink: &Option<wsvd_trace::TraceSink>| {
        let (Some(sink), Some(path)) = (sink, &trace_path) else {
            return;
        };
        let events = sink.events();
        let processes = sink.processes();
        std::fs::write(path, wsvd_trace::chrome_trace_json(&events, &processes))
            .expect("write trace file");
        eprintln!("{}", wsvd_trace::flame_summary(&events, &processes));
        eprintln!(
            "wrote {} trace events to {path} (open at https://ui.perfetto.dev)",
            events.len()
        );
    };
    // The cluster fault drill's exit contract: every requeued chunk must
    // have landed somewhere — work abandoned after the retry budget (or
    // because every rank died) fails the invocation.
    let finish_cluster = |armed: bool| -> bool {
        if !armed {
            return false;
        }
        let lost = wsvd_gpu_sim::unrecovered_total();
        if lost > 0 {
            eprintln!("wsvd-cluster: {lost} chunk(s) of work left unrecovered");
            true
        } else {
            eprintln!("wsvd-cluster: all injected faults recovered; no work lost");
            false
        }
    };
    let experiments = all_experiments();
    if run_all {
        ids = experiments.iter().map(|(id, _)| id.to_string()).collect();
    }
    // Regression mode: re-run and compare against stored baselines.
    if let Some(dir) = check_dir {
        if ids.is_empty() {
            ids = experiments
                .iter()
                .map(|(id, _)| id.to_string())
                .filter(|id| std::path::Path::new(&format!("{dir}/{id}.json")).exists())
                .collect();
        }
        let mut failed = 0usize;
        for id in &ids {
            let Some((_, f)) = experiments.iter().find(|(e, _)| e == id) else {
                eprintln!("unknown experiment '{id}'");
                std::process::exit(2);
            };
            let path = format!("{dir}/{id}.json");
            let Ok(stored) = std::fs::read_to_string(&path) else {
                println!("{id:>12}  SKIP (no baseline at {path})");
                continue;
            };
            let baseline: Report = serde_json::from_str(&stored).expect("baseline parse");
            if let Some(sink) = &metrics_sink {
                sink.set_experiment(id);
            }
            if let Some(sink) = &health_sink {
                sink.set_context(id, 0);
            }
            let fresh = f(scale);
            match fresh.diff(&baseline) {
                None => println!("{id:>12}  PASS"),
                Some(d) => {
                    println!("{id:>12}  DIFF: {d}");
                    failed += 1;
                }
            }
        }
        dump_trace(&trace_sink);
        dump_metrics(&metrics_sink, scale, &ids);
        let unhealthy = finish_health(&health_sink, &ids);
        let unrecovered = finish_cluster(cluster_faults);
        std::process::exit(if failed > 0 || unhealthy || unrecovered {
            1
        } else {
            0
        });
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro --all | <id>... [--scale reduced|full] [--json DIR] [--certify] \
             [--fused] [--report] [--bench-out FILE] [--prom FILE] [--health] \
             [--health-dump FILE] [--cluster-faults]"
        );
        eprintln!("known ids:");
        for (id, _) in &experiments {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
    let mut reports: Vec<Report> = Vec::new();
    for id in &ids {
        let Some((_, f)) = experiments.iter().find(|(e, _)| e == id) else {
            eprintln!("unknown experiment '{id}' (try --list)");
            std::process::exit(2);
        };
        if let Some(sink) = &metrics_sink {
            sink.set_experiment(id);
        }
        if let Some(sink) = &health_sink {
            sink.set_context(id, 0);
        }
        let start = std::time::Instant::now();
        let rep = f(scale);
        println!("{}", rep.render());
        println!(
            "   (regenerated in {:.1} s wall-clock)\n",
            start.elapsed().as_secs_f64()
        );
        reports.push(rep);
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json dir");
        for rep in &reports {
            let path = format!("{dir}/{}.json", rep.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(serde_json::to_string_pretty(rep).unwrap().as_bytes())
                .unwrap();
            eprintln!("wrote {path}");
        }
    }
    dump_trace(&trace_sink);
    dump_metrics(&metrics_sink, scale, &ids);
    if sanitize {
        let v = wsvd_gpu_sim::sanitize::global_violation_count();
        if v > 0 {
            eprintln!("wsvd-sanitizer: {v} violation(s) detected");
            std::process::exit(1);
        }
        eprintln!(
            "wsvd-sanitizer: clean — {} experiment(s) ran under full hazard checking",
            ids.len()
        );
    }
    let unhealthy = finish_health(&health_sink, &ids);
    if unhealthy || finish_cluster(cluster_faults) {
        std::process::exit(1);
    }
}
