//! `wsvd-bench-diff` — compares two perf snapshots written by
//! `repro --bench-out`, under configurable relative tolerances.
//!
//! Usage:
//! ```text
//!   wsvd-bench-diff [--gate] [--allow-new] [--accept PREFIX]...
//!                   [--tol-time R] [--tol-counter R] BASELINE NEW
//! ```
//!
//! Every metric series in either snapshot is compared: time-like series
//! (names ending `seconds`) under `--tol-time` (default 0.01 = 1%
//! relative), all other counters/gauges and histogram counts under
//! `--tol-counter` (default 0 = exact). Missing or extra series always
//! violate, except that `--allow-new` accepts series present only in NEW —
//! the flag CI uses when a release legitimately adds experiments and the
//! fresh snapshot is gated against the *previous* baseline. `--accept
//! PREFIX` (repeatable) waives value drift on series whose key starts with
//! PREFIX — for a release that intentionally changes existing behavior
//! (e.g. PR 8 rerouting dead-shard failover through the elastic requeue
//! changed ext-health's killed-shard launch counts); missing/extra series
//! under an accepted prefix still violate, and the waiver should pin the
//! narrowest possible keys. With `--gate` the process exits non-zero when
//! any violation is found — CI regenerates a fresh snapshot and gates it
//! against the committed `BENCH_<n>.json` baseline this way.

use wsvd_bench::{BenchSnapshot, Tolerances};

fn main() {
    let mut gate = false;
    let mut tol = Tolerances::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gate" => gate = true,
            "--allow-new" => tol.allow_new = true,
            "--accept" => {
                tol.accept_prefixes
                    .push(it.next().expect("--accept needs a key prefix"));
            }
            "--tol-time" => {
                tol.time = it
                    .next()
                    .expect("--tol-time needs a value")
                    .parse()
                    .expect("--tol-time must be a number");
            }
            "--tol-counter" => {
                tol.counter = it
                    .next()
                    .expect("--tol-counter needs a value")
                    .parse()
                    .expect("--tol-counter must be a number");
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: wsvd-bench-diff [--gate] [--allow-new] [--accept PREFIX]... [--tol-time R] \
             [--tol-counter R] BASELINE NEW"
        );
        std::process::exit(2);
    }
    if !tol.accept_prefixes.is_empty() {
        println!(
            "accepting intended value drift under {} prefix(es): {}",
            tol.accept_prefixes.len(),
            tol.accept_prefixes.join(", ")
        );
    }
    let load = |path: &str| -> BenchSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchSnapshot::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&paths[0]);
    let fresh = load(&paths[1]);
    let violations = baseline.compare(&fresh, &tol);
    for v in &violations {
        println!("DIFF  {v}");
    }
    println!(
        "{} series in baseline, {} in new; {} violation(s) (tol: time {:.1}%, counter {:.1}%)",
        baseline.series_count(),
        fresh.series_count(),
        violations.len(),
        100.0 * tol.time,
        100.0 * tol.counter,
    );
    if gate && !violations.is_empty() {
        eprintln!("bench gate FAILED against {}", paths[0]);
        std::process::exit(1);
    }
}
