//! `ext-health` — the numerical-health watchdog demonstration (extension).
//!
//! One table, two halves:
//!
//! * **Clean rows** — fig7-derived shapes run twice, watched and unwatched.
//!   The health layer's contract is that every watchdog computation hides
//!   behind `is_enabled()`, so the watched run must land on the *same*
//!   simulated clock — the overhead column is required to read `0.0%`.
//! * **Planted-fault rows** — a NaN injected at a kernel boundary, a W-cycle
//!   whose inner tolerance is sabotaged into stagnation, and a killed cluster
//!   shard. Each must produce exactly one structured [`wsvd_health::Incident`]
//!   whose embedded seed deterministically replays the failure (the
//!   `replayed` column re-runs the scenario from `incident.seed` and checks
//!   the same incident fires again).
//!
//! The experiment deliberately builds *local* [`HealthSink`]s and installs
//! them per-GPU rather than reusing the process-global sink: planted faults
//! are scenery, not real incidents, and must not trip `repro --health`'s
//! non-zero exit for the run that hosts them.

use wsvd_apps::assimilation::{analysis_step_distributed, AssimilationProblem, SvdEngine};
use wsvd_batched::{batched_gram, GemmStrategy};
use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, GpuCluster, V100, VEGA20};
use wsvd_health::HealthSink;
use wsvd_linalg::generate::random_batch;

use crate::report::Report;
use crate::scale::Scale;

/// A watched or unwatched clean W-cycle run; returns (sim seconds, incidents).
fn clean_run(m: usize, n: usize, batch: usize, seed: u64, watch: bool) -> (f64, usize) {
    let sink = watch.then(|| {
        let s = HealthSink::enabled();
        s.set_context("ext-health", seed);
        s
    });
    let mut gpu = Gpu::new(V100);
    if let Some(s) = &sink {
        gpu.set_health(s.clone());
    }
    let mats = random_batch(batch, m, n, seed);
    wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    (
        gpu.elapsed_seconds(),
        sink.map(|s| s.incident_count()).unwrap_or(0),
    )
}

/// Plants one NaN at a kernel boundary: the batched Gram kernel's finite
/// guard must convert it into exactly one `non-finite` incident.
fn nan_run(seed: u64) -> HealthSink {
    let sink = HealthSink::enabled();
    sink.set_context("ext-health", seed);
    let mut gpu = Gpu::new(V100);
    gpu.set_health(sink.clone());
    let mut mats = random_batch(4, 24, 8, seed);
    mats[2][(5, 3)] = f64::NAN;
    batched_gram(&gpu, &mats, GemmStrategy::OneBlockPerGemm { threads: 256 }).unwrap();
    sink
}

/// Sabotages the inner tolerance so every sweep leaves the level's coherence
/// stuck above `tol` — the textbook stagnation the watchdog exists for.
fn stall_run(seed: u64) -> HealthSink {
    let sink = HealthSink::enabled();
    sink.set_context("ext-health", seed);
    let mut gpu = Gpu::new(V100);
    gpu.set_health(sink.clone());
    let mats = random_batch(1, 96, 96, seed);
    let cfg = WCycleConfig {
        tol: 1e-12,
        inner_tol_override: Some(1e-4),
        max_sweeps: 12,
        ..WCycleConfig::default()
    };
    wcycle_svd(&gpu, &mats, &cfg).unwrap();
    sink
}

/// Kills one shard of a 4-GPU analysis step: the collective barrier detects
/// the dead rank (one `shard-dead` incident) and the surviving ranks absorb
/// its grid points.
fn shard_run(seed: u64) -> HealthSink {
    let sink = HealthSink::enabled();
    sink.set_context("ext-health", seed);
    let mut cluster = GpuCluster::new(VEGA20, 4);
    cluster.set_health(sink.clone());
    cluster.kill(2);
    let p = AssimilationProblem::generate(8, 12, 32, seed);
    analysis_step_distributed(&cluster, &p, SvdEngine::WCycle).unwrap();
    sink
}

/// Runs a planted-fault scenario, then replays it from the incident's own
/// embedded seed; returns `(incidents-of-kind, seed, replay-confirmed)`.
fn fault_case(kind: &str, seed: u64, run: fn(u64) -> HealthSink) -> (usize, u64, bool) {
    let sink = run(seed);
    let incidents = sink.incidents();
    let matching: Vec<_> = incidents.iter().filter(|i| i.kind == kind).collect();
    let Some(inc) = matching.first() else {
        return (0, 0, false);
    };
    let replay = run(inc.seed);
    let replayed = replay.incidents().iter().filter(|i| i.kind == kind).count() == matching.len();
    (matching.len(), inc.seed, replayed)
}

/// The `ext-health` experiment (see the module docs for the table contract).
pub fn ext_health(scale: Scale) -> Report {
    let batch = scale.pick(6, 24);
    let mut rep = Report::new(
        "ext-health",
        "Numerical-health watchdogs: clean overhead and planted faults (extension)",
        &scale.note(&format!(
            "fig7-derived clean shapes, batch {batch}; faults at fixed seeds"
        )),
        &[
            "case",
            "m",
            "n",
            "incidents",
            "kind",
            "overhead",
            "replayed",
        ],
        "clean watched runs stay green at 0.0% simulated overhead; every planted fault yields \
         exactly one incident whose seed replays it",
    );
    for &(m, n) in &[(8usize, 32usize), (32, 32), (96, 96)] {
        let seed = (m * 100 + n) as u64;
        let (t_off, _) = clean_run(m, n, batch, seed, false);
        let (t_on, incidents) = clean_run(m, n, batch, seed, true);
        let overhead = 100.0 * (t_on - t_off) / t_off;
        rep.push_row(vec![
            "clean".to_string(),
            m.to_string(),
            n.to_string(),
            incidents.to_string(),
            "-".to_string(),
            format!("{overhead:.1}%"),
            "-".to_string(),
        ]);
    }
    for (case, kind, seed, run, m, n) in [
        (
            "planted-nan",
            "non-finite",
            29u64,
            nan_run as fn(u64) -> HealthSink,
            "24",
            "8",
        ),
        ("planted-stall", "stagnation", 43, stall_run, "96", "96"),
        ("killed-shard", "shard-dead", 17, shard_run, "-", "-"),
    ] {
        let (count, seed_out, replayed) = fault_case(kind, seed, run);
        assert_eq!(
            seed_out, seed,
            "{case}: incident must carry the workload seed"
        );
        rep.push_row(vec![
            case.to_string(),
            m.to_string(),
            n.to_string(),
            count.to_string(),
            kind.to_string(),
            "-".to_string(),
            if replayed { "yes" } else { "no" }.to_string(),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_rows_are_green_and_overhead_free() {
        let rep = ext_health(Scale::Reduced);
        let clean: Vec<_> = rep.rows.iter().filter(|r| r[0] == "clean").collect();
        assert_eq!(clean.len(), 3);
        for row in clean {
            assert_eq!(row[3], "0", "clean run must fire no incidents: {row:?}");
            assert_eq!(
                row[5], "0.0%",
                "watched run must not move the simulated clock"
            );
        }
    }

    #[test]
    fn every_planted_fault_fires_once_and_replays() {
        let rep = ext_health(Scale::Reduced);
        let faults: Vec<_> = rep.rows.iter().filter(|r| r[0] != "clean").collect();
        assert_eq!(faults.len(), 3);
        for row in faults {
            assert_eq!(
                row[3], "1",
                "exactly one incident per planted fault: {row:?}"
            );
            assert_eq!(
                row[6], "yes",
                "the embedded seed must replay the fault: {row:?}"
            );
        }
    }
}
