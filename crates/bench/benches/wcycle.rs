//! Criterion macro-benchmarks: the full W-cycle against the baselines
//! (host wall-clock of this implementation — regression tracking for the
//! numerics; paper-shaped simulated-time comparisons live in `repro`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wsvd_baselines::{batched_dp_gram, cusolver_batched_svd, magma_batched_svd};
use wsvd_core::{wcycle_svd, Tuning, WCycleConfig};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_linalg::generate::random_batch;

fn bench_wcycle_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("wcycle_svd");
    for &n in &[16usize, 48, 96] {
        let mats = random_batch(4, n, n, n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let gpu = Gpu::new(V100);
            b.iter(|| wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines_64x64_batch4");
    let mats = random_batch(4, 64, 64, 9);
    g.bench_function("wcycle", |b| {
        let gpu = Gpu::new(V100);
        b.iter(|| wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap())
    });
    g.bench_function("dp_gram", |b| {
        let gpu = Gpu::new(V100);
        b.iter(|| batched_dp_gram(&gpu, &mats).unwrap())
    });
    g.bench_function("cusolver_like", |b| {
        let gpu = Gpu::new(V100);
        b.iter(|| cusolver_batched_svd(&gpu, &mats).unwrap())
    });
    g.bench_function("magma_like", |b| {
        let gpu = Gpu::new(V100);
        b.iter(|| magma_batched_svd(&gpu, &mats).unwrap())
    });
    g.finish();
}

fn bench_width_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_schedule_96x96");
    let mats = random_batch(2, 96, 96, 5);
    for &w in &[8usize, 16, 24] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            let gpu = Gpu::new(V100);
            let cfg = WCycleConfig {
                tuning: Tuning::Widths(vec![w]),
                ..Default::default()
            };
            b.iter(|| wcycle_svd(&gpu, &mats, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = wcycle;
    config = Criterion::default().sample_size(10);
    targets = bench_wcycle_sizes, bench_engines, bench_width_schedules
}
criterion_main!(wcycle);
