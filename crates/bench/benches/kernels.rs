//! Criterion micro-benchmarks of the computational kernels (host wall-clock
//! of this implementation; the paper-shaped *simulated-time* comparisons
//! live in the `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wsvd_batched::gemm::{batched_gram, batched_update, GemmStrategy};
use wsvd_batched::models::TailorPlan;
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_jacobi::batch::{batched_evd_sm, batched_svd_sm};
use wsvd_jacobi::evd::{EvdConfig, EvdVariant};
use wsvd_jacobi::onesided::OneSidedConfig;
use wsvd_linalg::generate::{random_batch, random_symmetric};
use wsvd_linalg::householder::seeded_orthogonal;
use wsvd_linalg::{gram, matmul, Matrix};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let a = wsvd_linalg::generate::random_uniform(n, n, 1);
        let b = wsvd_linalg::generate::random_uniform(n, n, 2);
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("gram", n), &n, |bch, _| {
            bch.iter(|| gram(std::hint::black_box(&a)))
        });
    }
    g.finish();
}

fn bench_batched_gemm_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_gemm");
    let blocks = random_batch(16, 256, 16, 3);
    let js: Vec<Matrix> = (0..16).map(|k| seeded_orthogonal(16, k as u64)).collect();
    g.bench_function("gram_one_block_per_gemm", |b| {
        let gpu = Gpu::new(V100);
        b.iter(|| {
            batched_gram(
                &gpu,
                &blocks,
                GemmStrategy::OneBlockPerGemm { threads: 256 },
            )
            .unwrap()
        })
    });
    g.bench_function("gram_tailored", |b| {
        let gpu = Gpu::new(V100);
        let plan = GemmStrategy::Tailored(TailorPlan::new(8, 64, 256));
        b.iter(|| batched_gram(&gpu, &blocks, plan).unwrap())
    });
    g.bench_function("update_tailored", |b| {
        let gpu = Gpu::new(V100);
        let plan = GemmStrategy::Tailored(TailorPlan::new(8, 64, 256));
        b.iter_batched(
            || blocks.clone(),
            |mut blk| batched_update(&gpu, &mut blk, &js, plan).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sm_svd_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sm_svd_kernel");
    for &n in &[16usize, 32] {
        let mats = random_batch(8, n, n, n as u64);
        g.bench_with_input(BenchmarkId::new("cached_norms", n), &n, |b, _| {
            let gpu = Gpu::new(V100);
            b.iter(|| batched_svd_sm(&gpu, &mats, &OneSidedConfig::default(), 128).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("no_cache", n), &n, |b, _| {
            let gpu = Gpu::new(V100);
            let cfg = OneSidedConfig {
                cache_norms: false,
                ..Default::default()
            };
            b.iter(|| batched_svd_sm(&gpu, &mats, &cfg, 128).unwrap())
        });
    }
    g.finish();
}

fn bench_evd_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("evd_kernel");
    let mats: Vec<Matrix> = (0..8).map(|k| random_symmetric(32, k as u64)).collect();
    for (label, variant) in [
        ("parallel", EvdVariant::Parallel),
        ("sequential", EvdVariant::Sequential),
    ] {
        g.bench_function(label, |b| {
            let gpu = Gpu::new(V100);
            let cfg = EvdConfig {
                variant,
                ..Default::default()
            };
            b.iter(|| batched_evd_sm(&gpu, &mats, &cfg, 256).unwrap())
        });
    }
    g.finish();
}

fn bench_reference_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference_two_stage_svd");
    for &n in &[32usize, 64, 128] {
        let a = wsvd_linalg::generate::random_uniform(n, n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| wsvd_linalg::svd_reference(std::hint::black_box(&a)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_batched_gemm_strategies, bench_sm_svd_kernel,
              bench_evd_kernels, bench_reference_svd
}
criterion_main!(kernels);
