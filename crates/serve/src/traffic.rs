//! Seeded arrival traces: open-loop request streams over simulated time.
//!
//! Every generator is a pure function of its parameters and seed — a trace
//! replays bit-identically, which is what makes the serve layer's latency
//! histograms committable artifacts. Arrival timestamps are integer
//! simulated microseconds; matrix payloads are *not* materialized here
//! (each request carries its dimensions plus a data seed, and the server
//! generates the entries only when the request's bucket dispatches).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsvd_apps::assimilation::mixture_dims;

/// One SVD request in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Position in the trace (unique, ascending).
    pub id: usize,
    /// Arrival time in simulated microseconds.
    pub arrival_us: u64,
    /// Requested matrix rows.
    pub rows: usize,
    /// Requested matrix columns.
    pub cols: usize,
    /// Seed the server uses to generate the matrix entries at dispatch.
    pub data_seed: u64,
}

/// A named, seeded stream of requests sorted by arrival time.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Trace label (`poisson`, `bursty`, `assimilation`).
    pub name: String,
    /// Requests in nondecreasing `arrival_us` order.
    pub requests: Vec<Request>,
}

/// Exponential inter-arrival gap for a Poisson process of `rate_hz`,
/// rounded up to whole simulated microseconds (so equal-rate traces never
/// collapse to zero-width gaps unless the rate is extreme).
fn poisson_gap_us(rng: &mut StdRng, rate_hz: f64) -> u64 {
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() / rate_hz * 1.0e6).ceil() as u64
}

/// A log-uniform dimension draw in `[min_dim, max_dim]` (the same skew the
/// dataset and assimilation generators use).
fn log_uniform_dim(rng: &mut StdRng, min_dim: usize, max_dim: usize) -> usize {
    let u: f64 = rng.gen();
    (min_dim as f64 * (max_dim as f64 / min_dim as f64).powf(u)).round() as usize
}

impl Trace {
    /// A Poisson stream: exponential inter-arrivals at `rate_hz`, square
    /// matrix dimensions drawn log-uniformly in `dims = (min, max)`.
    pub fn poisson(requests: usize, rate_hz: f64, dims: (usize, usize), seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0u64;
        let requests = (0..requests)
            .map(|id| {
                t += poisson_gap_us(&mut rng, rate_hz);
                let d = log_uniform_dim(&mut rng, dims.0, dims.1);
                Request {
                    id,
                    arrival_us: t,
                    rows: d,
                    cols: d,
                    data_seed: seed.wrapping_add(1009 + id as u64),
                }
            })
            .collect();
        Trace {
            name: "poisson".to_string(),
            requests,
        }
    }

    /// An on/off bursty stream: bursts of `burst` requests arriving at
    /// `rate_hz`, separated by `gap_us` of silence. Stresses the admission
    /// policy's deadline path (buckets that fill mid-burst dispatch full;
    /// burst tails ride the `max_wait_us` timer).
    pub fn bursty(
        requests: usize,
        burst: usize,
        rate_hz: f64,
        gap_us: u64,
        dims: (usize, usize),
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B5);
        let mut t = 0u64;
        let burst = burst.max(1);
        let requests = (0..requests)
            .map(|id| {
                if id > 0 && id % burst == 0 {
                    t += gap_us;
                }
                t += poisson_gap_us(&mut rng, rate_hz);
                let d = log_uniform_dim(&mut rng, dims.0, dims.1);
                Request {
                    id,
                    arrival_us: t,
                    rows: d,
                    cols: d,
                    data_seed: seed.wrapping_add(2017 + id as u64),
                }
            })
            .collect();
        Trace {
            name: "bursty".to_string(),
            requests,
        }
    }

    /// The ocean-assimilation mixture of §V-F: matrix dimensions replay the
    /// observation-density draw of `wsvd_apps`'s grid generator
    /// ([`mixture_dims`]), arrivals are Poisson at `rate_hz`.
    pub fn assimilation(
        points: usize,
        min_dim: usize,
        max_dim: usize,
        rate_hz: f64,
        seed: u64,
    ) -> Trace {
        let dims = mixture_dims(points, min_dim, max_dim, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0CEA);
        let mut t = 0u64;
        let requests = dims
            .into_iter()
            .enumerate()
            .map(|(id, d)| {
                t += poisson_gap_us(&mut rng, rate_hz);
                Request {
                    id,
                    arrival_us: t,
                    rows: d,
                    cols: d,
                    data_seed: seed.wrapping_add(17 + id as u64),
                }
            })
            .collect();
        Trace {
            name: "assimilation".to_string(),
            requests,
        }
    }

    /// Offered load in requests per second (0 for traces shorter than two
    /// requests).
    pub fn offered_rate_hz(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) if last.arrival_us > first.arrival_us => {
                (self.requests.len() as f64 - 1.0)
                    / ((last.arrival_us - first.arrival_us) as f64 / 1.0e6)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_replay_bit_identically_per_seed() {
        let a = Trace::poisson(32, 2000.0, (8, 64), 7);
        let b = Trace::poisson(32, 2000.0, (8, 64), 7);
        assert_eq!(a.requests, b.requests);
        let c = Trace::poisson(32, 2000.0, (8, 64), 8);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn arrivals_are_sorted_and_dims_in_range() {
        for trace in [
            Trace::poisson(40, 5000.0, (8, 64), 3),
            Trace::bursty(40, 8, 20000.0, 50_000, (8, 64), 3),
            Trace::assimilation(40, 8, 64, 5000.0, 3),
        ] {
            assert_eq!(trace.requests.len(), 40);
            for w in trace.requests.windows(2) {
                assert!(w[0].arrival_us <= w[1].arrival_us);
            }
            for r in &trace.requests {
                assert!(r.rows >= 8 && r.rows <= 64, "{:?}", r);
                assert_eq!(r.rows, r.cols);
            }
        }
    }

    #[test]
    fn assimilation_trace_reuses_the_apps_mixture() {
        let trace = Trace::assimilation(12, 10, 40, 1000.0, 3);
        let dims = mixture_dims(12, 10, 40, 3);
        let got: Vec<usize> = trace.requests.iter().map(|r| r.rows).collect();
        assert_eq!(got, dims);
    }

    #[test]
    fn bursty_trace_has_silence_gaps() {
        let trace = Trace::bursty(16, 4, 50000.0, 100_000, (8, 16), 5);
        // Between bursts the gap must dominate the in-burst spacing.
        let gap = trace.requests[4].arrival_us - trace.requests[3].arrival_us;
        assert!(gap >= 100_000, "inter-burst gap {gap}");
        let tight = trace.requests[2].arrival_us - trace.requests[1].arrival_us;
        assert!(tight < 10_000, "in-burst spacing {tight}");
    }

    #[test]
    fn offered_rate_matches_the_span() {
        let trace = Trace::poisson(100, 1000.0, (8, 16), 11);
        let rate = trace.offered_rate_hz();
        assert!(rate > 500.0 && rate < 2000.0, "rate {rate}");
        assert_eq!(Trace::poisson(1, 1000.0, (8, 16), 1).offered_rate_hz(), 0.0);
    }
}
