//! `wsvd-loadgen` — drive the serve layer with seeded load and score SLOs.
//!
//! ```text
//! wsvd-loadgen [--trace poisson|bursty|assimilation|all]
//!              [--requests N]        requests per trace (default 32)
//!              [--rate-hz R]         offered arrival rate (default 2000)
//!              [--min-dim D]         smallest matrix dimension (default 8)
//!              [--max-dim D]         largest matrix dimension (default 64)
//!              [--seed S]            trace + payload seed (default 42)
//!              [--max-wait-us U]     admission wait bound (default 20000)
//!              [--max-batch B]       bucket size bound (default 64)
//!              [--slo-p99-us X]      fail (exit non-zero) if p99 e2e > X
//!              [--slo-e2e-us X]      per-request SLO scored by the
//!                                    slo_violations counter (defaults to
//!                                    --slo-p99-us, else 1e6)
//!              [--why-slow K]        print the top-K slowest requests as
//!                                    admission/backlog/service waterfalls
//!                                    plus the p99-tail attribution
//!              [--prom FILE]         write the Prometheus exposition
//! ```
//!
//! The two SLO knobs are distinct: `--slo-p99-us` gates the *aggregate*
//! p99 (the exit code), while `--slo-e2e-us` sets the *per-request* target
//! each served request is scored against. When only `--slo-p99-us` is
//! given it also serves as the per-request target, preserving the historic
//! behavior.
//!
//! Everything runs on simulated time with seeded generators: the same
//! command line prints byte-identical summaries (and `--why-slow`
//! waterfalls) on every run. CI's `Serve smoke` step runs this binary
//! twice — once with an attainable SLO (must pass) and once with an
//! impossible one (must exit non-zero) — and the `Tail smoke` step diffs
//! two `--why-slow` runs byte-for-byte.

use std::path::PathBuf;
use std::process::ExitCode;

use wsvd_gpu_sim::{Gpu, V100};
use wsvd_metrics::MetricsSink;
use wsvd_serve::{serve_trace, summarize, tail_report, BatchPolicy, ServeConfig, Trace};

struct Args {
    trace: String,
    requests: usize,
    rate_hz: f64,
    min_dim: usize,
    max_dim: usize,
    seed: u64,
    max_wait_us: u64,
    max_batch: usize,
    slo_p99_us: Option<f64>,
    slo_e2e_us: Option<f64>,
    why_slow: usize,
    prom: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            trace: "all".to_string(),
            requests: 32,
            rate_hz: 2000.0,
            min_dim: 8,
            max_dim: 64,
            seed: 42,
            max_wait_us: 20_000,
            max_batch: 64,
            slo_p99_us: None,
            slo_e2e_us: None,
            why_slow: 0,
            prom: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--trace" => args.trace = value("--trace")?,
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--rate-hz" => {
                args.rate_hz = value("--rate-hz")?
                    .parse()
                    .map_err(|e| format!("--rate-hz: {e}"))?
            }
            "--min-dim" => {
                args.min_dim = value("--min-dim")?
                    .parse()
                    .map_err(|e| format!("--min-dim: {e}"))?
            }
            "--max-dim" => {
                args.max_dim = value("--max-dim")?
                    .parse()
                    .map_err(|e| format!("--max-dim: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-wait-us" => {
                args.max_wait_us = value("--max-wait-us")?
                    .parse()
                    .map_err(|e| format!("--max-wait-us: {e}"))?
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--slo-p99-us" => {
                args.slo_p99_us = Some(
                    value("--slo-p99-us")?
                        .parse()
                        .map_err(|e| format!("--slo-p99-us: {e}"))?,
                )
            }
            "--slo-e2e-us" => {
                args.slo_e2e_us = Some(
                    value("--slo-e2e-us")?
                        .parse()
                        .map_err(|e| format!("--slo-e2e-us: {e}"))?,
                )
            }
            "--why-slow" => {
                args.why_slow = value("--why-slow")?
                    .parse()
                    .map_err(|e| format!("--why-slow: {e}"))?
            }
            "--prom" => args.prom = Some(PathBuf::from(value("--prom")?)),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn build_trace(kind: &str, a: &Args) -> Option<Trace> {
    match kind {
        "poisson" => Some(Trace::poisson(
            a.requests,
            a.rate_hz,
            (a.min_dim, a.max_dim),
            a.seed,
        )),
        "bursty" => Some(Trace::bursty(
            a.requests,
            (a.requests / 4).max(2),
            a.rate_hz * 4.0,
            (4.0e6 / a.rate_hz) as u64,
            (a.min_dim, a.max_dim),
            a.seed,
        )),
        "assimilation" => Some(Trace::assimilation(
            a.requests, a.min_dim, a.max_dim, a.rate_hz, a.seed,
        )),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wsvd-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kinds: Vec<&str> = if args.trace == "all" {
        vec!["poisson", "bursty", "assimilation"]
    } else {
        vec![args.trace.as_str()]
    };
    let policy = BatchPolicy {
        max_wait_us: args.max_wait_us,
        max_batch: args.max_batch,
    };
    // The per-request SLO: its own knob when given, else the aggregate p99
    // target (the historic conflation), else 1 s.
    let cfg = ServeConfig {
        policy,
        slo_e2e_us: args.slo_e2e_us.or(args.slo_p99_us).unwrap_or(1.0e6),
        fused: true,
    };
    let sink = MetricsSink::enabled();
    let mut violated = false;
    for kind in kinds {
        let Some(trace) = build_trace(kind, &args) else {
            eprintln!("wsvd-loadgen: unknown trace '{kind}' (poisson|bursty|assimilation|all)");
            return ExitCode::FAILURE;
        };
        sink.set_experiment(&format!("loadgen-{kind}"));
        let gpu = Gpu::new(V100);
        let outcome = match serve_trace(&gpu, &trace, &cfg, &sink) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("wsvd-loadgen: serving '{kind}' failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let s = summarize(&sink.snapshot(), &format!("loadgen-{kind}"), &outcome);
        println!(
            "trace={kind} offered={:.1}r/s requests={} batches={} rejected={} \
             p50={:.1}us p99={:.1}us queue_p50={:.1}us queue_p99={:.1}us \
             service_p50={:.1}us service_p99={:.1}us \
             mean_queue={:.1}us mean_service={:.1}us \
             throughput={:.1}r/s slo_violations={}",
            trace.offered_rate_hz(),
            s.requests,
            s.batches,
            s.rejected,
            s.p50_e2e_us,
            s.p99_e2e_us,
            s.p50_queue_us,
            s.p99_queue_us,
            s.p50_service_us,
            s.p99_service_us,
            s.mean_queue_us,
            s.mean_service_us,
            s.throughput_rps,
            s.slo_violations,
        );
        if args.why_slow > 0 {
            print!("{}", tail_report(&outcome, args.why_slow).render());
        }
        if let Some(slo) = args.slo_p99_us {
            if s.p99_e2e_us > slo {
                eprintln!(
                    "wsvd-loadgen: SLO VIOLATION on '{kind}': p99 {:.1}us > target {slo:.1}us \
                     ({} of {} requests over)",
                    s.p99_e2e_us, s.slo_violations, s.requests,
                );
                violated = true;
            }
        }
    }
    if let Some(path) = &args.prom {
        let text = sink.snapshot().to_prometheus();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("wsvd-loadgen: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("prometheus exposition written to {}", path.display());
    }
    if violated {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
