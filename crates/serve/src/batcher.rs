//! Admission batching into Table VI size-class buckets.
//!
//! Each accepted request joins the pending bucket of the smallest Table VI
//! cap its dimensions fit under ([`wsvd_batched::size_class`] — the same
//! classification the elastic cluster scheduler chunks by). A bucket
//! becomes ready to dispatch when it fills to the policy's effective cap,
//! or when its **oldest** request has waited `max_wait_us` (the deadline
//! the server's event loop fires). Requests larger than every cap are
//! rejected at admission — a public-facing service refuses oversized
//! payloads rather than silently oversizing a bucket.

use wsvd_datasets::TABLE_VI;

/// The tunable admission policy: how long a request may wait for
/// batch-mates, and how large a bucket may grow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum simulated microseconds the oldest request in a bucket waits
    /// before the bucket dispatches regardless of fill.
    pub max_wait_us: u64,
    /// Maximum requests per bucket (further capped by the size class's
    /// Table VI batch).
    pub max_batch: usize,
}

impl BatchPolicy {
    /// A latency-leaning policy: dispatch almost immediately, small buckets.
    pub fn low_latency() -> Self {
        BatchPolicy {
            max_wait_us: 200,
            max_batch: 8,
        }
    }

    /// A throughput-leaning policy: wait for batch-mates, large buckets.
    pub fn high_throughput() -> Self {
        BatchPolicy {
            max_wait_us: 20_000,
            max_batch: 64,
        }
    }

    /// Effective bucket capacity for `class`: the policy's `max_batch`
    /// clamped to the class's Table VI batch size (never below 1).
    pub fn class_cap(&self, class: usize) -> usize {
        self.max_batch.clamp(1, TABLE_VI[class].batch)
    }
}

/// One admitted request waiting in a bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pending {
    /// Trace id of the request.
    pub id: usize,
    /// Arrival time in simulated microseconds.
    pub arrival_us: u64,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Seed for the matrix entries, generated at dispatch.
    pub data_seed: u64,
}

/// Outcome of admitting one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Queued into the bucket of the given size class.
    Queued(usize),
    /// Queued, and the bucket reached its effective cap: dispatch now.
    Full(usize),
    /// Dimensions exceed the largest Table VI cap: refused.
    Rejected,
}

/// Per-size-class pending buckets under one [`BatchPolicy`].
#[derive(Clone, Debug)]
pub struct Admission {
    policy: BatchPolicy,
    caps: Vec<usize>,
    pending: Vec<Vec<Pending>>,
}

impl Admission {
    /// Empty buckets for every Table VI class.
    pub fn new(policy: BatchPolicy) -> Self {
        let caps: Vec<usize> = TABLE_VI.iter().map(|g| g.cap).collect();
        let pending = vec![Vec::new(); caps.len()];
        Admission {
            policy,
            caps,
            pending,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// The ascending size-class caps (Table VI).
    pub fn caps(&self) -> &[usize] {
        &self.caps
    }

    /// Admits one request into its size-class bucket.
    pub fn admit(&mut self, req: Pending) -> Admit {
        match wsvd_batched::size_class(req.rows, req.cols, &self.caps) {
            None => Admit::Rejected,
            Some(class) => {
                self.pending[class].push(req);
                if self.pending[class].len() >= self.policy.class_cap(class) {
                    Admit::Full(class)
                } else {
                    Admit::Queued(class)
                }
            }
        }
    }

    /// The earliest `(deadline_us, class)` over the non-empty buckets:
    /// oldest arrival plus `max_wait_us`, ties broken by the smaller class
    /// index so the event order is deterministic.
    pub fn next_deadline(&self) -> Option<(u64, usize)> {
        self.pending
            .iter()
            .enumerate()
            .filter_map(|(class, bucket)| {
                bucket
                    .first()
                    .map(|oldest| (oldest.arrival_us + self.policy.max_wait_us, class))
            })
            .min_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
    }

    /// Drains the bucket of `class` for dispatch (arrival order preserved).
    pub fn take(&mut self, class: usize) -> Vec<Pending> {
        std::mem::take(&mut self.pending[class])
    }

    /// Whether any bucket still holds requests.
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|b| !b.is_empty())
    }

    /// Requests currently waiting in the bucket of `class`.
    pub fn pending_len(&self, class: usize) -> usize {
        self.pending[class].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival_us: u64, dim: usize) -> Pending {
        Pending {
            id,
            arrival_us,
            rows: dim,
            cols: dim,
            data_seed: 0,
        }
    }

    #[test]
    fn admits_into_the_smallest_fitting_class() {
        let mut adm = Admission::new(BatchPolicy::high_throughput());
        assert_eq!(adm.admit(req(0, 0, 20)), Admit::Queued(0));
        assert_eq!(adm.admit(req(1, 1, 64)), Admit::Queued(1));
        assert_eq!(adm.admit(req(2, 2, 65)), Admit::Queued(2));
        assert_eq!(adm.admit(req(3, 3, 512)), Admit::Queued(4));
        assert_eq!(adm.admit(req(4, 4, 513)), Admit::Rejected);
        assert_eq!(adm.pending_len(0), 1);
        assert_eq!(adm.pending_len(4), 1);
    }

    #[test]
    fn bucket_fills_at_the_effective_cap() {
        let policy = BatchPolicy {
            max_wait_us: 1000,
            max_batch: 3,
        };
        let mut adm = Admission::new(policy);
        assert_eq!(adm.admit(req(0, 0, 16)), Admit::Queued(0));
        assert_eq!(adm.admit(req(1, 1, 16)), Admit::Queued(0));
        assert_eq!(adm.admit(req(2, 2, 16)), Admit::Full(0));
        let bucket = adm.take(0);
        assert_eq!(bucket.len(), 3);
        assert!(!adm.has_pending());
    }

    #[test]
    fn class_cap_clamps_to_table_vi_batch_and_one() {
        let wide = BatchPolicy {
            max_wait_us: 0,
            max_batch: 10_000,
        };
        assert_eq!(wide.class_cap(0), TABLE_VI[0].batch);
        let degenerate = BatchPolicy {
            max_wait_us: 0,
            max_batch: 0,
        };
        assert_eq!(degenerate.class_cap(2), 1);
    }

    #[test]
    fn deadline_is_oldest_arrival_plus_wait_with_class_tiebreak() {
        let policy = BatchPolicy {
            max_wait_us: 100,
            max_batch: 8,
        };
        let mut adm = Admission::new(policy);
        assert_eq!(adm.next_deadline(), None);
        adm.admit(req(0, 50, 100)); // class 2, deadline 150
        adm.admit(req(1, 40, 16)); // class 0, deadline 140
        adm.admit(req(2, 40, 60)); // class 1, deadline 140 (tie -> class 0)
        assert_eq!(adm.next_deadline(), Some((140, 0)));
        adm.take(0);
        assert_eq!(adm.next_deadline(), Some((140, 1)));
        adm.take(1);
        assert_eq!(adm.next_deadline(), Some((150, 2)));
    }
}
