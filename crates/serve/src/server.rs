//! The deterministic serving loop and its latency accounting.
//!
//! [`serve_trace`] interleaves three event sources on the simulated clock —
//! request arrivals, bucket deadlines, and device completions — into one
//! total order: at each step the earliest pending event fires, with bucket
//! deadlines beating arrivals at the same timestamp (a request arriving
//! exactly at a bucket's deadline joins the *next* bucket) and tied
//! deadlines resolving by ascending size class. Dispatched buckets run as a
//! single batched W-cycle SVD on the device; the device serves buckets
//! FIFO in trigger order, so a bucket triggered while the device is busy
//! starts at `free_at`.
//!
//! Latency accounting (DESIGN.md §14–15): per request the wait decomposes
//! into the policy-induced and the device-induced share,
//! `admission_wait = bucket_trigger − arrival` (how long the admission
//! policy held the request for batch-mates) and
//! `backlog = batch_start − bucket_trigger` (how long the dispatched bucket
//! sat behind earlier buckets on the FIFO device); `queue_delay` is
//! *defined* as their sum, `service` is the simulated duration of the
//! bucket's batched SVD, and `end_to_end = queue_delay + service` — the
//! property suite asserts both identities bitwise. All five feed
//! fixed-bucket log-spaced histograms ([`latency_bounds`]) in the metrics
//! registry (with the request id as each bucket's retained exemplar), and
//! p50/p99 come from [`wsvd_metrics::Histogram::quantile`] — rank-based and
//! exact at bucket resolution, so repeated seeded runs report identical
//! quantiles.
//!
//! With an enabled trace sink (threaded through the [`Gpu`], installed
//! globally by `repro --trace`), a served trace additionally exports as a
//! request waterfall: one span per request lifetime (arrival→completion) on
//! a per-size-class track, one span per dispatched bucket on the serving
//! process's `device` track, and a mirror `bucket` span on the GPU's
//! `wcycle` track that encloses — and therefore parents, in Perfetto's
//! nesting — the existing per-level W-cycle spans of that bucket's batched
//! SVD. The sink only observes: a disabled (or enabled) sink never touches
//! the simulated timeline.

use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, KernelError};
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::Matrix;
use wsvd_metrics::{MetricsSink, Snapshot};

use crate::batcher::{Admission, Admit, BatchPolicy, Pending};
use crate::traffic::Trace;

/// Server configuration: the admission policy plus the SLO target the
/// violation counter is scored against.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission batching policy.
    pub policy: BatchPolicy,
    /// End-to-end latency SLO in simulated microseconds; every request
    /// whose `end_to_end_us` exceeds it increments `slo_violations`.
    pub slo_e2e_us: f64,
    /// Dispatch buckets through the fused [`wsvd_gpu_sim::LaunchGraph`]
    /// path (the service default; off reproduces the serial launch path).
    pub fused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: BatchPolicy::high_throughput(),
            slo_e2e_us: 1.0e6,
            fused: true,
        }
    }
}

/// Why a bucket dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchTrigger {
    /// The bucket filled to the policy's effective cap.
    Full,
    /// The oldest request in the bucket hit `max_wait_us` (this is also how
    /// the tail of a trace drains: with no arrivals left, every remaining
    /// bucket eventually fires its deadline).
    Deadline,
}

/// One dispatched bucket.
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Dispatch order (0-based).
    pub batch_id: usize,
    /// Table VI size class of every member.
    pub class: usize,
    /// Member count.
    pub len: usize,
    /// What fired the dispatch.
    pub trigger: BatchTrigger,
    /// Simulated microseconds the trigger fired at.
    pub trigger_us: u64,
    /// Simulated microseconds the batched SVD started on the device
    /// (`max(trigger_us, device free_at)`).
    pub start_us: f64,
    /// Simulated microseconds the batched SVD took.
    pub service_us: f64,
}

/// One served request's latency record.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Trace id.
    pub id: usize,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Table VI size class.
    pub class: usize,
    /// The bucket that served it.
    pub batch_id: usize,
    /// Arrival time in simulated microseconds.
    pub arrival_us: u64,
    /// Simulated microseconds the serving bucket's dispatch trigger fired
    /// at (copied from its [`BatchRecord::trigger_us`]).
    pub trigger_us: u64,
    /// Policy-induced wait: `trigger − arrival`, the time the admission
    /// policy held this request open for batch-mates. Exact (an integer
    /// microsecond difference).
    pub admission_wait_us: f64,
    /// Device-induced wait: `batch start − trigger`, the time the
    /// dispatched bucket sat behind earlier buckets on the FIFO device
    /// (0 when the device was idle at the trigger).
    pub backlog_us: f64,
    /// `admission_wait_us + backlog_us`, definitionally — the bitwise
    /// identity the property suite pins.
    pub queue_delay_us: f64,
    /// Simulated duration of the bucket's batched SVD.
    pub service_us: f64,
    /// `queue_delay_us + service_us`, definitionally.
    pub end_to_end_us: f64,
}

/// The full outcome of serving one trace.
#[derive(Clone, Debug, Default)]
pub struct ServeOutcome {
    /// Per-request latency records, in completion (batch-dispatch) order.
    pub records: Vec<RequestRecord>,
    /// Per-bucket dispatch records, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Requests refused at admission (dimensions above every Table VI cap).
    pub rejected: usize,
    /// Simulated microseconds from time zero until the device finished the
    /// last bucket (0 when nothing dispatched).
    pub makespan_us: f64,
    /// Total simulated microseconds the device spent serving buckets (the
    /// sum of every batch's `service_us`).
    pub busy_us: f64,
}

/// Log-spaced latency bucket bounds in microseconds: 1 µs up to ~20 s in
/// ×1.25 steps. Shared by every serve histogram so snapshots from
/// different runs and policies stay comparable, with ≤25 % quantile
/// resolution across the whole range.
pub fn latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::new();
    let mut b = 1.0f64;
    while b < 2.0e7 {
        bounds.push(b);
        b *= 1.25;
    }
    bounds
}

/// Serves one trace to completion and returns every latency record.
///
/// Deterministic end to end: the event order is a pure function of the
/// trace and the policy, and the batched SVDs run on the simulated device —
/// identical seeds replay byte-identical outcomes and histograms. The sink
/// only observes (it never steers), so a disabled sink yields the same
/// records with no registry traffic.
pub fn serve_trace(
    gpu: &Gpu,
    trace: &Trace,
    cfg: &ServeConfig,
    sink: &MetricsSink,
) -> Result<ServeOutcome, KernelError> {
    let wcfg = WCycleConfig {
        fused: cfg.fused,
        ..WCycleConfig::default()
    };
    let mut adm = Admission::new(cfg.policy);
    let mut out = ServeOutcome::default();
    let mut free_at_us = 0.0f64;
    let mut next = 0usize;
    // One shared bucket layout for every latency histogram of this run —
    // computed once here, not per served request.
    let bounds = latency_bounds();
    // Request-scoped tracing rides the GPU's sink (disabled unless the host
    // installed one): the serving process gets its own trace pid with
    // per-size-class request tracks plus a `device` bucket track.
    let tracer = gpu.trace();
    let serve_pid = if tracer.is_enabled() {
        tracer.register_process(&format!("wsvd-serve [{}]", trace.name))
    } else {
        0
    };

    // One batched SVD per bucket; the device serves buckets FIFO in
    // trigger order.
    let dispatch = |adm: &mut Admission,
                    out: &mut ServeOutcome,
                    free_at_us: &mut f64,
                    class: usize,
                    trigger_us: u64,
                    trigger: BatchTrigger|
     -> Result<(), KernelError> {
        let members = adm.take(class);
        debug_assert!(!members.is_empty(), "dispatch of an empty bucket");
        let mats: Vec<Matrix> = members
            .iter()
            .map(|p| random_uniform(p.rows, p.cols, p.data_seed))
            .collect();
        let start_us = (trigger_us as f64).max(*free_at_us);
        let before = gpu.elapsed_seconds();
        wcycle_svd(gpu, &mats, &wcfg)?;
        let after = gpu.elapsed_seconds();
        let service_us = (after - before) * 1.0e6;
        *free_at_us = start_us + service_us;
        out.busy_us += service_us;
        let batch_id = out.batches.len();
        if tracer.is_enabled() {
            let trig = match trigger {
                BatchTrigger::Full => "full",
                BatchTrigger::Deadline => "deadline",
            };
            // The serving timeline's view of the bucket: dispatched at
            // `start` (trigger plus any device backlog), busy for the
            // batched SVD's duration.
            tracer.span(
                serve_pid,
                "device",
                &format!("bucket {batch_id}"),
                start_us * 1.0e-6,
                service_us * 1.0e-6,
                vec![
                    ("class", class.into()),
                    ("requests", members.len().into()),
                    ("trigger", trig.into()),
                    ("trigger_us", trigger_us.into()),
                ],
            );
            // The same bucket on the GPU's own (busy-time) clock: the span
            // covers exactly the interval the bucket's batched W-cycle ran
            // in, so the per-level `wcycle` spans emitted inside it nest
            // under it in the exported Perfetto timeline.
            tracer.span(
                gpu.trace_pid(),
                "wcycle",
                &format!("bucket {batch_id}"),
                before,
                after - before,
                vec![
                    ("class", class.into()),
                    ("requests", members.len().into()),
                    ("trigger", trig.into()),
                    ("start_us", start_us.into()),
                ],
            );
        }
        out.batches.push(BatchRecord {
            batch_id,
            class,
            len: members.len(),
            trigger,
            trigger_us,
            start_us,
            service_us,
        });
        for p in members {
            // The waterfall decomposition (both identities bitwise by
            // construction): the policy held the request from arrival to
            // trigger, the device backlog from trigger to start.
            let admission_wait_us = (trigger_us - p.arrival_us) as f64;
            let backlog_us = start_us - trigger_us as f64;
            let queue_delay_us = admission_wait_us + backlog_us;
            let end_to_end_us = queue_delay_us + service_us;
            let rec = RequestRecord {
                id: p.id,
                rows: p.rows,
                cols: p.cols,
                class,
                batch_id,
                arrival_us: p.arrival_us,
                trigger_us,
                admission_wait_us,
                backlog_us,
                queue_delay_us,
                service_us,
                end_to_end_us,
            };
            record_request(sink, &bounds, &rec, cfg);
            if tracer.is_enabled() {
                tracer.span(
                    serve_pid,
                    &format!("class {class}"),
                    &format!("req {}", p.id),
                    p.arrival_us as f64 * 1.0e-6,
                    end_to_end_us * 1.0e-6,
                    vec![
                        ("rows", p.rows.into()),
                        ("cols", p.cols.into()),
                        ("bucket", batch_id.into()),
                        ("admission_wait_us", admission_wait_us.into()),
                        ("backlog_us", backlog_us.into()),
                        ("service_us", service_us.into()),
                    ],
                );
            }
            out.records.push(rec);
        }
        Ok(())
    };

    loop {
        let arrival = trace.requests.get(next);
        let deadline = adm.next_deadline();
        match (arrival, deadline) {
            // Deadlines beat arrivals at the same timestamp: a request
            // arriving exactly at a bucket's deadline joins the next bucket.
            (Some(req), Some((d, class))) if d <= req.arrival_us => {
                dispatch(
                    &mut adm,
                    &mut out,
                    &mut free_at_us,
                    class,
                    d,
                    BatchTrigger::Deadline,
                )?;
            }
            (Some(req), _) => {
                next += 1;
                match adm.admit(Pending {
                    id: req.id,
                    arrival_us: req.arrival_us,
                    rows: req.rows,
                    cols: req.cols,
                    data_seed: req.data_seed,
                }) {
                    Admit::Full(class) => dispatch(
                        &mut adm,
                        &mut out,
                        &mut free_at_us,
                        class,
                        req.arrival_us,
                        BatchTrigger::Full,
                    )?,
                    Admit::Queued(_) => {}
                    Admit::Rejected => {
                        out.rejected += 1;
                        if sink.is_enabled() {
                            sink.counter_add("serve", None, "rejected", 1.0);
                        }
                    }
                }
            }
            (None, Some((d, class))) => {
                dispatch(
                    &mut adm,
                    &mut out,
                    &mut free_at_us,
                    class,
                    d,
                    BatchTrigger::Deadline,
                )?;
            }
            (None, None) => break,
        }
    }
    out.makespan_us = free_at_us;
    if sink.is_enabled() {
        sink.counter_add("serve", None, "batches", out.batches.len() as f64);
        sink.gauge_set("serve", None, "makespan_us", out.makespan_us);
    }
    Ok(out)
}

/// Records one served request into the registry (kernel `serve`, level =
/// size class for the per-class counters, aggregate histograms unleveled).
/// Every latency histogram retains the request id of each bucket's max
/// observation as its exemplar, so a tail bucket links back to a replayable
/// request. `bounds` is the run-wide [`latency_bounds`] layout, computed
/// once by [`serve_trace`].
fn record_request(sink: &MetricsSink, bounds: &[f64], r: &RequestRecord, cfg: &ServeConfig) {
    if !sink.is_enabled() {
        return;
    }
    let id = r.id as u64;
    sink.observe_exemplar(
        "serve",
        None,
        "queue_delay_us",
        bounds,
        r.queue_delay_us,
        id,
    );
    sink.observe_exemplar("serve", None, "service_us", bounds, r.service_us, id);
    sink.observe_exemplar("serve", None, "e2e_us", bounds, r.end_to_end_us, id);
    sink.observe_exemplar(
        "serve",
        None,
        "admission_wait_us",
        bounds,
        r.admission_wait_us,
        id,
    );
    sink.observe_exemplar("serve", None, "backlog_us", bounds, r.backlog_us, id);
    sink.counter_add("serve", Some(r.class), "requests", 1.0);
    if r.end_to_end_us > cfg.slo_e2e_us {
        sink.counter_add("serve", None, "slo_violations", 1.0);
    }
}

/// The operator-facing summary of one served trace, derived from the
/// metrics registry (quantiles are rank-based bucket bounds — see
/// [`wsvd_metrics::Histogram::quantile`]) plus the outcome's makespan.
/// Requires the snapshot of an **enabled** sink; every latency field is 0
/// for an empty snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSummary {
    /// Requests served.
    pub requests: u64,
    /// Buckets dispatched.
    pub batches: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Median end-to-end latency (µs, bucket-bound resolution).
    pub p50_e2e_us: f64,
    /// 99th-percentile end-to-end latency (µs, bucket-bound resolution).
    pub p99_e2e_us: f64,
    /// Median admission + backlog wait (µs, bucket-bound resolution).
    pub p50_queue_us: f64,
    /// 99th-percentile admission + backlog wait (µs, bucket-bound
    /// resolution).
    pub p99_queue_us: f64,
    /// Median batched-SVD service time (µs, bucket-bound resolution).
    pub p50_service_us: f64,
    /// 99th-percentile batched-SVD service time (µs, bucket-bound
    /// resolution).
    pub p99_service_us: f64,
    /// Mean admission + backlog wait (µs).
    pub mean_queue_us: f64,
    /// Mean batched-SVD service time (µs).
    pub mean_service_us: f64,
    /// Mean policy-induced wait (µs): `trigger − arrival`.
    pub mean_admission_us: f64,
    /// Mean device-induced wait (µs): `batch start − trigger`.
    pub mean_backlog_us: f64,
    /// Sustained throughput: served requests divided by total device busy
    /// time (requests/second). This is the device-limited rate the policy
    /// sustains at saturation — unlike `requests / makespan`, it is not
    /// distorted by the final `max_wait_us` drain of a short committed
    /// trace (see DESIGN.md §14).
    pub throughput_rps: f64,
    /// Requests whose end-to-end latency exceeded the SLO target.
    pub slo_violations: u64,
}

/// Builds the summary for `experiment` from a registry snapshot and the
/// serve outcome.
pub fn summarize(snapshot: &Snapshot, experiment: &str, outcome: &ServeOutcome) -> ServeSummary {
    let e2e = snapshot.histogram(experiment, "serve", None, "e2e_us");
    let queue = snapshot.histogram(experiment, "serve", None, "queue_delay_us");
    let service = snapshot.histogram(experiment, "serve", None, "service_us");
    let admission = snapshot.histogram(experiment, "serve", None, "admission_wait_us");
    let backlog = snapshot.histogram(experiment, "serve", None, "backlog_us");
    let requests = outcome.records.len() as u64;
    let throughput_rps = if outcome.busy_us > 0.0 {
        requests as f64 / (outcome.busy_us / 1.0e6)
    } else {
        0.0
    };
    ServeSummary {
        requests,
        batches: outcome.batches.len() as u64,
        rejected: outcome.rejected as u64,
        p50_e2e_us: e2e.and_then(|h| h.quantile(0.5)).unwrap_or(0.0),
        p99_e2e_us: e2e.and_then(|h| h.quantile(0.99)).unwrap_or(0.0),
        p50_queue_us: queue.and_then(|h| h.quantile(0.5)).unwrap_or(0.0),
        p99_queue_us: queue.and_then(|h| h.quantile(0.99)).unwrap_or(0.0),
        p50_service_us: service.and_then(|h| h.quantile(0.5)).unwrap_or(0.0),
        p99_service_us: service.and_then(|h| h.quantile(0.99)).unwrap_or(0.0),
        mean_queue_us: queue.map(|h| h.mean()).unwrap_or(0.0),
        mean_service_us: service.map(|h| h.mean()).unwrap_or(0.0),
        mean_admission_us: admission.map(|h| h.mean()).unwrap_or(0.0),
        mean_backlog_us: backlog.map(|h| h.mean()).unwrap_or(0.0),
        throughput_rps,
        slo_violations: snapshot.counter(experiment, "serve", None, "slo_violations") as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::V100;

    fn small_trace(seed: u64) -> Trace {
        Trace::poisson(12, 4000.0, (6, 30), seed)
    }

    #[test]
    fn serves_every_accepted_request_exactly_once() {
        let gpu = Gpu::new(V100);
        let cfg = ServeConfig::default();
        let out = serve_trace(&gpu, &small_trace(3), &cfg, &MetricsSink::disabled()).unwrap();
        assert_eq!(out.records.len() + out.rejected, 12);
        let mut ids: Vec<usize> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.records.len(), "a request served twice");
        let batched: usize = out.batches.iter().map(|b| b.len).sum();
        assert_eq!(batched, out.records.len());
    }

    #[test]
    fn end_to_end_is_queue_plus_service_bitwise() {
        let gpu = Gpu::new(V100);
        let cfg = ServeConfig {
            policy: BatchPolicy::low_latency(),
            ..ServeConfig::default()
        };
        let out = serve_trace(&gpu, &small_trace(5), &cfg, &MetricsSink::disabled()).unwrap();
        for r in &out.records {
            assert_eq!(
                (r.queue_delay_us + r.service_us).to_bits(),
                r.end_to_end_us.to_bits()
            );
            assert_eq!(
                (r.admission_wait_us + r.backlog_us).to_bits(),
                r.queue_delay_us.to_bits()
            );
            assert!(r.admission_wait_us >= 0.0, "negative admission: {r:?}");
            assert!(r.backlog_us >= 0.0, "negative backlog: {r:?}");
            assert!(
                r.trigger_us >= r.arrival_us,
                "trigger before arrival: {r:?}"
            );
        }
    }

    #[test]
    fn oversized_requests_are_rejected_and_counted() {
        let gpu = Gpu::new(V100);
        let mut trace = small_trace(7);
        trace.requests[0].rows = 4096;
        trace.requests[0].cols = 4096;
        let sink = MetricsSink::enabled();
        sink.set_experiment("t");
        let out = serve_trace(&gpu, &trace, &ServeConfig::default(), &sink).unwrap();
        assert_eq!(out.rejected, 1);
        assert_eq!(out.records.len(), 11);
        assert_eq!(sink.snapshot().counter("t", "serve", None, "rejected"), 1.0);
    }

    #[test]
    fn summary_quantiles_come_from_the_registry() {
        let gpu = Gpu::new(V100);
        let sink = MetricsSink::enabled();
        sink.set_experiment("t");
        let cfg = ServeConfig {
            slo_e2e_us: 0.0, // everything violates: the counter must track
            ..ServeConfig::default()
        };
        let out = serve_trace(&gpu, &small_trace(9), &cfg, &sink).unwrap();
        let summary = summarize(&sink.snapshot(), "t", &out);
        assert_eq!(summary.requests, out.records.len() as u64);
        assert_eq!(summary.slo_violations, summary.requests);
        assert!(summary.p50_e2e_us > 0.0);
        assert!(summary.p99_e2e_us >= summary.p50_e2e_us);
        assert!(summary.p99_queue_us >= summary.p50_queue_us);
        assert!(summary.p50_service_us > 0.0);
        assert!(summary.p99_service_us >= summary.p50_service_us);
        assert!(summary.throughput_rps > 0.0);
        // The mean of the decomposed waits reconstructs the mean queue
        // delay (up to summation rounding in the histogram means).
        let recomposed = summary.mean_admission_us + summary.mean_backlog_us;
        assert!(
            (recomposed - summary.mean_queue_us).abs() <= 1.0e-9 * summary.mean_queue_us.max(1.0),
            "admission {} + backlog {} != queue {}",
            summary.mean_admission_us,
            summary.mean_backlog_us,
            summary.mean_queue_us
        );
    }

    #[test]
    fn identical_seeds_replay_byte_identical_histograms() {
        let run = || {
            let gpu = Gpu::new(V100);
            let sink = MetricsSink::enabled();
            sink.set_experiment("t");
            serve_trace(&gpu, &small_trace(11), &ServeConfig::default(), &sink).unwrap();
            sink.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tighter_wait_bound_dispatches_more_smaller_buckets() {
        let trace = Trace::poisson(24, 8000.0, (6, 30), 13);
        let run = |policy: BatchPolicy| {
            let gpu = Gpu::new(V100);
            let cfg = ServeConfig {
                policy,
                ..ServeConfig::default()
            };
            serve_trace(&gpu, &trace, &cfg, &MetricsSink::disabled()).unwrap()
        };
        let eager = run(BatchPolicy::low_latency());
        let patient = run(BatchPolicy::high_throughput());
        assert!(
            eager.batches.len() >= patient.batches.len(),
            "eager {} vs patient {}",
            eager.batches.len(),
            patient.batches.len()
        );
    }
}
