//! Tail-latency attribution: turning served latency records into "why was
//! this request slow" answers.
//!
//! Every [`RequestRecord`] already carries the waterfall decomposition
//! `end_to_end = admission_wait + backlog + service` (DESIGN.md §15, both
//! identities bitwise). This module is the consumer side: [`tail_report`]
//! ranks the slowest requests, breaks each into its three components with
//! percentages, and aggregates which component dominates at and above the
//! p99 threshold — the number an operator acts on (admission-bound tails
//! call for a tighter `max_wait_us`; backlog/service-bound tails call for
//! more device or smaller batches). Everything here is a pure function of
//! the outcome records, so identical seeds replay byte-identical reports
//! ([`TailReport::render`] is the `wsvd-loadgen --why-slow` output that CI
//! byte-diffs).

use crate::server::{RequestRecord, ServeOutcome};

/// The waterfall component that dominates a latency interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Policy-induced admission wait (`trigger − arrival`) dominates.
    Admission,
    /// Device-induced backlog (`batch start − trigger`) dominates.
    Backlog,
    /// The bucket's batched-SVD service time dominates.
    Service,
}

impl Component {
    /// Lowercase label used in rendered reports and experiment tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::Admission => "admission",
            Component::Backlog => "backlog",
            Component::Service => "service",
        }
    }
}

/// Aggregate attribution over the requests at or above the p99 threshold.
#[derive(Clone, Debug)]
pub struct TailAttribution {
    /// The exact p99 end-to-end value (rank-based over the record values
    /// themselves, not histogram buckets): the `ceil(0.99·n)`-th smallest.
    pub threshold_us: f64,
    /// Requests with `end_to_end_us >= threshold_us`.
    pub count: usize,
    /// Summed admission wait across the tail (µs).
    pub admission_us: f64,
    /// Summed device backlog across the tail (µs).
    pub backlog_us: f64,
    /// Summed service time across the tail (µs).
    pub service_us: f64,
}

impl TailAttribution {
    /// Total tail latency (µs): the sum of the three components.
    pub fn total_us(&self) -> f64 {
        self.admission_us + self.backlog_us + self.service_us
    }

    /// One component's share of the tail's total latency, in percent.
    pub fn share(&self, c: Component) -> f64 {
        let total = self.total_us();
        if total <= 0.0 {
            return 0.0;
        }
        let part = match c {
            Component::Admission => self.admission_us,
            Component::Backlog => self.backlog_us,
            Component::Service => self.service_us,
        };
        100.0 * part / total
    }

    /// The component with the largest summed share. Ties resolve in the
    /// fixed order admission > backlog > service, so the verdict is
    /// deterministic even on degenerate tails.
    pub fn dominant(&self) -> Component {
        if self.admission_us >= self.backlog_us && self.admission_us >= self.service_us {
            Component::Admission
        } else if self.backlog_us >= self.service_us {
            Component::Backlog
        } else {
            Component::Service
        }
    }
}

/// The `--why-slow` deliverable: the top-K slowest requests, each with its
/// waterfall breakdown, plus the aggregate p99-tail attribution.
#[derive(Clone, Debug)]
pub struct TailReport {
    /// Served request count the report was built over.
    pub requests: usize,
    /// The K slowest records, by descending `end_to_end_us`; ties break by
    /// ascending request id so the ranking is a total order.
    pub slowest: Vec<RequestRecord>,
    /// Aggregate attribution over the p99 tail.
    pub tail: TailAttribution,
}

impl TailReport {
    /// Renders the deterministic operator-facing text (the exact bytes
    /// `wsvd-loadgen --why-slow` prints and CI diffs across runs).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "why-slow top-{} of {} served requests:\n",
            self.slowest.len(),
            self.requests
        ));
        for (rank, r) in self.slowest.iter().enumerate() {
            let pct = |part: f64| {
                if r.end_to_end_us > 0.0 {
                    100.0 * part / r.end_to_end_us
                } else {
                    0.0
                }
            };
            s.push_str(&format!(
                "  #{} req {} class {} ({}x{}) e2e={:.1}us = admission {:.1}us ({:.1}%) \
                 + backlog {:.1}us ({:.1}%) + service {:.1}us ({:.1}%)\n",
                rank + 1,
                r.id,
                r.class,
                r.rows,
                r.cols,
                r.end_to_end_us,
                r.admission_wait_us,
                pct(r.admission_wait_us),
                r.backlog_us,
                pct(r.backlog_us),
                r.service_us,
                pct(r.service_us),
            ));
        }
        let t = &self.tail;
        s.push_str(&format!(
            "p99 tail (e2e >= {:.1}us, {} of {}): admission {:.1}% | backlog {:.1}% \
             | service {:.1}% -> {}-bound\n",
            t.threshold_us,
            t.count,
            self.requests,
            t.share(Component::Admission),
            t.share(Component::Backlog),
            t.share(Component::Service),
            t.dominant().as_str(),
        ));
        s
    }
}

/// Builds the tail report for one served outcome: the `k` slowest requests
/// (clamped to the record count) plus the p99-tail attribution. A pure,
/// deterministic function of the records — no registry, no clock.
pub fn tail_report(outcome: &ServeOutcome, k: usize) -> TailReport {
    let n = outcome.records.len();
    let mut by_slowness: Vec<&RequestRecord> = outcome.records.iter().collect();
    by_slowness.sort_by(|a, b| {
        b.end_to_end_us
            .total_cmp(&a.end_to_end_us)
            .then(a.id.cmp(&b.id))
    });
    let slowest: Vec<RequestRecord> = by_slowness
        .iter()
        .take(k.min(n))
        .map(|r| (*r).clone())
        .collect();
    // Rank-based p99 over the exact per-request values: the
    // ceil(0.99·n)-th smallest end-to-end latency. The tail is every
    // request at or above it — at least one for any non-empty outcome.
    let tail = if n == 0 {
        TailAttribution {
            threshold_us: 0.0,
            count: 0,
            admission_us: 0.0,
            backlog_us: 0.0,
            service_us: 0.0,
        }
    } else {
        let mut ascending: Vec<f64> = outcome.records.iter().map(|r| r.end_to_end_us).collect();
        ascending.sort_by(|a, b| a.total_cmp(b));
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n) - 1;
        let threshold_us = ascending[rank];
        let mut t = TailAttribution {
            threshold_us,
            count: 0,
            admission_us: 0.0,
            backlog_us: 0.0,
            service_us: 0.0,
        };
        // Accumulate in record (completion) order: deterministic f64 sums.
        for r in &outcome.records {
            if r.end_to_end_us >= threshold_us {
                t.count += 1;
                t.admission_us += r.admission_wait_us;
                t.backlog_us += r.backlog_us;
                t.service_us += r.service_us;
            }
        }
        t
    };
    TailReport {
        requests: n,
        slowest,
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use crate::server::{serve_trace, ServeConfig};
    use crate::traffic::Trace;
    use wsvd_gpu_sim::{Gpu, V100};
    use wsvd_metrics::MetricsSink;

    fn served(seed: u64, policy: BatchPolicy) -> ServeOutcome {
        let gpu = Gpu::new(V100);
        let cfg = ServeConfig {
            policy,
            ..ServeConfig::default()
        };
        let trace = Trace::poisson(16, 5000.0, (6, 30), seed);
        serve_trace(&gpu, &trace, &cfg, &MetricsSink::disabled()).unwrap()
    }

    #[test]
    fn ranking_is_a_total_order_and_k_clamps() {
        let out = served(21, BatchPolicy::high_throughput());
        let rep = tail_report(&out, 1000);
        assert_eq!(rep.slowest.len(), out.records.len());
        for w in rep.slowest.windows(2) {
            assert!(
                w[0].end_to_end_us > w[1].end_to_end_us
                    || (w[0].end_to_end_us == w[1].end_to_end_us && w[0].id < w[1].id),
                "ranking not a strict total order"
            );
        }
        let top3 = tail_report(&out, 3);
        assert_eq!(top3.slowest.len(), 3);
        assert_eq!(top3.slowest[0].id, rep.slowest[0].id);
    }

    #[test]
    fn tail_sums_reconstruct_the_members_end_to_end() {
        let out = served(23, BatchPolicy::low_latency());
        let rep = tail_report(&out, 5);
        let t = &rep.tail;
        assert!(t.count >= 1);
        let e2e_sum: f64 = out
            .records
            .iter()
            .filter(|r| r.end_to_end_us >= t.threshold_us)
            .map(|r| r.end_to_end_us)
            .sum();
        assert!((t.total_us() - e2e_sum).abs() <= 1.0e-6 * e2e_sum.max(1.0));
        let shares = t.share(Component::Admission)
            + t.share(Component::Backlog)
            + t.share(Component::Service);
        assert!((shares - 100.0).abs() < 1.0e-9, "shares sum to {shares}");
    }

    #[test]
    fn identical_outcomes_render_byte_identical_reports() {
        let a = tail_report(&served(25, BatchPolicy::high_throughput()), 5).render();
        let b = tail_report(&served(25, BatchPolicy::high_throughput()), 5).render();
        assert_eq!(a, b);
        assert!(a.contains("-bound\n"), "missing verdict: {a}");
    }

    #[test]
    fn empty_outcomes_produce_an_empty_report() {
        let rep = tail_report(&ServeOutcome::default(), 5);
        assert_eq!(rep.requests, 0);
        assert!(rep.slowest.is_empty());
        assert_eq!(rep.tail.count, 0);
        assert_eq!(rep.tail.dominant(), Component::Admission); // tie order
    }
}
