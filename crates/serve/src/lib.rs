//! # wsvd-serve
//!
//! An online batched-SVD service over the simulator: the paper's Table VI
//! size-class grouping turned into an *admission batching policy* under
//! open-loop load (ROADMAP item 1, the "millions of users" north star made
//! concrete).
//!
//! A [`traffic::Trace`] is a seeded stream of mixed-size SVD requests
//! (Poisson arrivals, bursty on/off traces, or the §V-F ocean-assimilation
//! mixture from `wsvd-apps`). The [`server`] drives a deterministic
//! event loop over *simulated microseconds*: each arriving request is
//! admitted into its Table-VI size-class bucket by the [`batcher`], a bucket
//! dispatches when it fills to the policy's `max_batch` or when its oldest
//! request has waited `max_wait_us`, and every dispatched bucket runs as one
//! batched W-cycle SVD through the fused `LaunchGraph` + warm `PlanCache`
//! path. Asynchrony here is *event-driven*, not thread-driven: the loop
//! interleaves arrivals, deadlines and device completions on the simulated
//! clock, so every trace replays bit-identically for a given seed.
//!
//! Latency accounting is definitional: for each request the wait decomposes
//! into `admission_wait = trigger - arrival` (policy-induced) and
//! `backlog = batch_start - trigger` (device-induced),
//! `queue_delay = admission_wait + backlog`, `service` is the simulated
//! duration of its bucket's batched SVD, and
//! `end_to_end = queue_delay + service` — the integration suite asserts
//! both identities at the bit level. Per-request latencies feed
//! fixed-bucket histograms in the deterministic metrics registry
//! (`wsvd-metrics`) with the request id retained as each bucket's exemplar,
//! from which p50/p99 are derived by rank-based quantiles and exposed,
//! along with SLO violation counters, through the existing Prometheus
//! exposition (OpenMetrics exemplars included). The [`tail`] module is the
//! attribution consumer: `tail_report` ranks the slowest requests and pins
//! which waterfall component dominates the p99 tail.
//!
//! The `wsvd-loadgen` binary (`src/bin/loadgen.rs`) is the operator's view:
//! it generates traces, runs the server, prints per-trace latency and
//! throughput summaries (with `--why-slow K`, the per-request tail
//! waterfall), and exits non-zero when a `--slo-p99-us` target is
//! violated — CI's `Serve smoke` step. The `ext-serve` and `ext-tail`
//! experiments in `wsvd-bench` commit the batching-policy tradeoff curve
//! and its tail attribution as diffable artifacts.

#![warn(missing_docs)]

pub mod batcher;
pub mod server;
pub mod tail;
pub mod traffic;

pub use batcher::{Admission, Admit, BatchPolicy, Pending};
pub use server::{
    latency_bounds, serve_trace, summarize, BatchRecord, BatchTrigger, RequestRecord, ServeConfig,
    ServeOutcome, ServeSummary,
};
pub use tail::{tail_report, Component, TailAttribution, TailReport};
pub use traffic::{Request, Trace};
