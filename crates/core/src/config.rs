//! Configuration of the W-cycle SVD.

use wsvd_batched::models::TailorPlan;
use wsvd_batched::V100_TLP_THRESHOLD;
use wsvd_jacobi::Ordering;

/// How the per-level tailoring parameters `(w_h, δ_h, T_h)` are chosen.
#[derive(Clone, Debug)]
pub enum Tuning {
    /// The auto-tuning engine of §IV-D3 with the given TLP threshold.
    Auto {
        /// Platform TLP threshold (`306,149` on the paper's V100).
        threshold: f64,
    },
    /// A fixed plan applied at every level (`w` shrinks automatically when
    /// the cap forces it). Used by the Table-V fixed-plan rows.
    Fixed(TailorPlan),
    /// An explicit width schedule: `widths[h]` is `w_{h+1}`; δ defaults to
    /// the plan rule `m*`. Used by the Fig-15(b) sweeps.
    Widths(Vec<usize>),
}

/// How the α-warp width (threads per column pair) is chosen for the SM SVD
/// kernel (§IV-B1).
#[derive(Clone, Debug)]
pub enum AlphaSelect {
    /// The greatest-common-factor rule.
    Gcf,
    /// A fixed width (4, 8, 16 or 32 threads).
    Fixed(usize),
}

impl AlphaSelect {
    /// Resolves the threads-per-pair for a batch with largest row count
    /// `m_star`.
    pub fn resolve(&self, m_star: usize) -> usize {
        match self {
            AlphaSelect::Gcf => wsvd_batched::alpha_gcf(m_star),
            AlphaSelect::Fixed(t) => (*t).max(1),
        }
    }
}

/// Full W-cycle configuration.
#[derive(Clone, Debug)]
pub struct WCycleConfig {
    /// Convergence tolerance on normalized column coherence.
    pub tol: f64,
    /// Cap on W-cycle sweeps per level.
    pub max_sweeps: usize,
    /// Tailoring-parameter selection.
    pub tuning: Tuning,
    /// α-warp selection for the SM SVD kernel.
    pub alpha: AlphaSelect,
    /// Use the tailoring strategy for the per-level batched GEMMs; when
    /// false, every GEMM gets one thread block (the Fig-12 baseline).
    pub tailor_gemm: bool,
    /// Enable the Eq.-(6) inner-product cache inside the SM SVD kernel.
    pub cache_norms: bool,
    /// Accumulate and return the right singular matrices.
    pub want_v: bool,
    /// Pair ordering for block-level rotations.
    pub ordering: Ordering,
    /// QR-precondition very tall inputs (refs. \[5\]/\[42\] of the paper):
    /// when `m >= qr_aspect_threshold * n`, factor `A = Q R` first, run the
    /// Jacobi workflow on the square `R`, and recover `U = Q U_R`. Cuts the
    /// per-rotation column length from `m` to `n`.
    pub qr_precondition: bool,
    /// Aspect ratio `m / n` above which the QR preconditioner engages.
    pub qr_aspect_threshold: usize,
    /// Use *dynamic ordering* (Bečka–Okša–Vajteršic, the paper's ref. \[12\]):
    /// each sweep schedules block pairs by descending off-diagonal weight
    /// `||A_i^T A_j||_F / (||A_i||_F ||A_j||_F)` instead of the static
    /// schedule, attacking the heaviest couplings first. Overrides
    /// `ordering` at the block level.
    pub dynamic_ordering: bool,
    /// Threads per block for the SM SVD/EVD kernels.
    pub kernel_threads: usize,
    /// Record each level's launches into a fused
    /// [`wsvd_gpu_sim::LaunchGraph`]: the level pays the driver's launch
    /// overhead once per graph plus a small per-node cost instead of the
    /// full cost per kernel, with back-to-back same-shape launches
    /// coalesced. Numerics, counters and kernel times are bit-identical to
    /// the serial path — only the overhead account changes. Defaults to the
    /// process-wide [`set_fused_default`] (off unless `repro --fused`).
    pub fused: bool,
    /// Overrides the tolerance handed to *inner* (recursive) levels and the
    /// SM rotation kernels, which normally run at `tol * 1e-2`. Inner
    /// generators must run tighter than the outer convergence test or a
    /// level's coherence plateaus just above `tol` — which is exactly why
    /// this knob exists: fault-injection tests (the `ext-health` planted
    /// stagnation row) set it *looser* than `tol` to produce a genuine
    /// non-converging run for the stagnation watchdog. Leave `None` in
    /// production.
    pub inner_tol_override: Option<f64>,
    /// Record the per-sweep convergence trajectory (level, sweep, off-norm,
    /// active tasks) into
    /// [`WCycleStats::convergence`](crate::WCycleStats). The same samples
    /// the trace/health sinks observe, but surfaced as *data* so a cluster
    /// checkpoint can carry the partially converged sweep state of its
    /// completed chunks. Off by default: the extra coherence reductions are
    /// host-side and uncharged, but recording is opt-in to keep default
    /// stats identical to earlier releases.
    pub record_convergence: bool,
}

/// Process-wide default for [`WCycleConfig::fused`], set once by the host
/// (e.g. `repro --fused`) before building configs. Mirrors the sanitizer's
/// `set_global` pattern so paths that construct `WCycleConfig::default()`
/// internally (the distributed assimilation driver) pick fusion up too.
pub fn set_fused_default(on: bool) {
    FUSED_DEFAULT.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide default for [`WCycleConfig::fused`].
pub fn fused_default() -> bool {
    FUSED_DEFAULT.load(std::sync::atomic::Ordering::Relaxed)
}

static FUSED_DEFAULT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

impl Default for WCycleConfig {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_sweeps: 40,
            tuning: Tuning::Auto {
                threshold: V100_TLP_THRESHOLD,
            },
            alpha: AlphaSelect::Gcf,
            tailor_gemm: true,
            cache_norms: true,
            want_v: true,
            ordering: Ordering::RoundRobin,
            qr_precondition: false,
            qr_aspect_threshold: 3,
            dynamic_ordering: false,
            kernel_threads: 256,
            fused: fused_default(),
            inner_tol_override: None,
            record_convergence: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_setup() {
        let c = WCycleConfig::default();
        assert!(matches!(c.tuning, Tuning::Auto { threshold } if threshold == V100_TLP_THRESHOLD));
        assert!(c.tailor_gemm);
        assert!(c.cache_norms);
    }

    #[test]
    fn alpha_resolution() {
        assert_eq!(AlphaSelect::Gcf.resolve(48), 16);
        assert_eq!(AlphaSelect::Fixed(32).resolve(48), 32);
        assert_eq!(AlphaSelect::Fixed(0).resolve(48), 1);
    }
}
