//! The W-cycle SVD: a multilevel algorithm for batched SVD (Algorithm 2).
//!
//! Workflow (§III-C):
//! * **Level 0** — matrices whose whole SVD fits in shared memory are
//!   decomposed directly by the batched SM SVD kernel; the rest descend.
//! * **Level h** — each descending matrix is partitioned into column blocks
//!   of width `w_h`; every round-robin step pairs the blocks into
//!   `A_ij = [A_i, A_j]` sub-matrices, which fall into three groups:
//!   1. SVD of `A_ij` fits in SM → batched SM SVD kernel gives `J_ij`
//!      directly **and** the rotated block (`UΣ`), avoiding the Gram GEMM
//!      entirely (Observation 1);
//!   2. only the EVD of `B_ij = A_ij^T A_ij` fits in SM → tailored batched
//!      Gram GEMM, batched SM EVD kernel, tailored batched update GEMM;
//!   3. neither fits → the pair block recurses to Level h+1 with a smaller
//!      width (the "W" shape of Fig. 3).
//! * Sweeps repeat until all column blocks are mutually orthogonal; each
//!   converged matrix exits the workflow.

use wsvd_batched::autotune::{auto_tune_with_w_cap_traced, TuneTelemetry};
use wsvd_batched::gemm::{batched_gram, batched_update, GemmStrategy};
use wsvd_batched::models::TailorPlan;
use wsvd_gpu_sim::{Gpu, KernelConfig, KernelError};
use wsvd_jacobi::batch::{batched_evd_sm, batched_svd_sm};
use wsvd_jacobi::evd::EvdConfig;
use wsvd_jacobi::fits::{evd_fits_in_sm, svd_fits_in_sm};
use wsvd_jacobi::onesided::{JacobiSvd, OneSidedConfig};
use wsvd_linalg::gemm::{dot, matmul};
use wsvd_linalg::verify::{columns_converged, max_column_coherence, orthonormality_error};
use wsvd_linalg::Matrix;

use crate::certify::CertifyMode;
use crate::config::{AlphaSelect, Tuning, WCycleConfig};
use crate::stats::WCycleStats;
use crate::verify::{effective_width, verify_level};
use wsvd_jacobi::verify::{verify_schedule, Coverage};

/// Fixed bounds for the per-matrix `sweeps_to_converge` metrics histogram.
/// Powers of two up to the practical sweep ceiling keep snapshots comparable
/// across experiments.
const SWEEP_BUCKETS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// The SVD of one input matrix as produced by the W-cycle.
#[derive(Debug)]
pub struct WSvd {
    /// Left singular vectors, `m x r` (`r = min(m, n)`).
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (full square for `m >= n` inputs; thin `n x r`
    /// for wide inputs). `None` when `want_v` was off.
    pub v: Option<Matrix>,
    /// W-cycle sweeps this matrix needed (0 when decomposed whole in SM).
    pub sweeps: usize,
}

/// Batched result: one [`WSvd`] per input plus the run statistics.
#[derive(Debug)]
pub struct WCycleOutput {
    /// Per-matrix factorizations, in input order.
    pub results: Vec<WSvd>,
    /// Multilevel workflow statistics.
    pub stats: WCycleStats,
}

/// Runs the W-cycle SVD over a batch of matrices of arbitrary (mixed) sizes.
pub fn wcycle_svd(
    gpu: &Gpu,
    mats: &[Matrix],
    cfg: &WCycleConfig,
) -> Result<WCycleOutput, KernelError> {
    for (k, a) in mats.iter().enumerate() {
        if !a.is_finite() {
            return Err(KernelError::Other(format!(
                "matrix {k} contains non-finite entries; Jacobi rotations would poison the batch"
            )));
        }
    }
    let smem = gpu.device().smem_per_block_bytes;
    let trace = gpu.trace().clone();
    let traced = trace.is_enabled();
    let health = gpu.health().clone();
    let watched = health.is_enabled();
    let mut stats = WCycleStats {
        sweeps_per_matrix: vec![0; mats.len()],
        ..Default::default()
    };

    // Wide inputs are decomposed transposed (§IV-B): fewer rotations per
    // sweep, and the factors swap back at the end. Very tall inputs are
    // optionally QR-preconditioned (refs. [5]/[42]): the Jacobi workflow
    // then runs on the square R factor and U is recovered as Q U_R.
    let mut prepared: Vec<(Matrix, bool, Option<Matrix>)> = mats
        .iter()
        .map(|a| {
            if a.rows() < a.cols() {
                (a.transpose(), true)
            } else {
                (a.clone(), false)
            }
        })
        .map(|(tall, transposed)| (tall, transposed, None))
        .collect();
    if cfg.qr_precondition {
        let qr_idx: Vec<usize> = prepared
            .iter()
            .enumerate()
            .filter(|(_, (tall, _, _))| {
                tall.cols() >= 2 && tall.rows() >= cfg.qr_aspect_threshold.max(2) * tall.cols()
            })
            .map(|(k, _)| k)
            .collect();
        if !qr_idx.is_empty() {
            let inputs: Vec<Matrix> = qr_idx.iter().map(|&k| prepared[k].0.clone()).collect();
            let factors = batched_counted_qr(gpu, &inputs)?;
            for (&k, (q, r)) in qr_idx.iter().zip(factors) {
                prepared[k] = (r, prepared[k].1, Some(q));
            }
        }
    }

    // Level-0 grouping (Algorithm 2, lines 2-5).
    let mut fit_idx = Vec::new();
    let mut rest_idx = Vec::new();
    for (k, (a, _, _)) in prepared.iter().enumerate() {
        if svd_fits_in_sm(a.rows(), a.cols(), smem) {
            fit_idx.push(k);
        } else {
            rest_idx.push(k);
        }
    }

    let mut slots: Vec<Option<WSvd>> = (0..mats.len()).map(|_| None).collect();

    if !fit_idx.is_empty() {
        let group: Vec<Matrix> = fit_idx.iter().map(|&k| prepared[k].0.clone()).collect();
        let m_star = group.iter().map(|g| g.rows()).max().unwrap_or(1);
        let threads_per_pair = cfg.alpha.resolve(m_star);
        if traced {
            trace_alpha_plan(
                gpu,
                &trace,
                &cfg.alpha,
                m_star,
                group.len(),
                threads_per_pair,
            );
        }
        let one_sided = OneSidedConfig {
            tol: cfg.tol,
            threads_per_pair,
            cache_norms: cfg.cache_norms,
            accumulate_v: true,
            ordering: cfg.ordering,
            record_coherence: traced || watched || cfg.record_convergence,
            ..Default::default()
        };
        let t_pre = gpu.elapsed_seconds();
        let (mut svds, _) = batched_svd_sm(gpu, &group, &one_sided, cfg.kernel_threads)?;
        if traced {
            trace_level0_sweeps(gpu, &trace, &svds, t_pre, gpu.elapsed_seconds());
        }
        if watched {
            health_level0_sweeps(&health, &svds, t_pre, gpu.elapsed_seconds());
        }
        if cfg.record_convergence {
            record_level0_convergence(&mut stats, &svds);
        }
        stats.level0_sm_svds = svds.len();
        // Level-0 registry metrics mirror the per-level hook in
        // `decompose_level`: whole-in-SM decompositions are "level 0".
        let metrics = gpu.metrics();
        if metrics.is_enabled() {
            metrics.counter_add(
                "wcycle",
                Some(0),
                "level_seconds",
                gpu.elapsed_seconds() - t_pre,
            );
            metrics.counter_add("wcycle", Some(0), "tasks", svds.len() as f64);
            metrics.counter_add(
                "wcycle",
                Some(0),
                "sweeps",
                svds.iter().map(|o| o.stats.sweeps).max().unwrap_or(0) as f64,
            );
            for o in &svds {
                metrics.observe(
                    "wcycle",
                    Some(0),
                    "sweeps_to_converge",
                    &SWEEP_BUCKETS,
                    o.stats.sweeps as f64,
                );
            }
        }
        let recover: Vec<(usize, Matrix, Matrix)> = fit_idx
            .iter()
            .enumerate()
            .filter_map(|(pos, &k)| {
                prepared[k]
                    .2
                    .as_ref()
                    .map(|q| (pos, q.clone(), svds[pos].u.clone()))
            })
            .collect();
        if !recover.is_empty() {
            let products = batched_counted_recover(gpu, &recover)?;
            for ((pos, _, _), u) in recover.iter().zip(products) {
                svds[*pos].u = u;
            }
        }
        for (&k, svd) in fit_idx.iter().zip(svds) {
            slots[k] = Some(finish_one(svd, prepared[k].1, cfg.want_v));
        }
    }

    if !rest_idx.is_empty() {
        let mut tasks: Vec<Matrix> = rest_idx.iter().map(|&k| prepared[k].0.clone()).collect();
        // V is needed when the caller wants it, or to recover U of a
        // transposed (wide) input.
        let need_v: Vec<bool> = rest_idx
            .iter()
            .map(|&k| cfg.want_v || prepared[k].1)
            .collect();
        let outcomes = decompose_level(gpu, &mut tasks, &need_v, 1, 48, cfg, &mut stats)?;

        // Final extraction kernel: U = normalize(columns), Σ = column norms.
        let kc = KernelConfig::new(tasks.len(), cfg.kernel_threads, 0, "wcycle_extract");
        let extracted = {
            let tasks_ref = &tasks;
            gpu.launch_collect(kc, |b, ctx| {
                let t = &tasks_ref[b];
                ctx.count_gm_load(t.len());
                ctx.par_step(t.len(), 2);
                ctx.count_gm_store(t.len());
                Ok(extract_u_sigma(t))
            })?
            .0
        };
        let mut extracted = extracted;
        let recover: Vec<(usize, Matrix, Matrix)> = rest_idx
            .iter()
            .enumerate()
            .filter_map(|(pos, &k)| {
                prepared[k]
                    .2
                    .as_ref()
                    .map(|q| (pos, q.clone(), extracted[pos].0.clone()))
            })
            .collect();
        if !recover.is_empty() {
            let products = batched_counted_recover(gpu, &recover)?;
            for ((pos, _, _), u) in recover.iter().zip(products) {
                extracted[*pos].0 = u;
            }
        }
        for (slot, ((&k, (u, sigma)), outcome)) in
            rest_idx.iter().zip(extracted).zip(outcomes).enumerate()
        {
            let transposed = prepared[k].1;
            let mut v = outcome
                .v
                .map(|v| permute_cols(&v, &sigma_order(&tasks[slot])));
            // `u`/`sigma` are already sorted by `extract_u_sigma`.
            let sweeps = outcome.sweeps;
            stats.sweeps_per_matrix[k] = sweeps;
            let result = if transposed {
                // A = V_t Σ U_t^T: swap the factors.
                let v_t = v.take().expect("wide inputs always accumulate V");
                let r = sigma.len();
                let v_out = if cfg.want_v { Some(u) } else { None };
                WSvd {
                    u: thin(&v_t, r),
                    sigma,
                    v: v_out,
                    sweeps,
                }
            } else {
                WSvd {
                    u,
                    sigma,
                    v: if cfg.want_v { v } else { None },
                    sweeps,
                }
            };
            slots[k] = Some(result);
        }
    }

    let results: Vec<WSvd> = slots
        .into_iter()
        .map(|s| s.expect("every input decomposed"))
        .collect();
    // `tol == 0` is the explicit truncated-run mode (run exactly
    // `max_sweeps`, converged or not — the accuracy experiments use it to
    // chart error vs sweep count), so the convergence contract the drift
    // monitors enforce is waived there.
    if watched && cfg.tol > 0.0 {
        health_batch_checks(&health, gpu.elapsed_seconds(), mats, &results);
    }
    Ok(WCycleOutput { results, stats })
}

/// Mirrors [`trace_level0_sweeps`] into the health watchdogs: one
/// [`sweep_sample`](wsvd_health::HealthSink::sweep_sample) per Level-0 sweep
/// from the SM kernels' recorded coherence histories.
// wsvd-lint: allow(sink-guard) — caller gates on `watched = health.is_enabled()`.
fn health_level0_sweeps(
    health: &wsvd_health::HealthSink,
    svds: &[JacobiSvd],
    t_pre: f64,
    t_post: f64,
) {
    let s_max = svds.iter().map(|o| o.stats.sweeps).max().unwrap_or(0);
    for s in 0..s_max {
        let coherence = svds
            .iter()
            .filter_map(|o| o.coherence_per_sweep.get(s))
            .fold(0.0f64, |acc, &c| acc.max(c));
        let active = svds.iter().filter(|o| o.stats.sweeps > s + 1).count();
        let ts = t_pre + (t_post - t_pre) * (s + 1) as f64 / s_max as f64;
        health.sweep_sample(0, s + 1, coherence, active, ts);
    }
}

/// Mirrors [`health_level0_sweeps`] into [`WCycleStats::convergence`]: the
/// same per-sweep aggregation of the SM kernels' coherence histories, but
/// surfaced as data for the cluster checkpoint instead of fed to a sink.
fn record_level0_convergence(stats: &mut WCycleStats, svds: &[JacobiSvd]) {
    let s_max = svds.iter().map(|o| o.stats.sweeps).max().unwrap_or(0);
    for s in 0..s_max {
        let off_norm = svds
            .iter()
            .filter_map(|o| o.coherence_per_sweep.get(s))
            .fold(0.0f64, |acc, &c| acc.max(c));
        let active = svds.iter().filter(|o| o.stats.sweeps > s + 1).count();
        stats.convergence.push(crate::SweepRecord {
            level: 0,
            sweep: (s + 1) as u64,
            off_norm,
            active: active as u64,
        });
    }
}

/// End-of-run drift monitors: per matrix, the orthogonality error of the
/// numerically significant left singular directions and (when V is
/// available) the relative reconstruction residual, both fed to
/// [`batch_check`](wsvd_health::HealthSink::batch_check). Directions with
/// `sigma <= sigma_max * eps * max(m, n)` carry no reliable basis — on
/// rank-deficient or extremely ill-conditioned inputs (the Table-VII
/// cases) their vectors are arbitrary within round-off, so they are
/// excluded rather than allowed to trip false alarms. Only called for
/// converging runs (`tol > 0`): a truncated run is unconverged by design
/// and its factors make no orthogonality promise. Host-side and
/// health-gated: never charged to the cost model.
// wsvd-lint: allow(sink-guard) — caller gates on `watched = health.is_enabled()`.
fn health_batch_checks(
    health: &wsvd_health::HealthSink,
    t_sim: f64,
    mats: &[Matrix],
    results: &[WSvd],
) {
    for (k, (a, r)) in mats.iter().zip(results).enumerate() {
        let sigma_max = r.sigma.first().copied().unwrap_or(0.0);
        if !sigma_max.is_finite() || sigma_max <= 0.0 {
            continue;
        }
        let (m, n) = a.shape();
        let floor = sigma_max * f64::EPSILON * m.max(n) as f64;
        // `sigma` is descending, so the significant directions are a prefix.
        let significant = r.sigma.iter().take_while(|&&s| s > floor).count();
        if significant == 0 {
            continue;
        }
        let orthogonality = orthonormality_error(&r.u.col_block(0, significant));
        let residual = r.v.as_ref().map(|v| {
            let rank = r.sigma.len();
            let mut us = thin(&r.u, rank);
            for (j, &s) in r.sigma.iter().enumerate() {
                us.col_mut(j).iter_mut().for_each(|x| *x *= s);
            }
            let recon = matmul(&us, &thin(v, rank).transpose());
            recon.sub(a).max_abs() / sigma_max
        });
        health.batch_check(k, residual, orthogonality, t_sim);
    }
}

/// Emits the Level-0 α-warp selection (§IV-B1) as an auto-tuner plan event:
/// the rule's rejected team widths from [`wsvd_batched::TPP_CANDIDATES`] go
/// into the event args alongside the chosen one.
// wsvd-lint: allow(sink-guard) — caller gates on `traced = trace.is_enabled()`.
fn trace_alpha_plan(
    gpu: &Gpu,
    trace: &wsvd_trace::TraceSink,
    alpha: &AlphaSelect,
    m_star: usize,
    batch: usize,
    chosen: usize,
) {
    let rejected = wsvd_batched::TPP_CANDIDATES
        .iter()
        .filter(|&&t| t != chosen)
        .map(|t| format!("tpp={t}"))
        .collect::<Vec<_>>()
        .join("; ");
    trace.instant(
        gpu.trace_pid(),
        "autotune",
        "plan",
        gpu.elapsed_seconds(),
        vec![
            ("level", 0usize.into()),
            ("param", "alpha".into()),
            ("rule", format!("{alpha:?}").into()),
            ("batch", batch.into()),
            ("m_star", m_star.into()),
            ("threads_per_pair", chosen.into()),
            ("rejected", rejected.into()),
        ],
    );
}

/// Emits per-sweep convergence instants for a Level-0 batched SM SVD launch
/// from the kernels' recorded coherence histories. The launch spans
/// `[t_pre, t_post]` in simulated time; sweep `s` of `S` is placed at the
/// matching fraction of that interval.
// wsvd-lint: allow(sink-guard) — caller gates on `traced = trace.is_enabled()`.
fn trace_level0_sweeps(
    gpu: &Gpu,
    trace: &wsvd_trace::TraceSink,
    svds: &[JacobiSvd],
    t_pre: f64,
    t_post: f64,
) {
    let s_max = svds.iter().map(|o| o.stats.sweeps).max().unwrap_or(0);
    for s in 0..s_max {
        let coherence = svds
            .iter()
            .filter_map(|o| o.coherence_per_sweep.get(s))
            .fold(0.0f64, |acc, &c| acc.max(c));
        let active = svds.iter().filter(|o| o.stats.sweeps > s + 1).count();
        let ts = t_pre + (t_post - t_pre) * (s + 1) as f64 / s_max as f64;
        trace.instant(
            gpu.trace_pid(),
            "wcycle",
            "sweep",
            ts,
            vec![
                ("level", 0usize.into()),
                ("sweep", (s + 1).into()),
                ("coherence", coherence.into()),
                ("active", active.into()),
                ("matrices", svds.len().into()),
            ],
        );
    }
}

/// Outcome of decomposing one task at a level: the matrix itself has been
/// orthogonalized in place (columns = `UΣ`, unsorted).
struct LevelOutcome {
    v: Option<Matrix>,
    sweeps: usize,
}

/// One pair block gathered for rotation.
#[derive(Clone, Copy)]
struct PairRef {
    task: usize,
    i_start: usize,
    i_width: usize,
    j_start: usize,
    j_width: usize,
}

/// Orthogonalizes every task's columns via block rotations at `level`,
/// recursing for pair blocks that fit neither SM kernel.
fn decompose_level(
    gpu: &Gpu,
    tasks: &mut [Matrix],
    need_v: &[bool],
    level: usize,
    w_cap: usize,
    cfg: &WCycleConfig,
    stats: &mut WCycleStats,
) -> Result<Vec<LevelOutcome>, KernelError> {
    let smem = gpu.device().smem_per_block_bytes;
    // Fused pipeline: record this level's launches into one LaunchGraph so
    // the driver's launch overhead is paid once per level, not per kernel.
    // Recursive levels open nested scopes that join the enclosing graph.
    let _graph = cfg.fused.then(|| gpu.launch_graph("wcycle level"));
    // Inner rotation generators must run tighter than the outer convergence
    // test, or the level's coherence plateaus just above `tol` (each pair
    // block would retain up-to-`tol` residual coherence internally). The
    // override exists precisely to break this invariant on purpose — see
    // `WCycleConfig::inner_tol_override`.
    let inner_tol = cfg
        .inner_tol_override
        .unwrap_or((cfg.tol * 1e-2).max(1e-15));
    let sizes: Vec<(usize, usize)> = tasks.iter().map(|t| t.shape()).collect();
    let plan = resolve_plan(gpu, cfg, level, &sizes, w_cap);
    stats.note_width(level, plan.w);
    let trace = gpu.trace().clone();
    let traced = trace.is_enabled();
    let health = gpu.health().clone();
    let watched = health.is_enabled();
    let level_t0 = gpu.elapsed_seconds();
    if watched {
        health.plan_selected(level, plan.w, plan.delta, plan.threads, level_t0);
    }
    let sanitizing = gpu.sanitize_enabled();
    // Ahead-of-time certification: under `CertifyMode::Require` the selected
    // plan's family must hold a certificate for this device covering the
    // configured ordering and every task's block count — a miss is a hard
    // error before any launch. A certified level skips the per-launch
    // `verify_level` re-verification below (the certificate already proves
    // its non-tautological obligations once, for the whole family).
    let certified = match crate::certify::mode() {
        CertifyMode::Require => {
            let cert = crate::certify::check_level(gpu.device(), &plan, &sizes, cfg.ordering)
                .map_err(|e| {
                    KernelError::Other(format!(
                        "wsvd-analyze: uncertified plan at level {level}: {e}"
                    ))
                })?;
            if traced {
                trace.instant(
                    gpu.trace_pid(),
                    "certify",
                    "plan-certified",
                    level_t0,
                    vec![
                        ("level", level.into()),
                        ("w", plan.w.into()),
                        ("threads", plan.threads.into()),
                        ("tasks_checked", cert.tasks_checked.into()),
                        ("max_task_blocks", cert.max_task_blocks.into()),
                    ],
                );
            }
            true
        }
        CertifyMode::Off => false,
    };
    if sanitizing && !certified {
        // Static half of the wsvd-sanitizer: prove the selected plan's
        // schedules and shared-memory working sets sound before any launch.
        let check = verify_level(&sizes, &plan, cfg.ordering, smem).map_err(|e| {
            KernelError::Other(format!(
                "wsvd-sanitizer: static verification failed at level {level}: {e}"
            ))
        })?;
        if traced {
            trace.instant(
                gpu.trace_pid(),
                "sanitizer",
                "static-check",
                level_t0,
                vec![
                    ("level", level.into()),
                    ("tasks", sizes.len().into()),
                    ("proofs", check.proofs.len().into()),
                    ("smem_requirements", check.requirements.len().into()),
                    ("recursing_shapes", check.recursing_shapes.into()),
                ],
            );
        }
    }
    let strategy = if cfg.tailor_gemm {
        GemmStrategy::Tailored(plan)
    } else {
        GemmStrategy::OneBlockPerGemm {
            threads: plan.threads,
        }
    };

    // Per-task column partition (width w, ragged tail allowed). When
    // w = n/2 would make the single pair block the whole task *and* that
    // whole task fits neither SM kernel, the level would be a pure wrapper
    // around the recursion — divide finer instead so the level does work.
    let parts: Vec<Vec<(usize, usize)>> = tasks
        .iter()
        .map(|t| {
            let (m, n) = t.shape();
            partition_cols(n, effective_width(m, n, plan.w, smem))
        })
        .collect();

    let mut vs: Vec<Option<Matrix>> = need_v
        .iter()
        .zip(&sizes)
        .map(|(&nv, &(_, n))| nv.then(|| Matrix::identity(n)))
        .collect();
    let mut sweeps = vec![0usize; tasks.len()];
    let mut active: Vec<bool> = tasks.iter().map(|t| t.cols() >= 2).collect();

    for round in 0..cfg.max_sweeps {
        if !active.iter().any(|&a| a) {
            break;
        }
        let mut sweep_rotations = 0u64;
        let (mut sweep_ga, mut sweep_gb, mut sweep_gc) = (0u64, 0u64, 0u64);
        let schedules: Vec<_> = parts
            .iter()
            .zip(&active)
            .enumerate()
            .map(|(t, (p, &a))| {
                if !a {
                    Vec::new()
                } else if cfg.dynamic_ordering {
                    dynamic_schedule(&tasks[t], p)
                } else {
                    cfg.ordering.schedule(p.len())
                }
            })
            .collect();
        if (sanitizing || certified) && cfg.dynamic_ordering {
            // Dynamically generated sweeps carry no static proof (and no
            // certificate — the schedule is data-dependent); check each
            // one before its rotations launch.
            for (t, sched) in schedules.iter().enumerate() {
                if sched.is_empty() {
                    continue;
                }
                verify_schedule(sched, parts[t].len(), Coverage::ExactlyOnce).map_err(|e| {
                    KernelError::Other(format!(
                        "wsvd-sanitizer: dynamic schedule invalid at level {level}, \
                         sweep {round}, task {t}: {e}"
                    ))
                })?;
            }
        }
        let max_steps = schedules.iter().map(|s| s.len()).max().unwrap_or(0);

        for step in 0..max_steps {
            // Gather this step's pair blocks across the whole batch.
            let mut refs: Vec<PairRef> = Vec::new();
            let mut blocks: Vec<Matrix> = Vec::new();
            for (t, sched) in schedules.iter().enumerate() {
                if !active[t] || step >= sched.len() {
                    continue;
                }
                for &(bi, bj) in &sched[step] {
                    let (i_start, i_width) = parts[t][bi];
                    let (j_start, j_width) = parts[t][bj];
                    refs.push(PairRef {
                        task: t,
                        i_start,
                        i_width,
                        j_start,
                        j_width,
                    });
                    blocks.push(gather_pair(&tasks[t], i_start, i_width, j_start, j_width));
                }
            }
            if blocks.is_empty() {
                continue;
            }
            stats.add_rotations(level, blocks.len() as u64);
            sweep_rotations += blocks.len() as u64;

            // Classify into the three groups of Algorithm 2.
            let mut ga: Vec<usize> = Vec::new();
            let mut gb: Vec<usize> = Vec::new();
            let mut gc: Vec<usize> = Vec::new();
            for (idx, b) in blocks.iter().enumerate() {
                let (m, nn) = b.shape();
                if svd_fits_in_sm(m, nn, smem) {
                    ga.push(idx);
                } else if evd_fits_in_sm(nn, smem) {
                    gb.push(idx);
                } else {
                    gc.push(idx);
                }
            }
            sweep_ga += ga.len() as u64;
            sweep_gb += gb.len() as u64;
            sweep_gc += gc.len() as u64;

            let mut rotations: Vec<Option<Matrix>> = (0..blocks.len()).map(|_| None).collect();

            // Group (i): direct SM SVD — avoids the Gram GEMM (Obs. 1) and
            // the update GEMM (the kernel's converged columns are A_ij J).
            if !ga.is_empty() {
                let sub: Vec<Matrix> = ga.iter().map(|&i| blocks[i].clone()).collect();
                let m_star = sub.iter().map(|s| s.rows()).max().unwrap();
                let one_sided = OneSidedConfig {
                    tol: inner_tol,
                    threads_per_pair: cfg.alpha.resolve(m_star),
                    cache_norms: cfg.cache_norms,
                    accumulate_v: true,
                    ordering: cfg.ordering,
                    ..Default::default()
                };
                let (svds, _) = batched_svd_sm(gpu, &sub, &one_sided, cfg.kernel_threads)?;
                stats.sm_svd_blocks += ga.len() as u64;
                for (&i, svd) in ga.iter().zip(svds) {
                    blocks[i] = rotated_block(&svd, blocks[i].shape());
                    rotations[i] = Some(svd.v);
                }
            }

            // Group (ii): Gram GEMM -> SM EVD. The `A_ij J_ij` update joins
            // the fused batched-update launch below.
            if !gb.is_empty() {
                let sub: Vec<Matrix> = gb.iter().map(|&i| blocks[i].clone()).collect();
                let (grams, _) = batched_gram(gpu, &sub, strategy)?;
                let evd_cfg = EvdConfig {
                    tol: 1e-15,
                    max_sweeps: 30,
                    ..Default::default()
                };
                let (evds, _) = batched_evd_sm(gpu, &grams, &evd_cfg, cfg.kernel_threads)?;
                stats.sm_evd_blocks += gb.len() as u64;
                for (&i, evd) in gb.iter().zip(evds) {
                    rotations[i] = Some(evd.j);
                }
            }

            // Group (iii): recurse with a smaller width (Level h+1).
            if !gc.is_empty() {
                let mut sub: Vec<Matrix> = gc.iter().map(|&i| blocks[i].clone()).collect();
                let all_v = vec![true; sub.len()];
                let next_cap = plan.w.saturating_sub(1).max(1);
                let sub_cfg = WCycleConfig {
                    tol: inner_tol,
                    ..cfg.clone()
                };
                let outcomes =
                    decompose_level(gpu, &mut sub, &all_v, level + 1, next_cap, &sub_cfg, stats)?;
                stats.recursed_blocks += gc.len() as u64;
                for ((&i, converged), outcome) in gc.iter().zip(sub).zip(outcomes) {
                    blocks[i] = converged;
                    rotations[i] = Some(outcome.v.expect("recursion always accumulates V"));
                }
            }

            // One fused batched-update launch: the group-(ii) `A_ij J_ij`
            // products and all V-accumulator updates (groups (i)/(iii) left
            // their blocks already rotated, so only their V parts join).
            let mut upd_mats: Vec<Matrix> = Vec::new();
            let mut upd_js: Vec<Matrix> = Vec::new();
            // (kind, index): kind 0 = A-block of group (ii), 1 = V pair.
            let mut upd_meta: Vec<(u8, usize)> = Vec::new();
            for &i in &gb {
                upd_mats.push(blocks[i].clone());
                upd_js.push(rotations[i].as_ref().unwrap().clone());
                upd_meta.push((0, i));
            }
            for (k, r) in refs.iter().enumerate() {
                if let Some(v) = vs[r.task].as_ref() {
                    upd_mats.push(gather_pair(v, r.i_start, r.i_width, r.j_start, r.j_width));
                    upd_js.push(
                        rotations[k]
                            .as_ref()
                            .expect("rotation computed for every block")
                            .clone(),
                    );
                    upd_meta.push((1, k));
                }
            }
            if !upd_mats.is_empty() {
                batched_update(gpu, &mut upd_mats, &upd_js, strategy)?;
                for ((kind, idx), updated) in upd_meta.into_iter().zip(upd_mats) {
                    match kind {
                        0 => blocks[idx] = updated,
                        _ => {
                            let r = refs[idx];
                            let v = vs[r.task].as_mut().unwrap();
                            scatter_pair(v, &r, &updated);
                        }
                    }
                }
            }
            // Scatter every rotated pair block back into its task.
            for (r, block) in refs.iter().zip(&blocks) {
                scatter_pair(&mut tasks[r.task], r, block);
            }
        }

        // Schedule-independent convergence test at the sweep boundary (in a
        // real kernel this reduction falls out of the inner products the
        // sweep already computed; it is not charged to the cost model).
        let mut coherence = 0.0f64;
        for t in 0..tasks.len() {
            if active[t] {
                sweeps[t] += 1;
                if traced || watched || cfg.record_convergence {
                    coherence = coherence.max(max_column_coherence(&tasks[t]));
                }
                if columns_converged(&tasks[t], cfg.tol) {
                    active[t] = false; // converged: exits the workflow
                }
            }
        }
        let still_active = active.iter().filter(|&&a| a).count();
        if traced {
            trace.instant(
                gpu.trace_pid(),
                "wcycle",
                "sweep",
                gpu.elapsed_seconds(),
                vec![
                    ("level", level.into()),
                    ("sweep", (round + 1).into()),
                    ("rotations", sweep_rotations.into()),
                    ("ga_sm_svd", sweep_ga.into()),
                    ("gb_gram_evd", sweep_gb.into()),
                    ("gc_recursed", sweep_gc.into()),
                    ("coherence", coherence.into()),
                    ("active", still_active.into()),
                ],
            );
        }
        if watched {
            health.sweep_sample(
                level,
                round + 1,
                coherence,
                still_active,
                gpu.elapsed_seconds(),
            );
        }
        if cfg.record_convergence {
            stats.convergence.push(crate::SweepRecord {
                level: level as u64,
                sweep: (round + 1) as u64,
                off_norm: coherence,
                active: still_active as u64,
            });
        }
    }

    if traced {
        let now = gpu.elapsed_seconds();
        trace.span(
            gpu.trace_pid(),
            "wcycle",
            &format!("level {level}"),
            level_t0,
            now - level_t0,
            vec![
                ("tasks", tasks.len().into()),
                ("w", plan.w.into()),
                ("delta", plan.delta.into()),
                ("threads", plan.threads.into()),
                (
                    "max_sweeps_used",
                    sweeps.iter().copied().max().unwrap_or(0).into(),
                ),
            ],
        );
    }

    // Per-level registry metrics: time share, convergence behaviour and the
    // chosen plan, keyed by W-cycle level. All values are already computed
    // by the algorithm (or are host-side reads of simulated time), so with
    // the sink disabled nothing here runs and the run stays bit-identical.
    let metrics = gpu.metrics();
    if metrics.is_enabled() {
        let now = gpu.elapsed_seconds();
        metrics.counter_add("wcycle", Some(level), "level_seconds", now - level_t0);
        metrics.counter_add("wcycle", Some(level), "tasks", tasks.len() as f64);
        metrics.counter_add(
            "wcycle",
            Some(level),
            "sweeps",
            sweeps.iter().copied().max().unwrap_or(0) as f64,
        );
        for &s in &sweeps {
            metrics.observe(
                "wcycle",
                Some(level),
                "sweeps_to_converge",
                &SWEEP_BUCKETS,
                s as f64,
            );
        }
        metrics.gauge_set("wcycle", Some(level), "plan_w", plan.w as f64);
        metrics.gauge_set("wcycle", Some(level), "plan_delta", plan.delta as f64);
        metrics.gauge_set("wcycle", Some(level), "plan_threads", plan.threads as f64);
    }
    if watched {
        // Mirror the level's headline delta into the flight recorder so an
        // incident's tail shows where simulated time went.
        let now = gpu.elapsed_seconds();
        health.metric_delta(
            &format!("wcycle/L{level}/level_seconds"),
            now - level_t0,
            now,
        );
    }

    Ok(vs
        .into_iter()
        .zip(sweeps)
        .map(|(v, sweeps)| LevelOutcome { v, sweeps })
        .collect())
}

/// Batched QR factorization with launch accounting: one block per matrix
/// (the preconditioning stage of refs. \[5\]/\[42\], itself batched like every
/// other stage of the workflow).
///
/// Per ref. \[5\] the GPU-friendly route is **CholeskyQR** (one Gram GEMM,
/// one small Cholesky, one triangular solve); it fails on panels whose
/// condition number squares past `1/eps` in the Gram, in which case the
/// block falls back to Householder QR (more work, unconditionally stable).
fn batched_counted_qr(gpu: &Gpu, inputs: &[Matrix]) -> Result<Vec<(Matrix, Matrix)>, KernelError> {
    let kc = KernelConfig::new(inputs.len(), 256, 16 * 1024, "wcycle_qr");
    let (factors, _) = gpu.launch_collect(kc, |b, ctx| {
        let a = &inputs[b];
        let (m, n) = a.shape();
        ctx.count_gm_load(m * n);
        match wsvd_linalg::cholesky::cholesky_qr(a) {
            Ok(qr) => {
                // Gram (2mn^2) + Cholesky (n^3/3, tiny) + solve (mn^2).
                ctx.par_step(m * n, 3 * n as u64);
                ctx.count_gm_store(m * n + n * n);
                Ok(qr)
            }
            Err(_) => {
                // Householder QR (2mn^2) plus thin-Q formation (2mn^2).
                ctx.par_step(m * n, 4 * n as u64);
                ctx.serial_step(30 * n as u64); // column-by-column latency
                ctx.count_gm_store(m * n + n * n);
                Ok(wsvd_linalg::qr::qr_thin(a))
            }
        }
    })?;
    Ok(factors)
}

/// Batched `Q * U_R` recovery GEMMs with launch accounting.
fn batched_counted_recover(
    gpu: &Gpu,
    items: &[(usize, Matrix, Matrix)],
) -> Result<Vec<Matrix>, KernelError> {
    let kc = KernelConfig::new(items.len(), 256, 16 * 1024, "wcycle_qr_recover");
    let (products, _) = gpu.launch_collect(kc, |b, ctx| {
        let (_, q, u) = &items[b];
        let (m, k) = q.shape();
        let r = u.cols();
        ctx.count_gm_load(m * k + k * r);
        ctx.par_step(m * r, 2 * k as u64);
        ctx.count_gm_store(m * r);
        Ok(wsvd_linalg::matmul(q, u))
    })?;
    Ok(products)
}

/// Dynamic ordering (ref. \[12\]): orders all block pairs of one sweep by
/// descending normalized cross-Gram weight, then packs them greedily into
/// steps of disjoint pairs — the heaviest couplings are attacked first.
/// (The weights fall out of the Gram products a real sweep computes anyway,
/// so no extra cost is charged to the model.)
fn dynamic_schedule(task: &Matrix, parts: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    let b = parts.len();
    if b < 2 {
        return Vec::new();
    }
    // Per-block Frobenius norms.
    let norms: Vec<f64> = parts
        .iter()
        .map(|&(start, width)| {
            let mut s = 0.0;
            for c in start..start + width {
                s += dot(task.col(c), task.col(c));
            }
            s.sqrt().max(f64::MIN_POSITIVE)
        })
        .collect();
    // Pair weights: ||A_i^T A_j||_F normalized.
    let mut weighted: Vec<(f64, usize, usize)> = Vec::with_capacity(b * (b - 1) / 2);
    for j in 0..b {
        for i in 0..j {
            let (si, wi) = parts[i];
            let (sj, wj) = parts[j];
            let mut s = 0.0;
            for ci in si..si + wi {
                for cj in sj..sj + wj {
                    let d = dot(task.col(ci), task.col(cj));
                    s += d * d;
                }
            }
            weighted.push((s.sqrt() / (norms[i] * norms[j]), i, j));
        }
    }
    weighted.sort_by(|a, b| b.0.total_cmp(&a.0));
    // Greedy packing into steps of disjoint pairs.
    let mut steps: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut used: Vec<Vec<bool>> = Vec::new();
    for (_, i, j) in weighted {
        let slot = used.iter().position(|u| !u[i] && !u[j]);
        match slot {
            Some(k) => {
                steps[k].push((i, j));
                used[k][i] = true;
                used[k][j] = true;
            }
            None => {
                let mut u = vec![false; b];
                u[i] = true;
                u[j] = true;
                used.push(u);
                steps.push(vec![(i, j)]);
            }
        }
    }
    steps
}

/// Columns `[start, start+w)` blocks of an `n`-column matrix (ragged tail).
fn partition_cols(n: usize, w: usize) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut start = 0;
    while start < n {
        let width = w.min(n - start);
        parts.push((start, width));
        start += width;
    }
    parts
}

fn gather_pair(m: &Matrix, i_start: usize, i_w: usize, j_start: usize, j_w: usize) -> Matrix {
    let rows = m.rows();
    let mut out = Matrix::zeros(rows, i_w + j_w);
    for c in 0..i_w {
        out.col_mut(c).copy_from_slice(m.col(i_start + c));
    }
    for c in 0..j_w {
        out.col_mut(i_w + c).copy_from_slice(m.col(j_start + c));
    }
    out
}

fn scatter_pair(m: &mut Matrix, r: &PairRef, block: &Matrix) {
    for c in 0..r.i_width {
        m.col_mut(r.i_start + c).copy_from_slice(block.col(c));
    }
    for c in 0..r.j_width {
        m.col_mut(r.j_start + c)
            .copy_from_slice(block.col(r.i_width + c));
    }
}

/// Rebuilds the rotated pair block `A_ij J = U Σ` (zero-padded for
/// rank-deficient wide blocks) from the SM SVD kernel's output.
fn rotated_block(svd: &JacobiSvd, shape: (usize, usize)) -> Matrix {
    let (m, n) = shape;
    let mut out = Matrix::zeros(m, n);
    for (k, &s) in svd.sigma.iter().enumerate() {
        let src = svd.u.col(k);
        let dst = out.col_mut(k);
        for i in 0..m {
            dst[i] = s * src[i];
        }
    }
    out
}

fn resolve_plan(
    gpu: &Gpu,
    cfg: &WCycleConfig,
    level: usize,
    sizes: &[(usize, usize)],
    w_cap: usize,
) -> TailorPlan {
    let m_star = sizes.iter().map(|&(m, _)| m).max().unwrap_or(8);
    match &cfg.tuning {
        Tuning::Auto { threshold } => auto_tune_with_w_cap_traced(
            sizes,
            *threshold,
            w_cap,
            &TuneTelemetry {
                trace: gpu.trace().clone(),
                metrics: gpu.metrics().clone(),
                pid: gpu.trace_pid(),
                level,
                now: gpu.elapsed_seconds(),
            },
        ),
        Tuning::Fixed(p) => TailorPlan::new(p.w.min(w_cap), p.delta, p.threads),
        Tuning::Widths(ws) => {
            let w = *ws.get(level - 1).or_else(|| ws.last()).unwrap_or(&8);
            TailorPlan::new(w.min(w_cap), m_star, 256)
        }
    }
}

/// Sorted `(U, Σ)` extraction from a converged matrix (`columns = UΣ`).
fn extract_u_sigma(conv: &Matrix) -> (Matrix, Vec<f64>) {
    let (m, n) = conv.shape();
    let order = sigma_order(conv);
    let r = m.min(n);
    let mut u = Matrix::zeros(m, r);
    let mut sigma = Vec::with_capacity(r);
    for (k, &j) in order.iter().take(r).enumerate() {
        let s = dot(conv.col(j), conv.col(j)).sqrt();
        sigma.push(s);
        if s > 0.0 {
            let src = conv.col(j);
            let dst = u.col_mut(k);
            for i in 0..m {
                dst[i] = src[i] / s;
            }
        } else if k < m {
            u[(k, k)] = 1.0;
        }
    }
    (u, sigma)
}

/// Column indices of `conv` in order of descending column norm.
fn sigma_order(conv: &Matrix) -> Vec<usize> {
    let n = conv.cols();
    let norms: Vec<f64> = (0..n).map(|j| dot(conv.col(j), conv.col(j))).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]));
    order
}

fn permute_cols(m: &Matrix, order: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for (k, &j) in order.iter().enumerate() {
        out.col_mut(k).copy_from_slice(m.col(j));
    }
    out
}

fn thin(m: &Matrix, r: usize) -> Matrix {
    Matrix::from_fn(m.rows(), r.min(m.cols()), |i, j| m[(i, j)])
}

/// Converts a Level-0 kernel result into the output form, undoing the
/// transpose when needed.
fn finish_one(svd: JacobiSvd, transposed: bool, want_v: bool) -> WSvd {
    let sweeps = svd.stats.sweeps;
    if transposed {
        // Decomposed A^T = U_t Σ V_t^T, so A = V_t Σ U_t^T.
        let r = svd.sigma.len();
        WSvd {
            u: thin(&svd.v, r),
            sigma: svd.sigma,
            v: want_v.then_some(svd.u),
            sweeps,
        }
    } else {
        WSvd {
            u: svd.u,
            sigma: svd.sigma,
            v: want_v.then_some(svd.v),
            sweeps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlphaSelect;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::{random_batch, random_uniform, with_spectrum};
    use wsvd_linalg::singular_values;
    use wsvd_linalg::verify::orthonormality_error;

    fn check_svd(a: &Matrix, out: &WSvd, tol: f64) {
        let want = singular_values(a).unwrap();
        assert_eq!(out.sigma.len(), want.len());
        for (g, w) in out.sigma.iter().zip(&want) {
            assert!((g - w).abs() < tol * (1.0 + w), "sigma {g} vs {w}");
        }
        assert!(out.sigma.windows(2).all(|p| p[0] >= p[1]), "not sorted");
        assert!(orthonormality_error(&out.u) < 1e-8, "U not orthonormal");
        if let Some(v) = &out.v {
            assert!(orthonormality_error(v) < 1e-8, "V not orthonormal");
            // Reconstruction through the leading r columns of V.
            let r = out.sigma.len();
            let mut us = out.u.clone();
            for j in 0..r {
                let s = out.sigma[j];
                for x in us.col_mut(j) {
                    *x *= s;
                }
            }
            let vthin = Matrix::from_fn(a.cols(), r, |i, j| v[(i, j)]);
            let rec = wsvd_linalg::matmul(&us, &vthin.transpose());
            let denom = a.fro_norm().max(1e-300);
            assert!(
                rec.sub(a).fro_norm() / denom < 1e-8,
                "reconstruction residual {}",
                rec.sub(a).fro_norm() / denom
            );
        }
    }

    fn run(mats: &[Matrix], cfg: &WCycleConfig) -> WCycleOutput {
        let gpu = Gpu::new(V100);
        wcycle_svd(&gpu, mats, cfg).unwrap()
    }

    #[test]
    fn partition_cols_ragged() {
        assert_eq!(partition_cols(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(partition_cols(4, 2), vec![(0, 2), (2, 2)]);
    }

    #[test]
    fn small_matrices_go_level0() {
        let mats = random_batch(5, 16, 16, 1);
        let out = run(&mats, &WCycleConfig::default());
        assert_eq!(out.stats.level0_sm_svds, 5);
        assert_eq!(out.stats.total_rotations(), 0);
        for (a, r) in mats.iter().zip(&out.results) {
            check_svd(a, r, 1e-8);
        }
    }

    #[test]
    fn medium_matrix_uses_block_rotations() {
        // 100x100 does not fit whole (V accumulation): goes to Level 1.
        let mats = random_batch(2, 100, 100, 2);
        let out = run(&mats, &WCycleConfig::default());
        assert_eq!(out.stats.level0_sm_svds, 0);
        assert!(out.stats.total_rotations() > 0);
        assert!(out.stats.max_level >= 1);
        for (a, r) in mats.iter().zip(&out.results) {
            check_svd(a, r, 1e-8);
            assert!(r.sweeps > 0);
        }
    }

    #[test]
    fn known_spectrum_through_levels() {
        let sigma: Vec<f64> = (1..=96).rev().map(|k| k as f64 / 7.0).collect();
        let a = with_spectrum(96, 96, &sigma, 77);
        let out = run(std::slice::from_ref(&a), &WCycleConfig::default());
        check_svd(&a, &out.results[0], 1e-8);
    }

    #[test]
    fn wide_input_swaps_factors() {
        let a = random_uniform(24, 72, 5);
        let out = run(std::slice::from_ref(&a), &WCycleConfig::default());
        let r = &out.results[0];
        assert_eq!(r.u.shape(), (24, 24));
        assert_eq!(r.v.as_ref().unwrap().rows(), 72);
        check_svd(&a, r, 1e-8);
    }

    #[test]
    fn mixed_size_batch() {
        let mats = vec![
            random_uniform(16, 16, 1),   // level 0
            random_uniform(100, 100, 2), // block path
            random_uniform(20, 60, 3),   // wide, level 0 after transpose
        ];
        let out = run(&mats, &WCycleConfig::default());
        for (a, r) in mats.iter().zip(&out.results) {
            check_svd(a, r, 1e-8);
        }
        assert_eq!(out.stats.level0_sm_svds, 2);
    }

    #[test]
    fn want_v_false_skips_v() {
        let mats = random_batch(2, 100, 100, 9);
        let cfg = WCycleConfig {
            want_v: false,
            ..Default::default()
        };
        let out = run(&mats, &cfg);
        for r in &out.results {
            assert!(r.v.is_none());
        }
        // Singular values still correct.
        let want = singular_values(&mats[0]).unwrap();
        for (g, w) in out.results[0].sigma.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8 * (1.0 + w));
        }
    }

    #[test]
    fn deep_recursion_on_large_matrix() {
        // 320x320: w1 from auto-tune is large; group (iii) must appear when
        // the width cap starts at 48 (pair blocks 320x96 don't fit SVD, EVD
        // of 96x96 doesn't fit either at w=48).
        let cfg = WCycleConfig {
            tuning: Tuning::Widths(vec![48, 16]),
            ..Default::default()
        };
        let a = random_uniform(320, 320, 11);
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &cfg).unwrap();
        assert!(out.stats.recursed_blocks > 0, "expected Level-2 recursion");
        assert!(out.stats.max_level >= 2);
        check_svd(&a, &out.results[0], 1e-8);
    }

    #[test]
    fn fixed_width_schedule_respected() {
        let cfg = WCycleConfig {
            tuning: Tuning::Widths(vec![8]),
            ..Default::default()
        };
        let a = random_uniform(64, 64, 13);
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &cfg).unwrap();
        assert_eq!(out.stats.widths_per_level[0], 8);
        check_svd(&a, &out.results[0], 1e-8);
    }

    #[test]
    fn untailored_gemm_gives_same_numerics() {
        let a = random_uniform(96, 96, 17);
        let tailored = run(std::slice::from_ref(&a), &WCycleConfig::default());
        let plain = run(
            std::slice::from_ref(&a),
            &WCycleConfig {
                tailor_gemm: false,
                ..Default::default()
            },
        );
        for (x, y) in tailored.results[0]
            .sigma
            .iter()
            .zip(&plain.results[0].sigma)
        {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn alpha_fixed_works() {
        let cfg = WCycleConfig {
            alpha: AlphaSelect::Fixed(32),
            ..Default::default()
        };
        let mats = random_batch(3, 24, 24, 19);
        let out = run(&mats, &cfg);
        for (a, r) in mats.iter().zip(&out.results) {
            check_svd(a, r, 1e-8);
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        let sigma = vec![5.0, 2.0, 1.0, 0.0, 0.0, 0.0];
        // 80x6 is tall; its 80x6 working set fits level 0. Embed in a
        // bigger matrix instead: 100x100 of rank 50.
        let mut s = vec![0.0; 100];
        for (k, x) in s.iter_mut().take(50).enumerate() {
            *x = 50.0 - k as f64;
        }
        let a = with_spectrum(100, 100, &s, 23);
        let out = run(std::slice::from_ref(&a), &WCycleConfig::default());
        let got = &out.results[0].sigma;
        for (g, w) in got.iter().zip(&s) {
            assert!((g - w).abs() < 1e-7 * (1.0 + w), "{g} vs {w}");
        }
        let _ = sigma;
    }

    #[test]
    fn qr_preconditioning_gives_identical_factorization() {
        // A very tall matrix: with preconditioning the Jacobi workflow runs
        // on the 24x24 R instead of 300x24 columns.
        let a = random_uniform(300, 24, 37);
        let plain = run(std::slice::from_ref(&a), &WCycleConfig::default());
        let pre = run(
            std::slice::from_ref(&a),
            &WCycleConfig {
                qr_precondition: true,
                ..Default::default()
            },
        );
        check_svd(&a, &pre.results[0], 1e-8);
        for (x, y) in plain.results[0].sigma.iter().zip(&pre.results[0].sigma) {
            assert!((x - y).abs() < 1e-8 * (1.0 + y));
        }
    }

    #[test]
    fn qr_preconditioning_reduces_simulated_time_for_tall_inputs() {
        // Tall enough that the sweeps' repeated full-height GEMMs dominate
        // the one-shot 4mn^2 QR cost.
        let mats = random_batch(4, 2048, 64, 39);
        let time = |flag: bool| {
            let gpu = Gpu::new(V100);
            let cfg = WCycleConfig {
                qr_precondition: flag,
                ..Default::default()
            };
            wcycle_svd(&gpu, &mats, &cfg).unwrap();
            gpu.elapsed_seconds()
        };
        let (plain, pre) = (time(false), time(true));
        assert!(
            pre < plain,
            "QR preconditioning should pay off: {pre} !< {plain}"
        );
    }

    #[test]
    fn qr_preconditioning_survives_cholqr_breakdown() {
        // cond ~ 1e10 squares past 1/eps in the Gram: CholeskyQR fails and
        // the Householder fallback must still deliver a correct SVD.
        let a = wsvd_linalg::generate::with_condition_number(200, 24, 1e10, 43);
        let out = run(
            std::slice::from_ref(&a),
            &WCycleConfig {
                qr_precondition: true,
                ..Default::default()
            },
        );
        let want = wsvd_linalg::singular_values(&a).unwrap();
        // The dominant half of the spectrum must hold to high relative
        // accuracy through the preconditioner.
        for (g, w) in out.results[0].sigma.iter().zip(&want).take(12) {
            assert!((g - w).abs() / w < 1e-7, "{g} vs {w}");
        }
    }

    #[test]
    fn qr_preconditioning_skips_squarish_inputs() {
        // Aspect ratio below the threshold: identical path, identical time.
        let mats = random_batch(2, 80, 60, 41);
        let run_t = |flag: bool| {
            let gpu = Gpu::new(V100);
            let cfg = WCycleConfig {
                qr_precondition: flag,
                ..Default::default()
            };
            wcycle_svd(&gpu, &mats, &cfg).unwrap();
            (gpu.elapsed_seconds(), gpu.timeline().launches)
        };
        assert_eq!(run_t(false), run_t(true));
    }

    #[test]
    fn dynamic_ordering_converges_to_same_spectrum() {
        let a = random_uniform(90, 90, 41);
        let static_out = run(std::slice::from_ref(&a), &WCycleConfig::default());
        let dynamic_out = run(
            std::slice::from_ref(&a),
            &WCycleConfig {
                dynamic_ordering: true,
                ..Default::default()
            },
        );
        check_svd(&a, &dynamic_out.results[0], 1e-8);
        for (s, d) in static_out.results[0]
            .sigma
            .iter()
            .zip(&dynamic_out.results[0].sigma)
        {
            assert!((s - d).abs() < 1e-8 * (1.0 + s));
        }
        // Dynamic ordering must not need more sweeps than round-robin.
        assert!(dynamic_out.results[0].sweeps <= static_out.results[0].sweeps + 1);
    }

    #[test]
    fn dynamic_schedule_covers_all_pairs_disjointly() {
        let a = random_uniform(30, 24, 43);
        let parts = partition_cols(24, 6);
        let sched = dynamic_schedule(&a, &parts);
        let mut seen = std::collections::HashSet::new();
        for step in &sched {
            let mut used = std::collections::HashSet::new();
            for &(i, j) in step {
                assert!(i < j);
                assert!(seen.insert((i, j)), "pair repeated");
                assert!(used.insert(i) && used.insert(j), "index reused in step");
            }
        }
        assert_eq!(seen.len(), 4 * 3 / 2);
    }

    #[test]
    fn non_finite_input_is_rejected() {
        let gpu = Gpu::new(V100);
        let mut a = random_uniform(8, 8, 1);
        a[(3, 3)] = f64::NAN;
        let err = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default());
        assert!(err.is_err(), "NaN input must be rejected");
    }

    #[test]
    fn traced_run_emits_level_spans_sweeps_and_autotune_plans() {
        use wsvd_trace::{ArgValue, EventKind, TraceSink};

        let sink = TraceSink::enabled();
        let gpu = Gpu::with_trace(V100, sink.clone());
        let mats = random_batch(2, 100, 100, 2);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        let evs = sink.events();

        let arg = |ev: &wsvd_trace::Event, key: &str| -> ArgValue {
            ev.args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };

        // The auto-tuner documented its choice (with rejected scores) before
        // any rotation of the level ran.
        let plan = evs
            .iter()
            .find(|e| e.track == "autotune" && e.name == "plan")
            .expect("plan-selection event");
        assert_eq!(arg(plan, "level"), ArgValue::U64(1));
        assert!(matches!(arg(plan, "rejected"), ArgValue::Str(_)));

        // Per-sweep instants carry the convergence telemetry; the run ends
        // with no active matrices and the coherence collapsed.
        let sweeps: Vec<_> = evs
            .iter()
            .filter(|e| e.track == "wcycle" && e.name == "sweep")
            .collect();
        assert!(
            sweeps.len() >= 2,
            "expected multiple sweeps, got {}",
            sweeps.len()
        );
        let coh = |e: &wsvd_trace::Event| match arg(e, "coherence") {
            ArgValue::F64(x) => x,
            other => panic!("coherence not F64: {other:?}"),
        };
        assert!(
            coh(sweeps[0]) > 1e-3,
            "first sweep should still be incoherent"
        );
        assert!(
            coh(sweeps.last().unwrap()) < 1e-9,
            "final sweep must be converged"
        );
        assert_eq!(arg(sweeps.last().unwrap(), "active"), ArgValue::U64(0));
        let rotations: u64 = sweeps
            .iter()
            .map(|e| match arg(e, "rotations") {
                ArgValue::U64(r) => r,
                other => panic!("rotations not U64: {other:?}"),
            })
            .sum();
        assert!(rotations > 0);

        // The level-1 recursion span covers every sweep instant.
        let level = evs
            .iter()
            .find(|e| e.track == "wcycle" && e.name == "level 1")
            .expect("level span");
        let EventKind::Span { start, dur } = level.kind else {
            panic!("not a span")
        };
        assert!(dur > 0.0);
        for s in &sweeps {
            let EventKind::Instant { ts } = s.kind else {
                panic!("not an instant")
            };
            assert!(ts >= start && ts <= start + dur + 1e-15);
        }
    }

    #[test]
    fn traced_level0_batch_reports_alpha_plan_and_kernel_sweeps() {
        use wsvd_trace::{ArgValue, EventKind, TraceSink};

        let sink = TraceSink::enabled();
        let gpu = Gpu::with_trace(V100, sink.clone());
        let mats = random_batch(5, 16, 16, 1);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        let evs = sink.events();
        let arg = |ev: &wsvd_trace::Event, key: &str| -> ArgValue {
            ev.args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };

        // The α-warp rule is recorded as the Level-0 plan selection:
        // gcd(16, 32) = 16 threads per pair, with the other widths rejected.
        let plan = evs
            .iter()
            .find(|e| e.track == "autotune" && e.name == "plan")
            .expect("alpha plan event");
        assert_eq!(arg(plan, "level"), ArgValue::U64(0));
        assert_eq!(arg(plan, "param"), ArgValue::Str("alpha".into()));
        assert_eq!(arg(plan, "threads_per_pair"), ArgValue::U64(16));
        assert_eq!(
            arg(plan, "rejected"),
            ArgValue::Str("tpp=4; tpp=8; tpp=32".into())
        );

        // Per-sweep instants from inside the SM kernel, timestamped within
        // the launch interval and ending converged.
        let sweeps: Vec<_> = evs
            .iter()
            .filter(|e| {
                e.track == "wcycle" && e.name == "sweep" && arg(e, "level") == ArgValue::U64(0)
            })
            .collect();
        assert!(!sweeps.is_empty(), "level-0 kernel sweeps must be traced");
        let end = gpu.elapsed_seconds();
        let mut prev = 0.0;
        for s in &sweeps {
            let EventKind::Instant { ts } = s.kind else {
                panic!("not an instant")
            };
            assert!(ts >= prev && ts <= end, "ts {ts} outside [{prev}, {end}]");
            prev = ts;
        }
        match arg(sweeps.last().unwrap(), "coherence") {
            ArgValue::F64(c) => assert!(c < 1e-9, "final coherence {c} not converged"),
            other => panic!("coherence not F64: {other:?}"),
        }
    }

    #[test]
    fn untraced_run_emits_no_events() {
        let sink = wsvd_trace::TraceSink::disabled();
        let gpu = Gpu::with_trace(V100, sink.clone());
        let mats = random_batch(1, 100, 100, 2);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn sanitized_wcycle_is_clean_and_numerically_identical() {
        use wsvd_gpu_sim::SanitizeMode;
        let a = random_uniform(100, 100, 2);
        let plain = run(std::slice::from_ref(&a), &WCycleConfig::default());
        let gpu = Gpu::with_sanitize(V100, SanitizeMode::Full);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
        let report = gpu.sanitizer_report();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.stats.blocks_checked > 0, "sanitizer must have run");
        for (x, y) in plain.results[0].sigma.iter().zip(&out.results[0].sigma) {
            assert_eq!(x, y, "sanitizing must not perturb numerics");
        }
    }

    #[test]
    fn sanitized_dynamic_ordering_verifies_every_sweep() {
        use wsvd_gpu_sim::SanitizeMode;
        let a = random_uniform(90, 90, 41);
        let cfg = WCycleConfig {
            dynamic_ordering: true,
            ..Default::default()
        };
        let gpu = Gpu::with_sanitize(V100, SanitizeMode::Full);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &cfg).unwrap();
        assert!(gpu.sanitizer_report().is_clean());
        check_svd(&a, &out.results[0], 1e-8);
    }

    #[test]
    fn simulated_time_accumulates() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(4, 64, 64, 29);
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        let t = gpu.timeline();
        assert!(t.seconds > 0.0);
        assert!(t.launches > 1);
    }

    #[test]
    fn fused_levels_are_bit_identical_and_faster() {
        // The fused pipeline only changes the timing account: numerics and
        // counters must match the serial path bit for bit, while kernel time
        // (coalesced blocks ride resident waves) and overhead both drop.
        let mats = random_batch(3, 96, 96, 31);
        let serial_gpu = Gpu::new(V100);
        let serial = wcycle_svd(&serial_gpu, &mats, &WCycleConfig::default()).unwrap();
        let fused_gpu = Gpu::new(V100);
        let fused_cfg = WCycleConfig {
            fused: true,
            ..WCycleConfig::default()
        };
        let fused = wcycle_svd(&fused_gpu, &mats, &fused_cfg).unwrap();

        for (s, f) in serial.results.iter().zip(&fused.results) {
            assert_eq!(s.sigma, f.sigma, "fusion must not perturb numerics");
            assert_eq!(s.u.as_slice(), f.u.as_slice());
            assert_eq!(
                s.v.as_ref().map(|v| v.as_slice()),
                f.v.as_ref().map(|v| v.as_slice())
            );
        }
        let st = serial_gpu.timeline();
        let ft = fused_gpu.timeline();
        assert_eq!(st.launches, ft.launches);
        assert_eq!(st.totals, ft.totals);
        assert!(
            ft.kernel_seconds <= st.kernel_seconds,
            "riding resident waves can only shrink kernel time"
        );
        assert!(ft.overhead_seconds < st.overhead_seconds);
        assert!(ft.seconds < st.seconds);

        let g = fused_gpu.graph_stats();
        assert!(g.graphs >= 1, "each level replays one graph");
        assert!(g.nodes > 0);
        assert!(g.overhead_saved_seconds > 0.0);
        assert_eq!(serial_gpu.graph_stats().graphs, 0);
    }

    #[test]
    fn health_off_is_bit_identical_to_watched_run() {
        // The whole health layer is observational: simulated time and every
        // numeric output must match bit for bit whether the sink is on or
        // off. Covers both the Level-0 SM path and the block-rotation path.
        let mats = {
            let mut v = random_batch(2, 96, 96, 41);
            v.extend(random_batch(3, 16, 16, 42));
            v
        };
        let run = |with_health: bool| {
            let mut gpu = Gpu::new(V100);
            if with_health {
                let sink = wsvd_health::HealthSink::enabled();
                sink.set_context("bit-identity", 41);
                gpu.set_health(sink);
            }
            let out = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
            (gpu.elapsed_seconds(), gpu.timeline().totals, out)
        };
        let (t_off, c_off, out_off) = run(false);
        let (t_on, c_on, out_on) = run(true);
        assert_eq!(
            t_off.to_bits(),
            t_on.to_bits(),
            "health must not perturb simulated time"
        );
        assert_eq!(c_off, c_on);
        for (a, b) in out_off.results.iter().zip(&out_on.results) {
            assert_eq!(a.sigma, b.sigma);
            assert_eq!(a.u.as_slice(), b.u.as_slice());
            assert_eq!(
                a.v.as_ref().map(|v| v.as_slice()),
                b.v.as_ref().map(|v| v.as_slice())
            );
        }
    }

    #[test]
    fn clean_watched_run_fires_no_incidents() {
        let sink = wsvd_health::HealthSink::enabled();
        sink.set_context("clean", 7);
        let mut gpu = Gpu::new(V100);
        gpu.set_health(sink.clone());
        let mats = {
            let mut v = random_batch(2, 96, 96, 7);
            v.extend(random_batch(4, 32, 32, 8));
            v
        };
        wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        assert_eq!(
            sink.incident_count(),
            0,
            "clean run must be green: {:?}",
            sink.incidents()
                .iter()
                .map(|i| (i.kind.clone(), i.detail.clone()))
                .collect::<Vec<_>>()
        );
        assert!(
            sink.events_recorded() > 0,
            "the flight recorder still observed the run"
        );
    }

    #[test]
    fn loosened_inner_tol_fires_exactly_one_stagnation_incident() {
        // `inner_tol_override` looser than `tol` breaks the invariant that
        // inner generators out-resolve the outer test: each sweep leaves the
        // level's coherence stuck just above `tol`, the textbook stagnation
        // the watchdog exists for.
        let sink = wsvd_health::HealthSink::enabled();
        sink.set_context("stagnation", 43);
        let mut gpu = Gpu::new(V100);
        gpu.set_health(sink.clone());
        let mats = random_batch(1, 96, 96, 43);
        let cfg = WCycleConfig {
            tol: 1e-12,
            inner_tol_override: Some(1e-4),
            max_sweeps: 12,
            ..WCycleConfig::default()
        };
        wcycle_svd(&gpu, &mats, &cfg).unwrap();
        let incidents = sink.incidents();
        let stagnations: Vec<_> = incidents
            .iter()
            .filter(|i| i.kind == "stagnation")
            .collect();
        assert_eq!(
            stagnations.len(),
            1,
            "expected exactly one stagnation incident, got {incidents:?}"
        );
        let inc = stagnations[0];
        assert_eq!(inc.seed, 43, "incident must carry the replayable seed");
        assert!(inc.level.is_some());
        assert!(
            inc.plan.is_some(),
            "the in-force plan is part of the report"
        );
        assert!(!inc.flight_tail.is_empty());

        // Replay: regenerating from the embedded seed and re-running the
        // same config deterministically reproduces the stagnation.
        let replay_sink = wsvd_health::HealthSink::enabled();
        replay_sink.set_context("replay", inc.seed);
        let mut replay_gpu = Gpu::new(V100);
        replay_gpu.set_health(replay_sink.clone());
        let replay_mats = random_batch(1, 96, 96, inc.seed);
        wcycle_svd(&replay_gpu, &replay_mats, &cfg).unwrap();
        let replayed = replay_sink.incidents();
        assert_eq!(
            replayed.iter().filter(|i| i.kind == "stagnation").count(),
            1,
            "replay must reproduce the stagnation"
        );
    }
}
