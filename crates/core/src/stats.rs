//! Aggregate statistics of a W-cycle run.

use serde::{Deserialize, Serialize};

/// One per-sweep convergence sample of a W-cycle level — the off-diagonal
/// tracker state a cluster checkpoint serializes for its completed chunks.
/// Only recorded when the config's `record_convergence` flag is on.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// W-cycle level (0 = whole-matrix SM kernel batch).
    pub level: u64,
    /// Sweep number within the level's visit (1-based).
    pub sweep: u64,
    /// Maximum normalized column coherence over the level's tasks.
    pub off_norm: f64,
    /// Tasks still unconverged after this sweep.
    pub active: u64,
}

/// Counters describing where the multilevel workflow spent its rotations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WCycleStats {
    /// Matrices decomposed whole by the SM SVD kernel at Level 0.
    pub level0_sm_svds: usize,
    /// Pair blocks resolved by the SM SVD kernel (Algorithm 2, line 9).
    pub sm_svd_blocks: u64,
    /// Pair blocks resolved by Gram + SM EVD (line 11).
    pub sm_evd_blocks: u64,
    /// Pair blocks that recursed to a deeper level (line 14).
    pub recursed_blocks: u64,
    /// Deepest level reached (Level 0 = whole matrices).
    pub max_level: usize,
    /// Block rotations applied, per level (index = level - 1).
    pub rotations_per_level: Vec<u64>,
    /// W-cycle sweeps per input matrix (0 for Level-0 matrices).
    pub sweeps_per_matrix: Vec<usize>,
    /// Column-block widths chosen per level.
    pub widths_per_level: Vec<usize>,
    /// Per-sweep convergence trajectory, in recording order (empty unless
    /// the config's `record_convergence` is set).
    pub convergence: Vec<SweepRecord>,
}

impl WCycleStats {
    /// Total block rotations across all levels.
    pub fn total_rotations(&self) -> u64 {
        self.rotations_per_level.iter().sum()
    }

    /// Records a rotation at `level` (1-based).
    pub(crate) fn add_rotations(&mut self, level: usize, count: u64) {
        if self.rotations_per_level.len() < level {
            self.rotations_per_level.resize(level, 0);
        }
        self.rotations_per_level[level - 1] += count;
        self.max_level = self.max_level.max(level);
    }

    /// Records the width chosen at `level` (1-based), first writer wins.
    pub(crate) fn note_width(&mut self, level: usize, w: usize) {
        if self.widths_per_level.len() < level {
            self.widths_per_level.resize(level, 0);
        }
        if self.widths_per_level[level - 1] == 0 {
            self.widths_per_level[level - 1] = w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations_accumulate_per_level() {
        let mut s = WCycleStats::default();
        s.add_rotations(1, 10);
        s.add_rotations(2, 5);
        s.add_rotations(1, 2);
        assert_eq!(s.rotations_per_level, vec![12, 5]);
        assert_eq!(s.total_rotations(), 17);
        assert_eq!(s.max_level, 2);
    }

    #[test]
    fn width_first_writer_wins() {
        let mut s = WCycleStats::default();
        s.note_width(1, 48);
        s.note_width(1, 24);
        assert_eq!(s.widths_per_level, vec![48]);
    }
}
