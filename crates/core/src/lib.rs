//! # wsvd-core
//!
//! **W-cycle SVD** — the paper's primary contribution: a size-oblivious
//! multilevel algorithm for batched SVD (Xiao et al., SC 2022, Algorithm 2).
//!
//! The batched one-sided Jacobi method is organized as a recursion over
//! levels: matrices whose SVD fits entirely in GPU shared memory are
//! decomposed in place by the batched SM SVD kernel; larger matrices are
//! partitioned into column blocks whose pair rotations are generated either
//! by the SM SVD kernel (avoiding the Gram GEMM — Observation 1), by the SM
//! EVD kernel on the Gram matrix, or by recursing with a smaller block
//! width. Each level's two batched GEMMs run under the tailoring strategy
//! with auto-tuned `(w_h, δ_h, T_h)` parameters.
//!
//! ```
//! use wsvd_core::{wcycle_svd, WCycleConfig};
//! use wsvd_gpu_sim::{Gpu, V100};
//! use wsvd_linalg::generate::random_uniform;
//!
//! let gpu = Gpu::new(V100);
//! let batch = vec![random_uniform(64, 64, 1), random_uniform(16, 16, 2)];
//! let out = wcycle_svd(&gpu, &batch, &WCycleConfig::default()).unwrap();
//! assert_eq!(out.results.len(), 2);
//! assert!(out.results[0].sigma.windows(2).all(|w| w[0] >= w[1]));
//! ```

#![warn(missing_docs)]

pub mod certify;
pub mod checkpoint;
pub mod config;
pub mod stats;
pub mod verify;
pub mod wcycle;

pub use certify::{
    build_schedule_atlas, certify_claim, check_level, check_level_with, install_store,
    mode as certify_mode, set_mode as set_certify_mode, CertificateStore, CertifiedLevel,
    CertifyError, CertifyMode, DeviceCertificates, FamilyKey, PlanCertificate, PlanClaim,
    PlanOrigin, ScheduleAtlas,
};
pub use checkpoint::{
    ChunkPayload, ChunkRecord, ChunkState, CounterState, RankQueueState, RunCheckpoint,
    CHECKPOINT_VERSION,
};
pub use config::{fused_default, set_fused_default, AlphaSelect, Tuning, WCycleConfig};
pub use stats::{SweepRecord, WCycleStats};
pub use verify::{effective_width, verify_level, LevelCheck};
pub use wcycle::{wcycle_svd, WCycleOutput, WSvd};
