//! Static pre-launch verification of a W-cycle level (the static-analysis
//! half of the `wsvd-sanitizer`).
//!
//! Given the matrix sizes entering a level, the auto-tuner's [`TailorPlan`]
//! and the configured pair [`Ordering`], [`verify_level`] *proves* — before
//! any kernel launches — that
//!
//! 1. the ordering's sweep over the level's column blocks is conflict-free
//!    and covers every block pair exactly once ([`wsvd_jacobi::verify`]);
//! 2. every shared-memory working set the level can select (SM SVD of a
//!    pair block, SM EVD of its Gram matrix, the tailored-GEMM tile) fits
//!    the per-block arena, as a list of labelled [`SmemRequirement`]s.
//!
//! The module also owns [`effective_width`], the single place where the
//! plan's block width is adapted to a task's shape — `decompose_level`
//! consumes it, so the widths the checker reasons about are by construction
//! the widths the workflow uses.

use wsvd_batched::gemm::{gemm_smem_requirement, GEMM_SMEM_BYTES};
use wsvd_batched::models::TailorPlan;
use wsvd_gpu_sim::SmemRequirement;
use wsvd_jacobi::fits::{evd_fits_in_sm, evd_smem_elems, svd_fits_in_sm, svd_smem_elems};
use wsvd_jacobi::ordering::Ordering;
use wsvd_jacobi::verify::{verify_ordering, ScheduleProof};

/// Everything a level check proved.
#[derive(Debug)]
pub struct LevelCheck {
    /// Shared-memory working sets the level may allocate, each verified to
    /// fit the arena (deduplicated by label).
    pub requirements: Vec<SmemRequirement>,
    /// One schedule certificate per task with at least two column blocks.
    pub proofs: Vec<ScheduleProof>,
    /// Pair-block shapes that fit neither SM kernel and will recurse; the
    /// recursion re-verifies at its own level with its own plan.
    pub recursing_shapes: usize,
}

/// The block width `decompose_level` actually uses for an `m x n` task under
/// a plan width `plan_w`: clamped to at most `n/2` (a pair must be two
/// blocks), and divided finer when the single resulting pair block would be
/// the whole task while fitting neither SM kernel — the level must do work,
/// not merely wrap the recursion.
pub fn effective_width(m: usize, n: usize, plan_w: usize, smem_bytes: usize) -> usize {
    let mut w = plan_w.min(n / 2).max(1);
    if 2 * w >= n && !svd_fits_in_sm(m, n, smem_bytes) && !evd_fits_in_sm(n, smem_bytes) {
        w = (n / 4).max(1);
    }
    w
}

/// Statically verifies one W-cycle level before it launches: schedule
/// conflict-freedom and coverage for every task, plus arena fit for every
/// shared-memory requirement the level's group classification can select.
/// Returns a human-readable description of the first failure.
pub fn verify_level(
    sizes: &[(usize, usize)],
    plan: &TailorPlan,
    ordering: Ordering,
    smem_bytes: usize,
) -> Result<LevelCheck, String> {
    let mut requirements: Vec<SmemRequirement> = Vec::new();
    let mut proofs = Vec::new();
    let mut recursing = 0usize;
    let mut gemm_needed = false;
    let push_req = |reqs: &mut Vec<SmemRequirement>, req: SmemRequirement| {
        if !reqs.iter().any(|r| r.label == req.label) {
            reqs.push(req);
        }
    };

    for (t, &(m, n)) in sizes.iter().enumerate() {
        if n < 2 {
            continue; // single column: nothing to pair
        }
        let w = effective_width(m, n, plan.w, smem_bytes);
        let blocks = n.div_ceil(w);
        if blocks < 2 {
            continue;
        }
        let proof = verify_ordering(ordering, blocks).map_err(|e| {
            format!(
                "task {t} ({m}x{n}, w={w}, {blocks} blocks): {ordering:?} schedule invalid: {e}"
            )
        })?;
        proofs.push(proof);

        // The partition is `blocks - 1` full-width blocks plus a ragged
        // tail, so a pair block is `2w` or `w + tail` columns wide — the
        // only shapes the level's group classification will ever see.
        let tail = n - (blocks - 1) * w;
        let mut pair_widths = vec![w + tail];
        if blocks >= 3 || tail == w {
            pair_widths.push(2 * w);
        }
        pair_widths.sort_unstable();
        pair_widths.dedup();
        for nn in pair_widths {
            if svd_fits_in_sm(m, nn, smem_bytes) {
                push_req(
                    &mut requirements,
                    SmemRequirement::from_elems(format!("sm-svd {m}x{nn}"), svd_smem_elems(m, nn)),
                );
            } else if evd_fits_in_sm(nn, smem_bytes) {
                gemm_needed = true;
                push_req(
                    &mut requirements,
                    SmemRequirement::from_elems(format!("sm-evd {nn}x{nn}"), evd_smem_elems(nn)),
                );
            } else {
                recursing += 1;
            }
        }
    }
    if gemm_needed {
        push_req(&mut requirements, gemm_smem_requirement());
    }
    debug_assert_eq!(gemm_smem_requirement().bytes, GEMM_SMEM_BYTES);

    for req in &requirements {
        if !req.fits(smem_bytes) {
            return Err(format!(
                "{} but the per-block arena holds {smem_bytes} B",
                req
            ));
        }
    }
    Ok(LevelCheck {
        requirements,
        proofs,
        recursing_shapes: recursing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SM48K: usize = 48 * 1024;

    fn plan(w: usize) -> TailorPlan {
        TailorPlan::new(w, 64, 256)
    }

    #[test]
    fn effective_width_clamps_and_refines() {
        // Plain clamp: w never exceeds n/2.
        assert_eq!(effective_width(100, 100, 48, SM48K), 48);
        assert_eq!(effective_width(64, 16, 48, SM48K), 8);
        // 100x100 with w = 50: the single pair is the whole matrix and fits
        // neither kernel, so the width drops to n/4.
        assert!(!svd_fits_in_sm(100, 100, SM48K));
        assert!(!evd_fits_in_sm(100, SM48K));
        assert_eq!(effective_width(100, 100, 50, SM48K), 25);
        // Same plan width on a shape whose EVD fits keeps w = n/2.
        assert!(evd_fits_in_sm(40, SM48K));
        assert_eq!(effective_width(2000, 40, 50, SM48K), 20);
    }

    #[test]
    fn clean_level_produces_requirements_and_proofs() {
        let sizes = [(100usize, 100usize), (96, 96)];
        let check = verify_level(&sizes, &plan(24), Ordering::RoundRobin, SM48K).unwrap();
        assert_eq!(check.proofs.len(), 2);
        assert!(check.proofs.iter().all(|p| p.pairs == p.n * (p.n - 1) / 2));
        // 48-column pair blocks go through Gram + EVD, so the EVD and GEMM
        // working sets are both on the list and both fit.
        assert!(check
            .requirements
            .iter()
            .any(|r| r.label.starts_with("sm-evd")));
        assert!(check
            .requirements
            .iter()
            .any(|r| r.label.contains("GEMM tile")));
        assert!(check.requirements.iter().all(|r| r.fits(SM48K)));
        assert_eq!(check.recursing_shapes, 0);
    }

    #[test]
    fn oversized_pairs_are_reported_as_recursing() {
        // 400x400 at w = 48: the 400x96 pair fits neither kernel.
        let check = verify_level(&[(400, 400)], &plan(48), Ordering::RoundRobin, SM48K).unwrap();
        assert!(check.recursing_shapes > 0);
    }

    #[test]
    fn tiny_arena_fails_on_gemm_tile() {
        // An arena smaller than the 16 KiB GEMM tile: the EVD group can
        // still fit tiny matrices, but the tailored GEMM cannot run.
        let small = GEMM_SMEM_BYTES / 2;
        let err = verify_level(&[(2000, 16)], &plan(8), Ordering::RoundRobin, small).unwrap_err();
        assert!(err.contains("GEMM tile"), "{err}");
    }

    #[test]
    fn single_block_tasks_are_skipped() {
        let check = verify_level(&[(8, 1), (16, 2)], &plan(8), Ordering::OddEven, SM48K).unwrap();
        // (8,1) contributes nothing; (16,2) pairs its two single columns.
        assert_eq!(check.proofs.len(), 1);
        assert_eq!(check.proofs[0].n, 2);
    }

    #[test]
    fn all_orderings_verify_on_fig7_shapes() {
        let sizes = [
            (8usize, 32usize),
            (16, 32),
            (32, 32),
            (32, 16),
            (32, 8),
            (96, 96),
        ];
        for o in Ordering::ALL {
            verify_level(&sizes, &plan(16), o, SM48K).unwrap_or_else(|e| panic!("{o:?}: {e}"));
        }
    }
}
