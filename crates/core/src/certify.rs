//! Ahead-of-time plan-space certification.
//!
//! The runtime sanitizer ([`crate::verify::verify_level`]) proves a level
//! sound *per launch*; this module proves whole plan *families* sound *once*,
//! ahead of time, and stores the result in a [`CertificateStore`] that
//! `decompose_level` consults at plan-selection time. A certified plan skips
//! the per-launch static re-verification; an uncertified plan is a hard
//! error before any kernel launches.
//!
//! # Why a family certificate is sound
//!
//! `verify_level`'s per-task obligations decompose as follows. The SM-SVD
//! and SM-EVD [`SmemRequirement`]s it lists are *entailed by the
//! classification predicates*: a pair block only takes the SM-SVD (resp.
//! Gram + SM-EVD) route when `svd_fits_in_sm` (resp. `evd_fits_in_sm`)
//! already holds, and those predicates are exactly the arena-fit tests. The
//! non-tautological residue — what a level check can actually *fail* on —
//! is:
//!
//! 1. the tailored-GEMM tile fitting the arena,
//! 2. the pair schedule being conflict-free with exactly-once coverage for
//!    the task's block count,
//! 3. (for terminal families) the `2w x 2w` Gram EVD fitting SM, which is
//!    what guarantees the recursion bottoms out (Observation 2),
//! 4. kernel thread-shape and barrier well-formedness on the device.
//!
//! All four depend only on the plan family `(w, threads)`, the device, and
//! the task's *block count* — never on the matrix entries and not on `m`
//! beyond the predicates' own guards. So a certificate proving 1–4 for all
//! block counts up to a bound covers every launch the family can make, and
//! the runtime check reduces to: family present, ordering covered, per-task
//! block count within the certified bound.
//!
//! Dynamically generated schedules (`WCycleConfig::dynamic_ordering`) carry
//! no static proof by construction; certified runs keep the per-sweep
//! runtime schedule check for them, exactly as the sanitizer does.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;
use wsvd_batched::gemm::gemm_kernel_resource;
use wsvd_batched::models::TailorPlan;
use wsvd_gpu_sim::{DeviceSpec, KernelResource, ResourceFit};
use wsvd_jacobi::fits::{evd_kernel_resource, max_w_for_evd, svd_kernel_resource, svd_smem_elems};
use wsvd_jacobi::ordering::{Ordering, Schedule};
use wsvd_jacobi::verify::{verify_ordering, verify_schedule, Coverage};

use crate::verify::effective_width;

/// How a plan family entered the certified set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOrigin {
    /// Reachable by `auto_tune_with_w_cap` from the top-level cap.
    Autotuned,
    /// Pinned by configuration (`Tuning::Fixed` / `Tuning::Widths`).
    Pinned,
}

impl Serialize for PlanOrigin {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                PlanOrigin::Autotuned => "autotuned",
                PlanOrigin::Pinned => "pinned",
            }
            .into(),
        )
    }
}

/// A plan family: the quotient of the plan space certification works over.
/// `delta` (the batching granularity) only enters the TLP objective, never a
/// kernel's resource demands, so certificates are keyed by `(w, threads)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FamilyKey {
    /// Column-block width `w`.
    pub w: usize,
    /// Threads per block `T`.
    pub threads: usize,
}

impl FamilyKey {
    /// Stable map key; zero-padded so lexicographic order is numeric order.
    pub fn id(&self) -> String {
        format!("w{:03}-t{:04}", self.w, self.threads)
    }
}

/// What certification is asked to prove for one family. Normal tiers build
/// claims with `terminal` computed from the device; planted-bug probes make
/// false claims on purpose and must be rejected.
#[derive(Clone, Debug)]
pub struct PlanClaim {
    /// The family under test.
    pub key: FamilyKey,
    /// How the family entered the plan space.
    pub origin: PlanOrigin,
    /// Claim that this family never recurses: every pair block up to
    /// `2w` columns wide fits an SM kernel, anchored by the `2w x 2w` Gram
    /// EVD (Observation 2).
    pub terminal: bool,
    /// A custom pair schedule to certify instead of the shipped orderings
    /// (used to probe conflicting-schedule rejection). `(schedule, blocks)`.
    pub custom_schedule: Option<(Schedule, usize)>,
}

impl PlanClaim {
    /// The claim the runtime actually makes for `(w, threads)` on a device:
    /// terminality is computed, not asserted.
    pub fn for_device(w: usize, threads: usize, origin: PlanOrigin, device: &DeviceSpec) -> Self {
        Self {
            key: FamilyKey { w, threads },
            origin,
            terminal: w <= max_w_for_evd(device.smem_per_block_bytes),
            custom_schedule: None,
        }
    }
}

/// Why certification rejected a claim.
#[derive(Clone, Debug)]
pub enum CertifyError {
    /// A kernel the family launches fails its device resource check.
    Resource(String),
    /// The claimed terminal boundary is wrong: the `2w x 2w` Gram EVD
    /// working set overflows the arena.
    TerminalOverflow {
        /// Claimed width.
        w: usize,
        /// EVD working-set bytes at `2w`.
        bytes: usize,
        /// Per-block arena bytes.
        capacity: usize,
    },
    /// A schedule failed conflict-freedom / exactly-once coverage.
    Schedule(String),
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Resource(e) => write!(f, "resource violation: {e}"),
            CertifyError::TerminalOverflow { w, bytes, capacity } => write!(
                f,
                "terminal claim at w={w} is false: EVD of {0}x{0} needs {bytes} B > {capacity} B",
                2 * w
            ),
            CertifyError::Schedule(e) => write!(f, "schedule violation: {e}"),
        }
    }
}

/// A proven, per-kernel placement record inside a certificate.
#[derive(Clone, Debug, Serialize)]
pub struct CertifiedResource {
    /// Kernel family name.
    pub kernel: String,
    /// Per-block shared-memory bytes.
    pub smem_bytes: usize,
    /// Device-wide resident blocks at this footprint.
    pub resident_blocks: usize,
    /// Occupancy when the grid saturates the device (Eq. 10).
    pub occupancy_at_capacity: f64,
}

impl CertifiedResource {
    fn from_fit(r: &KernelResource, fit: ResourceFit) -> Self {
        Self {
            kernel: r.kernel.clone(),
            smem_bytes: r.smem.bytes,
            resident_blocks: fit.resident_blocks,
            occupancy_at_capacity: fit.occupancy_at_capacity,
        }
    }
}

/// Everything proven about one plan family on one device.
#[derive(Clone, Debug, Serialize)]
pub struct PlanCertificate {
    /// Column-block width `w`.
    pub w: usize,
    /// Threads per block `T`.
    pub threads: usize,
    /// How the family entered the plan space.
    pub origin: PlanOrigin,
    /// Proven terminal: pair blocks never recurse on this device.
    pub terminal: bool,
    /// Per-kernel placement proofs (smem fit, residency, occupancy).
    pub resources: Vec<CertifiedResource>,
    /// TLP contributed per unit of `n * m` workload at `delta = 1`
    /// (Eq. 8 reduced to the family constants); positive for every family.
    pub tlp_unit: f64,
}

/// Shared schedule proofs: the orderings' conflict-freedom and exactly-once
/// coverage depend only on the block count, not on the device or family, so
/// they are proven once for every block count up to `max_blocks` and shared
/// by all certificates.
#[derive(Clone, Debug, Serialize)]
pub struct ScheduleAtlas {
    /// Largest block count with an exhaustive proof.
    pub max_blocks: usize,
    /// Ordering names covered (every `Ordering::ALL` member).
    pub orderings: Vec<String>,
    /// Individual `(ordering, blocks)` proofs checked.
    pub proofs: u64,
    /// Total pairs covered across all proofs.
    pub pairs: u64,
}

/// Builds the atlas by running `verify_ordering` for every shipped ordering
/// at every block count `2..=max_blocks`.
pub fn build_schedule_atlas(max_blocks: usize) -> Result<ScheduleAtlas, CertifyError> {
    let mut proofs = 0u64;
    let mut pairs = 0u64;
    for &o in Ordering::ALL.iter() {
        for b in 2..=max_blocks {
            let p = verify_ordering(o, b)
                .map_err(|e| CertifyError::Schedule(format!("{o:?} at {b} blocks: {e}")))?;
            proofs += 1;
            pairs += p.pairs as u64;
        }
    }
    Ok(ScheduleAtlas {
        max_blocks,
        orderings: Ordering::ALL.iter().map(|o| format!("{o:?}")).collect(),
        proofs,
        pairs,
    })
}

/// All certificates for one device.
#[derive(Clone, Debug, Serialize)]
pub struct DeviceCertificates {
    /// Device marketing name (the store lookup key).
    pub device: String,
    /// Per-block arena the proofs assumed; a runtime mismatch invalidates.
    pub smem_per_block_bytes: usize,
    /// Certified families keyed by [`FamilyKey::id`].
    pub families: BTreeMap<String, PlanCertificate>,
}

/// The machine-readable certificate store consulted at plan-selection time.
#[derive(Clone, Debug, Serialize)]
pub struct CertificateStore {
    /// Shared schedule proofs.
    pub atlas: ScheduleAtlas,
    /// Per-device certified families.
    pub devices: BTreeMap<String, DeviceCertificates>,
}

impl CertificateStore {
    /// Empty store around a proven atlas.
    pub fn new(atlas: ScheduleAtlas) -> Self {
        Self {
            atlas,
            devices: BTreeMap::new(),
        }
    }

    /// Total certificates across devices.
    pub fn len(&self) -> usize {
        self.devices.values().map(|d| d.families.len()).sum()
    }

    /// Whether no family is certified.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the certificate for a plan family on a device.
    pub fn lookup(&self, device: &str, w: usize, threads: usize) -> Option<&PlanCertificate> {
        self.devices
            .get(device)?
            .families
            .get(&FamilyKey { w, threads }.id())
    }
}

/// Certifies one claim on one device: discharges the non-tautological
/// obligations listed in the module docs and returns the certificate, or the
/// first failed obligation.
pub fn certify_claim(
    claim: &PlanClaim,
    device: &DeviceSpec,
    atlas: &ScheduleAtlas,
) -> Result<PlanCertificate, CertifyError> {
    let FamilyKey { w, threads } = claim.key;
    let smem = device.smem_per_block_bytes;
    let mut resources = Vec::new();

    // Obligation 2 (shipped orderings): the certificate leans on the shared
    // atlas, so an atlas that does not cover every shipped ordering cannot
    // back a certificate.
    for o in Ordering::ALL.iter() {
        let name = format!("{o:?}");
        if !atlas.orderings.iter().any(|a| a == &name) {
            return Err(CertifyError::Schedule(format!(
                "atlas does not cover ordering {name}"
            )));
        }
    }

    // Obligation 1 + 4 (GEMM): tile fit, thread shape, barriers.
    let gemm = gemm_kernel_resource(threads);
    let fit = gemm
        .check(device)
        .map_err(|e| CertifyError::Resource(e.to_string()))?;
    resources.push(CertifiedResource::from_fit(&gemm, fit));

    // Obligation 3 + 4 (SM-EVD): a terminal family must run the Gram EVD of
    // any pair block it forms, the widest being `2w x 2w` — and the EVD
    // working set is monotone in the matrix order, so the `2w` fit bounds
    // them all. This is the Observation-2 boundary: at 48 KiB it holds for
    // w <= 24 and fails at w = 25.
    if claim.terminal {
        let evd = evd_kernel_resource(2 * w, threads);
        let fit = evd.check(device).map_err(|e| match e {
            wsvd_gpu_sim::ResourceViolation::SmemOverflow {
                bytes, capacity, ..
            } => CertifyError::TerminalOverflow { w, bytes, capacity },
            other => CertifyError::Resource(other.to_string()),
        })?;
        resources.push(CertifiedResource::from_fit(&evd, fit));
    }

    // Obligation 4 (SM-SVD): thread-shape and barrier well-formedness of the
    // SVD kernel family. Its smem fit is the launch precondition itself
    // (`svd_fits_in_sm` guards the route), so the descriptor is built at the
    // widest square shape the arena admits — by construction a fitting one —
    // and the check can only fail on threads or barrier discipline.
    let mut s = 2usize;
    while svd_smem_elems(s + 1, s + 1) * 8 <= smem {
        s += 1;
    }
    let svd = svd_kernel_resource(s, s, threads);
    let fit = svd
        .check(device)
        .map_err(|e| CertifyError::Resource(e.to_string()))?;
    resources.push(CertifiedResource::from_fit(&svd, fit));

    // Obligation 2: schedules. The shipped orderings are proven by the
    // shared atlas; a custom schedule must prove itself here.
    if let Some((sched, blocks)) = &claim.custom_schedule {
        verify_schedule(sched, *blocks, Coverage::ExactlyOnce)
            .map_err(|e| CertifyError::Schedule(format!("custom schedule: {e}")))?;
    }

    Ok(PlanCertificate {
        w,
        threads,
        origin: claim.origin,
        terminal: claim.terminal,
        resources,
        // Eq. 8 per unit workload: n*m/(2*w*delta) * T with n*m = delta = 1.
        tlp_unit: threads as f64 / (2.0 * w as f64),
    })
}

/// How strictly the runtime consults the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertifyMode {
    /// Certificates ignored; behavior identical to before certification.
    Off,
    /// Every selected plan must hold a certificate covering its ordering
    /// and block counts; a miss is a hard error before launch. Certified
    /// levels skip the per-launch `verify_level` re-verification.
    Require,
}

static MODE: AtomicU8 = AtomicU8::new(0);

fn store_slot() -> &'static Mutex<Option<Arc<CertificateStore>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<CertificateStore>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs the process-wide certificate store consulted under
/// [`CertifyMode::Require`].
pub fn install_store(store: Arc<CertificateStore>) {
    *store_slot().lock().unwrap() = Some(store);
}

/// The installed store, if any.
pub fn store() -> Option<Arc<CertificateStore>> {
    store_slot().lock().unwrap().clone()
}

/// Sets the process-wide certification mode (mirrors the sanitizer's
/// `set_global` pattern; `repro --certify` sets `Require` once at startup).
pub fn set_mode(mode: CertifyMode) {
    MODE.store(mode as u8, AtomicOrdering::Relaxed);
}

/// The current certification mode.
pub fn mode() -> CertifyMode {
    match MODE.load(AtomicOrdering::Relaxed) {
        1 => CertifyMode::Require,
        _ => CertifyMode::Off,
    }
}

/// What the runtime consultation proved for one level.
#[derive(Clone, Copy, Debug)]
pub struct CertifiedLevel {
    /// Tasks whose block counts were checked against the certificate.
    pub tasks_checked: usize,
    /// Largest per-task block count seen.
    pub max_task_blocks: usize,
}

/// Consults the store for one level: the selected plan's family must be
/// certified on this device, the configured ordering must be covered by the
/// atlas, and every task's block count must be within the proven bound.
pub fn check_level(
    device: &DeviceSpec,
    plan: &TailorPlan,
    sizes: &[(usize, usize)],
    ordering: Ordering,
) -> Result<CertifiedLevel, String> {
    let store = store().ok_or("no certificate store installed")?;
    check_level_with(&store, device, plan, sizes, ordering)
}

/// [`check_level`] against an explicit store (the global-free core).
pub fn check_level_with(
    store: &CertificateStore,
    device: &DeviceSpec,
    plan: &TailorPlan,
    sizes: &[(usize, usize)],
    ordering: Ordering,
) -> Result<CertifiedLevel, String> {
    let dev = store
        .devices
        .get(device.name)
        .ok_or_else(|| format!("device '{}' has no certificates", device.name))?;
    if dev.smem_per_block_bytes != device.smem_per_block_bytes {
        return Err(format!(
            "certificates for '{}' assume a {} B arena but the device has {} B",
            device.name, dev.smem_per_block_bytes, device.smem_per_block_bytes
        ));
    }
    let key = FamilyKey {
        w: plan.w,
        threads: plan.threads,
    };
    if !dev.families.contains_key(&key.id()) {
        return Err(format!(
            "plan family (w={}, T={}) is not certified on '{}'",
            plan.w, plan.threads, device.name
        ));
    }
    let oname = format!("{ordering:?}");
    if !store.atlas.orderings.iter().any(|o| o == &oname) {
        return Err(format!("ordering {oname} is not covered by the atlas"));
    }
    let mut tasks_checked = 0usize;
    let mut max_task_blocks = 0usize;
    for &(m, n) in sizes {
        if n < 2 {
            continue;
        }
        let w = effective_width(m, n, plan.w, device.smem_per_block_bytes);
        let blocks = n.div_ceil(w);
        if blocks < 2 {
            continue;
        }
        if blocks > store.atlas.max_blocks {
            return Err(format!(
                "task {m}x{n} needs {blocks} column blocks but schedules are only proven up \
                 to {}",
                store.atlas.max_blocks
            ));
        }
        tasks_checked += 1;
        max_task_blocks = max_task_blocks.max(blocks);
    }
    Ok(CertifiedLevel {
        tasks_checked,
        max_task_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{V100, VEGA20};

    fn atlas() -> ScheduleAtlas {
        build_schedule_atlas(16).unwrap()
    }

    #[test]
    fn atlas_counts_every_proof() {
        let a = atlas();
        assert_eq!(a.proofs, 3 * 15); // 3 orderings x blocks 2..=16
        assert_eq!(a.orderings.len(), 3);
        assert!(a.pairs > 0);
    }

    #[test]
    fn terminal_boundary_is_observation_2() {
        let a = atlas();
        let ok = certify_claim(
            &PlanClaim::for_device(24, 256, PlanOrigin::Autotuned, &V100),
            &V100,
            &a,
        )
        .unwrap();
        assert!(ok.terminal);
        assert!(ok.resources.iter().any(|r| r.kernel.starts_with("sm-evd")));

        // A false terminal claim at w = 25 must be rejected: the 50x50 EVD
        // working set is 50_800 B > 49_152 B.
        let mut bad = PlanClaim::for_device(25, 256, PlanOrigin::Pinned, &V100);
        assert!(!bad.terminal, "25 > max_w_for_evd(48 KiB) = 24");
        bad.terminal = true;
        match certify_claim(&bad, &V100, &a) {
            Err(CertifyError::TerminalOverflow { w, bytes, capacity }) => {
                assert_eq!((w, bytes, capacity), (25, 50_800, 49_152));
            }
            other => panic!("expected TerminalOverflow, got {other:?}"),
        }
    }

    #[test]
    fn vega20_terminal_boundary_is_wider() {
        // 64 KiB arena: the boundary moves from w = 24 to w = 28.
        assert_eq!(max_w_for_evd(VEGA20.smem_per_block_bytes), 28);
        let a = atlas();
        let c = certify_claim(
            &PlanClaim::for_device(28, 256, PlanOrigin::Pinned, &VEGA20),
            &VEGA20,
            &a,
        )
        .unwrap();
        assert!(c.terminal);
    }

    #[test]
    fn conflicting_custom_schedule_rejected() {
        let a = atlas();
        let mut claim = PlanClaim::for_device(16, 256, PlanOrigin::Pinned, &V100);
        // Step 1 reuses index 1 in two pairs: a conflict.
        claim.custom_schedule = Some((vec![vec![(0, 1), (1, 2)], vec![(0, 2)]], 3));
        match certify_claim(&claim, &V100, &a) {
            Err(CertifyError::Schedule(e)) => assert!(e.contains("custom schedule"), "{e}"),
            other => panic!("expected Schedule rejection, got {other:?}"),
        }
    }

    #[test]
    fn check_level_round_trip() {
        let a = build_schedule_atlas(32).unwrap();
        let mut store = CertificateStore::new(a.clone());
        let mut fams = BTreeMap::new();
        let claim = PlanClaim::for_device(16, 256, PlanOrigin::Autotuned, &V100);
        let key = claim.key;
        fams.insert(key.id(), certify_claim(&claim, &V100, &a).unwrap());
        store.devices.insert(
            V100.name.to_string(),
            DeviceCertificates {
                device: V100.name.to_string(),
                smem_per_block_bytes: V100.smem_per_block_bytes,
                families: fams,
            },
        );
        let plan = TailorPlan::new(16, 64, 256);
        let ok = check_level_with(
            &store,
            &V100,
            &plan,
            &[(64, 64), (8, 1)],
            Ordering::RoundRobin,
        )
        .unwrap();
        assert_eq!(ok.tasks_checked, 1);
        assert_eq!(ok.max_task_blocks, 4);

        // Uncertified family: hard error.
        let other = TailorPlan::new(24, 64, 256);
        assert!(
            check_level_with(&store, &V100, &other, &[(64, 64)], Ordering::RoundRobin)
                .unwrap_err()
                .contains("not certified")
        );

        // Block count beyond the proven bound: hard error.
        let big = vec![(2048usize, 2048usize)];
        // w_eff = 16, blocks = 128 > 32.
        assert!(
            check_level_with(&store, &V100, &plan, &big, Ordering::RoundRobin)
                .unwrap_err()
                .contains("proven up to")
        );

        // Unknown device: hard error.
        assert!(
            check_level_with(&store, &VEGA20, &plan, &[(64, 64)], Ordering::RoundRobin)
                .unwrap_err()
                .contains("no certificates")
        );
    }

    #[test]
    fn mode_defaults_off() {
        assert_eq!(mode(), CertifyMode::Off);
    }
}
