//! The on-disk checkpoint format of an elastic cluster run (DESIGN.md §13).
//!
//! [`RunCheckpoint`] is the JSON-serializable mirror of the elastic
//! executor's in-memory [`ElasticCheckpoint`]: everything a killed run needs
//! to resume **bit-identically** to a run that was never interrupted —
//!
//! * the **completed-chunk set** with each chunk's computed payload
//!   (analysis weights) and its partially converged W-cycle sweep state
//!   (the per-level off-diagonal trackers of [`SweepRecord`], plus the
//!   plan's chosen per-level widths);
//! * the **pending work**: every rank's home queue with its claim cursor,
//!   and the requeue pool, verbatim — the resumed scheduler replays the
//!   straight-through pull order exactly;
//! * the **clocks**: per-rank simulated seconds and the collective clock;
//! * the **fault cursors**: which ranks are dead, which planned stalls and
//!   kills have already been applied;
//! * **seed provenance**: the experiment scope and workload seed, so the
//!   inputs regenerate deterministically (the same rule the health layer's
//!   incidents follow), and a caller-supplied `fingerprint` of the chunking
//!   and solver configuration that [`RunCheckpoint::thaw`] refuses to
//!   resume across — resuming under a different plan would silently change
//!   the numerics the bit-identity contract pins.
//!
//! The gpu-sim types ([`TaskChunk`], [`QueueSnapshot`]) are mirrored into
//! flat named-field structs here because the vendored serde shim derives
//! exactly those; the conversions are lossless and tested by a proptest
//! round-trip at the workspace level.

use wsvd_gpu_sim::cluster::{ElasticCheckpoint, QueueSnapshot, RecoveryCounters, TaskChunk};

use serde::{Deserialize, Serialize};

use crate::stats::SweepRecord;

/// Format version stamped into every checkpoint; [`RunCheckpoint::thaw`]
/// rejects other versions.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Serializable mirror of [`TaskChunk`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChunkState {
    /// Stable chunk id.
    pub id: usize,
    /// Batch indices the chunk covers.
    pub indices: Vec<usize>,
    /// Size-class cap (`usize::MAX` = overflow class).
    pub size_class: usize,
    /// Home rank of the chunk.
    pub home_rank: usize,
    /// Mid-chunk deaths charged to this chunk so far.
    pub retries: usize,
    /// Whether the chunk has been orphaned into the requeue pool.
    pub requeued: bool,
}

impl From<&TaskChunk> for ChunkState {
    fn from(c: &TaskChunk) -> Self {
        ChunkState {
            id: c.id,
            indices: c.indices.clone(),
            size_class: c.size_class,
            home_rank: c.home_rank,
            retries: c.retries,
            requeued: c.requeued,
        }
    }
}

impl From<ChunkState> for TaskChunk {
    fn from(c: ChunkState) -> Self {
        TaskChunk {
            id: c.id,
            indices: c.indices,
            size_class: c.size_class,
            home_rank: c.home_rank,
            retries: c.retries,
            requeued: c.requeued,
        }
    }
}

/// One rank's home queue with its claim cursor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankQueueState {
    /// The immutable chunk list of the queue.
    pub chunks: Vec<ChunkState>,
    /// Claim cursor: chunks `0..cursor` were already pulled.
    pub cursor: usize,
}

/// What one completed chunk computed: the per-index analysis weights and
/// the partially converged W-cycle sweep state of the chunk's batched
/// decomposition.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChunkPayload {
    /// Analysis weight vectors, aligned with the chunk's `indices`.
    pub weights: Vec<Vec<f64>>,
    /// Per-sweep off-diagonal trackers of the chunk's W-cycle run
    /// (recorded under `WCycleConfig::record_convergence`).
    pub convergence: Vec<SweepRecord>,
    /// Column-block widths the plan chose per level (`widths_per_level`).
    pub widths: Vec<usize>,
}

/// A completed chunk with its payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// The chunk, as it was when it completed.
    pub chunk: ChunkState,
    /// What it computed.
    pub payload: ChunkPayload,
}

/// Serializable mirror of [`RecoveryCounters`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterState {
    /// Chunks claimed from another rank's home queue.
    pub stolen_chunks: u64,
    /// Chunks moved to the requeue pool.
    pub requeued_chunks: u64,
    /// Mid-flight deaths.
    pub retried_chunks: u64,
    /// Chunks abandoned after retry exhaustion.
    pub unrecovered_chunks: u64,
    /// Simulated seconds spent re-executing requeued work.
    pub recovery_seconds: f64,
    /// Serialized checkpoint size in bytes.
    pub checkpoint_bytes: u64,
    /// Ranks that died during the run.
    pub killed_ranks: u64,
}

impl From<&RecoveryCounters> for CounterState {
    fn from(c: &RecoveryCounters) -> Self {
        CounterState {
            stolen_chunks: c.stolen_chunks,
            requeued_chunks: c.requeued_chunks,
            retried_chunks: c.retried_chunks,
            unrecovered_chunks: c.unrecovered_chunks,
            recovery_seconds: c.recovery_seconds,
            checkpoint_bytes: c.checkpoint_bytes,
            killed_ranks: c.killed_ranks,
        }
    }
}

impl From<CounterState> for RecoveryCounters {
    fn from(c: CounterState) -> Self {
        RecoveryCounters {
            stolen_chunks: c.stolen_chunks,
            requeued_chunks: c.requeued_chunks,
            retried_chunks: c.retried_chunks,
            unrecovered_chunks: c.unrecovered_chunks,
            recovery_seconds: c.recovery_seconds,
            checkpoint_bytes: c.checkpoint_bytes,
            killed_ranks: c.killed_ranks,
        }
    }
}

/// The full serializable state of a partially completed elastic run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Experiment scope the run belongs to.
    pub experiment: String,
    /// RNG seed the workload regenerates from (seed provenance).
    pub workload_seed: u64,
    /// Caller-supplied digest of the chunking + solver configuration;
    /// [`RunCheckpoint::thaw`] refuses a mismatch.
    pub fingerprint: String,
    /// Completed chunks with their payloads, completion order.
    pub completed: Vec<ChunkRecord>,
    /// Per-rank home queues with claim cursors.
    pub queues: Vec<RankQueueState>,
    /// The requeue pool, FIFO order.
    pub pool: Vec<ChunkState>,
    /// Per-rank simulated clocks.
    pub rank_seconds: Vec<f64>,
    /// The collective clock.
    pub sync_seconds: f64,
    /// Which ranks were dead at checkpoint time.
    pub killed: Vec<bool>,
    /// Which planned stalls had been applied.
    pub stalls_applied: Vec<bool>,
    /// Which planned kills had been applied.
    pub kills_applied: Vec<bool>,
    /// Recovery accounting so far.
    pub counters: CounterState,
}

impl RunCheckpoint {
    /// Captures an elastic checkpoint into the serializable format.
    pub fn freeze(
        experiment: &str,
        workload_seed: u64,
        fingerprint: &str,
        ckpt: &ElasticCheckpoint<ChunkPayload>,
    ) -> Self {
        RunCheckpoint {
            version: CHECKPOINT_VERSION,
            experiment: experiment.to_string(),
            workload_seed,
            fingerprint: fingerprint.to_string(),
            completed: ckpt
                .completed
                .iter()
                .map(|(chunk, payload)| ChunkRecord {
                    chunk: chunk.into(),
                    payload: payload.clone(),
                })
                .collect(),
            queues: ckpt
                .queue
                .queues
                .iter()
                .map(|(chunks, cursor)| RankQueueState {
                    chunks: chunks.iter().map(ChunkState::from).collect(),
                    cursor: *cursor,
                })
                .collect(),
            pool: ckpt.queue.pool.iter().map(ChunkState::from).collect(),
            rank_seconds: ckpt.rank_seconds.clone(),
            sync_seconds: ckpt.sync_seconds,
            killed: ckpt.killed.clone(),
            stalls_applied: ckpt.stalls_applied.clone(),
            kills_applied: ckpt.kills_applied.clone(),
            counters: (&ckpt.counters).into(),
        }
    }

    /// Rebuilds the elastic checkpoint, verifying the format version and
    /// the configuration fingerprint (resuming under a different chunking
    /// or solver setup would break the bit-identity contract, so it is an
    /// error, not a best effort).
    pub fn thaw(self, fingerprint: &str) -> Result<ElasticCheckpoint<ChunkPayload>, String> {
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        if self.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint `{}` does not match the current configuration `{fingerprint}`",
                self.fingerprint
            ));
        }
        Ok(ElasticCheckpoint {
            completed: self
                .completed
                .into_iter()
                .map(|r| (r.chunk.into(), r.payload))
                .collect(),
            queue: QueueSnapshot {
                queues: self
                    .queues
                    .into_iter()
                    .map(|q| {
                        (
                            q.chunks.into_iter().map(TaskChunk::from).collect(),
                            q.cursor,
                        )
                    })
                    .collect(),
                pool: self.pool.into_iter().map(TaskChunk::from).collect(),
            },
            rank_seconds: self.rank_seconds,
            sync_seconds: self.sync_seconds,
            killed: self.killed,
            stalls_applied: self.stalls_applied,
            kills_applied: self.kills_applied,
            counters: self.counters.into(),
        })
    }

    /// Serializes to pretty-printed JSON. Every finite `f64` round-trips
    /// bit-exactly through the vendored shortest-round-trip renderer, which
    /// is what lets a thawed run resume bit-identically.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("checkpoint parse error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunCheckpoint {
        let chunk = |id: usize, requeued: bool| ChunkState {
            id,
            indices: vec![2 * id, 2 * id + 1],
            size_class: 64,
            home_rank: id % 2,
            retries: usize::from(requeued),
            requeued,
        };
        RunCheckpoint {
            version: CHECKPOINT_VERSION,
            experiment: "ext-cluster".into(),
            workload_seed: 4242,
            fingerprint: "vega20x2/t1/caps32-512".into(),
            completed: vec![ChunkRecord {
                chunk: chunk(0, false),
                payload: ChunkPayload {
                    weights: vec![vec![0.5, -0.25], vec![1.0 / 3.0]],
                    convergence: vec![SweepRecord {
                        level: 1,
                        sweep: 2,
                        off_norm: 1.25e-7,
                        active: 3,
                    }],
                    widths: vec![48, 16],
                },
            }],
            queues: vec![
                RankQueueState {
                    chunks: vec![chunk(1, false)],
                    cursor: 1,
                },
                RankQueueState {
                    chunks: vec![chunk(2, false)],
                    cursor: 0,
                },
            ],
            pool: vec![chunk(3, true)],
            rank_seconds: vec![1.5e-3, 7.25e-4],
            sync_seconds: 3.0e-5,
            killed: vec![false, true],
            stalls_applied: vec![true],
            kills_applied: vec![true, false],
            counters: CounterState {
                stolen_chunks: 2,
                requeued_chunks: 1,
                retried_chunks: 1,
                unrecovered_chunks: 0,
                recovery_seconds: 1.0e-4,
                checkpoint_bytes: 0,
                killed_ranks: 1,
            },
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let ckpt = sample();
        let back = RunCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back, ckpt);
        // The clocks specifically must survive bit-exactly — the resume
        // contract depends on it.
        for (a, b) in ckpt.rank_seconds.iter().zip(&back.rank_seconds) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn freeze_thaw_round_trips_through_the_elastic_types() {
        let ckpt = sample();
        let elastic = ckpt.clone().thaw("vega20x2/t1/caps32-512").unwrap();
        let back = RunCheckpoint::freeze("ext-cluster", 4242, "vega20x2/t1/caps32-512", &elastic);
        assert_eq!(back, ckpt);
    }

    #[test]
    fn thaw_rejects_wrong_fingerprint_and_version() {
        let err = sample().thaw("some-other-config").unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        let mut old = sample();
        old.version = 99;
        let err = old.thaw("vega20x2/t1/caps32-512").unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn overflow_size_class_survives_json() {
        let mut ckpt = sample();
        ckpt.pool[0].size_class = usize::MAX;
        let back = RunCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back.pool[0].size_class, usize::MAX);
    }
}
