//! Pair-ordering schedules for Jacobi sweeps.
//!
//! A sweep must orthogonalize every pair `(i, j)` with `i < j` exactly once.
//! For parallel execution each *step* must consist of disjoint pairs (no
//! index appears twice), so that all rotations of the step commute and can
//! run concurrently (§II-B, §IV-C). Three classical schedules are provided:
//! round-robin (the paper's choice), odd-even, and ring ordering.

/// A sweep schedule: `steps[k]` is the set of disjoint pairs of step `k`.
pub type Schedule = Vec<Vec<(usize, usize)>>;

/// Round-robin tournament schedule for `n` indices.
///
/// Index 0 is fixed, the rest rotate; `n-1` steps of `n/2` disjoint pairs
/// (for even `n`). Odd `n` is handled with a phantom index that gives its
/// partner a bye. Every unordered pair appears exactly once per sweep.
pub fn round_robin(n: usize) -> Schedule {
    if n < 2 {
        return vec![];
    }
    let m = if n.is_multiple_of(2) { n } else { n + 1 }; // phantom index == m-1 when odd
    let rounds = m - 1;
    let mut ring: Vec<usize> = (1..m).collect();
    let mut schedule = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut step = Vec::with_capacity(m / 2);
        // Pair 0 with ring[last]; pair ring[k] with ring[m-3-k].
        let partner = ring[m - 2];
        push_pair(&mut step, 0, partner, n);
        for k in 0..(m / 2 - 1) {
            push_pair(&mut step, ring[k], ring[m - 3 - k], n);
        }
        schedule.push(step);
        ring.rotate_right(1);
    }
    schedule
}

/// Odd-even (Brent–Luk) transposition ordering: alternating steps pair the
/// *current* occupants of adjacent slots, then exchange them, so indices
/// migrate and every pair meets within `n` steps. This is the classical
/// systolic ordering; `n` steps form one complete sweep.
pub fn odd_even(n: usize) -> Schedule {
    if n < 2 {
        return vec![];
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut schedule = Vec::with_capacity(n);
    for step in 0..n {
        let start = step % 2;
        let mut pairs = Vec::with_capacity(n / 2);
        let mut slot = start;
        while slot + 1 < n {
            let (a, b) = (perm[slot], perm[slot + 1]);
            pairs.push(if a < b { (a, b) } else { (b, a) });
            perm.swap(slot, slot + 1);
            slot += 2;
        }
        schedule.push(pairs);
    }
    schedule
}

/// Ring ordering (Zhou–Brent): at step `d` (distance), pair each index `i`
/// with `(i + d) mod n`, keeping only disjoint pairs greedily. Covers every
/// pair once per sweep for even `n`.
pub fn ring(n: usize) -> Schedule {
    if n < 2 {
        return vec![];
    }
    let mut seen = vec![vec![false; n]; n];
    let mut schedule = Vec::new();
    // Greedy: repeatedly build maximal disjoint sets of unseen pairs at
    // increasing distances.
    let total_pairs = n * (n - 1) / 2;
    let mut covered = 0;
    let mut d = 1;
    while covered < total_pairs {
        let mut used = vec![false; n];
        let mut step = Vec::new();
        for i in 0..n {
            let j = (i + d) % n;
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            if !seen[a][b] && !used[a] && !used[b] {
                seen[a][b] = true;
                used[a] = true;
                used[b] = true;
                step.push((a, b));
                covered += 1;
            }
        }
        if !step.is_empty() {
            schedule.push(step);
        }
        d = d % (n - 1) + 1;
    }
    schedule
}

fn push_pair(step: &mut Vec<(usize, usize)>, a: usize, b: usize, n: usize) {
    // Drop pairs involving the phantom index (>= n).
    if a < n && b < n {
        step.push(if a < b { (a, b) } else { (b, a) });
    }
}

/// The available pair orderings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Round-robin tournament (the paper's default).
    RoundRobin,
    /// Odd-even transposition.
    OddEven,
    /// Ring ordering.
    Ring,
}

impl Ordering {
    /// Every shipped ordering, for exhaustive verification sweeps.
    pub const ALL: [Ordering; 3] = [Ordering::RoundRobin, Ordering::OddEven, Ordering::Ring];

    /// Builds the schedule for `n` indices.
    pub fn schedule(self, n: usize) -> Schedule {
        match self {
            Ordering::RoundRobin => round_robin(n),
            Ordering::OddEven => odd_even(n),
            Ordering::Ring => ring(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_covers_all_pairs_once(s: &Schedule, n: usize) {
        let mut seen = HashSet::new();
        for step in s {
            for &(i, j) in step {
                assert!(i < j, "pair ({i},{j}) not normalized");
                assert!(j < n);
                assert!(seen.insert((i, j)), "pair ({i},{j}) repeated");
            }
        }
        assert_eq!(
            seen.len(),
            n * (n - 1) / 2,
            "not all pairs covered for n={n}"
        );
    }

    fn check_steps_disjoint(s: &Schedule) {
        for step in s {
            let mut used = HashSet::new();
            for &(i, j) in step {
                assert!(used.insert(i), "index {i} reused in step");
                assert!(used.insert(j), "index {j} reused in step");
            }
        }
    }

    #[test]
    fn round_robin_even() {
        for n in [2usize, 4, 8, 16, 48] {
            let s = round_robin(n);
            assert_eq!(s.len(), n - 1, "n={n}");
            check_covers_all_pairs_once(&s, n);
            check_steps_disjoint(&s);
            for step in &s {
                assert_eq!(step.len(), n / 2);
            }
        }
    }

    #[test]
    fn round_robin_odd() {
        for n in [3usize, 5, 9] {
            let s = round_robin(n);
            assert_eq!(s.len(), n); // phantom adds one round
            check_covers_all_pairs_once(&s, n);
            check_steps_disjoint(&s);
        }
    }

    #[test]
    fn round_robin_degenerate() {
        assert!(round_robin(0).is_empty());
        assert!(round_robin(1).is_empty());
    }

    #[test]
    fn odd_even_steps_disjoint_and_cover_all_pairs() {
        for n in [2usize, 4, 5, 8, 9, 16] {
            let s = odd_even(n);
            check_steps_disjoint(&s);
            assert_eq!(s.len(), n);
            // Every unordered pair must meet within the sweep (some may
            // meet more than once for odd n).
            let mut seen = HashSet::new();
            for step in &s {
                for &p in step {
                    seen.insert(p);
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}: missing pairs");
        }
    }

    #[test]
    fn ring_covers_all_pairs() {
        for n in [4usize, 6, 8, 10] {
            let s = ring(n);
            check_covers_all_pairs_once(&s, n);
            check_steps_disjoint(&s);
        }
    }

    #[test]
    fn ring_odd_n() {
        let s = ring(7);
        check_covers_all_pairs_once(&s, 7);
        check_steps_disjoint(&s);
    }

    #[test]
    fn ordering_enum_dispatch() {
        assert_eq!(Ordering::RoundRobin.schedule(6).len(), 5);
        assert!(!Ordering::OddEven.schedule(6).is_empty());
        assert!(!Ordering::Ring.schedule(6).is_empty());
    }
}
