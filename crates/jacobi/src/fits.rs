//! Shared-memory footprint predicates.
//!
//! Algorithm 2 branches on whether the SVD of `A_ij` (line 8) or the EVD of
//! `B_ij` (line 10) "can be accomplished entirely within SM". These
//! functions compute the exact working-set of the corresponding kernels; the
//! kernels allocate through the capacity-enforced arena, so a predicate that
//! under-estimates fails loudly in tests rather than silently mis-modelling.

use wsvd_gpu_sim::{BarrierDiscipline, KernelResource, ScheduleFamily};

/// `f64` elements needed by the SM one-sided Jacobi SVD kernel on an
/// `m x n` matrix.
///
/// * Tall/square (`m >= n`): the matrix (`m*n`), the accumulated right
///   singular matrix `V` (`n*n`, needed because the W-cycle consumes
///   `J_ij = V`), and two cached-norm vectors (`2n`).
/// * Wide (`m < n`): the kernel decomposes `A^T` instead (§IV-B); `J` is
///   then read off the *converged columns* of `A^T`, so no accumulation
///   buffer is needed — the footprint is `n*m + m*m + 2m` with the small
///   `m*m` buffer holding `U` of `A^T` only when requested.
pub fn svd_smem_elems(m: usize, n: usize) -> usize {
    if m >= n {
        m * n + n * n + 2 * n
    } else {
        // Transposed problem: matrix + (small) left accumulation + norms.
        n * m + m * m + 2 * m
    }
}

/// `f64` elements needed by the SM two-sided Jacobi EVD kernel on an
/// `s x s` symmetric matrix: `B` itself, the accumulated eigenvector matrix
/// `J`, a half-matrix staging buffer for the parallel all-element update
/// (the kernel double-buffers one panel at a time; per-element reads of the
/// old values stage through it), and the per-step rotation parameters
/// (`2s`). This budget reproduces the paper's Observation-2 boundary: with
/// 48 KiB, an EVD of `2w x 2w` fits for `w <= 24` and overflows at `w = 25`.
pub fn evd_smem_elems(s: usize) -> usize {
    2 * s * s + (s * s) / 2 + 2 * s
}

/// Whether the SM SVD kernel fits an `m x n` matrix in `smem_bytes`.
pub fn svd_fits_in_sm(m: usize, n: usize, smem_bytes: usize) -> bool {
    svd_smem_elems(m, n) * 8 <= smem_bytes
}

/// Whether the SM EVD kernel fits an `s x s` matrix in `smem_bytes`.
pub fn evd_fits_in_sm(s: usize, smem_bytes: usize) -> bool {
    evd_smem_elems(s) * 8 <= smem_bytes
}

/// Largest column-block width `w` such that the EVD of the `2w x 2w` Gram
/// matrix fits in SM — the constraint that terminates the W-cycle recursion
/// (Setup step of Algorithm 2: "EVD of any `2w_L x 2w_L` matrix can be
/// implemented entirely in SM at Level L").
pub fn max_w_for_evd(smem_bytes: usize) -> usize {
    let mut w = 1;
    while evd_fits_in_sm(2 * (w + 1), smem_bytes) {
        w += 1;
    }
    w
}

/// Resource-IR descriptor for the SM one-sided Jacobi SVD kernel on an
/// `m x n` matrix: the [`svd_smem_elems`] working set, whole-block uniform
/// barriers (every lane reaches every `sync_threads`), and a statically
/// generated pair schedule.
pub fn svd_kernel_resource(m: usize, n: usize, threads: usize) -> KernelResource {
    KernelResource::from_elems(
        format!("sm-svd {m}x{n}"),
        svd_smem_elems(m, n),
        threads,
        BarrierDiscipline::Uniform,
        ScheduleFamily::Static,
    )
}

/// Resource-IR descriptor for the SM two-sided Jacobi EVD kernel on an
/// `s x s` symmetric matrix ([`evd_smem_elems`] working set).
pub fn evd_kernel_resource(s: usize, threads: usize) -> KernelResource {
    KernelResource::from_elems(
        format!("sm-evd {s}x{s}"),
        evd_smem_elems(s),
        threads,
        BarrierDiscipline::Uniform,
        ScheduleFamily::Static,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SM48K: usize = 48 * 1024;

    #[test]
    fn paper_observation_2_w24_boundary() {
        // Observation 2 / Fig. 2: for 1536-row matrices, w > 24 means
        // neither the SVD of A_ij (1536 x 2w) nor the EVD of B_ij (2w x 2w)
        // fits in 48 KiB.
        assert!(evd_fits_in_sm(48, SM48K), "EVD of 48x48 must fit");
        assert!(!evd_fits_in_sm(2 * 25, SM48K), "EVD of 50x50 must not fit");
        assert!(
            !svd_fits_in_sm(1536, 48, SM48K),
            "SVD of 1536x48 must not fit"
        );
        assert!(!svd_fits_in_sm(1536, 50, SM48K));
    }

    #[test]
    fn paper_example_32x1024_with_w48() {
        // §III-A: for A^1 of size 32x1024 one may take w_1 = 48; the SVD of
        // the wide 32x96 pair block runs in SM via the transpose trick.
        assert!(svd_fits_in_sm(32, 96, SM48K));
    }

    #[test]
    fn small_matrices_fit() {
        assert!(svd_fits_in_sm(32, 32, SM48K));
        assert!(svd_fits_in_sm(8, 32, SM48K));
        assert!(evd_fits_in_sm(32, SM48K));
    }

    #[test]
    fn huge_matrices_do_not_fit() {
        assert!(!svd_fits_in_sm(1024, 1024, SM48K));
        assert!(!evd_fits_in_sm(1024, SM48K));
    }

    #[test]
    fn max_w_is_consistent() {
        let w = max_w_for_evd(SM48K);
        assert!(evd_fits_in_sm(2 * w, SM48K));
        assert!(!evd_fits_in_sm(2 * (w + 1), SM48K));
        // 2.5*(2w)^2 + 4w elems in 6144: the paper's w = 24 boundary.
        assert_eq!(w, 24);
    }

    #[test]
    fn wide_footprint_smaller_than_naive() {
        // A 32x96 block: naive (accumulating a 96x96 V) would need
        // 32*96 + 96*96 + 192 elems = 12k+ elems > 48 KiB; the transpose
        // path needs 96*32 + 32*32 + 64.
        assert!(svd_smem_elems(32, 96) < 32 * 96 + 96 * 96 + 2 * 96);
        assert_eq!(svd_smem_elems(32, 96), 96 * 32 + 32 * 32 + 64);
    }
}
