//! # wsvd-jacobi
//!
//! Batched Jacobi kernels on the GPU execution-model simulator:
//!
//! * [`onesided`] — the one-sided Jacobi SVD kernel with column-vector
//!   rotations (§II-C), the α-warp task assignment and the Eq.-(6)
//!   inner-product caching of §IV-B, in shared-memory and global-memory
//!   variants;
//! * [`evd`] — the two-sided Jacobi EVD kernel (§II-D), both the serialized
//!   textbook form and the paper's parallel all-element update (§IV-C);
//! * [`ordering`] — round-robin / odd-even / ring pair schedules;
//! * [`fits`] — the exact shared-memory footprint predicates that drive
//!   Algorithm 2's level classification;
//! * [`batch`] — one-block-per-matrix batched launches;
//! * [`verify`] — static conflict-freedom and coverage proofs for any pair
//!   schedule, used by the `wsvd-sanitizer` layer before kernels launch.

#![warn(missing_docs)]

pub mod batch;
pub mod evd;
pub mod fits;
pub mod onesided;
pub mod ordering;
pub mod verify;

pub use batch::{batched_evd_sm, batched_svd_gm, batched_svd_sm};
pub use evd::{evd_in_block, EvdConfig, EvdVariant, JacobiEvd};
pub use fits::{
    evd_fits_in_sm, evd_kernel_resource, max_w_for_evd, svd_fits_in_sm, svd_kernel_resource,
};
pub use onesided::{svd_in_block, JacobiStats, JacobiSvd, MemSpace, OneSidedConfig, SvdSmemLayout};
pub use ordering::Ordering;
pub use verify::{verify_ordering, verify_schedule, Coverage, ScheduleProof, ScheduleViolation};
