//! Batched wrappers: one simulated thread block per matrix.
//!
//! These are the "batched SVD kernel" and "batched EVD kernel" invoked at
//! every level of the W-cycle (Algorithm 2, lines 3/9/11) and by the
//! baselines. Each launch assigns matrix `k` to block `k`; blocks run
//! concurrently under the simulator's scheduler, so large batches raise
//! occupancy exactly as in Fig. 11(a).

use wsvd_gpu_sim::{Gpu, KernelConfig, KernelError, LaunchStats};
use wsvd_linalg::Matrix;

use crate::evd::{evd_in_block, EvdConfig, JacobiEvd};
use crate::onesided::{svd_in_block, JacobiSvd, MemSpace, OneSidedConfig};

/// Batched one-sided Jacobi SVD with working sets in shared memory.
///
/// Fails with [`KernelError::Smem`] if any matrix's working set exceeds the
/// device's static per-block capacity — callers are expected to have
/// filtered with [`crate::fits::svd_fits_in_sm`] first (Algorithm 2).
pub fn batched_svd_sm(
    gpu: &Gpu,
    mats: &[Matrix],
    cfg: &OneSidedConfig,
    threads_per_block: usize,
) -> Result<(Vec<JacobiSvd>, LaunchStats), KernelError> {
    let kc = KernelConfig::new(
        mats.len(),
        threads_per_block,
        gpu.device().smem_per_block_bytes,
        "batched_svd_sm",
    );
    gpu.launch_collect(kc, |b, ctx| {
        svd_in_block(&mats[b], cfg, ctx, MemSpace::Shared)
    })
}

/// Batched one-sided Jacobi SVD operating directly on global memory (the
/// slow path of Fig. 1; used by baselines for matrices that overflow SM).
pub fn batched_svd_gm(
    gpu: &Gpu,
    mats: &[Matrix],
    cfg: &OneSidedConfig,
    threads_per_block: usize,
) -> Result<(Vec<JacobiSvd>, LaunchStats), KernelError> {
    let kc = KernelConfig::new(mats.len(), threads_per_block, 0, "batched_svd_gm");
    gpu.launch_collect(kc, |b, ctx| {
        svd_in_block(&mats[b], cfg, ctx, MemSpace::Global)
    })
}

/// Batched two-sided Jacobi EVD in shared memory (Algorithm 2, line 11).
pub fn batched_evd_sm(
    gpu: &Gpu,
    mats: &[Matrix],
    cfg: &EvdConfig,
    threads_per_block: usize,
) -> Result<(Vec<JacobiEvd>, LaunchStats), KernelError> {
    let kc = KernelConfig::new(
        mats.len(),
        threads_per_block,
        gpu.device().smem_per_block_bytes,
        "batched_evd_sm",
    );
    gpu.launch_collect(kc, |b, ctx| evd_in_block(&mats[b], cfg, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onesided::OneSidedConfig;
    use wsvd_gpu_sim::V100;
    use wsvd_linalg::generate::{random_batch, random_symmetric};
    use wsvd_linalg::singular_values;

    #[test]
    fn batched_svd_sm_matches_reference_per_matrix() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(8, 16, 12, 42);
        let (outs, stats) = batched_svd_sm(&gpu, &mats, &OneSidedConfig::default(), 128).unwrap();
        assert_eq!(outs.len(), 8);
        assert_eq!(stats.grid, 8);
        for (a, svd) in mats.iter().zip(&outs) {
            let want = singular_values(a).unwrap();
            for (g, w) in svd.sigma.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn larger_batches_raise_occupancy() {
        let occ = |count: usize| {
            let gpu = Gpu::new(V100);
            let mats = random_batch(count, 16, 16, 7);
            let (_, stats) = batched_svd_sm(&gpu, &mats, &OneSidedConfig::default(), 128).unwrap();
            stats.occupancy
        };
        assert!(occ(200) > occ(10));
    }

    #[test]
    fn gm_variant_is_slower_than_sm() {
        let gpu = Gpu::new(V100);
        let mats = random_batch(16, 24, 16, 9);
        let (_, sm) = batched_svd_sm(&gpu, &mats, &OneSidedConfig::default(), 128).unwrap();
        let (_, gm) = batched_svd_gm(&gpu, &mats, &OneSidedConfig::default(), 128).unwrap();
        assert!(
            gm.kernel_seconds > sm.kernel_seconds,
            "GM {} should exceed SM {}",
            gm.kernel_seconds,
            sm.kernel_seconds
        );
    }

    #[test]
    fn batched_evd_diagonalizes_batch() {
        let gpu = Gpu::new(V100);
        let mats: Vec<Matrix> = (0..6).map(|k| random_symmetric(12, k as u64)).collect();
        let (outs, _) = batched_evd_sm(&gpu, &mats, &EvdConfig::default(), 256).unwrap();
        for (b, evd) in mats.iter().zip(&outs) {
            assert!(evd.converged);
            assert!(wsvd_linalg::svd::evd_residual(b, &evd.j, &evd.lambda) < 1e-10);
        }
    }

    #[test]
    fn empty_batch_is_ok() {
        let gpu = Gpu::new(V100);
        let (outs, stats) = batched_svd_sm(&gpu, &[], &OneSidedConfig::default(), 128).unwrap();
        assert!(outs.is_empty());
        assert_eq!(stats.grid, 0);
    }
}
