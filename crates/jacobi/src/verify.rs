//! Static verification of Jacobi pair schedules.
//!
//! A parallel Jacobi sweep is only correct when (a) every step's pairs are
//! pairwise **disjoint** — rotations touching a shared column do not commute
//! and would race in the kernel — and (b) the sweep **covers** all
//! `n·(n−1)/2` unordered pairs, or convergence theory no longer applies
//! (§II-B). This module proves both properties for any [`Schedule`] *before*
//! it reaches a kernel, turning the pivot-ordering bugs that Novaković's
//! blocked-Jacobi work identifies as the classic failure mode into
//! machine-checked launch preconditions.
//!
//! The checker is pure (no simulator dependency) so it doubles as a library
//! API for tests and the `repro --sanitize` harness.

use std::fmt;

use crate::ordering::{Ordering, Schedule};

/// How thoroughly a sweep must touch the pair set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Coverage {
    /// Every unordered pair appears exactly once per sweep (round-robin,
    /// ring, and odd-even all satisfy this; it is the paper's assumption).
    #[default]
    ExactlyOnce,
    /// Every unordered pair appears at least once per sweep. Convergence
    /// still holds; duplicated pairs only cost redundant rotations.
    AtLeastOnce,
}

/// Everything that can disqualify a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// An index appears in two pairs of the same step: the rotations do not
    /// commute, and the kernel's lanes would race on that column.
    Conflict {
        /// Step index within the sweep.
        step: usize,
        /// The column index shared by two pairs.
        index: usize,
        /// The two offending pairs.
        pairs: ((usize, usize), (usize, usize)),
    },
    /// A pair references an index outside `0..n` or is not normalized
    /// (`i < j` is required so coverage accounting is well defined).
    Malformed {
        /// Step index within the sweep.
        step: usize,
        /// The offending pair.
        pair: (usize, usize),
    },
    /// Unordered pairs never touched by the sweep (convergence would stall
    /// on those column pairs).
    Missing {
        /// The uncovered pairs, in lexicographic order.
        pairs: Vec<(usize, usize)>,
    },
    /// A pair touched more than once under [`Coverage::ExactlyOnce`].
    Duplicate {
        /// The repeated pair.
        pair: (usize, usize),
        /// How many times it appears in the sweep.
        count: usize,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::Conflict { step, index, pairs } => write!(
                f,
                "step {step}: pairs {:?} and {:?} both use index {index} (rotations would race)",
                pairs.0, pairs.1
            ),
            ScheduleViolation::Malformed { step, pair } => {
                write!(
                    f,
                    "step {step}: pair {pair:?} is out of range or unnormalized"
                )
            }
            ScheduleViolation::Missing { pairs } => write!(
                f,
                "sweep never touches {} pair(s), first {:?}",
                pairs.len(),
                pairs.first()
            ),
            ScheduleViolation::Duplicate { pair, count } => {
                write!(f, "pair {pair:?} appears {count} times in one sweep")
            }
        }
    }
}

/// Certificate returned when a schedule passes all checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleProof {
    /// Problem size the schedule was verified against.
    pub n: usize,
    /// Steps in the sweep.
    pub steps: usize,
    /// Total pair slots across all steps.
    pub pairs: usize,
    /// Largest step width (bounds the lane count a kernel needs).
    pub max_step_width: usize,
}

/// Proves that `schedule` is a valid parallel sweep over `n` indices:
/// normalized in-range pairs, pairwise-disjoint steps (conflict-freedom),
/// and full coverage under `coverage`. Returns the first violation found,
/// with missing-pair reporting last so conflict bugs surface first.
pub fn verify_schedule(
    schedule: &Schedule,
    n: usize,
    coverage: Coverage,
) -> Result<ScheduleProof, ScheduleViolation> {
    let mut counts = vec![0u32; n * n];
    let mut pairs = 0usize;
    let mut max_step_width = 0usize;
    for (step_idx, step) in schedule.iter().enumerate() {
        max_step_width = max_step_width.max(step.len());
        // `owner[i]` = the pair that already claimed index i in this step.
        let mut owner: Vec<Option<(usize, usize)>> = vec![None; n];
        for &(i, j) in step {
            if i >= j || j >= n {
                return Err(ScheduleViolation::Malformed {
                    step: step_idx,
                    pair: (i, j),
                });
            }
            for idx in [i, j] {
                if let Some(prev) = owner[idx] {
                    return Err(ScheduleViolation::Conflict {
                        step: step_idx,
                        index: idx,
                        pairs: (prev, (i, j)),
                    });
                }
                owner[idx] = Some((i, j));
            }
            counts[i * n + j] += 1;
            pairs += 1;
        }
    }
    let mut missing = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let c = counts[i * n + j];
            if c == 0 {
                missing.push((i, j));
            } else if c > 1 && coverage == Coverage::ExactlyOnce {
                return Err(ScheduleViolation::Duplicate {
                    pair: (i, j),
                    count: c as usize,
                });
            }
        }
    }
    if !missing.is_empty() {
        return Err(ScheduleViolation::Missing { pairs: missing });
    }
    Ok(ScheduleProof {
        n,
        steps: schedule.len(),
        pairs,
        max_step_width,
    })
}

/// Verifies a named [`Ordering`] at size `n`. All three shipped orderings
/// are exactly-once sweeps, so this is `verify_schedule` with
/// [`Coverage::ExactlyOnce`]; kept as an API so call sites state *which*
/// ordering they are about to launch.
pub fn verify_ordering(ordering: Ordering, n: usize) -> Result<ScheduleProof, ScheduleViolation> {
    verify_schedule(&ordering.schedule(n), n, Coverage::ExactlyOnce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{odd_even, round_robin};

    #[test]
    fn shipped_orderings_prove_clean() {
        for n in [2usize, 3, 4, 5, 8, 9, 16, 17, 24, 32] {
            for o in Ordering::ALL {
                let proof =
                    verify_ordering(o, n).unwrap_or_else(|e| panic!("{o:?} n={n} rejected: {e}"));
                assert_eq!(proof.pairs, n * (n - 1) / 2);
                assert!(proof.max_step_width <= n / 2);
            }
        }
    }

    #[test]
    fn overlapping_step_is_a_conflict() {
        // Pairs (0,1) and (1,2) share column 1: both rotations would write it.
        let s: Schedule = vec![vec![(0, 1), (1, 2)], vec![(0, 2)]];
        let err = verify_schedule(&s, 3, Coverage::ExactlyOnce).unwrap_err();
        match err {
            ScheduleViolation::Conflict { step, index, .. } => {
                assert_eq!(step, 0);
                assert_eq!(index, 1);
            }
            other => panic!("expected conflict, got {other}"),
        }
    }

    #[test]
    fn missing_pair_detected() {
        let mut s = round_robin(4);
        s.last_mut().unwrap().clear(); // drop a step's pairs
        let err = verify_schedule(&s, 4, Coverage::ExactlyOnce).unwrap_err();
        assert!(matches!(err, ScheduleViolation::Missing { ref pairs } if !pairs.is_empty()));
    }

    #[test]
    fn duplicate_pair_detected_exactly_once_only() {
        let mut s = round_robin(4);
        let repeated = s[0][0];
        s.push(vec![repeated]);
        let err = verify_schedule(&s, 4, Coverage::ExactlyOnce).unwrap_err();
        assert_eq!(
            err,
            ScheduleViolation::Duplicate {
                pair: repeated,
                count: 2
            }
        );
        // The same sweep is acceptable under at-least-once coverage.
        verify_schedule(&s, 4, Coverage::AtLeastOnce).unwrap();
    }

    #[test]
    fn unnormalized_and_out_of_range_pairs_rejected() {
        let s: Schedule = vec![vec![(1, 0)]];
        assert!(matches!(
            verify_schedule(&s, 2, Coverage::AtLeastOnce),
            Err(ScheduleViolation::Malformed { .. })
        ));
        let s: Schedule = vec![vec![(0, 5)]];
        assert!(matches!(
            verify_schedule(&s, 3, Coverage::AtLeastOnce),
            Err(ScheduleViolation::Malformed { .. })
        ));
    }

    #[test]
    fn violations_render() {
        let s: Schedule = vec![vec![(0, 1), (0, 2)]];
        let msg = verify_schedule(&s, 3, Coverage::ExactlyOnce)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("index 0"), "{msg}");
    }

    #[test]
    fn empty_schedule_for_n_below_two() {
        let proof = verify_schedule(&odd_even(1), 1, Coverage::ExactlyOnce).unwrap();
        assert_eq!(proof.pairs, 0);
    }
}
