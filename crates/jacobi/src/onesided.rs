//! One-sided Jacobi SVD kernels (column-vector rotations, §II-C and §IV-B).
//!
//! One simulated thread block decomposes one matrix. The same numerical
//! routine backs two kernels that differ only in where the working set
//! lives:
//!
//! * [`MemSpace::Shared`] — the batched *SVD kernel in SM*: the matrix, the
//!   accumulated `V` and the cached column norms are charged to the block's
//!   48 KiB arena (allocation fails if they do not fit, enforcing the
//!   Algorithm-2 predicate);
//! * [`MemSpace::Global`] — the same rotations with every column touch
//!   counted as global-memory traffic (the slow case of Fig. 1 and the
//!   fallback path of the cuSOLVER-like baseline).
//!
//! The kernel implements both §IV-B optimizations: the α-warp assignment of
//! column-pair tasks (`threads_per_pair`) and the Eq.-(6) inner-product
//! caching that avoids two-thirds of the dot products.

use wsvd_gpu_sim::{BlockCtx, KernelError, SmemBuf};
use wsvd_linalg::gemm::dot;
use wsvd_linalg::givens::{one_sided_rotation, rotate_columns, rotated_norms};
use wsvd_linalg::Matrix;

use crate::ordering::Ordering;

/// Shared-memory placement of the one-sided kernel's working set. When the
/// hazard sanitizer is active, the kernel uses this to attribute each lane's
/// column reads/writes to the real SM buffers (lane = pair-team index).
pub struct SvdSmemLayout<'a> {
    /// The column-major working matrix (`m x n` elements).
    pub a: &'a SmemBuf,
    /// The accumulated right factor (`n x n` elements), when SM-resident.
    pub v: Option<&'a SmemBuf>,
    /// The cached column norms (at least `n` elements).
    pub norms: &'a SmemBuf,
}

/// Where the kernel's working set lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSpace {
    /// Working set in the block's shared-memory arena.
    Shared,
    /// Working set in global memory (every column access counted).
    Global,
}

/// Configuration of the one-sided Jacobi kernel.
#[derive(Clone, Copy, Debug)]
pub struct OneSidedConfig {
    /// Convergence threshold on the normalized column coherence
    /// `|a_i.a_j| / (||a_i|| ||a_j||)`.
    pub tol: f64,
    /// Sweep cap (a sweep visits every pair once).
    pub max_sweeps: usize,
    /// Threads cooperating on one column pair (`α`-warp of §IV-B1:
    /// `α ∈ {1, 1/2, 1/4, 1/8}` of a 32-thread warp). 1 models the naive
    /// one-thread-per-pair assignment of older implementations.
    pub threads_per_pair: usize,
    /// Enable the Eq.-(6) cached-norm update (§IV-B2). When disabled all
    /// three inner products are recomputed per rotation.
    pub cache_norms: bool,
    /// Accumulate the right singular matrix `V` (the `J_ij` consumed by the
    /// W-cycle). Costs an `n x n` SM buffer and extra rotation work.
    pub accumulate_v: bool,
    /// Pair-ordering schedule.
    pub ordering: Ordering,
    /// Model a kernel that re-stages the working set from global memory at
    /// every sweep (a kernel that exits per sweep for host-side convergence
    /// checks, like cuSOLVER's `gesvdj`), instead of staying SM-resident.
    pub gm_stage_per_sweep: bool,
    /// Record the per-sweep maximum coherence in
    /// [`SweepOutcome::coherence_per_sweep`] (convergence telemetry for
    /// tracing; off by default so untraced runs allocate nothing).
    pub record_coherence: bool,
}

impl Default for OneSidedConfig {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_sweeps: 60,
            threads_per_pair: 8,
            cache_norms: true,
            accumulate_v: true,
            ordering: Ordering::RoundRobin,
            gm_stage_per_sweep: false,
            record_coherence: false,
        }
    }
}

/// Counters describing one matrix's Jacobi iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JacobiStats {
    /// Sweeps executed until convergence (or the cap).
    pub sweeps: usize,
    /// Plane rotations actually applied.
    pub rotations: u64,
    /// Column inner products computed.
    pub dots_computed: u64,
    /// Inner products avoided by the Eq.-(6) cache.
    pub dots_avoided: u64,
    /// True when the coherence tolerance was met within `max_sweeps`.
    pub converged: bool,
}

/// Outcome of running the sweeps: the matrix columns have converged to
/// `U Σ`; `v` holds the accumulated rotations when requested.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Accumulated right factor (identity-initialized), if requested.
    pub v: Option<Matrix>,
    /// Iteration statistics.
    pub stats: JacobiStats,
    /// Maximum coherence observed during each sweep, oldest first. Empty
    /// unless [`OneSidedConfig::record_coherence`] was set.
    pub coherence_per_sweep: Vec<f64>,
}

/// Runs one-sided Jacobi sweeps on `a` in place (columns converge to `UΣ`).
///
/// This is the shared engine; use [`svd_in_block`] for the full
/// kernel (transpose handling, factor extraction, SM accounting).
pub fn one_sided_sweeps(
    a: &mut Matrix,
    cfg: &OneSidedConfig,
    ctx: &mut BlockCtx,
    space: MemSpace,
) -> SweepOutcome {
    one_sided_sweeps_in(a, cfg, ctx, space, None)
}

/// [`one_sided_sweeps`] with an explicit shared-memory layout so the hazard
/// sanitizer can check the kernel's barrier structure: each rotation step is
/// one barrier epoch in which pair-team `t` owns columns `(i_t, j_t)` of the
/// matrix and of `V` plus their two norm-cache slots; the per-sweep norm
/// refresh is its own epoch (lane = column). A schedule with overlapping
/// pairs therefore surfaces as a write–write race on the shared column.
pub fn one_sided_sweeps_in(
    a: &mut Matrix,
    cfg: &OneSidedConfig,
    ctx: &mut BlockCtx,
    space: MemSpace,
    layout: Option<&SvdSmemLayout<'_>>,
) -> SweepOutcome {
    let (m, n) = a.shape();
    let mut v = if cfg.accumulate_v {
        Some(Matrix::identity(n))
    } else {
        None
    };
    let mut stats = JacobiStats::default();
    if n < 2 {
        stats.converged = true;
        return SweepOutcome {
            v,
            stats,
            coherence_per_sweep: Vec::new(),
        };
    }
    let mut coherence_per_sweep = Vec::new();

    let schedule = cfg.ordering.schedule(n);
    let tpp = cfg.threads_per_pair.max(1);
    let mut norms: Vec<f64> = Vec::new();

    // De Rijk deflation: columns whose squared norm falls below
    // (eps * ||A||_F)^2 are numerically zero — rotating against them only
    // churns round-off, and their "coherence" is noise. They are skipped by
    // both the rotations and the convergence measure.
    let fro2: f64 = (0..n).map(|j| dot(a.col(j), a.col(j))).sum();
    let deflate_below = fro2 * (f64::EPSILON * f64::EPSILON);

    for _sweep in 0..cfg.max_sweeps {
        stats.sweeps += 1;
        let mut max_coherence = 0.0f64;

        if cfg.gm_stage_per_sweep {
            // The working set (matrix + accumulated V) round-trips through
            // global memory once per sweep.
            let v_elems = if cfg.accumulate_v { n * n } else { 0 };
            ctx.count_gm_load(m * n + v_elems);
            ctx.count_gm_store(m * n + v_elems);
        }

        if cfg.cache_norms {
            // Refresh the cached norms once per sweep (the cache is updated
            // analytically by Eq. 6 within the sweep).
            norms = (0..n).map(|j| dot(a.col(j), a.col(j))).collect();
            stats.dots_computed += n as u64;
            ctx.team_reduce(n, tpp, m);
            if space == MemSpace::Global {
                ctx.count_gm_load(n * m);
            }
            // Refresh epoch: lane j reads column j and writes its norm slot.
            if ctx.sanitizing() {
                if let Some(lay) = layout {
                    for j in 0..n {
                        ctx.smem_read(j, lay.a, j * m, m);
                        ctx.smem_write(j, lay.norms, j, 1);
                    }
                }
            }
            ctx.sync_threads();
        }

        for step in &schedule {
            let pairs = step.len();
            if pairs == 0 {
                continue;
            }
            // Cost: each pair team computes one (cached) or three dots.
            let dots_per_pair = if cfg.cache_norms { 1 } else { 3 };
            ctx.team_reduce(pairs * dots_per_pair, tpp, m);
            if space == MemSpace::Global {
                ctx.count_gm_load(pairs * 2 * m);
            }

            // Rotation epoch: pair-team `t` owns its two columns (and their
            // norm-cache slots) exclusively; conflict-free schedules make
            // these access sets disjoint across lanes.
            if ctx.sanitizing() {
                if let Some(lay) = layout {
                    for (t, &(i, j)) in step.iter().enumerate() {
                        ctx.smem_write(t, lay.a, i * m, m);
                        ctx.smem_write(t, lay.a, j * m, m);
                        if let Some(vb) = lay.v {
                            ctx.smem_write(t, vb, i * n, n);
                            ctx.smem_write(t, vb, j * n, n);
                        }
                        if cfg.cache_norms {
                            ctx.smem_write(t, lay.norms, i, 1);
                            ctx.smem_write(t, lay.norms, j, 1);
                        }
                    }
                }
            }

            let mut rotated_pairs = 0usize;
            for &(i, j) in step {
                let (aii, ajj) = if cfg.cache_norms {
                    (norms[i], norms[j])
                } else {
                    stats.dots_computed += 2;
                    (dot(a.col(i), a.col(i)), dot(a.col(j), a.col(j)))
                };
                if aii <= deflate_below || ajj <= deflate_below {
                    continue; // numerically zero column: deflated
                }
                let aij = dot(a.col(i), a.col(j));
                stats.dots_computed += 1;
                if cfg.cache_norms {
                    stats.dots_avoided += 2;
                }

                let denom = (aii * ajj).sqrt();
                let coherence = if denom > 0.0 { aij.abs() / denom } else { 0.0 };
                max_coherence = max_coherence.max(coherence);
                if coherence <= cfg.tol {
                    continue;
                }

                let rot = one_sided_rotation(aii, aij, ajj);
                {
                    let (ci, cj) = a.col_pair_mut(i, j);
                    rotate_columns(rot, ci, cj);
                }
                if let Some(v) = v.as_mut() {
                    let (vi, vj) = v.col_pair_mut(i, j);
                    rotate_columns(rot, vi, vj);
                }
                if cfg.cache_norms {
                    let (nii, njj) = rotated_norms(rot, aii, aij, ajj);
                    norms[i] = nii;
                    norms[j] = njj;
                }
                stats.rotations += 1;
                rotated_pairs += 1;
            }

            if rotated_pairs > 0 {
                // Rotation parameters (Eq. 4): ~20 scalar ops per team.
                ctx.team_step(rotated_pairs, tpp, 1, 20);
                // Column update (Eq. 3): 6 ops per element pair.
                ctx.team_step(rotated_pairs, tpp, m, 6);
                if cfg.accumulate_v {
                    ctx.team_step(rotated_pairs, tpp, n, 6);
                }
                if cfg.cache_norms {
                    // Eq. (6) norm update: ~12 ops per team.
                    ctx.team_step(rotated_pairs, tpp, 1, 12);
                }
                if space == MemSpace::Global {
                    ctx.count_gm_store(rotated_pairs * 2 * m);
                    if cfg.accumulate_v {
                        ctx.count_gm_load(rotated_pairs * 2 * n);
                        ctx.count_gm_store(rotated_pairs * 2 * n);
                    }
                }
            }
            // Barrier between steps: the next step's pairs may touch any
            // column this step rotated.
            ctx.sync_threads();
        }

        if cfg.record_coherence {
            coherence_per_sweep.push(max_coherence);
        }
        if max_coherence <= cfg.tol {
            stats.converged = true;
            break;
        }
    }
    SweepOutcome {
        v,
        stats,
        coherence_per_sweep,
    }
}

/// Full SVD of one matrix produced by a Jacobi kernel.
#[derive(Debug)]
pub struct JacobiSvd {
    /// Left singular vectors, `m x r`.
    pub u: Matrix,
    /// Singular values, descending, length `r = min(m, n)`.
    pub sigma: Vec<f64>,
    /// Right singular vectors. `n x n` (full) when the kernel accumulated or
    /// completed them, `n x r` thin otherwise.
    pub v: Matrix,
    /// Iteration statistics.
    pub stats: JacobiStats,
    /// Per-sweep maximum coherence (empty unless
    /// [`OneSidedConfig::record_coherence`] was set).
    pub coherence_per_sweep: Vec<f64>,
}

/// Extracts `U` and `Σ` from converged columns (`A_conv = U Σ`), sorting all
/// factors by descending singular value.
fn extract_factors(
    conv: &Matrix,
    v: Matrix,
    stats: JacobiStats,
    coherence_per_sweep: Vec<f64>,
) -> JacobiSvd {
    let (m, n) = conv.shape();
    let mut order: Vec<usize> = (0..n).collect();
    let sig: Vec<f64> = (0..n)
        .map(|j| dot(conv.col(j), conv.col(j)).sqrt())
        .collect();
    order.sort_by(|&x, &y| sig[y].total_cmp(&sig[x]));

    let r = m.min(n);
    let mut u = Matrix::zeros(m, r);
    let mut sigma = Vec::with_capacity(r);
    for (k, &j) in order.iter().take(r).enumerate() {
        let s = sig[j];
        sigma.push(s);
        if s > 0.0 {
            let src = conv.col(j);
            let dst = u.col_mut(k);
            for i in 0..m {
                dst[i] = src[i] / s;
            }
        } else if k < m {
            u[(k, k)] = 1.0; // arbitrary unit vector for a null direction
        }
    }
    // Permute V's columns to match (full square V).
    let mut vp = Matrix::zeros(v.rows(), v.cols());
    for (k, &j) in order.iter().enumerate() {
        vp.col_mut(k).copy_from_slice(v.col(j));
    }
    JacobiSvd {
        u,
        sigma,
        v: vp,
        stats,
        coherence_per_sweep,
    }
}

/// One-sided Jacobi SVD of one matrix inside one simulated block.
///
/// * Tall or square input runs directly; wide input (`m < n`) decomposes the
///   transpose (fewer rotations per sweep, §IV-B) and swaps the factors; its
///   full `n x n` V is completed with Gram–Schmidt over the null space so
///   the W-cycle can apply `J_ij` as a square rotation.
/// * `space == Shared` charges the exact working set to the block's arena —
///   the call fails with [`KernelError::Smem`] when it does not fit.
pub fn svd_in_block(
    a: &Matrix,
    cfg: &OneSidedConfig,
    ctx: &mut BlockCtx,
    space: MemSpace,
) -> Result<JacobiSvd, KernelError> {
    let (m, n) = a.shape();
    if m >= n {
        // Charge the SM working set: matrix + V accumulation + norm caches.
        let bufs = if space == MemSpace::Shared {
            let a_buf = ctx.gm_load_to_smem(a.as_slice())?;
            let v_buf = if cfg.accumulate_v {
                Some(ctx.smem().alloc(n * n)?)
            } else {
                None
            };
            let n_buf = ctx.smem().alloc(2 * n)?;
            // Staging barrier: the cooperative GM load completes before any
            // lane reads the SM-resident working set.
            ctx.sync_threads();
            Some((a_buf, v_buf, n_buf))
        } else {
            None
        };
        let layout = bufs.as_ref().map(|(a_buf, v_buf, n_buf)| SvdSmemLayout {
            a: a_buf,
            v: v_buf.as_ref(),
            norms: n_buf,
        });
        let mut work = a.clone();
        let cfg = OneSidedConfig {
            accumulate_v: true,
            ..*cfg
        };
        let out = one_sided_sweeps_in(&mut work, &cfg, ctx, space, layout.as_ref());
        if space == MemSpace::Shared {
            // Write-back barrier, then the cooperative GM store.
            ctx.sync_threads();
            ctx.count_gm_store(m * n + n * n);
        }
        Ok(extract_factors(
            &work,
            out.v.expect("accumulate_v forced on"),
            out.stats,
            out.coherence_per_sweep,
        ))
    } else {
        // Wide: decompose A^T (n x m, tall). Accumulated V of A^T is U of A;
        // converged columns of A^T give V of A (thin), completed to square.
        let at = a.transpose();
        let bufs = if space == MemSpace::Shared {
            let a_buf = ctx.gm_load_to_smem(at.as_slice())?;
            let u_buf = ctx.smem().alloc(m * m)?;
            let n_buf = ctx.smem().alloc(2 * m)?;
            ctx.sync_threads();
            Some((a_buf, u_buf, n_buf))
        } else {
            None
        };
        let layout = bufs.as_ref().map(|(a_buf, u_buf, n_buf)| SvdSmemLayout {
            a: a_buf,
            v: Some(u_buf),
            norms: n_buf,
        });
        let mut work = at;
        let cfg_t = OneSidedConfig {
            accumulate_v: true,
            ..*cfg
        };
        let out = one_sided_sweeps_in(&mut work, &cfg_t, ctx, space, layout.as_ref());
        if space == MemSpace::Shared {
            ctx.sync_threads();
            ctx.count_gm_store(n * m + m * m);
        }
        let t = extract_factors(
            &work,
            out.v.expect("accumulate_v forced on"),
            out.stats,
            out.coherence_per_sweep,
        );
        // t.u (n x m) = V of A (thin); t.v (m x m) = U of A.
        let v_full = complete_orthonormal(&t.u, &t.sigma, ctx);
        Ok(JacobiSvd {
            u: t.v,
            sigma: t.sigma,
            v: v_full,
            stats: t.stats,
            coherence_per_sweep: t.coherence_per_sweep,
        })
    }
}

/// Completes a thin `n x r` orthonormal set (columns with tiny singular
/// values treated as undetermined) to a full `n x n` orthonormal basis via
/// modified Gram–Schmidt against the coordinate vectors.
fn complete_orthonormal(thin: &Matrix, sigma: &[f64], ctx: &mut BlockCtx) -> Matrix {
    let n = thin.rows();
    let r = thin.cols();
    let cutoff = sigma.first().copied().unwrap_or(0.0) * 1e-13;
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(n);
    for (j, &s) in sigma.iter().take(r).enumerate() {
        if s > cutoff {
            basis.push(thin.col(j).to_vec());
        }
    }
    // Candidate coordinate vectors fill the remaining directions.
    let mut e = 0usize;
    while basis.len() < n && e < n {
        let mut cand = vec![0.0; n];
        cand[e] = 1.0;
        e += 1;
        for b in &basis {
            let proj = dot(&cand, b);
            for i in 0..n {
                cand[i] -= proj * b[i];
            }
        }
        let nrm = dot(&cand, &cand).sqrt();
        if nrm > 1e-8 {
            for x in &mut cand {
                *x /= nrm;
            }
            basis.push(cand);
        }
    }
    assert_eq!(basis.len(), n, "failed to complete orthonormal basis");
    ctx.par_step(n * n, 4); // Gram–Schmidt cost estimate
    let mut v = Matrix::zeros(n, n);
    for (j, b) in basis.iter().enumerate() {
        v.col_mut(j).copy_from_slice(b);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{Gpu, KernelConfig, V100};
    use wsvd_linalg::generate::{random_uniform, with_spectrum};
    use wsvd_linalg::svd::singular_values;
    use wsvd_linalg::verify::{max_column_coherence, orthonormality_error};

    fn run_one(a: &Matrix, cfg: &OneSidedConfig, space: MemSpace) -> JacobiSvd {
        let gpu = Gpu::new(V100);
        let smem = if space == MemSpace::Shared {
            48 * 1024
        } else {
            0
        };
        let kc = KernelConfig::new(1, 128, smem, "test-svd");
        let (mut out, _) = gpu
            .launch_collect(kc, |_, ctx| svd_in_block(a, cfg, ctx, space))
            .unwrap();
        out.pop().unwrap()
    }

    fn reconstruct(svd: &JacobiSvd, m: usize, n: usize) -> Matrix {
        let r = svd.sigma.len();
        let mut us = svd.u.clone();
        for j in 0..r {
            let s = svd.sigma[j];
            for x in us.col_mut(j) {
                *x *= s;
            }
        }
        // v may be full n x n; take the leading r columns.
        let vthin = Matrix::from_fn(n, r, |i, j| svd.v[(i, j)]);
        let rec = wsvd_linalg::matmul(&us, &vthin.transpose());
        assert_eq!(rec.shape(), (m, n));
        rec
    }

    #[test]
    fn converges_and_matches_reference_square() {
        let a = random_uniform(12, 12, 3);
        let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
        assert!(svd.stats.converged);
        let want = singular_values(&a).unwrap();
        for (g, w) in svd.sigma.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        assert!(reconstruct(&svd, 12, 12).sub(&a).max_abs() < 1e-9);
        assert!(orthonormality_error(&svd.u) < 1e-10);
        assert!(orthonormality_error(&svd.v) < 1e-10);
    }

    #[test]
    fn converges_tall() {
        let a = random_uniform(20, 6, 5);
        let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
        assert!(svd.stats.converged);
        assert!(reconstruct(&svd, 20, 6).sub(&a).max_abs() < 1e-9);
    }

    #[test]
    fn wide_matrix_via_transpose_full_v() {
        let a = random_uniform(4, 10, 7);
        let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
        assert!(svd.stats.converged);
        assert_eq!(svd.v.shape(), (10, 10), "V must be completed to square");
        assert!(
            orthonormality_error(&svd.v) < 1e-8,
            "completed V not orthonormal"
        );
        assert!(reconstruct(&svd, 4, 10).sub(&a).max_abs() < 1e-9);
        // Applying the full V to A concentrates all mass in the first r
        // columns (the property the W-cycle update relies on).
        let rotated = wsvd_linalg::matmul(&a, &svd.v);
        for j in 4..10 {
            let nrm = dot(rotated.col(j), rotated.col(j)).sqrt();
            assert!(nrm < 1e-9, "null column {j} has mass {nrm}");
        }
    }

    #[test]
    fn caching_gives_same_result_and_avoids_dots() {
        let a = random_uniform(16, 8, 11);
        let cached = run_one(
            &a,
            &OneSidedConfig {
                cache_norms: true,
                ..Default::default()
            },
            MemSpace::Shared,
        );
        let plain = run_one(
            &a,
            &OneSidedConfig {
                cache_norms: false,
                ..Default::default()
            },
            MemSpace::Shared,
        );
        assert!(cached.stats.dots_avoided > 0);
        assert_eq!(plain.stats.dots_avoided, 0);
        for (c, p) in cached.sigma.iter().zip(&plain.sigma) {
            assert!((c - p).abs() < 1e-8);
        }
        // Caching avoids roughly two-thirds of the per-rotation dots.
        let cached_rate = cached.stats.dots_computed as f64
            / (cached.stats.dots_computed + cached.stats.dots_avoided) as f64;
        assert!(cached_rate < 0.55, "avoidance rate too low: {cached_rate}");
    }

    #[test]
    fn known_spectrum_recovered() {
        let sigma = vec![10.0, 4.0, 0.5];
        let a = with_spectrum(9, 3, &sigma, 31);
        let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
        for (g, w) in svd.sigma.iter().zip(&sigma) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn columns_orthogonal_after_sweeps() {
        let mut a = random_uniform(10, 10, 13);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 128, 0, "sweeps");
        gpu.launch_collect(kc, |_, ctx| {
            let mut w = a.clone();
            let out = one_sided_sweeps(&mut w, &OneSidedConfig::default(), ctx, MemSpace::Global);
            assert!(out.stats.converged);
            assert!(max_column_coherence(&w) < 1e-10);
            Ok(())
        })
        .unwrap();
        // silence unused-mut
        a.scale(1.0);
    }

    #[test]
    fn sm_variant_fails_when_matrix_too_big() {
        // 100 x 90 with V (90x90) needs (9000 + 8100 + 180) * 8 > 48 KiB.
        let a = random_uniform(100, 90, 1);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 128, 48 * 1024, "too-big");
        let err = gpu
            .launch_collect(kc, |_, ctx| {
                svd_in_block(&a, &OneSidedConfig::default(), ctx, MemSpace::Shared)
            })
            .unwrap_err();
        matches!(err, KernelError::Smem(_));
    }

    #[test]
    fn sm_fits_predicate_matches_kernel() {
        // If the predicate says it fits, the kernel must not overflow.
        for &(m, n) in &[(32usize, 32usize), (48, 24), (64, 16), (24, 48)] {
            assert!(
                crate::fits::svd_fits_in_sm(m, n, 48 * 1024),
                "({m},{n}) should fit"
            );
            let a = random_uniform(m, n, (m * 100 + n) as u64);
            let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
            assert!(svd.stats.converged, "({m},{n}) did not converge");
        }
    }

    #[test]
    fn gm_variant_counts_transactions() {
        let a = random_uniform(16, 8, 17);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 128, 0, "gm");
        let (_, stats) = gpu
            .launch_collect(kc, |_, ctx| {
                svd_in_block(&a, &OneSidedConfig::default(), ctx, MemSpace::Global)
            })
            .unwrap();
        assert!(
            stats.totals.gm_transactions > 100,
            "GM path must be traffic-heavy"
        );
    }

    #[test]
    fn more_threads_per_pair_shrinks_span() {
        let a = random_uniform(64, 16, 19);
        let span_of = |tpp: usize| {
            let gpu = Gpu::new(V100);
            let kc = KernelConfig::new(1, 256, 48 * 1024, "alpha");
            let (_, s) = gpu
                .launch_collect(kc, |_, ctx| {
                    svd_in_block(
                        &a,
                        &OneSidedConfig {
                            threads_per_pair: tpp,
                            ..Default::default()
                        },
                        ctx,
                        MemSpace::Shared,
                    )
                })
                .unwrap();
            s.totals.span_cycles
        };
        // With batch-size-1 style blocks, wider teams shorten the span.
        assert!(span_of(32) < span_of(1));
    }

    #[test]
    fn sanitized_kernel_is_hazard_free_and_identical() {
        // Tall and wide shapes, both under full hazard checking: the real
        // kernel must produce zero violations and byte-identical results.
        for &(m, n, seed) in &[(16usize, 8usize, 29u64), (4, 10, 31)] {
            let a = random_uniform(m, n, seed);
            let base = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
            let gpu = Gpu::with_sanitize(V100, wsvd_gpu_sim::SanitizeMode::Full);
            let kc = KernelConfig::new(1, 128, 48 * 1024, "sanitized-svd");
            let (mut out, _) = gpu
                .launch_collect(kc, |_, ctx| {
                    assert!(ctx.sanitizing());
                    svd_in_block(&a, &OneSidedConfig::default(), ctx, MemSpace::Shared)
                })
                .unwrap();
            let svd = out.pop().unwrap();
            let rep = gpu.sanitizer_report();
            assert!(rep.is_clean(), "({m},{n}): {:?}", rep.violations);
            assert!(rep.stats.epochs > 0);
            assert!(rep.stats.accesses > 0);
            assert_eq!(svd.sigma, base.sigma);
        }
    }

    #[test]
    fn zero_matrix_is_fixed_point() {
        let a = Matrix::zeros(6, 4);
        let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
        assert!(svd.stats.converged);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(svd.stats.rotations, 0);
    }

    #[test]
    fn single_column() {
        let a = random_uniform(5, 1, 23);
        let svd = run_one(&a, &OneSidedConfig::default(), MemSpace::Shared);
        let want = dot(a.col(0), a.col(0)).sqrt();
        assert!((svd.sigma[0] - want).abs() < 1e-12);
    }
}
