//! Two-sided Jacobi EVD kernels for symmetric matrices (§II-D, §IV-C).
//!
//! The W-cycle needs the eigendecomposition `B_ij = J Λ J^T` of the Gram
//! matrix whenever a pair block is too large for the SM SVD kernel but its
//! (much smaller, `2w x 2w`) Gram matrix still fits. Two kernels are
//! provided:
//!
//! * [`EvdVariant::Sequential`] — the textbook cyclic two-sided Jacobi:
//!   eliminations are serialized because each updates two full rows *and*
//!   two full columns (at most `4s` active threads — Challenge 1);
//! * [`EvdVariant::Parallel`] — the paper's kernel: a round-robin step
//!   selects `s/2` disjoint pairs, all rotations are computed from the
//!   current `B`, and the whole update `B̂ = G^T B G` is evaluated
//!   element-wise as `b̂_xy = x^T B y` (6 multiplications + 3 additions per
//!   element, Fig. 5), so every element of `B̂` is written in parallel.

use wsvd_gpu_sim::{BlockCtx, KernelError, SmemBuf};
use wsvd_linalg::givens::{two_sided_rotation, Rotation};
use wsvd_linalg::Matrix;

use crate::ordering::round_robin;

/// Shared-memory placement of the EVD kernel's working set, used by the
/// hazard sanitizer to attribute lane accesses to the real buffers.
struct EvdSmemLayout<'a> {
    /// The symmetric working matrix `B` (`s x s`).
    b: &'a SmemBuf,
    /// The accumulated eigenvector matrix `J` (`s x s`).
    j: &'a SmemBuf,
    /// Half-matrix panel staging for the parallel update (`s*s/2`).
    scratch: &'a SmemBuf,
    /// Per-step rotation parameters (`2s`).
    rots: &'a SmemBuf,
}

/// Which EVD kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvdVariant {
    /// Serialized eliminations (the baseline of Fig. 10(b)).
    Sequential,
    /// Parallel all-element update (the paper's design).
    Parallel,
}

/// Configuration of the two-sided Jacobi EVD kernel.
#[derive(Clone, Copy, Debug)]
pub struct EvdConfig {
    /// Stop when `off(B) <= tol * ||B||_F`.
    pub tol: f64,
    /// Sweep cap.
    pub max_sweeps: usize,
    /// Kernel variant.
    pub variant: EvdVariant,
}

impl Default for EvdConfig {
    fn default() -> Self {
        Self {
            tol: 1e-13,
            max_sweeps: 40,
            variant: EvdVariant::Parallel,
        }
    }
}

/// Result of a batched-EVD block: `B = J diag(lambda) J^T`.
#[derive(Debug)]
pub struct JacobiEvd {
    /// Eigenvalues in descending order.
    pub lambda: Vec<f64>,
    /// Orthogonal eigenvector matrix (columns ordered like `lambda`).
    pub j: Matrix,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the off-diagonal tolerance was met.
    pub converged: bool,
}

/// Two-sided Jacobi EVD of one symmetric matrix inside one simulated block.
///
/// The working set (`B`, `J`, a double buffer for the parallel update, and
/// per-step rotation storage) is charged to the block's shared-memory arena;
/// the call fails with [`KernelError::Smem`] if it does not fit — this is
/// the line-10 predicate of Algorithm 2.
pub fn evd_in_block(
    b: &Matrix,
    cfg: &EvdConfig,
    ctx: &mut BlockCtx,
) -> Result<JacobiEvd, KernelError> {
    let (s, s2) = b.shape();
    assert_eq!(s, s2, "EVD requires a square matrix");
    debug_assert!(
        b.sub(&b.transpose()).max_abs() < 1e-10 * (1.0 + b.max_abs()),
        "EVD input must be symmetric"
    );

    // Charge the SM footprint (matches `fits::evd_smem_elems`).
    let b_buf = ctx.gm_load_to_smem(b.as_slice())?;
    let j_buf = ctx.smem().alloc(s * s)?;
    let scratch = ctx.smem().alloc((s * s) / 2)?; // panel staging for the parallel update
    let rots = ctx.smem().alloc(2 * s)?;
    // Staging barrier: the cooperative GM load completes before any lane
    // reads the SM-resident working set.
    ctx.sync_threads();
    let lay = EvdSmemLayout {
        b: &b_buf,
        j: &j_buf,
        scratch: &scratch,
        rots: &rots,
    };

    let mut work = b.clone();
    let mut j = Matrix::identity(s);
    let fro = work.fro_norm().max(f64::MIN_POSITIVE);
    let mut sweeps = 0;
    let mut converged = work.off_diag_norm() <= cfg.tol * fro;

    while !converged && sweeps < cfg.max_sweeps {
        sweeps += 1;
        match cfg.variant {
            EvdVariant::Sequential => sequential_sweep(&mut work, &mut j, ctx, &lay),
            EvdVariant::Parallel => parallel_sweep(&mut work, &mut j, ctx, &lay),
        }
        converged = work.off_diag_norm() <= cfg.tol * fro;
    }
    // Write-back barrier, then the cooperative GM store.
    ctx.sync_threads();
    ctx.count_gm_store(2 * s * s); // write back Λ diagnostics and J

    // Extract and sort eigenvalues (descending), permuting J to match.
    let mut lambda: Vec<f64> = work.diag();
    let mut order: Vec<usize> = (0..s).collect();
    order.sort_by(|&x, &y| lambda[y].total_cmp(&lambda[x]));
    let lambda_sorted: Vec<f64> = order.iter().map(|&i| lambda[i]).collect();
    let mut jp = Matrix::zeros(s, s);
    for (k, &i) in order.iter().enumerate() {
        jp.col_mut(k).copy_from_slice(j.col(i));
    }
    lambda = lambda_sorted;
    Ok(JacobiEvd {
        lambda,
        j: jp,
        sweeps,
        converged,
    })
}

/// Classic cyclic sweep: one elimination at a time, rows and columns updated
/// in place. Span: each elimination serializes behind the previous one.
fn sequential_sweep(b: &mut Matrix, j: &mut Matrix, ctx: &mut BlockCtx, lay: &EvdSmemLayout<'_>) {
    let s = b.rows();
    for p in 0..s {
        for q in (p + 1)..s {
            let rot = two_sided_rotation(b[(p, p)], b[(p, q)], b[(q, q)]);
            if rot.is_identity() {
                continue;
            }
            apply_two_sided(b, p, q, rot);
            apply_right_rotation(j, p, q, rot);
            // Cost: each elimination is a serialized dependency chain —
            // the rotation parameters (~20 ops) plus two block-wide barriers
            // before/after the row+column writes (the next elimination reads
            // what this one wrote). Then the 4s row/col elements update with
            // at most 4s active threads (Challenge 1).
            ctx.serial_step(100);
            ctx.team_step(1, (4 * s).min(ctx.threads()), 4 * s, 6);
            ctx.team_step(1, (2 * s).min(ctx.threads()), 2 * s, 6); // J columns
                                                                    // One cooperative group does the whole elimination (lane 0), so
                                                                    // the only hazard to check is the barrier before the next
                                                                    // elimination reads what this one wrote.
            if ctx.sanitizing() {
                ctx.smem_write(0, lay.b, p * s, s);
                ctx.smem_write(0, lay.b, q * s, s);
                ctx.smem_write(0, lay.j, p * s, s);
                ctx.smem_write(0, lay.j, q * s, s);
            }
            ctx.sync_threads();
        }
    }
}

/// The paper's parallel sweep: round-robin steps of disjoint pairs; all
/// rotations of a step are computed from the current `B`, then applied at
/// once via the `x^T B y` element-wise formula.
fn parallel_sweep(b: &mut Matrix, j: &mut Matrix, ctx: &mut BlockCtx, lay: &EvdSmemLayout<'_>) {
    let s = b.rows();
    let schedule = round_robin(s);
    for step in &schedule {
        if step.is_empty() {
            continue;
        }
        // Compute all rotations of the step concurrently from the current B.
        let rots: Vec<(usize, usize, Rotation)> = step
            .iter()
            .map(|&(p, q)| (p, q, two_sided_rotation(b[(p, p)], b[(p, q)], b[(q, q)])))
            .collect();
        ctx.team_step(step.len(), 1, 1, 20);
        // Rotation epoch: lane `t` reads its 2x2 pivot block of B and
        // publishes (c, s) into the rotation table.
        if ctx.sanitizing() {
            for (t, &(p, q)) in step.iter().enumerate() {
                ctx.smem_read(t, lay.b, p * s + p, 1);
                ctx.smem_read(t, lay.b, p * s + q, 1);
                ctx.smem_read(t, lay.b, q * s + q, 1);
                ctx.smem_write(t, lay.rots, 2 * t, 2);
            }
        }
        ctx.sync_threads();

        // Element-wise B̂ = G^T B G: column map col->(partner, c, s).
        let mut partner: Vec<usize> = (0..s).collect();
        let mut cs: Vec<Rotation> = vec![Rotation::IDENTITY; s];
        for &(p, q, r) in &rots {
            partner[p] = q;
            partner[q] = p;
            cs[p] = r;
            cs[q] = r;
        }
        // x-vector for row r of G^T and y-vector for column c of G each have
        // at most 2 non-zeros: 6 multiplications + 3 additions per element.
        let old = b.clone();
        for col in 0..s {
            for row in 0..s {
                b[(row, col)] = combined_element(&old, row, col, &partner, &cs);
            }
        }
        ctx.par_step(s * s, 9);
        // The in-place update is staged through the half-matrix scratch
        // panel: each panel pass is two epochs — lanes (one per column) read
        // the pre-panel B plus the rotation table and write their staged
        // column into scratch, sync, then copy the staged column back over B.
        if ctx.sanitizing() {
            let half = (s / 2).max(1);
            let mut panel_start = 0;
            while panel_start < s {
                let panel_end = (panel_start + half).min(s);
                for c in panel_start..panel_end {
                    ctx.smem_read(c, lay.b, 0, s * s);
                    ctx.smem_read(c, lay.rots, 0, 2 * step.len());
                    ctx.smem_write(c, lay.scratch, (c - panel_start) * s, s);
                }
                ctx.sync_threads();
                for c in panel_start..panel_end {
                    ctx.smem_read(c, lay.scratch, (c - panel_start) * s, s);
                    ctx.smem_write(c, lay.b, c * s, s);
                }
                ctx.sync_threads();
                panel_start = panel_end;
            }
        }

        // J <- J * G (disjoint column pairs, all parallel).
        for &(p, q, r) in &rots {
            apply_right_rotation(j, p, q, r);
        }
        ctx.par_step(step.len() * s, 6);
        // J-update epoch: lane `t` owns columns (p, q) of J exclusively.
        if ctx.sanitizing() {
            for (t, &(p, q, _)) in rots.iter().enumerate() {
                ctx.smem_read(t, lay.rots, 2 * t, 2);
                ctx.smem_write(t, lay.j, p * s, s);
                ctx.smem_write(t, lay.j, q * s, s);
            }
        }
        ctx.sync_threads();
    }
}

/// `b̂_rc = (row r of G^T) · B · (column c of G)` with the 2-non-zero
/// structure of Givens matrices (Fig. 5).
#[inline]
fn combined_element(
    old: &Matrix,
    row: usize,
    col: usize,
    partner: &[usize],
    cs: &[Rotation],
) -> f64 {
    // Row r of G^T = column r of G: entries at (r) and (partner[r]).
    let (rp, rr) = (partner[row], cs[row]);
    // x has x[row] = a, x[rp] = b.
    let (xa, xb) = givens_col_entries(row, rp, rr);
    let (cp, cr) = (partner[col], cs[col]);
    let (ya, yb) = givens_col_entries(col, cp, cr);

    // x^T B y over the at-most-2x2 support.
    let mut v = xa * ya * old[(row, col)];
    if cp != col {
        v += xa * yb * old[(row, cp)];
    }
    if rp != row {
        v += xb * ya * old[(rp, col)];
        if cp != col {
            v += xb * yb * old[(rp, cp)];
        }
    }
    v
}

/// Entries of column `i` of the step's combined Givens matrix `G`:
/// `(G[i, i], G[partner, i])` for the rotation `[[c, -s], [s, c]]` placed on
/// the (min, max) index pair.
#[inline]
fn givens_col_entries(i: usize, partner: usize, r: Rotation) -> (f64, f64) {
    if partner == i {
        return (1.0, 0.0);
    }
    if i < partner {
        // Column i is (c, s) on rows (i, partner).
        (r.c, r.s)
    } else {
        // Column i is (-s, c) on rows (partner, i).
        (r.c, -r.s)
    }
}

/// Applies `B <- G^T B G` for a single rotation on rows/cols `(p, q)`.
fn apply_two_sided(b: &mut Matrix, p: usize, q: usize, r: Rotation) {
    let s = b.rows();
    let (c, sn) = (r.c, r.s);
    // Columns p, q.
    for i in 0..s {
        let bip = b[(i, p)];
        let biq = b[(i, q)];
        b[(i, p)] = c * bip + sn * biq;
        b[(i, q)] = -sn * bip + c * biq;
    }
    // Rows p, q.
    for jj in 0..s {
        let bpj = b[(p, jj)];
        let bqj = b[(q, jj)];
        b[(p, jj)] = c * bpj + sn * bqj;
        b[(q, jj)] = -sn * bpj + c * bqj;
    }
}

/// Applies `M <- M * G` on columns `(p, q)`.
fn apply_right_rotation(m: &mut Matrix, p: usize, q: usize, r: Rotation) {
    let (cp, cq) = m.col_pair_mut(p, q);
    wsvd_linalg::rotate_columns(r, cp, cq);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_gpu_sim::{Gpu, KernelConfig, V100};
    use wsvd_linalg::generate::{random_spd, random_symmetric};
    use wsvd_linalg::svd::evd_residual;
    use wsvd_linalg::verify::orthonormality_error;

    fn run(b: &Matrix, cfg: &EvdConfig) -> (JacobiEvd, wsvd_gpu_sim::LaunchStats) {
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 256, 48 * 1024, "evd");
        let (mut out, stats) = gpu
            .launch_collect(kc, |_, ctx| evd_in_block(b, cfg, ctx))
            .unwrap();
        (out.pop().unwrap(), stats)
    }

    #[test]
    fn parallel_diagonalizes_symmetric() {
        let b = random_symmetric(16, 5);
        let (evd, _) = run(&b, &EvdConfig::default());
        assert!(evd.converged, "did not converge in {} sweeps", evd.sweeps);
        assert!(evd_residual(&b, &evd.j, &evd.lambda) < 1e-10);
        assert!(orthonormality_error(&evd.j) < 1e-10);
        assert!(evd.lambda.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn sequential_diagonalizes_symmetric() {
        let b = random_symmetric(12, 9);
        let (evd, _) = run(
            &b,
            &EvdConfig {
                variant: EvdVariant::Sequential,
                ..Default::default()
            },
        );
        assert!(evd.converged);
        assert!(evd_residual(&b, &evd.j, &evd.lambda) < 1e-10);
    }

    #[test]
    fn variants_agree_on_spectrum() {
        let b = random_symmetric(10, 21);
        let (par, _) = run(&b, &EvdConfig::default());
        let (seq, _) = run(
            &b,
            &EvdConfig {
                variant: EvdVariant::Sequential,
                ..Default::default()
            },
        );
        for (a, c) in par.lambda.iter().zip(&seq.lambda) {
            assert!((a - c).abs() < 1e-9, "{a} vs {c}");
        }
    }

    #[test]
    fn spd_eigenvalues_match_singular_values() {
        let b = random_spd(8, 33);
        let (evd, _) = run(&b, &EvdConfig::default());
        let sv = wsvd_linalg::singular_values(&b).unwrap();
        for (l, s) in evd.lambda.iter().zip(&sv) {
            assert!((l - s).abs() < 1e-10, "{l} vs {s}");
        }
        assert!(evd.lambda.iter().all(|&l| l > -1e-12));
    }

    #[test]
    fn parallel_has_much_shorter_span_than_sequential() {
        // The Fig. 10(b) claim: ~6x for 32x32.
        let b = random_symmetric(32, 41);
        let (_, par) = run(
            &b,
            &EvdConfig {
                max_sweeps: 1,
                tol: 0.0,
                ..Default::default()
            },
        );
        let (_, seq) = run(
            &b,
            &EvdConfig {
                max_sweeps: 1,
                tol: 0.0,
                variant: EvdVariant::Sequential,
            },
        );
        let speedup = seq.totals.span_cycles / par.totals.span_cycles;
        assert!(speedup > 3.0, "span speedup only {speedup:.2}x");
    }

    #[test]
    fn diagonal_matrix_converges_immediately() {
        let b = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let (evd, _) = run(&b, &EvdConfig::default());
        assert_eq!(evd.sweeps, 0);
        assert_eq!(evd.lambda, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn indefinite_matrix_keeps_signs() {
        // Eigenvalues of [[0, 1], [1, 0]] are +1, -1.
        let b = Matrix::from_rows(2, 2, &[0., 1., 1., 0.]);
        let (evd, _) = run(&b, &EvdConfig::default());
        assert!((evd.lambda[0] - 1.0).abs() < 1e-12);
        assert!((evd.lambda[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sanitized_evd_is_hazard_free() {
        let b = random_symmetric(12, 7);
        for variant in [EvdVariant::Parallel, EvdVariant::Sequential] {
            let gpu = Gpu::with_sanitize(V100, wsvd_gpu_sim::SanitizeMode::Full);
            let kc = KernelConfig::new(1, 256, 48 * 1024, "sanitized-evd");
            let (mut out, _) = gpu
                .launch_collect(kc, |_, ctx| {
                    evd_in_block(
                        &b,
                        &EvdConfig {
                            variant,
                            ..Default::default()
                        },
                        ctx,
                    )
                })
                .unwrap();
            assert!(out.pop().unwrap().converged);
            let rep = gpu.sanitizer_report();
            assert!(rep.is_clean(), "{variant:?}: {:?}", rep.violations);
            assert!(rep.stats.epochs > 0);
        }
    }

    #[test]
    fn too_large_for_sm_fails() {
        let b = random_symmetric(64, 3);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 256, 48 * 1024, "evd-big");
        let err = gpu
            .launch_collect(kc, |_, ctx| evd_in_block(&b, &EvdConfig::default(), ctx))
            .unwrap_err();
        matches!(err, KernelError::Smem(_));
        // And the predicate agrees.
        assert!(!crate::fits::evd_fits_in_sm(64, 48 * 1024));
    }

    #[test]
    fn fits_predicate_matches_kernel_success() {
        let s = 44; // 2w = 44 fits: 3*44^2+88 = 5896 elems < 6144
        assert!(crate::fits::evd_fits_in_sm(s, 48 * 1024));
        let b = random_symmetric(s, 55);
        let (evd, _) = run(&b, &EvdConfig::default());
        assert!(evd.converged);
    }
}
