//! Property-based tests of the Jacobi kernels against the two-stage oracle.

use proptest::prelude::*;
use wsvd_gpu_sim::{Gpu, KernelConfig, V100};
use wsvd_jacobi::evd::{evd_in_block, EvdConfig, EvdVariant};
use wsvd_jacobi::onesided::{svd_in_block, MemSpace, OneSidedConfig};
use wsvd_linalg::generate::{random_symmetric, random_uniform};
use wsvd_linalg::svd::evd_residual;
use wsvd_linalg::verify::orthonormality_error;
use wsvd_linalg::{singular_values, Matrix};

fn run_svd(a: &Matrix, cfg: &OneSidedConfig, space: MemSpace) -> wsvd_jacobi::JacobiSvd {
    let gpu = Gpu::new(V100);
    let smem = if space == MemSpace::Shared {
        48 * 1024
    } else {
        0
    };
    let kc = KernelConfig::new(1, 128, smem, "prop-svd");
    gpu.launch_collect(kc, |_, ctx| svd_in_block(a, cfg, ctx, space))
        .unwrap()
        .0
        .pop()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sm_svd_matches_oracle(m in 1usize..28, n in 1usize..28, seed in any::<u64>()) {
        let a = random_uniform(m, n, seed);
        let svd = run_svd(&a, &OneSidedConfig::default(), MemSpace::Shared);
        prop_assert!(svd.stats.converged);
        let want = singular_values(&a).unwrap();
        for (g, w) in svd.sigma.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-8 * (1.0 + w), "{} vs {}", g, w);
        }
        prop_assert!(orthonormality_error(&svd.u) < 1e-8);
        prop_assert!(orthonormality_error(&svd.v) < 1e-8);
    }

    #[test]
    fn gm_and_sm_kernels_agree(m in 2usize..20, n in 2usize..16, seed in any::<u64>()) {
        let a = random_uniform(m, n, seed);
        let sm = run_svd(&a, &OneSidedConfig::default(), MemSpace::Shared);
        let gm = run_svd(&a, &OneSidedConfig::default(), MemSpace::Global);
        for (x, y) in sm.sigma.iter().zip(&gm.sigma) {
            prop_assert!((x - y).abs() < 1e-12 * (1.0 + y), "kernels disagree");
        }
    }

    #[test]
    fn alpha_width_never_changes_numerics(
        m in 4usize..24, seed in any::<u64>(), tpp_idx in 0usize..4
    ) {
        let tpp = [4usize, 8, 16, 32][tpp_idx];
        let a = random_uniform(m, m.min(12), seed);
        let base = run_svd(&a, &OneSidedConfig::default(), MemSpace::Shared);
        let cfg = OneSidedConfig { threads_per_pair: tpp, ..Default::default() };
        let other = run_svd(&a, &cfg, MemSpace::Shared);
        prop_assert_eq!(base.sigma.len(), other.sigma.len());
        for (x, y) in base.sigma.iter().zip(&other.sigma) {
            prop_assert!((x - y).abs() < 1e-13 * (1.0 + y), "α changed the math");
        }
    }

    #[test]
    fn evd_variants_agree_and_decompose(s in 2usize..24, seed in any::<u64>()) {
        let b = random_symmetric(s, seed);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 256, 48 * 1024, "prop-evd");
        let run = |variant| {
            gpu.launch_collect(kc, |_, ctx| {
                evd_in_block(&b, &EvdConfig { variant, ..Default::default() }, ctx)
            })
            .unwrap()
            .0
            .pop()
            .unwrap()
        };
        let par = run(EvdVariant::Parallel);
        let seq = run(EvdVariant::Sequential);
        prop_assert!(par.converged && seq.converged);
        prop_assert!(evd_residual(&b, &par.j, &par.lambda) < 1e-9);
        prop_assert!(evd_residual(&b, &seq.j, &seq.lambda) < 1e-9);
        for (x, y) in par.lambda.iter().zip(&seq.lambda) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()));
        }
        // Eigenvalue sum equals the trace.
        let trace: f64 = b.diag().iter().sum();
        let lsum: f64 = par.lambda.iter().sum();
        prop_assert!((trace - lsum).abs() < 1e-9 * (1.0 + trace.abs()));
    }

    #[test]
    fn every_ordering_passes_the_static_checker(n in 2usize..=32) {
        use wsvd_jacobi::ordering::Ordering;
        use wsvd_jacobi::verify::verify_ordering;
        for o in Ordering::ALL {
            let proof = verify_ordering(o, n);
            prop_assert!(proof.is_ok(), "{:?} n={} rejected: {}", o, n, proof.unwrap_err());
            let proof = proof.unwrap();
            prop_assert_eq!(proof.pairs, n * (n - 1) / 2);
            prop_assert!(proof.max_step_width <= n / 2);
            prop_assert!(proof.steps >= n - 1, "a sweep needs at least n-1 steps");
        }
    }

    #[test]
    fn sanitized_sm_svd_is_hazard_free(m in 2usize..24, n in 2usize..16, seed in any::<u64>()) {
        use wsvd_gpu_sim::SanitizeMode;
        let a = random_uniform(m, n, seed);
        let gpu = Gpu::with_sanitize(V100, SanitizeMode::Full);
        let kc = KernelConfig::new(1, 128, 48 * 1024, "prop-sanitized-svd");
        gpu.launch_collect(kc, |_, ctx| {
            svd_in_block(&a, &OneSidedConfig::default(), ctx, MemSpace::Shared)
        })
        .unwrap();
        let report = gpu.sanitizer_report();
        prop_assert!(report.is_clean(), "{}x{}: {:?}", m, n, report.violations);
    }

    #[test]
    fn svd_energy_identity(m in 2usize..20, n in 2usize..16, seed in any::<u64>()) {
        let a = random_uniform(m, n, seed);
        let svd = run_svd(&a, &OneSidedConfig::default(), MemSpace::Shared);
        let sum_sq: f64 = svd.sigma.iter().map(|s| s * s).sum();
        let fro2 = a.fro_norm().powi(2);
        prop_assert!((sum_sq - fro2).abs() < 1e-9 * (1.0 + fro2));
    }
}
