//! Synthetic stand-ins for the SuiteSparse test matrices of Table VII.
//!
//! The UF collection is not available offline; per DESIGN.md §1 each matrix
//! is replaced by a dense synthetic matrix with the **same dimensions and
//! 2-norm condition number** (log-spaced spectrum between seeded random
//! orthogonal factors). Jacobi convergence behaviour is governed by size and
//! spectrum, so the Table-VII / Fig-15 trends survive the substitution.

use wsvd_linalg::generate::{log_spaced_spectrum, with_spectrum};
use wsvd_linalg::Matrix;

/// Description of one named test matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NamedMatrix {
    /// SuiteSparse name.
    pub name: &'static str,
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Target 2-norm condition number.
    pub cond: f64,
}

/// The five matrices of Table VII.
pub const TABLE_VII: [NamedMatrix; 5] = [
    NamedMatrix {
        name: "ash331",
        m: 331,
        n: 104,
        cond: 3.10e0,
    },
    NamedMatrix {
        name: "impcol_d",
        m: 425,
        n: 425,
        cond: 2.06e3,
    },
    NamedMatrix {
        name: "tols340",
        m: 340,
        n: 340,
        cond: 2.03e5,
    },
    NamedMatrix {
        name: "robot24c1_mat5",
        m: 404,
        n: 302,
        cond: 3.33e11,
    },
    NamedMatrix {
        name: "flower_7_1",
        m: 463,
        n: 393,
        cond: 8.08e15,
    },
];

impl NamedMatrix {
    /// Materializes the synthetic stand-in at full size.
    pub fn generate(&self) -> Matrix {
        self.generate_scaled(1.0)
    }

    /// Materializes at `scale` of the original dimensions (minimum 16),
    /// keeping the condition number — used to keep CPU runtimes bounded.
    pub fn generate_scaled(&self, scale: f64) -> Matrix {
        let m = ((self.m as f64 * scale) as usize).max(16);
        let n = ((self.n as f64 * scale) as usize).max(16);
        let r = m.min(n);
        let sigma = log_spaced_spectrum(r, 1.0, self.cond);
        with_spectrum(m, n, &sigma, seed_of(self.name))
    }
}

/// Looks up a Table-VII matrix by name.
pub fn by_name(name: &str) -> Option<NamedMatrix> {
    TABLE_VII.iter().copied().find(|m| m.name == name)
}

fn seed_of(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsvd_linalg::singular_values;

    #[test]
    fn all_five_present() {
        assert_eq!(TABLE_VII.len(), 5);
        assert!(by_name("impcol_d").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn dimensions_match_paper() {
        let a = by_name("ash331").unwrap().generate();
        assert_eq!(a.shape(), (331, 104));
    }

    #[test]
    fn condition_number_achieved_moderate() {
        let spec = by_name("impcol_d").unwrap();
        let a = spec.generate_scaled(0.2); // 85x85 keeps the test fast
        let s = singular_values(&a).unwrap();
        let cond = s[0] / s[s.len() - 1];
        assert!(
            (cond / spec.cond - 1.0).abs() < 1e-3,
            "cond {cond} vs target {}",
            spec.cond
        );
    }

    #[test]
    fn extreme_condition_number_is_extreme() {
        let spec = by_name("flower_7_1").unwrap();
        let a = spec.generate_scaled(0.1);
        let s = singular_values(&a).unwrap();
        // 8e15 cannot be hit exactly in f64; it must at least be huge.
        assert!(s[0] / s[s.len() - 1].max(f64::MIN_POSITIVE) > 1e12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = by_name("tols340").unwrap().generate_scaled(0.1);
        let b = by_name("tols340").unwrap().generate_scaled(0.1);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn scaled_has_floor() {
        let a = by_name("ash331").unwrap().generate_scaled(0.01);
        assert!(a.rows() >= 16 && a.cols() >= 16);
    }
}
