//! The variable-size batches of Table VI.
//!
//! The paper assigns SuiteSparse matrices into five groups by a size cap and
//! batches each group. The synthetic equivalent draws matrix dimensions
//! log-uniformly in `(cap/4, cap]` (small sparse-collection matrices skew
//! small) with mild rectangularity, reproducing the mixed-size character
//! that makes uniform-`w` methods size-sensitive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsvd_linalg::generate::random_uniform;
use wsvd_linalg::Matrix;

/// One Table-VI group: every matrix dimension is `<= cap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeGroup {
    /// Upper bound on both dimensions.
    pub cap: usize,
    /// Batch size used in the paper.
    pub batch: usize,
}

/// The five groups of Table VI.
pub const TABLE_VI: [SizeGroup; 5] = [
    SizeGroup { cap: 32, batch: 46 },
    SizeGroup { cap: 64, batch: 85 },
    SizeGroup {
        cap: 128,
        batch: 156,
    },
    SizeGroup {
        cap: 256,
        batch: 243,
    },
    SizeGroup {
        cap: 512,
        batch: 458,
    },
];

impl SizeGroup {
    /// Generates the group's batch (deterministic per seed).
    pub fn generate(&self, seed: u64) -> Vec<Matrix> {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates with dimensions and batch size scaled by `scale`
    /// (minimums 4 and 1), to bound CPU runtimes.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> Vec<Matrix> {
        let cap = ((self.cap as f64 * scale) as usize).max(4);
        let batch = ((self.batch as f64 * scale) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ (self.cap as u64) << 20);
        (0..batch)
            .map(|k| {
                let lo = (cap / 4).max(2) as f64;
                let hi = cap as f64;
                let dim = |rng: &mut StdRng| {
                    let u: f64 = rng.gen();
                    (lo * (hi / lo).powf(u)).round() as usize
                };
                let m = dim(&mut rng);
                let n = dim(&mut rng);
                random_uniform(m, n, seed.wrapping_add(1 + k as u64))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_batches() {
        assert_eq!(TABLE_VI[0].batch, 46);
        assert_eq!(TABLE_VI[4].batch, 458);
        assert_eq!(TABLE_VI[2].cap, 128);
    }

    #[test]
    fn generated_sizes_respect_cap() {
        let g = TABLE_VI[1];
        let batch = g.generate(9);
        assert_eq!(batch.len(), 85);
        assert!(batch.iter().all(|m| m.rows() <= 64 && m.cols() <= 64));
        assert!(batch.iter().all(|m| m.rows() >= 2 && m.cols() >= 2));
    }

    #[test]
    fn sizes_are_actually_mixed() {
        let batch = TABLE_VI[2].generate(3);
        let first = batch[0].shape();
        assert!(batch.iter().any(|m| m.shape() != first), "all sizes equal");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TABLE_VI[0].generate(5);
        let b = TABLE_VI[0].generate(5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[3].as_slice(), b[3].as_slice());
        let c = TABLE_VI[0].generate(6);
        assert_ne!(a[3].as_slice(), c[3].as_slice());
    }

    #[test]
    fn scaling_shrinks() {
        let batch = TABLE_VI[4].generate_scaled(1, 0.25);
        assert_eq!(batch.len(), 114);
        assert!(batch.iter().all(|m| m.rows() <= 128 && m.cols() <= 128));
    }
}
