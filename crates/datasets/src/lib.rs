//! # wsvd-datasets
//!
//! Deterministic synthetic workloads for the W-cycle SVD evaluation:
//! stand-ins for the SuiteSparse matrices of Table VII ([`named`]) and the
//! variable-size batched groups of Table VI ([`groups`]). See DESIGN.md §1
//! for the substitution rationale.

#![warn(missing_docs)]

pub mod groups;
pub mod named;

pub use groups::{SizeGroup, TABLE_VI};
pub use named::{by_name, NamedMatrix, TABLE_VII};
