//! Property tests for the flight recorder: wraparound keeps exactly the
//! newest `capacity` events, and concurrent writers never lose, duplicate
//! or tear an event.

use std::sync::Arc;

use proptest::prelude::*;
use wsvd_health::{FlightKind, FlightRecorder};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// After `n` sequential records into a ring of size `cap`, the tail is
    /// exactly the last `min(n, cap)` sequence numbers, in order.
    #[test]
    fn wraparound_keeps_newest(cap in 1usize..32, n in 0usize..200) {
        let r = FlightRecorder::new(cap);
        for k in 0..n {
            r.record(k as f64, FlightKind::ShardKilled { rank: k as u64 });
        }
        prop_assert_eq!(r.recorded(), n as u64);
        let tail = r.tail();
        prop_assert_eq!(tail.len(), n.min(cap));
        let expect: Vec<u64> = (n.saturating_sub(cap)..n).map(|k| k as u64).collect();
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        prop_assert_eq!(seqs, expect);
        // Payloads travel with their sequence numbers (no torn slots).
        for e in &tail {
            prop_assert_eq!(&e.kind, &FlightKind::ShardKilled { rank: e.seq });
        }
    }

    /// Concurrent writers: every recorded event is counted, the surviving
    /// tail is a consistent suffix of the global order (unique, sorted
    /// seqs; each payload matches its seq), and capacity is respected.
    #[test]
    fn concurrent_writers_are_consistent(
        cap in 1usize..24,
        writers in 2usize..6,
        per_writer in 1usize..40,
    ) {
        let r = Arc::new(FlightRecorder::new(cap));
        std::thread::scope(|s| {
            for w in 0..writers {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for k in 0..per_writer {
                        r.record(
                            k as f64,
                            FlightKind::MetricDelta {
                                key: format!("w{w}"),
                                delta: k as f64,
                            },
                        );
                    }
                });
            }
        });
        let total = (writers * per_writer) as u64;
        prop_assert_eq!(r.recorded(), total);
        let tail = r.tail();
        prop_assert_eq!(tail.len(), (total as usize).min(r.capacity()));
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&seqs, &sorted);
        // Each ring slot holds at most one surviving event, so no two tail
        // entries may share a slot residue.
        let mut residues: Vec<u64> = seqs.iter().map(|s| s % r.capacity() as u64).collect();
        residues.sort_unstable();
        residues.dedup();
        prop_assert_eq!(residues.len(), tail.len());
        for e in &tail {
            prop_assert!(e.seq < total);
            match &e.kind {
                FlightKind::MetricDelta { key, delta } => {
                    prop_assert!(key.starts_with('w'));
                    prop_assert!(delta.fract() == 0.0 && *delta >= 0.0);
                }
                other => prop_assert!(false, "unexpected event kind {other:?}"),
            }
        }
    }
}
