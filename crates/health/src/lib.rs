//! `wsvd-health` — numerical-health watchdogs, convergence telemetry and an
//! always-on flight recorder with structured incident reports.
//!
//! The trace (PR 1), sanitizer (PR 2) and metrics (PR 4) layers observe
//! *scheduling* and *hazards*; this crate observes *numerics* — the
//! quantities the paper's correctness claims actually rest on:
//!
//! * **Watchdogs.** Per-sweep off-diagonal-norm decay per W-cycle level
//!   (stagnation: a level whose off-norm stops shrinking for `k` consecutive
//!   sweeps fires; divergence: an off-norm exploding between sweeps fires
//!   immediately), NaN/Inf detection at simulated kernel boundaries, final
//!   residual / orthogonality drift ceilings, and dead-shard detection on
//!   the cluster model.
//! * **Flight recorder.** A fixed-size ring buffer of recent events (kernel
//!   launches, auto-tuner plan selections, sweep convergence samples,
//!   metric deltas, cluster collectives). Slot reservation is one wait-free
//!   `fetch_add`; publication takes a per-slot lock that is only ever
//!   contended when a writer laps the entire ring mid-write. With the sink
//!   disabled every recording method returns after a single `Option` check.
//! * **Incidents.** When a watchdog fires, the sink assembles a structured,
//!   JSON-serializable [`Incident`]: the trigger, the flight-recorder tail,
//!   a metrics [`Snapshot`](wsvd_metrics::Snapshot), the chosen tailoring
//!   plan, the level/sweep position, and the RNG seed of the workload so the
//!   incident is deterministically replayable.
//!
//! Design rules mirror `wsvd-trace` / `wsvd-metrics`: the default sink is a
//! strict no-op, all watchdog state lives host-side (nothing is charged to
//! the simulator's cost model), and an enabled sink never changes simulated
//! time or numerics — only observes them. Incident *storms* are suppressed:
//! the first incident of a kind per experiment is kept, cascading repeats
//! only bump a counter (a NaN poisons every downstream kernel; one report
//! is the signal, the rest is noise).

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use wsvd_metrics::MetricsSink;

/// Watchdog thresholds and the flight-recorder capacity. The defaults are
/// tuned so every clean experiment in the repro suite stays green (see
/// DESIGN.md §11 for the derivation of each value).
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Flight-recorder ring capacity (events retained).
    pub ring_capacity: usize,
    /// Consecutive sweeps a level's off-norm may fail to shrink by
    /// [`WatchdogConfig::min_decay`] before the stagnation watchdog fires.
    pub stall_sweeps: usize,
    /// Per-sweep shrink factor the off-norm must beat to count as progress
    /// (`next < min_decay * prev`). Healthy Jacobi *plateaus* near 1 in the
    /// pre-asymptotic phase but still chips off a little coherence every
    /// sweep; a genuinely stagnating level (inner rotations too loose to
    /// out-resolve the outer test) repeats essentially the same value. The
    /// default therefore demands only 0.1% progress per sweep — tight
    /// enough that a frozen level fails it, loose enough that the natural
    /// plateau passes.
    pub min_decay: f64,
    /// Off-norm growth ratio between consecutive sweeps that fires the
    /// divergence watchdog immediately (healthy sweeps never grow the
    /// off-norm by orders of magnitude above round-off).
    pub divergence_factor: f64,
    /// Off-norms at or below this value are round-off noise: they arm
    /// neither the stagnation nor the divergence watchdog (near
    /// convergence, coherence wobbles by orders of magnitude around the
    /// machine floor without meaning anything).
    pub watch_floor: f64,
    /// Ceiling on the per-matrix orthogonality error `||U^T U - I||_max`
    /// over the numerically significant singular directions.
    pub orthogonality_ceiling: f64,
    /// Ceiling on the per-matrix relative reconstruction residual
    /// `||A - U S V^T||_max / sigma_max`.
    pub residual_ceiling: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            ring_capacity: 256,
            stall_sweeps: 6,
            min_decay: 0.999,
            divergence_factor: 1e3,
            watch_floor: 1e-9,
            orthogonality_ceiling: 1e-8,
            residual_ceiling: 1e-8,
        }
    }
}

/// One event kind in the flight recorder.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightKind {
    /// A simulated kernel launch retired.
    KernelLaunch {
        /// Kernel label (the `KernelConfig` label).
        label: String,
        /// Grid size (blocks).
        grid: u64,
        /// Simulated kernel seconds of this launch.
        kernel_seconds: f64,
    },
    /// The auto-tuner chose a tailoring plan for a level.
    PlanSelected {
        /// W-cycle level.
        level: u64,
        /// Chosen pair-block half width `w`.
        w: u64,
        /// Chosen segment length `delta`.
        delta: u64,
        /// Chosen threads per block.
        threads: u64,
    },
    /// One per-sweep convergence sample of a W-cycle level.
    SweepSample {
        /// W-cycle level.
        level: u64,
        /// Sweep number within the level (1-based).
        sweep: u64,
        /// Maximum normalized column coherence over the level's tasks.
        off_norm: f64,
        /// Tasks still unconverged after this sweep.
        active: u64,
    },
    /// A metrics-registry delta worth keeping in the flight tail.
    MetricDelta {
        /// Metric key (free-form, typically `kernel/L<level>/name`).
        key: String,
        /// The recorded increment.
        delta: f64,
    },
    /// A cluster collective (gather/allreduce) completed.
    ShardSync {
        /// Bytes moved by the collective.
        bytes: u64,
        /// Seconds charged for it.
        seconds: f64,
    },
    /// A cluster rank was killed (fault injection).
    ShardKilled {
        /// The killed rank.
        rank: u64,
    },
    /// A dead rank's orphaned work was fully absorbed by the survivors
    /// (elastic recovery completed; flips its incident to `recovered`).
    ShardRecovered {
        /// The recovered rank.
        rank: u64,
    },
    /// An elastic device pulled a task chunk from the work deque.
    ChunkPulled {
        /// The pulling rank.
        rank: u64,
        /// The chunk id.
        chunk: u64,
    },
    /// An idle elastic device stole a chunk from another rank's remainder.
    ChunkStolen {
        /// The stealing rank.
        thief: u64,
        /// The rank stolen from.
        victim: u64,
        /// The chunk id.
        chunk: u64,
    },
    /// A chunk moved to the requeue pool (its rank died, or it was part of
    /// a dead rank's drained remainder).
    ChunkRequeued {
        /// The rank the chunk was lost from.
        rank: u64,
        /// The chunk id.
        chunk: u64,
    },
    /// A checkpoint of an elastic run was serialized.
    CheckpointTaken {
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// A watchdog fired (the marker lands in the tail of its own incident).
    WatchdogFire {
        /// The incident kind string (see [`IncidentKind::as_str`]).
        kind: String,
    },
}

impl FlightKind {
    fn type_tag(&self) -> &'static str {
        match self {
            FlightKind::KernelLaunch { .. } => "kernel-launch",
            FlightKind::PlanSelected { .. } => "plan-selected",
            FlightKind::SweepSample { .. } => "sweep-sample",
            FlightKind::MetricDelta { .. } => "metric-delta",
            FlightKind::ShardSync { .. } => "shard-sync",
            FlightKind::ShardKilled { .. } => "shard-killed",
            FlightKind::ShardRecovered { .. } => "shard-recovered",
            FlightKind::ChunkPulled { .. } => "chunk-pulled",
            FlightKind::ChunkStolen { .. } => "chunk-stolen",
            FlightKind::ChunkRequeued { .. } => "chunk-requeued",
            FlightKind::CheckpointTaken { .. } => "checkpoint-taken",
            FlightKind::WatchdogFire { .. } => "watchdog-fire",
        }
    }
}

// The serde shim derives only named-field structs, so the enum's mapping to
// a tagged JSON object is written out by hand.
impl Serialize for FlightKind {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> =
            vec![("type".into(), serde::Value::Str(self.type_tag().into()))];
        let mut push = |k: &str, v: serde::Value| m.push((k.to_string(), v));
        match self {
            FlightKind::KernelLaunch {
                label,
                grid,
                kernel_seconds,
            } => {
                push("label", serde::Value::Str(label.clone()));
                push("grid", serde::Value::U64(*grid));
                push("kernel_seconds", serde::Value::F64(*kernel_seconds));
            }
            FlightKind::PlanSelected {
                level,
                w,
                delta,
                threads,
            } => {
                push("level", serde::Value::U64(*level));
                push("w", serde::Value::U64(*w));
                push("delta", serde::Value::U64(*delta));
                push("threads", serde::Value::U64(*threads));
            }
            FlightKind::SweepSample {
                level,
                sweep,
                off_norm,
                active,
            } => {
                push("level", serde::Value::U64(*level));
                push("sweep", serde::Value::U64(*sweep));
                push("off_norm", serde::Value::F64(*off_norm));
                push("active", serde::Value::U64(*active));
            }
            FlightKind::MetricDelta { key, delta } => {
                push("key", serde::Value::Str(key.clone()));
                push("delta", serde::Value::F64(*delta));
            }
            FlightKind::ShardSync { bytes, seconds } => {
                push("bytes", serde::Value::U64(*bytes));
                push("seconds", serde::Value::F64(*seconds));
            }
            FlightKind::ShardKilled { rank } => {
                push("rank", serde::Value::U64(*rank));
            }
            FlightKind::ShardRecovered { rank } => {
                push("rank", serde::Value::U64(*rank));
            }
            FlightKind::ChunkPulled { rank, chunk } => {
                push("rank", serde::Value::U64(*rank));
                push("chunk", serde::Value::U64(*chunk));
            }
            FlightKind::ChunkStolen {
                thief,
                victim,
                chunk,
            } => {
                push("thief", serde::Value::U64(*thief));
                push("victim", serde::Value::U64(*victim));
                push("chunk", serde::Value::U64(*chunk));
            }
            FlightKind::ChunkRequeued { rank, chunk } => {
                push("rank", serde::Value::U64(*rank));
                push("chunk", serde::Value::U64(*chunk));
            }
            FlightKind::CheckpointTaken { bytes } => {
                push("bytes", serde::Value::U64(*bytes));
            }
            FlightKind::WatchdogFire { kind } => {
                push("kind", serde::Value::Str(kind.clone()));
            }
        }
        serde::Value::Map(m)
    }
}

impl Deserialize for FlightKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| serde::Error::msg(format!("FlightKind missing field `{k}`")))
        };
        let s = |k: &str| -> Result<String, serde::Error> {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| serde::Error::msg(format!("FlightKind field `{k}` not a string")))
        };
        let u = |k: &str| -> Result<u64, serde::Error> {
            field(k)?
                .as_u64()
                .ok_or_else(|| serde::Error::msg(format!("FlightKind field `{k}` not a u64")))
        };
        let f = |k: &str| -> Result<f64, serde::Error> {
            field(k)?
                .as_f64()
                .ok_or_else(|| serde::Error::msg(format!("FlightKind field `{k}` not a number")))
        };
        match s("type")?.as_str() {
            "kernel-launch" => Ok(FlightKind::KernelLaunch {
                label: s("label")?,
                grid: u("grid")?,
                kernel_seconds: f("kernel_seconds")?,
            }),
            "plan-selected" => Ok(FlightKind::PlanSelected {
                level: u("level")?,
                w: u("w")?,
                delta: u("delta")?,
                threads: u("threads")?,
            }),
            "sweep-sample" => Ok(FlightKind::SweepSample {
                level: u("level")?,
                sweep: u("sweep")?,
                off_norm: f("off_norm")?,
                active: u("active")?,
            }),
            "metric-delta" => Ok(FlightKind::MetricDelta {
                key: s("key")?,
                delta: f("delta")?,
            }),
            "shard-sync" => Ok(FlightKind::ShardSync {
                bytes: u("bytes")?,
                seconds: f("seconds")?,
            }),
            "shard-killed" => Ok(FlightKind::ShardKilled { rank: u("rank")? }),
            "shard-recovered" => Ok(FlightKind::ShardRecovered { rank: u("rank")? }),
            "chunk-pulled" => Ok(FlightKind::ChunkPulled {
                rank: u("rank")?,
                chunk: u("chunk")?,
            }),
            "chunk-stolen" => Ok(FlightKind::ChunkStolen {
                thief: u("thief")?,
                victim: u("victim")?,
                chunk: u("chunk")?,
            }),
            "chunk-requeued" => Ok(FlightKind::ChunkRequeued {
                rank: u("rank")?,
                chunk: u("chunk")?,
            }),
            "checkpoint-taken" => Ok(FlightKind::CheckpointTaken { bytes: u("bytes")? }),
            "watchdog-fire" => Ok(FlightKind::WatchdogFire { kind: s("kind")? }),
            other => Err(serde::Error::msg(format!(
                "unknown FlightKind type `{other}`"
            ))),
        }
    }
}

/// One flight-recorder entry: a global sequence number, the simulated time
/// at which the event was recorded, and the event itself.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Simulated seconds at recording time.
    pub t_sim: f64,
    /// What happened.
    pub kind: FlightKind,
}

/// Fixed-size ring buffer of [`FlightEvent`]s.
///
/// Writers reserve a slot with one wait-free `fetch_add` on the cursor and
/// publish through that slot's mutex. Distinct concurrent writers get
/// distinct slots, so the per-slot lock is only contended when a writer
/// laps the whole ring while another still holds its slot — with the
/// default capacity of 256 that never happens in practice. Readers
/// ([`FlightRecorder::tail`]) take each slot lock briefly and sort by
/// sequence number; a torn read is impossible, at worst a reader misses an
/// in-flight event.
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<FlightEvent>>]>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotone; the ring keeps the last
    /// [`FlightRecorder::capacity`] of them).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event at simulated time `t_sim`.
    pub fn record(&self, t_sim: f64, kind: FlightKind) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let ev = FlightEvent { seq, t_sim, kind };
        let mut guard = self.slots[slot].lock();
        // A lapped slot may hold a *newer* event if this writer was parked
        // for a full ring revolution; never overwrite newer with older.
        if guard.as_ref().is_none_or(|old| old.seq <= seq) {
            *guard = Some(ev);
        }
    }

    /// The retained events in sequence order (oldest first).
    pub fn tail(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// The watchdog classes an [`Incident`] can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentKind {
    /// A kernel boundary produced NaN/Inf.
    NonFinite,
    /// A level's off-norm stopped shrinking for `stall_sweeps` sweeps.
    Stagnation,
    /// A level's off-norm exploded between sweeps.
    Divergence,
    /// Final `||U^T U - I||` exceeded the ceiling.
    OrthogonalityDrift,
    /// Final relative reconstruction residual exceeded the ceiling.
    ResidualDrift,
    /// A cluster rank stopped responding (killed shard).
    ShardDead,
}

impl IncidentKind {
    /// Stable string form used in serialized incidents and latch keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            IncidentKind::NonFinite => "non-finite",
            IncidentKind::Stagnation => "stagnation",
            IncidentKind::Divergence => "divergence",
            IncidentKind::OrthogonalityDrift => "orthogonality-drift",
            IncidentKind::ResidualDrift => "residual-drift",
            IncidentKind::ShardDead => "shard-dead",
        }
    }
}

impl std::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The tailoring plan in force when an incident fired.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanChoice {
    /// W-cycle level the plan was selected for.
    pub level: u64,
    /// Pair-block half width.
    pub w: u64,
    /// Segment length.
    pub delta: u64,
    /// Threads per block.
    pub threads: u64,
}

/// A structured incident report: everything needed to understand and replay
/// one watchdog fire. Serialized as JSON by `repro --health-dump` and the
/// `ext-health` experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Incident {
    /// Incident class ([`IncidentKind::as_str`]).
    pub kind: String,
    /// Human-readable trigger description.
    pub detail: String,
    /// Experiment scope the incident fired under.
    pub experiment: String,
    /// RNG seed of the workload — regenerating the inputs from this seed
    /// and re-running deterministically reproduces the incident.
    pub seed: u64,
    /// W-cycle level position, when applicable.
    pub level: Option<u64>,
    /// Sweep position within the level, when applicable.
    pub sweep: Option<u64>,
    /// Simulated seconds at fire time.
    pub t_sim: f64,
    /// The tailoring plan in force, when one had been selected.
    pub plan: Option<PlanChoice>,
    /// The flight-recorder tail at fire time (the watchdog-fire marker is
    /// the last entry).
    pub flight_tail: Vec<FlightEvent>,
    /// Metrics-registry snapshot at fire time (empty when metrics are off).
    pub metrics: wsvd_metrics::Snapshot,
    /// Whether the condition was later recovered from (today: a dead rank
    /// whose orphaned chunks were fully absorbed by the surviving ranks —
    /// see [`HealthSink::shard_recovered`]). Fires as `false`.
    pub recovered: bool,
}

/// Everything `repro --health-dump` writes: the context, the incidents and
/// the current flight tail (even when no watchdog fired).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HealthReport {
    /// Current experiment scope.
    pub experiment: String,
    /// Current workload seed.
    pub seed: u64,
    /// Total flight events ever recorded.
    pub events_recorded: u64,
    /// Incidents suppressed as cascades of an already-reported kind.
    pub suppressed: u64,
    /// All incidents, in fire order.
    pub incidents: Vec<Incident>,
    /// The current flight-recorder tail.
    pub flight_tail: Vec<FlightEvent>,
}

/// Per-level stagnation/divergence tracker.
#[derive(Clone, Copy, Debug, Default)]
struct StallTracker {
    last: f64,
    stalled: usize,
}

struct State {
    experiment: String,
    seed: u64,
    plan: Option<PlanChoice>,
    level: Option<u64>,
    sweep: Option<u64>,
    incidents: Vec<Incident>,
    suppressed: u64,
    fired: BTreeSet<String>,
    stall: BTreeMap<u64, StallTracker>,
    metrics: MetricsSink,
}

struct Inner {
    config: WatchdogConfig,
    recorder: FlightRecorder,
    state: Mutex<State>,
}

/// A cheaply clonable handle producers record into; clones share one
/// recorder and watchdog state.
///
/// `HealthSink::default()` is **disabled**: every method returns after one
/// `Option` check. Producers guard any computation done *only* for health
/// (e.g. computing an off-norm that tracing has not already computed)
/// behind [`HealthSink::is_enabled`], so with the sink off, simulated time
/// and numerics are bit-identical to a build without the crate. An enabled
/// sink is also purely observational: nothing it does is charged to the
/// simulator's cost model.
#[derive(Clone, Default)]
pub struct HealthSink {
    inner: Option<Arc<Inner>>,
}

impl HealthSink {
    /// A recording sink with default watchdog thresholds. Captures the
    /// process-wide metrics sink for incident snapshots (replace with
    /// [`HealthSink::set_metrics`] in tests).
    pub fn enabled() -> Self {
        Self::with_config(WatchdogConfig::default())
    }

    /// A recording sink with explicit thresholds.
    pub fn with_config(config: WatchdogConfig) -> Self {
        HealthSink {
            inner: Some(Arc::new(Inner {
                recorder: FlightRecorder::new(config.ring_capacity),
                config,
                state: Mutex::new(State {
                    experiment: String::new(),
                    seed: 0,
                    plan: None,
                    level: None,
                    sweep: None,
                    incidents: Vec::new(),
                    suppressed: 0,
                    fired: BTreeSet::new(),
                    stall: BTreeMap::new(),
                    metrics: wsvd_metrics::global(),
                }),
            })),
        }
    }

    /// A no-op sink (same as `default()`).
    pub fn disabled() -> Self {
        HealthSink::default()
    }

    /// Whether health is being recorded. Producers must guard health-only
    /// computation behind this, preserving the bit-identity guarantee of
    /// the disabled mode.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active watchdog thresholds (defaults when disabled).
    pub fn config(&self) -> WatchdogConfig {
        self.inner.as_ref().map(|i| i.config).unwrap_or_default()
    }

    /// Sets the experiment scope and workload seed stamped into subsequent
    /// incidents, and resets the per-level stagnation trackers (a new
    /// workload starts fresh). Incident latches are keyed per experiment,
    /// so a new scope may fire the same kind again.
    pub fn set_context(&self, experiment: &str, seed: u64) {
        if let Some(i) = &self.inner {
            let mut st = i.state.lock();
            st.experiment = experiment.to_string();
            st.seed = seed;
            st.stall.clear();
        }
    }

    /// Updates only the workload seed (called by the data generators, so
    /// incidents always carry the seed of the most recent generation).
    pub fn note_seed(&self, seed: u64) {
        if let Some(i) = &self.inner {
            i.state.lock().seed = seed;
        }
    }

    /// The current `(experiment, seed)` context.
    pub fn context(&self) -> (String, u64) {
        match &self.inner {
            None => (String::new(), 0),
            Some(i) => {
                let st = i.state.lock();
                (st.experiment.clone(), st.seed)
            }
        }
    }

    /// Replaces the metrics sink captured into incident snapshots.
    pub fn set_metrics(&self, metrics: MetricsSink) {
        if let Some(i) = &self.inner {
            i.state.lock().metrics = metrics;
        }
    }

    /// Records a raw flight event.
    pub fn record(&self, t_sim: f64, kind: FlightKind) {
        if let Some(i) = &self.inner {
            i.recorder.record(t_sim, kind);
        }
    }

    /// Records a retired kernel launch.
    pub fn kernel_launch(&self, label: &str, grid: usize, kernel_seconds: f64, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder.record(
                t_sim,
                FlightKind::KernelLaunch {
                    label: label.to_string(),
                    grid: grid as u64,
                    kernel_seconds,
                },
            );
        }
    }

    /// Records an auto-tuner plan selection and remembers it as the plan in
    /// force for subsequent incidents.
    pub fn plan_selected(&self, level: usize, w: usize, delta: usize, threads: usize, t_sim: f64) {
        if let Some(i) = &self.inner {
            let plan = PlanChoice {
                level: level as u64,
                w: w as u64,
                delta: delta as u64,
                threads: threads as u64,
            };
            i.recorder.record(
                t_sim,
                FlightKind::PlanSelected {
                    level: plan.level,
                    w: plan.w,
                    delta: plan.delta,
                    threads: plan.threads,
                },
            );
            let mut st = i.state.lock();
            st.plan = Some(plan);
            st.level = Some(level as u64);
        }
    }

    /// Records a metrics delta worth keeping in the flight tail.
    pub fn metric_delta(&self, key: &str, delta: f64, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder.record(
                t_sim,
                FlightKind::MetricDelta {
                    key: key.to_string(),
                    delta,
                },
            );
        }
    }

    /// Records a cluster collective.
    pub fn shard_sync(&self, bytes: u64, seconds: f64, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder
                .record(t_sim, FlightKind::ShardSync { bytes, seconds });
        }
    }

    /// Records a rank kill (fault injection marker; detection and the
    /// incident come from [`HealthSink::shard_dead`]).
    pub fn shard_killed(&self, rank: usize, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder
                .record(t_sim, FlightKind::ShardKilled { rank: rank as u64 });
        }
    }

    /// One per-sweep convergence sample: runs the level-aware stagnation
    /// and divergence watchdogs. `sweep` is 1-based within the level;
    /// `active` counts tasks still unconverged *after* this sweep (samples
    /// with `active == 0` close out the level's tracker).
    pub fn sweep_sample(
        &self,
        level: usize,
        sweep: usize,
        off_norm: f64,
        active: usize,
        t_sim: f64,
    ) {
        let Some(i) = &self.inner else { return };
        i.recorder.record(
            t_sim,
            FlightKind::SweepSample {
                level: level as u64,
                sweep: sweep as u64,
                off_norm,
                active: active as u64,
            },
        );
        let cfg = i.config;
        let mut st = i.state.lock();
        st.level = Some(level as u64);
        st.sweep = Some(sweep as u64);
        if active == 0 {
            st.stall.remove(&(level as u64));
            return;
        }
        if sweep <= 1 {
            // A fresh `decompose_level` call (recursion re-enters the same
            // level repeatedly): restart the tracker.
            st.stall.insert(
                level as u64,
                StallTracker {
                    last: off_norm,
                    stalled: 0,
                },
            );
            return;
        }
        let tr = st.stall.entry(level as u64).or_default();
        let prev = tr.last;
        if off_norm <= cfg.watch_floor {
            // Round-off territory: nothing down here is a meaningful signal.
            tr.last = off_norm;
            tr.stalled = 0;
            return;
        }
        if prev > cfg.watch_floor && off_norm > prev * cfg.divergence_factor {
            tr.last = off_norm;
            let detail = format!(
                "level {level} off-norm grew {prev:.3e} -> {off_norm:.3e} \
                 (> {}x) at sweep {sweep}",
                cfg.divergence_factor
            );
            drop(st);
            self.fire(IncidentKind::Divergence, &detail, t_sim);
            return;
        }
        if prev > cfg.watch_floor && off_norm > prev * cfg.min_decay {
            tr.stalled += 1;
        } else {
            tr.stalled = 0;
        }
        tr.last = off_norm;
        if tr.stalled >= cfg.stall_sweeps {
            let stalled = tr.stalled;
            let detail = format!(
                "level {level} off-norm stuck at {off_norm:.3e} for {stalled} \
                 consecutive sweeps (through sweep {sweep}, {active} task(s) active)"
            );
            drop(st);
            self.fire(IncidentKind::Stagnation, &detail, t_sim);
        }
    }

    /// Per-batch drift monitor over the final factors: fires when the
    /// orthogonality error or the relative reconstruction residual exceeds
    /// its ceiling.
    pub fn batch_check(
        &self,
        matrix: usize,
        residual: Option<f64>,
        orthogonality: f64,
        t_sim: f64,
    ) {
        let Some(i) = &self.inner else { return };
        let cfg = i.config;
        if orthogonality > cfg.orthogonality_ceiling {
            self.fire(
                IncidentKind::OrthogonalityDrift,
                &format!(
                    "matrix {matrix}: ||U^T U - I|| = {orthogonality:.3e} \
                     exceeds ceiling {:.1e}",
                    cfg.orthogonality_ceiling
                ),
                t_sim,
            );
        }
        if let Some(r) = residual {
            if r > cfg.residual_ceiling {
                self.fire(
                    IncidentKind::ResidualDrift,
                    &format!(
                        "matrix {matrix}: relative residual {r:.3e} exceeds ceiling {:.1e}",
                        cfg.residual_ceiling
                    ),
                    t_sim,
                );
            }
        }
    }

    /// Kernel-boundary NaN/Inf report (called by the launch machinery when
    /// a block's [`guard_finite`](HealthSink) check tripped).
    pub fn nonfinite(&self, label: &str, block: usize, detail: &str, t_sim: f64) {
        if self.inner.is_some() {
            self.fire(
                IncidentKind::NonFinite,
                &format!("kernel '{label}', block {block}: {detail}"),
                t_sim,
            );
        }
    }

    /// Dead-shard report (called by the cluster's health check when a
    /// killed rank is first detected — at a collective barrier or, on the
    /// elastic path, at a chunk-pull boundary). Latched per rank, so two
    /// dead ranks produce two incidents but repeated checks of one rank do
    /// not.
    pub fn shard_dead(&self, rank: usize, t_sim: f64) {
        if self.inner.is_some() {
            self.fire_keyed(
                IncidentKind::ShardDead,
                &format!("rank{rank}"),
                &format!("rank {rank} unresponsive at a collective or chunk-pull boundary"),
                t_sim,
            );
        }
    }

    /// Marks rank `rank`'s `shard-dead` incident recovered: the elastic
    /// executor absorbed all of the dead rank's orphaned work, so the
    /// incident documents a survived fault, not a lost run. Also drops a
    /// `shard-recovered` marker in the flight tail.
    pub fn shard_recovered(&self, rank: usize, t_sim: f64) {
        let Some(i) = &self.inner else { return };
        i.recorder
            .record(t_sim, FlightKind::ShardRecovered { rank: rank as u64 });
        let needle = format!("rank {rank} ");
        let mut st = i.state.lock();
        for inc in st
            .incidents
            .iter_mut()
            .filter(|inc| inc.kind == IncidentKind::ShardDead.as_str())
        {
            if inc.detail.contains(&needle) {
                inc.recovered = true;
            }
        }
    }

    /// Records an elastic chunk pull.
    pub fn chunk_pulled(&self, rank: usize, chunk: usize, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder.record(
                t_sim,
                FlightKind::ChunkPulled {
                    rank: rank as u64,
                    chunk: chunk as u64,
                },
            );
        }
    }

    /// Records an elastic work steal.
    pub fn chunk_stolen(&self, thief: usize, victim: usize, chunk: usize, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder.record(
                t_sim,
                FlightKind::ChunkStolen {
                    thief: thief as u64,
                    victim: victim as u64,
                    chunk: chunk as u64,
                },
            );
        }
    }

    /// Records a chunk landing in the requeue pool.
    pub fn chunk_requeued(&self, rank: usize, chunk: usize, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder.record(
                t_sim,
                FlightKind::ChunkRequeued {
                    rank: rank as u64,
                    chunk: chunk as u64,
                },
            );
        }
    }

    /// Records a serialized checkpoint of an elastic run.
    pub fn checkpoint_taken(&self, bytes: u64, t_sim: f64) {
        if let Some(i) = &self.inner {
            i.recorder
                .record(t_sim, FlightKind::CheckpointTaken { bytes });
        }
    }

    fn fire(&self, kind: IncidentKind, detail: &str, t_sim: f64) {
        self.fire_keyed(kind, "", detail, t_sim);
    }

    /// Assembles and stores one incident, or counts it as a suppressed
    /// cascade when `(experiment, kind, subkey)` already fired.
    fn fire_keyed(&self, kind: IncidentKind, subkey: &str, detail: &str, t_sim: f64) {
        let Some(i) = &self.inner else { return };
        let mut st = i.state.lock();
        let latch = format!("{}:{}:{subkey}", st.experiment, kind.as_str());
        if !st.fired.insert(latch) {
            st.suppressed += 1;
            return;
        }
        // The fire marker is recorded *before* the tail is captured, so an
        // incident's flight tail ends with its own watchdog-fire event.
        i.recorder.record(
            t_sim,
            FlightKind::WatchdogFire {
                kind: kind.as_str().to_string(),
            },
        );
        let incident = Incident {
            kind: kind.as_str().to_string(),
            detail: detail.to_string(),
            experiment: st.experiment.clone(),
            seed: st.seed,
            level: st.level,
            sweep: st.sweep,
            t_sim,
            plan: st.plan,
            flight_tail: i.recorder.tail(),
            metrics: st.metrics.snapshot(),
            recovered: false,
        };
        st.incidents.push(incident);
    }

    /// All incidents fired so far, in order.
    pub fn incidents(&self) -> Vec<Incident> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => i.state.lock().incidents.clone(),
        }
    }

    /// Number of incidents fired so far.
    pub fn incident_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.state.lock().incidents.len())
    }

    /// Cascaded fires suppressed by the per-kind latch.
    pub fn suppressed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().suppressed)
    }

    /// Total flight events ever recorded (0 when disabled).
    pub fn events_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.recorder.recorded())
    }

    /// The current flight-recorder tail (empty when disabled).
    pub fn tail(&self) -> Vec<FlightEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.recorder.tail())
    }

    /// Incident counts per experiment scope, sorted by experiment.
    pub fn summary(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for inc in self.incidents() {
            *out.entry(inc.experiment).or_insert(0) += 1;
        }
        out
    }

    /// The full health report as pretty-printed JSON (what
    /// `repro --health-dump` writes).
    pub fn report_json(&self) -> String {
        let (experiment, seed) = self.context();
        let report = HealthReport {
            experiment,
            seed,
            events_recorded: self.events_recorded(),
            suppressed: self.suppressed(),
            incidents: self.incidents(),
            flight_tail: self.tail(),
        };
        serde_json::to_string_pretty(&report).expect("health report serializes")
    }
}

static GLOBAL: OnceLock<HealthSink> = OnceLock::new();

/// Installs `sink` as the process-wide sink that [`global`] hands out.
/// Returns `false` if a sink was already installed (the first one wins).
/// Like the trace/metrics globals, this must happen before the first `Gpu`
/// is constructed — GPUs pick the sink up at build time.
pub fn install_global(sink: HealthSink) -> bool {
    GLOBAL.set(sink).is_ok()
}

/// The installed global sink, or a disabled one if none was installed.
pub fn global() -> HealthSink {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_strict_noop() {
        let s = HealthSink::disabled();
        assert!(!s.is_enabled());
        s.set_context("e", 7);
        s.kernel_launch("k", 4, 1e-6, 0.0);
        s.plan_selected(1, 8, 64, 256, 0.0);
        s.sweep_sample(1, 1, 0.5, 3, 0.0);
        s.sweep_sample(1, 2, 0.5, 3, 0.0);
        s.batch_check(0, Some(1.0), 1.0, 0.0);
        s.nonfinite("k", 0, "NaN", 0.0);
        s.shard_dead(2, 0.0);
        s.shard_recovered(2, 0.0);
        s.chunk_pulled(0, 1, 0.0);
        s.chunk_stolen(0, 1, 2, 0.0);
        s.chunk_requeued(1, 2, 0.0);
        s.checkpoint_taken(4096, 0.0);
        assert_eq!(s.events_recorded(), 0);
        assert_eq!(s.incident_count(), 0);
        assert!(s.tail().is_empty());
        assert_eq!(s.context(), (String::new(), 0));
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let r = FlightRecorder::new(8);
        for k in 0..20u64 {
            r.record(k as f64, FlightKind::ShardKilled { rank: k });
        }
        assert_eq!(r.recorded(), 20);
        let tail = r.tail();
        assert_eq!(tail.len(), 8);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn stagnation_fires_once_after_k_stuck_sweeps() {
        let s = HealthSink::with_config(WatchdogConfig {
            stall_sweeps: 3,
            ..Default::default()
        });
        s.set_context("t", 99);
        s.plan_selected(1, 8, 64, 256, 0.0);
        // Healthy decay, then a plateau.
        let series = [1e-1, 1e-2, 9.9e-3, 9.9e-3, 9.9e-3, 9.9e-3, 9.9e-3];
        for (k, &x) in series.iter().enumerate() {
            s.sweep_sample(1, k + 1, x, 2, k as f64);
        }
        assert_eq!(s.incident_count(), 1, "{:?}", s.incidents());
        let inc = &s.incidents()[0];
        assert_eq!(inc.kind, "stagnation");
        assert_eq!(inc.seed, 99);
        assert_eq!(inc.experiment, "t");
        assert_eq!(inc.level, Some(1));
        assert_eq!(inc.plan.unwrap().w, 8);
        assert!(matches!(
            inc.flight_tail.last().unwrap().kind,
            FlightKind::WatchdogFire { .. }
        ));
        // Further stuck sweeps are suppressed cascades, not new incidents.
        s.sweep_sample(1, 8, 9.9e-3, 2, 8.0);
        assert_eq!(s.incident_count(), 1);
        assert!(s.suppressed() >= 1);
    }

    #[test]
    fn healthy_decay_and_convergence_stay_green() {
        let s = HealthSink::enabled();
        s.set_context("green", 1);
        let mut x = 1.0;
        for k in 0..12 {
            x *= 0.5;
            s.sweep_sample(1, k + 1, x, 1, k as f64);
        }
        s.sweep_sample(1, 13, 0.0, 0, 13.0); // converged: closes the tracker
        s.batch_check(0, Some(1e-13), 1e-14, 14.0);
        assert_eq!(s.incident_count(), 0, "{:?}", s.incidents());
    }

    #[test]
    fn divergence_fires_immediately() {
        let s = HealthSink::enabled();
        s.set_context("d", 3);
        s.sweep_sample(2, 1, 1e-6, 1, 0.0);
        s.sweep_sample(2, 2, 1e-2, 1, 1.0);
        assert_eq!(s.incident_count(), 1);
        assert_eq!(s.incidents()[0].kind, "divergence");
        assert_eq!(s.incidents()[0].sweep, Some(2));
    }

    #[test]
    fn recursion_reentry_resets_the_level_tracker() {
        let s = HealthSink::with_config(WatchdogConfig {
            stall_sweeps: 2,
            ..Default::default()
        });
        s.set_context("r", 5);
        // Three separate 2-sweep visits to level 2 (as recursion does);
        // each alone is too short to stall even though the values repeat.
        for visit in 0..3 {
            s.sweep_sample(2, 1, 1e-3, 1, visit as f64);
            s.sweep_sample(2, 2, 1e-3, 1, visit as f64 + 0.5);
        }
        assert_eq!(s.incident_count(), 0);
    }

    #[test]
    fn drift_monitors_fire_on_ceilings() {
        let s = HealthSink::enabled();
        s.set_context("drift", 11);
        s.batch_check(0, Some(1e-3), 1e-12, 0.0);
        s.batch_check(1, None, 1e-3, 1.0);
        let kinds: Vec<String> = s.incidents().iter().map(|i| i.kind.clone()).collect();
        assert_eq!(kinds, vec!["residual-drift", "orthogonality-drift"]);
    }

    #[test]
    fn shard_dead_latches_per_rank() {
        let s = HealthSink::enabled();
        s.set_context("c", 42);
        s.shard_dead(2, 0.0);
        s.shard_dead(2, 1.0); // re-detection of the same rank: suppressed
        s.shard_dead(3, 2.0); // a second dead rank: its own incident
        assert_eq!(s.incident_count(), 2);
        assert_eq!(s.suppressed(), 1);
    }

    #[test]
    fn shard_recovered_flips_only_the_matching_incident() {
        let s = HealthSink::enabled();
        s.set_context("rec", 9);
        s.shard_dead(2, 0.0);
        s.shard_dead(13, 1.0); // "rank 1" must not match "rank 13"
        assert!(s.incidents().iter().all(|i| !i.recovered));
        s.shard_recovered(1, 2.0); // no rank-1 incident: nothing flips
        assert!(s.incidents().iter().all(|i| !i.recovered));
        s.shard_recovered(2, 3.0);
        let incidents = s.incidents();
        let by_rank = |needle: &str| {
            incidents
                .iter()
                .find(|i| i.detail.contains(needle))
                .unwrap()
        };
        assert!(by_rank("rank 2 ").recovered);
        assert!(!by_rank("rank 13 ").recovered);
        assert!(s
            .tail()
            .iter()
            .any(|e| matches!(e.kind, FlightKind::ShardRecovered { rank: 2 })));
    }

    #[test]
    fn new_experiment_scope_unlatches() {
        let s = HealthSink::enabled();
        s.set_context("a", 1);
        s.nonfinite("k", 0, "NaN", 0.0);
        s.nonfinite("k", 1, "NaN", 0.1);
        s.set_context("b", 2);
        s.nonfinite("k", 0, "NaN", 1.0);
        assert_eq!(s.incident_count(), 2);
        assert_eq!(s.summary().get("a"), Some(&1));
        assert_eq!(s.summary().get("b"), Some(&1));
    }

    #[test]
    fn incident_json_round_trips() {
        let s = HealthSink::enabled();
        s.set_context("j", 123);
        s.plan_selected(1, 16, 128, 256, 0.5);
        s.nonfinite("gram", 3, "element 7 is NaN", 1.0);
        let json = s.report_json();
        let parsed: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.incidents.len(), 1);
        let inc = &parsed.incidents[0];
        assert_eq!(inc.kind, "non-finite");
        assert_eq!(inc.seed, 123);
        assert_eq!(inc.plan.unwrap().w, 16);
        assert_eq!(inc.flight_tail.len(), 2);
        assert_eq!(parsed.events_recorded, 2);
    }

    #[test]
    fn flight_kinds_round_trip_through_serde() {
        let kinds = vec![
            FlightKind::KernelLaunch {
                label: "k".into(),
                grid: 7,
                kernel_seconds: 1e-6,
            },
            FlightKind::PlanSelected {
                level: 1,
                w: 8,
                delta: 64,
                threads: 256,
            },
            FlightKind::SweepSample {
                level: 2,
                sweep: 3,
                off_norm: 0.25,
                active: 4,
            },
            FlightKind::MetricDelta {
                key: "wcycle/L1/level_seconds".into(),
                delta: 0.5,
            },
            FlightKind::ShardSync {
                bytes: 1024,
                seconds: 3e-5,
            },
            FlightKind::ShardKilled { rank: 2 },
            FlightKind::ShardRecovered { rank: 2 },
            FlightKind::ChunkPulled { rank: 1, chunk: 5 },
            FlightKind::ChunkStolen {
                thief: 3,
                victim: 0,
                chunk: 7,
            },
            FlightKind::ChunkRequeued { rank: 0, chunk: 7 },
            FlightKind::CheckpointTaken { bytes: 8192 },
            FlightKind::WatchdogFire {
                kind: "stagnation".into(),
            },
        ];
        for kind in kinds {
            let v = Serialize::to_value(&kind);
            let back = FlightKind::from_value(&v).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn global_defaults_to_disabled() {
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
