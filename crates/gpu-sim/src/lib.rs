//! # wsvd-gpu-sim
//!
//! A GPU *execution-model* simulator: the substitution substrate that stands
//! in for the CUDA/HIP hardware of the W-cycle SVD paper (see DESIGN.md §1).
//!
//! The simulator is not cycle-accurate; it models exactly the quantities the
//! paper's performance analysis is built on:
//!
//! * **static shared memory per block** (48 KiB) enforced by a real
//!   allocator ([`SharedMem`]) — the predicate driving Algorithm 2;
//! * **thread-level parallelism**: blocks execute as rayon tasks, and each
//!   records a work/span estimate given its internal thread assignment
//!   ([`BlockCtx::team_step`] / [`BlockCtx::team_reduce`]);
//! * **global-memory traffic**: coalesced transaction counts (Fig. 11b);
//! * **occupancy** and resident-block limits (Fig. 11a);
//! * a **roofline timing model** with list scheduling of block durations
//!   onto SM slots, yielding deterministic *simulated seconds*.

#![warn(missing_docs)]

pub mod cluster;
pub mod counters;
pub mod device;
pub mod graph;
pub mod launch;
pub mod profile;
pub mod resource;
pub mod sanitize;
pub mod smem;

pub use cluster::{
    resume_elastic, run_elastic, size_class_chunks, unrecovered_total, ElasticCheckpoint,
    ElasticConfig, ElasticRun, FaultPlan, GpuCluster, QueueSnapshot, RecoveryCounters, TaskChunk,
    WorkQueue, DEFAULT_SIZE_CLASS_CAPS,
};
pub use counters::{BlockCounters, LaunchStats, Timeline};
pub use device::{DeviceSpec, A100, ALL_DEVICES, P100, TITAN_X, V100, VEGA20};
pub use graph::{GraphStats, LaunchGraph};
pub use launch::{BlockCtx, BlockPlacement, Gpu, KernelConfig, KernelError, OCCUPANCY_BUCKETS};
pub use profile::{time_share_percent, KernelDerived, KernelObservation, KernelProfile, Profiler};
pub use resource::{
    BarrierDiscipline, KernelResource, ResourceFit, ResourceViolation, ScheduleFamily,
};
pub use sanitize::{
    HazardKind, HazardTracker, SanitizeMode, SanitizerReport, SmemRequirement, Violation,
};
pub use smem::{SharedMem, SmemBuf, SmemOverflow};
