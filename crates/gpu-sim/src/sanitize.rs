//! `wsvd-sanitizer`: lane-level hazard detection for simulated kernels.
//!
//! The paper's kernels are correct only because one-sided Jacobi rotation
//! pairs touch *disjoint* column pairs per round and cooperative threads are
//! separated by `__syncthreads()` barriers. The simulator executes a block's
//! lane loops sequentially, so data races that would corrupt results on real
//! hardware stay silent. This module makes those properties checkable:
//!
//! * a [`HazardTracker`] records per-lane read/write access sets on
//!   [`crate::SmemBuf`] ranges (and counts global-memory operations) between
//!   *barrier epochs* delimited by [`crate::BlockCtx::sync_threads`];
//! * overlapping accesses from different lanes within one epoch, with at
//!   least one write, are reported as write–write or read–write races;
//! * lanes that arrive at different barrier counts
//!   ([`crate::BlockCtx::lane_sync`]) are reported as barrier divergence;
//! * shared-memory buffers still allocated when the block retires are
//!   reported as leaks (a real kernel would leave the arena dirty for the
//!   next resident block).
//!
//! Checking is **opt-in** ([`SanitizeMode`] on [`crate::Gpu`] /
//! [`crate::KernelConfig`], or the `WSVD_SANITIZE=1` environment variable)
//! and a zero-cost no-op by default: every recording entry point is one
//! `Option` check when sanitizing is off, and no counter or simulated-time
//! accounting changes in either mode. Violations are surfaced as structured
//! instant events through the installed `wsvd-trace` sink, aggregated into a
//! per-GPU [`SanitizerReport`], and counted process-wide for harness exit
//! codes ([`global_violation_count`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Upper bound on violations retained per block, so a systematically racy
/// kernel produces a readable report instead of one entry per element.
const MAX_VIOLATIONS_PER_BLOCK: usize = 16;

/// Whether (and how thoroughly) launches are checked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SanitizeMode {
    /// No checking; every sanitizer entry point is a no-op (the default).
    #[default]
    Off,
    /// Full checking: dynamic hazard tracking on every block plus static
    /// schedule/footprint verification in the layers that opt in.
    Full,
}

impl SanitizeMode {
    /// True when any checking is enabled.
    #[inline]
    pub fn is_on(self) -> bool {
        self != SanitizeMode::Off
    }

    /// Reads the `WSVD_SANITIZE` environment variable (`1`, `on`, `true` or
    /// `full` enable full checking). Cached after the first call so
    /// [`crate::Gpu::new`] stays cheap.
    pub fn from_env() -> SanitizeMode {
        static ENV: OnceLock<SanitizeMode> = OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("WSVD_SANITIZE") {
            Ok(v) if matches!(v.as_str(), "1" | "on" | "true" | "full") => SanitizeMode::Full,
            _ => SanitizeMode::Off,
        })
    }

    /// The process-wide default mode: [`set_global`] if called, else the
    /// environment variable.
    pub fn resolved() -> SanitizeMode {
        match GLOBAL_MODE.load(Ordering::Relaxed) {
            1 => SanitizeMode::Off,
            2 => SanitizeMode::Full,
            _ => SanitizeMode::from_env(),
        }
    }
}

/// 0 = unset (fall back to env), 1 = forced off, 2 = forced full.
static GLOBAL_MODE: AtomicU8 = AtomicU8::new(0);

/// Process-wide count of all violations ever reported (any `Gpu`).
static GLOBAL_VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Forces the process-wide default [`SanitizeMode`] that [`crate::Gpu::new`]
/// picks up, overriding `WSVD_SANITIZE`. Harness entry points (e.g.
/// `repro --sanitize`) call this once before constructing any GPU.
pub fn set_global(mode: SanitizeMode) {
    let v = match mode {
        SanitizeMode::Off => 1,
        SanitizeMode::Full => 2,
    };
    GLOBAL_MODE.store(v, Ordering::Relaxed);
}

/// Total violations reported process-wide since start. Monotonic; harnesses
/// read it after a run and fail on a non-zero count.
pub fn global_violation_count() -> u64 {
    GLOBAL_VIOLATIONS.load(Ordering::Relaxed)
}

pub(crate) fn bump_global_violations(n: u64) {
    GLOBAL_VIOLATIONS.fetch_add(n, Ordering::Relaxed);
}

/// The hazard classes the dynamic tracker reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// Two lanes wrote overlapping shared-memory ranges in one epoch.
    WriteWrite,
    /// One lane read a range another lane wrote in the same epoch.
    ReadWrite,
    /// Lanes arrived at different barrier counts.
    BarrierDivergence,
    /// A shared-memory buffer was still allocated when the block retired.
    SmemLeak,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardKind::WriteWrite => write!(f, "write-write race"),
            HazardKind::ReadWrite => write!(f, "read-write race"),
            HazardKind::BarrierDivergence => write!(f, "barrier divergence"),
            HazardKind::SmemLeak => write!(f, "smem leak"),
        }
    }
}

/// One reported hazard, attributed to a kernel and block after the launch.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Hazard class.
    pub kind: HazardKind,
    /// Kernel label (filled in by the launch machinery).
    pub kernel: String,
    /// Grid index of the offending block.
    pub block: usize,
    /// Shared-memory buffer id within the block's arena, when applicable.
    pub buf: Option<usize>,
    /// Barrier epoch in which the hazard occurred.
    pub epoch: u64,
    /// The two lanes involved (equal lanes for non-race hazards).
    pub lanes: (usize, usize),
    /// Human-readable specifics (ranges, counts, bytes).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in kernel '{}' block {} epoch {} (lanes {} vs {}){}{}",
            self.kind,
            self.kernel,
            self.block,
            self.epoch,
            self.lanes.0,
            self.lanes.1,
            match self.buf {
                Some(id) => format!(" buf #{id}"),
                None => String::new(),
            },
            if self.detail.is_empty() {
                String::new()
            } else {
                format!(": {}", self.detail)
            }
        )
    }
}

/// A static shared-memory demand that must fit the per-block arena before a
/// kernel may launch (the line-2/8/10 predicates of Algorithm 2, promoted to
/// checkable artifacts).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct SmemRequirement {
    /// What requires the memory (kernel or working-set label).
    pub label: String,
    /// Bytes demanded per block.
    pub bytes: usize,
}

impl SmemRequirement {
    /// Builds a requirement from an `f64`-element count.
    pub fn from_elems(label: impl Into<String>, elems: usize) -> Self {
        Self {
            label: label.into(),
            bytes: elems * std::mem::size_of::<f64>(),
        }
    }

    /// Whether the demand fits a per-block capacity.
    #[inline]
    pub fn fits(&self, capacity_bytes: usize) -> bool {
        self.bytes <= capacity_bytes
    }
}

impl fmt::Display for SmemRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} needs {} B", self.label, self.bytes)
    }
}

#[derive(Clone, Copy, Debug)]
struct Access {
    lane: usize,
    start: usize,
    end: usize, // exclusive
    write: bool,
}

/// Checking statistics for one block / one launch / one GPU (merged up).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    /// Blocks that ran with hazard tracking enabled.
    pub blocks_checked: u64,
    /// Barrier epochs observed (one `sync_threads` ends one epoch).
    pub epochs: u64,
    /// Shared-memory range accesses recorded.
    pub accesses: u64,
    /// Counted global-memory load/store operations observed.
    pub gm_ops: u64,
}

impl SanitizeStats {
    /// Component-wise sum.
    pub fn merge(&mut self, o: &SanitizeStats) {
        self.blocks_checked += o.blocks_checked;
        self.epochs += o.epochs;
        self.accesses += o.accesses;
        self.gm_ops += o.gm_ops;
    }
}

/// Everything one block's tracker found, handed to the launch machinery.
#[derive(Clone, Debug, Default)]
pub struct BlockSanitizeOutcome {
    /// Violations found in this block (kernel/block fields filled in later).
    pub violations: Vec<Violation>,
    /// Checking statistics for this block.
    pub stats: SanitizeStats,
}

/// Aggregated sanitizer state of one [`crate::Gpu`] across launches.
#[derive(Clone, Debug, Default)]
pub struct SanitizerReport {
    /// All violations, in launch order.
    pub violations: Vec<Violation>,
    /// Checking statistics summed over all sanitized blocks.
    pub stats: SanitizeStats,
}

impl SanitizerReport {
    /// True when no violation has been reported.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-block dynamic hazard tracker.
///
/// Lanes are logical cooperative-thread (or α-warp team) indices chosen by
/// the instrumented kernel; the tracker only requires that concurrent
/// activities use distinct lane ids. All bookkeeping is deterministic
/// (`BTreeMap`-ordered), so reports are stable run-to-run.
#[derive(Debug, Default)]
pub struct HazardTracker {
    epoch: u64,
    /// Per-buffer access sets of the current epoch.
    accesses: BTreeMap<usize, Vec<Access>>,
    /// Per-lane explicit barrier arrival counts (for divergence checks).
    lane_syncs: BTreeMap<usize, u64>,
    violations: Vec<Violation>,
    stats: SanitizeStats,
}

impl HazardTracker {
    /// A fresh tracker at epoch 0.
    pub fn new() -> Self {
        Self {
            stats: SanitizeStats {
                blocks_checked: 1,
                ..SanitizeStats::default()
            },
            ..Self::default()
        }
    }

    /// Current barrier epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn push_violation(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS_PER_BLOCK {
            self.violations.push(v);
        }
    }

    /// Records one lane's access to `[start, start + len)` of buffer
    /// `buf_id`, checking it against the epoch's existing accesses.
    pub fn record_access(
        &mut self,
        lane: usize,
        buf_id: usize,
        start: usize,
        len: usize,
        write: bool,
    ) {
        self.stats.accesses += 1;
        let end = start + len;
        let epoch = self.epoch;
        let list = self.accesses.entry(buf_id).or_default();
        let mut conflict: Option<(HazardKind, Access)> = None;
        for a in list.iter() {
            if a.lane != lane && a.start < end && start < a.end && (a.write || write) {
                let kind = if a.write && write {
                    HazardKind::WriteWrite
                } else {
                    HazardKind::ReadWrite
                };
                conflict = Some((kind, *a));
                break; // one report per access keeps output readable
            }
        }
        list.push(Access {
            lane,
            start,
            end,
            write,
        });
        if let Some((kind, a)) = conflict {
            self.push_violation(Violation {
                kind,
                kernel: String::new(),
                block: 0,
                buf: Some(buf_id),
                epoch,
                lanes: (a.lane, lane),
                detail: format!(
                    "lane {} {} [{}, {}) overlaps lane {} {} [{}, {}) with no barrier in between",
                    a.lane,
                    if a.write { "wrote" } else { "read" },
                    a.start,
                    a.end,
                    lane,
                    if write { "wrote" } else { "read" },
                    start,
                    end,
                ),
            });
        }
    }

    /// Ends the current barrier epoch: all pending access sets are retired
    /// (a barrier orders every earlier access before every later one).
    pub fn barrier(&mut self) {
        self.epoch += 1;
        self.stats.epochs += 1;
        self.accesses.clear();
    }

    /// Records one lane individually arriving at a barrier (kernels with
    /// divergent control flow). Lanes using this API must all reach the same
    /// count by block retirement or a divergence violation is reported.
    pub fn lane_barrier(&mut self, lane: usize) {
        *self.lane_syncs.entry(lane).or_insert(0) += 1;
    }

    /// Counts one global-memory operation in the current epoch.
    pub fn note_gm_op(&mut self) {
        self.stats.gm_ops += 1;
    }

    /// Retires the block: checks barrier convergence and shared-memory
    /// hygiene (`leaked_bytes` = arena bytes still allocated), and returns
    /// everything found.
    pub fn finish(mut self, leaked_bytes: usize) -> BlockSanitizeOutcome {
        if let (Some(min), Some(max)) = (
            self.lane_syncs.iter().min_by_key(|&(_, &c)| c),
            self.lane_syncs.iter().max_by_key(|&(_, &c)| c),
        ) {
            if min.1 != max.1 {
                let (min, max) = ((*min.0, *min.1), (*max.0, *max.1));
                self.push_violation(Violation {
                    kind: HazardKind::BarrierDivergence,
                    kernel: String::new(),
                    block: 0,
                    buf: None,
                    epoch: self.epoch,
                    lanes: (min.0, max.0),
                    detail: format!(
                        "lane {} reached {} barriers but lane {} reached {}",
                        min.0, min.1, max.0, max.1
                    ),
                });
            }
        }
        if leaked_bytes > 0 {
            self.push_violation(Violation {
                kind: HazardKind::SmemLeak,
                kernel: String::new(),
                block: 0,
                buf: None,
                epoch: self.epoch,
                lanes: (0, 0),
                detail: format!("{leaked_bytes} B still allocated at block retirement"),
            });
        }
        BlockSanitizeOutcome {
            violations: self.violations,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_lanes_are_clean() {
        let mut t = HazardTracker::new();
        t.record_access(0, 0, 0, 8, true);
        t.record_access(1, 0, 8, 8, true);
        t.record_access(0, 0, 0, 8, false); // own re-read is fine
        let out = t.finish(0);
        assert!(out.violations.is_empty());
        assert_eq!(out.stats.accesses, 3);
    }

    #[test]
    fn overlapping_writes_race() {
        let mut t = HazardTracker::new();
        t.record_access(0, 3, 0, 8, true);
        t.record_access(1, 3, 4, 8, true);
        let out = t.finish(0);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, HazardKind::WriteWrite);
        assert_eq!(out.violations[0].buf, Some(3));
        assert_eq!(out.violations[0].lanes, (0, 1));
    }

    #[test]
    fn read_after_cross_lane_write_races_without_barrier() {
        let mut t = HazardTracker::new();
        t.record_access(0, 0, 0, 16, true);
        t.record_access(1, 0, 0, 4, false);
        let out = t.finish(0);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, HazardKind::ReadWrite);
    }

    #[test]
    fn barrier_separates_epochs() {
        let mut t = HazardTracker::new();
        t.record_access(0, 0, 0, 16, true);
        t.barrier();
        t.record_access(1, 0, 0, 4, false); // ordered after the write
        let out = t.finish(0);
        assert!(out.violations.is_empty());
        assert_eq!(out.stats.epochs, 1);
    }

    #[test]
    fn same_lane_never_races_with_itself() {
        let mut t = HazardTracker::new();
        t.record_access(5, 0, 0, 16, true);
        t.record_access(5, 0, 0, 16, true);
        t.record_access(5, 0, 4, 4, false);
        assert!(t.finish(0).violations.is_empty());
    }

    #[test]
    fn reads_never_conflict() {
        let mut t = HazardTracker::new();
        for lane in 0..8 {
            t.record_access(lane, 0, 0, 64, false);
        }
        assert!(t.finish(0).violations.is_empty());
    }

    #[test]
    fn divergent_lane_sync_counts_flagged() {
        let mut t = HazardTracker::new();
        t.lane_barrier(0);
        t.lane_barrier(0);
        t.lane_barrier(1);
        let out = t.finish(0);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, HazardKind::BarrierDivergence);
    }

    #[test]
    fn converged_lane_syncs_pass() {
        let mut t = HazardTracker::new();
        for lane in 0..4 {
            t.lane_barrier(lane);
        }
        assert!(t.finish(0).violations.is_empty());
    }

    #[test]
    fn leak_reported() {
        let t = HazardTracker::new();
        let out = t.finish(512);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].kind, HazardKind::SmemLeak);
        assert!(out.violations[0].detail.contains("512 B"));
    }

    #[test]
    fn violation_cap_bounds_report() {
        let mut t = HazardTracker::new();
        for lane in 0..100 {
            t.record_access(lane, 0, 0, 8, true);
        }
        let out = t.finish(0);
        assert_eq!(out.violations.len(), MAX_VIOLATIONS_PER_BLOCK);
        assert_eq!(out.stats.accesses, 100);
    }

    #[test]
    fn requirement_fits() {
        let r = SmemRequirement::from_elems("svd 32x64", 6144);
        assert_eq!(r.bytes, 48 * 1024);
        assert!(r.fits(48 * 1024));
        assert!(!r.fits(48 * 1024 - 1));
    }

    #[test]
    fn mode_default_off() {
        assert!(!SanitizeMode::default().is_on());
        assert!(SanitizeMode::Full.is_on());
    }
}
