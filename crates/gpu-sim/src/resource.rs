//! Declarative kernel resource IR.
//!
//! Each kernel the W-cycle can launch declares its static resource demands
//! — shared-memory working set, threads per block, barrier structure, and
//! schedule family — as a [`KernelResource`]. The IR is the input to
//! ahead-of-time plan-space certification (`wsvd_core::certify` /
//! `wsvd-analyze`): everything the paper's resource model needs (smem fit
//! per Observation 2, occupancy per Eq. 10) is decidable from these
//! descriptors plus a [`DeviceSpec`], with no kernel execution.
//!
//! The descriptors are *claims*, but not unchecked ones: the kernels
//! allocate through the capacity-enforced [`crate::SharedMem`] arena, so a
//! descriptor that under-states its smem demand makes the real launch fail
//! loudly. Unit tests additionally pin each constructor to the `fits.rs`
//! working-set formulas it mirrors.

use crate::device::DeviceSpec;
use crate::sanitize::SmemRequirement;
use serde::Serialize;
use std::fmt;

/// How a kernel's lanes reach its block-wide barriers.
///
/// The simulator's `sync_threads` requires every lane of the block to
/// arrive (the sanitizer reports divergence dynamically); certification
/// demands the static claim up front. All shipped kernels are `Uniform` —
/// a `Divergent` declaration is rejected at certification time, before any
/// launch could deadlock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierDiscipline {
    /// Every lane reaches every barrier (structured, whole-block syncs).
    Uniform,
    /// Barrier reachability depends on lane id or data — not certifiable.
    Divergent,
}

// The serde shim derives only named-field structs; enums map to strings by
// hand (same idiom as `FlightKind` in wsvd-health).
impl Serialize for BarrierDiscipline {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                BarrierDiscipline::Uniform => "uniform",
                BarrierDiscipline::Divergent => "divergent",
            }
            .into(),
        )
    }
}

/// Which pair-scheduling family governs a kernel's work decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// No pair schedule (GEMM-style data-parallel kernels).
    None,
    /// A statically generated `Ordering` schedule — provable ahead of time
    /// by `wsvd_jacobi::verify::verify_ordering`.
    Static,
    /// A data-dependent schedule (dynamic ordering) — only checkable at
    /// runtime, per sweep.
    Dynamic,
}

impl Serialize for ScheduleFamily {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                ScheduleFamily::None => "none",
                ScheduleFamily::Static => "static",
                ScheduleFamily::Dynamic => "dynamic",
            }
            .into(),
        )
    }
}

/// Static resource demands of one kernel family.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct KernelResource {
    /// Kernel family name (matches the launch label prefix).
    pub kernel: String,
    /// Per-block shared-memory working set.
    pub smem: SmemRequirement,
    /// Threads per block the kernel is launched with.
    pub threads_per_block: usize,
    /// Barrier structure claim.
    pub barriers: BarrierDiscipline,
    /// Pair-schedule family.
    pub schedule: ScheduleFamily,
}

/// Why a [`KernelResource`] fails on a device.
#[derive(Clone, Debug, PartialEq)]
pub enum ResourceViolation {
    /// The smem working set exceeds the per-block arena.
    SmemOverflow {
        /// Offending kernel.
        kernel: String,
        /// Demanded bytes.
        bytes: usize,
        /// Per-block arena capacity.
        capacity: usize,
    },
    /// Threads per block is zero or exceeds the per-SM thread budget.
    BadThreads {
        /// Offending kernel.
        kernel: String,
        /// Declared threads per block.
        threads: usize,
    },
    /// Threads per block is not a multiple of the warp width.
    NotWarpMultiple {
        /// Offending kernel.
        kernel: String,
        /// Declared threads per block.
        threads: usize,
        /// Device warp (wavefront) width.
        warp: usize,
    },
    /// The kernel declares divergent barriers.
    DivergentBarriers {
        /// Offending kernel.
        kernel: String,
    },
}

impl Serialize for ResourceViolation {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl fmt::Display for ResourceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceViolation::SmemOverflow {
                kernel,
                bytes,
                capacity,
            } => write!(f, "{kernel}: smem {bytes} B exceeds {capacity} B arena"),
            ResourceViolation::BadThreads { kernel, threads } => {
                write!(f, "{kernel}: {threads} threads/block out of range")
            }
            ResourceViolation::NotWarpMultiple {
                kernel,
                threads,
                warp,
            } => write!(
                f,
                "{kernel}: {threads} threads/block not a multiple of warp {warp}"
            ),
            ResourceViolation::DivergentBarriers { kernel } => {
                write!(
                    f,
                    "{kernel}: divergent barrier discipline is not certifiable"
                )
            }
        }
    }
}

/// Proven per-device placement numbers for a fitting kernel.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ResourceFit {
    /// Device-wide resident blocks at this footprint (Eq. 10 numerator).
    pub resident_blocks: usize,
    /// Occupancy when the grid saturates the device.
    pub occupancy_at_capacity: f64,
}

impl KernelResource {
    /// Builds a descriptor from an element-count working set.
    pub fn from_elems(
        kernel: impl Into<String>,
        elems: usize,
        threads_per_block: usize,
        barriers: BarrierDiscipline,
        schedule: ScheduleFamily,
    ) -> Self {
        let kernel = kernel.into();
        Self {
            smem: SmemRequirement::from_elems(kernel.clone(), elems),
            kernel,
            threads_per_block,
            barriers,
            schedule,
        }
    }

    /// Statically checks this kernel against a device: smem fit in the
    /// per-block arena, thread-shape sanity, and barrier well-formedness.
    /// Returns the proven placement numbers on success.
    pub fn check(&self, device: &DeviceSpec) -> Result<ResourceFit, ResourceViolation> {
        if self.barriers == BarrierDiscipline::Divergent {
            return Err(ResourceViolation::DivergentBarriers {
                kernel: self.kernel.clone(),
            });
        }
        if self.threads_per_block == 0 || self.threads_per_block > device.max_threads_per_sm {
            return Err(ResourceViolation::BadThreads {
                kernel: self.kernel.clone(),
                threads: self.threads_per_block,
            });
        }
        if !self.threads_per_block.is_multiple_of(device.warp_size) {
            return Err(ResourceViolation::NotWarpMultiple {
                kernel: self.kernel.clone(),
                threads: self.threads_per_block,
                warp: device.warp_size,
            });
        }
        // `concurrent_blocks` clamps to >= 1 resident block (a grid always
        // makes progress serially), so the fit predicate is the raw arena
        // capacity, not the clamped residency.
        if !self.smem.fits(device.smem_per_block_bytes) {
            return Err(ResourceViolation::SmemOverflow {
                kernel: self.kernel.clone(),
                bytes: self.smem.bytes,
                capacity: device.smem_per_block_bytes,
            });
        }
        let resident = device.concurrent_blocks(self.threads_per_block, self.smem.bytes);
        Ok(ResourceFit {
            resident_blocks: resident,
            occupancy_at_capacity: device.occupancy(
                resident,
                self.threads_per_block,
                self.smem.bytes,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{ALL_DEVICES, V100, VEGA20};

    fn uniform(elems: usize, threads: usize) -> KernelResource {
        KernelResource::from_elems(
            "test-kernel",
            elems,
            threads,
            BarrierDiscipline::Uniform,
            ScheduleFamily::Static,
        )
    }

    #[test]
    fn smem_bytes_are_eight_per_elem() {
        let r = uniform(100, 256);
        assert_eq!(r.smem.bytes, 800);
        assert_eq!(r.smem.label, "test-kernel");
    }

    #[test]
    fn fit_at_arena_boundary() {
        let cap_elems = V100.smem_per_block_bytes / 8;
        assert!(uniform(cap_elems, 256).check(&V100).is_ok());
        let err = uniform(cap_elems + 1, 256).check(&V100).unwrap_err();
        assert!(
            matches!(err, ResourceViolation::SmemOverflow { bytes, capacity, .. }
            if bytes == V100.smem_per_block_bytes + 8 && capacity == V100.smem_per_block_bytes)
        );
    }

    #[test]
    fn vega20_larger_arena_admits_what_v100_rejects() {
        // 64 KiB vs 48 KiB: a 50 KiB working set fits VEGA20 only. VEGA20's
        // warp (wavefront) is 64, so use a 256-thread block for both.
        let r = uniform(50 * 1024 / 8, 256);
        assert!(r.check(&V100).is_err());
        assert!(r.check(&VEGA20).is_ok());
    }

    #[test]
    fn divergent_barriers_rejected_everywhere() {
        let mut r = uniform(8, 256);
        r.barriers = BarrierDiscipline::Divergent;
        for d in &ALL_DEVICES {
            assert!(matches!(
                r.check(d),
                Err(ResourceViolation::DivergentBarriers { .. })
            ));
        }
    }

    #[test]
    fn thread_shape_checks() {
        assert!(matches!(
            uniform(8, 0).check(&V100),
            Err(ResourceViolation::BadThreads { .. })
        ));
        assert!(matches!(
            uniform(8, 4096).check(&V100),
            Err(ResourceViolation::BadThreads { .. })
        ));
        // 96 threads is a warp multiple on V100 (32) but not VEGA20 (64).
        assert!(uniform(8, 96).check(&V100).is_ok());
        assert!(matches!(
            uniform(8, 96).check(&VEGA20),
            Err(ResourceViolation::NotWarpMultiple { .. })
        ));
    }

    #[test]
    fn residency_matches_device_model() {
        let r = uniform(16 * 1024 / 8, 256); // 16 KiB, 256 threads
        let fit = r.check(&V100).unwrap();
        assert_eq!(fit.resident_blocks, V100.concurrent_blocks(256, 16 * 1024));
        assert!(fit.occupancy_at_capacity > 0.0 && fit.occupancy_at_capacity <= 1.0);
    }
}
