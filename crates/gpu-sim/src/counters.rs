//! Performance counters recorded by simulated thread blocks.

use serde::{Deserialize, Serialize};

/// Counters accumulated by one thread block during a kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockCounters {
    /// Floating-point operations (adds, muls; one FMA counts as 2).
    pub flops: u64,
    /// Bytes read from global memory.
    pub gm_load_bytes: u64,
    /// Bytes written to global memory.
    pub gm_store_bytes: u64,
    /// Coalesced global-memory transactions (loads + stores).
    pub gm_transactions: u64,
    /// Bytes moved to/from shared memory.
    pub smem_traffic_bytes: u64,
    /// Critical-path length in "parallel steps" given the block's thread
    /// assignment (the work/span model; 1 step ≈ 1 issue cycle).
    pub span_cycles: f64,
}

impl BlockCounters {
    /// Component-wise sum.
    pub fn merge(&mut self, o: &BlockCounters) {
        self.flops += o.flops;
        self.gm_load_bytes += o.gm_load_bytes;
        self.gm_store_bytes += o.gm_store_bytes;
        self.gm_transactions += o.gm_transactions;
        self.smem_traffic_bytes += o.smem_traffic_bytes;
        self.span_cycles += o.span_cycles;
    }

    /// Total global-memory bytes moved.
    pub fn gm_bytes(&self) -> u64 {
        self.gm_load_bytes + self.gm_store_bytes
    }
}

/// Aggregated result of one kernel launch.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Number of blocks in the grid.
    pub grid: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared-memory bytes charged per block (peak across blocks).
    pub smem_bytes_per_block: usize,
    /// Sum of all block counters.
    pub totals: BlockCounters,
    /// Simulated kernel duration in seconds (excludes launch overhead).
    pub kernel_seconds: f64,
    /// Simulated launch overhead in seconds.
    pub overhead_seconds: f64,
    /// Occupancy of the launch (resident threads / device max).
    pub occupancy: f64,
}

impl LaunchStats {
    /// Total simulated seconds including overhead.
    pub fn seconds(&self) -> f64 {
        self.kernel_seconds + self.overhead_seconds
    }
}

/// Running account of all launches on a [`crate::Gpu`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Total simulated time in seconds.
    pub seconds: f64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Launch-overhead seconds included in `seconds` (the part a fused
    /// [`crate::LaunchGraph`] amortizes).
    pub overhead_seconds: f64,
    /// Kernel-execution seconds included in `seconds`. Accumulated in launch
    /// order; a fused [`crate::LaunchGraph`] can only shrink it (coalesced
    /// blocks riding resident waves), never change counters or numerics.
    pub kernel_seconds: f64,
    /// Sum of all block counters across all launches.
    pub totals: BlockCounters,
    /// Thread-seconds of resident occupancy, for time-weighted occupancy.
    occupancy_weighted: f64,
}

impl Timeline {
    /// Records one launch.
    pub fn record(&mut self, stats: &LaunchStats) {
        self.seconds += stats.seconds();
        self.launches += 1;
        self.overhead_seconds += stats.overhead_seconds;
        self.kernel_seconds += stats.kernel_seconds;
        self.totals.merge(&stats.totals);
        self.occupancy_weighted += stats.occupancy * stats.seconds();
    }

    /// Fraction of total simulated time spent in launch overhead.
    pub fn overhead_share(&self) -> f64 {
        if self.seconds > 0.0 {
            self.overhead_seconds / self.seconds
        } else {
            0.0
        }
    }

    /// Time-weighted mean occupancy over all launches.
    pub fn mean_occupancy(&self) -> f64 {
        if self.seconds > 0.0 {
            self.occupancy_weighted / self.seconds
        } else {
            0.0
        }
    }

    /// Difference of two timelines (`self` later than `earlier`), for
    /// measuring a region of interest. Counter fields saturate at zero so an
    /// out-of-order pair of snapshots yields an empty region rather than a
    /// wrapped-around u64.
    pub fn since(&self, earlier: &Timeline) -> Timeline {
        Timeline {
            seconds: self.seconds - earlier.seconds,
            launches: self.launches.saturating_sub(earlier.launches),
            overhead_seconds: self.overhead_seconds - earlier.overhead_seconds,
            kernel_seconds: self.kernel_seconds - earlier.kernel_seconds,
            totals: BlockCounters {
                flops: self.totals.flops.saturating_sub(earlier.totals.flops),
                gm_load_bytes: self
                    .totals
                    .gm_load_bytes
                    .saturating_sub(earlier.totals.gm_load_bytes),
                gm_store_bytes: self
                    .totals
                    .gm_store_bytes
                    .saturating_sub(earlier.totals.gm_store_bytes),
                gm_transactions: self
                    .totals
                    .gm_transactions
                    .saturating_sub(earlier.totals.gm_transactions),
                smem_traffic_bytes: self
                    .totals
                    .smem_traffic_bytes
                    .saturating_sub(earlier.totals.smem_traffic_bytes),
                span_cycles: self.totals.span_cycles - earlier.totals.span_cycles,
            },
            occupancy_weighted: self.occupancy_weighted - earlier.occupancy_weighted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = BlockCounters {
            flops: 1,
            gm_load_bytes: 2,
            ..Default::default()
        };
        let b = BlockCounters {
            flops: 10,
            gm_store_bytes: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flops, 11);
        assert_eq!(a.gm_bytes(), 7);
    }

    #[test]
    fn timeline_records_and_diffs() {
        let mut t = Timeline::default();
        let s = LaunchStats {
            grid: 4,
            kernel_seconds: 1.0,
            overhead_seconds: 0.5,
            occupancy: 0.5,
            totals: BlockCounters {
                flops: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        t.record(&s);
        let snap = t.clone();
        t.record(&s);
        assert_eq!(t.launches, 2);
        assert!((t.seconds - 3.0).abs() < 1e-12);
        let d = t.since(&snap);
        assert_eq!(d.launches, 1);
        assert_eq!(d.totals.flops, 100);
        assert!((t.mean_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_occupancy_zero() {
        assert_eq!(Timeline::default().mean_occupancy(), 0.0);
    }

    #[test]
    fn since_saturates_on_out_of_order_snapshots() {
        let mut later = Timeline::default();
        later.record(&LaunchStats {
            grid: 1,
            kernel_seconds: 1.0,
            totals: BlockCounters {
                flops: 10,
                gm_load_bytes: 3,
                ..Default::default()
            },
            ..Default::default()
        });
        // Swapped arguments: "earlier" actually has more recorded than self.
        let d = Timeline::default().since(&later);
        assert_eq!(d.launches, 0);
        assert_eq!(d.totals.flops, 0);
        assert_eq!(d.totals.gm_load_bytes, 0);
    }
}
