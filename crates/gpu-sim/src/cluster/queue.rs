//! Size-class task chunks and the shared work deque of the elastic cluster.
//!
//! The static [`shard`](super::GpuCluster::shard) split assigns each device
//! one contiguous slice up front — a straggler then *defines* the makespan.
//! The elastic layer instead cuts the batch into [`TaskChunk`]s along the
//! Table-VI size-class boundaries (so a steal always moves a bucket-shaped
//! unit of work), distributes chunks round-robin as each rank's *home*
//! queue, and lets idle devices pull from a shared structure:
//!
//! 1. the **requeue pool** (work orphaned by a dead rank) — drained first,
//! 2. the rank's own home queue,
//! 3. a **steal** from the rank with the largest remainder.
//!
//! Claiming a chunk is a single `fetch_add` on the victim queue's cursor —
//! owner and thief share the cursor, so atomicity alone makes every claim
//! exactly-once (the interleaving model in `wsvd-analyze::interleave`
//! proves this, and that a split load/store variant double-claims).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// The Table-VI size-class caps of the paper's mixed-size mixture (matrices
/// with `max(m, n) <= cap` share a class; larger ones land in an overflow
/// class). Mirrors `wsvd_datasets::TABLE_VI`, which cannot be imported here
/// without inverting the crate dependency order; callers with their own
/// grouping pass explicit caps to [`size_class_chunks`].
pub const DEFAULT_SIZE_CLASS_CAPS: [usize; 5] = [32, 64, 128, 256, 512];

/// One schedulable unit of the elastic cluster: a set of batch indices of
/// one size class, small enough to steal or requeue without wrecking the
/// batching economics of its home rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskChunk {
    /// Stable chunk id (position in the original chunking).
    pub id: usize,
    /// Batch indices this chunk covers (original input order).
    pub indices: Vec<usize>,
    /// Size-class cap of every index in the chunk (`usize::MAX` = overflow).
    pub size_class: usize,
    /// Rank whose home queue initially holds the chunk.
    pub home_rank: usize,
    /// Execution attempts that died mid-chunk (bounded by
    /// [`FaultPlan::max_retries`](super::FaultPlan::max_retries)).
    pub retries: usize,
    /// True once the chunk has been orphaned into the requeue pool — its
    /// eventual execution time is recovery work, not scheduled work.
    pub requeued: bool,
}

/// Cuts a mixed-size batch into size-class-aware [`TaskChunk`]s: items are
/// grouped by the smallest `cap >= max(m, n)` (preserving input order inside
/// a class), each class is split into runs of at most `target` items, and
/// chunks are dealt round-robin to `ranks` home queues. With one rank the
/// concatenation of the chunks visits every index exactly once, so outputs
/// scattered by index are complete — the pinned compat contract for
/// 1-device runs.
pub fn size_class_chunks(
    dims: &[(usize, usize)],
    caps: &[usize],
    ranks: usize,
    target: usize,
) -> Vec<TaskChunk> {
    assert!(ranks > 0, "chunking needs at least one rank");
    assert!(!caps.is_empty(), "chunking needs at least one size class");
    let target = target.max(1);
    // Class buckets, in cap order, overflow last; order inside preserved.
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); caps.len() + 1];
    for (k, &(m, n)) in dims.iter().enumerate() {
        let d = m.max(n);
        let class = caps.iter().position(|&c| d <= c).unwrap_or(caps.len());
        classes[class].push(k);
    }
    let mut chunks = Vec::new();
    for (class, items) in classes.iter().enumerate() {
        let cap = caps.get(class).copied().unwrap_or(usize::MAX);
        for part in items.chunks(target) {
            chunks.push(TaskChunk {
                id: chunks.len(),
                indices: part.to_vec(),
                size_class: cap,
                home_rank: 0,
                retries: 0,
                requeued: false,
            });
        }
    }
    for (i, c) in chunks.iter_mut().enumerate() {
        c.home_rank = i % ranks;
    }
    chunks
}

/// One rank's home queue: an immutable chunk list plus an atomic claim
/// cursor shared by the owner and any thief.
struct RankQueue {
    chunks: Vec<TaskChunk>,
    next: AtomicUsize,
}

impl RankQueue {
    fn remaining(&self) -> usize {
        self.chunks
            .len()
            .saturating_sub(self.next.load(Ordering::Acquire))
    }

    /// Claims the next chunk with one `fetch_add`. The returned index is
    /// unique per claim by atomicity — this is the protocol the interleaving
    /// explorer models (`deque_claim_atomic` vs the lossy split variant).
    fn claim(&self) -> Option<TaskChunk> {
        let k = self.next.fetch_add(1, Ordering::AcqRel);
        self.chunks.get(k).cloned()
    }
}

/// Snapshot of the whole deque for chunk-granular checkpointing: per-rank
/// `(chunks, cursor)` pairs plus the requeue pool, restored verbatim so a
/// resumed schedule replays the straight-through one exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueSnapshot {
    /// Per-rank home queues with their claim cursors.
    pub queues: Vec<(Vec<TaskChunk>, usize)>,
    /// The requeue pool, FIFO order.
    pub pool: Vec<TaskChunk>,
}

/// The shared work deque: per-rank home queues plus a FIFO requeue pool for
/// work orphaned by dead ranks.
pub struct WorkQueue {
    queues: Vec<RankQueue>,
    pool: Mutex<Vec<TaskChunk>>,
}

impl WorkQueue {
    /// Distributes `chunks` to `ranks` home queues by their
    /// [`TaskChunk::home_rank`].
    pub fn new(chunks: Vec<TaskChunk>, ranks: usize) -> Self {
        assert!(ranks > 0, "a work queue needs at least one rank");
        let mut per_rank: Vec<Vec<TaskChunk>> = (0..ranks).map(|_| Vec::new()).collect();
        for c in chunks {
            let r = c.home_rank.min(ranks - 1);
            per_rank[r].push(c);
        }
        WorkQueue {
            queues: per_rank
                .into_iter()
                .map(|chunks| RankQueue {
                    chunks,
                    next: AtomicUsize::new(0),
                })
                .collect(),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Number of ranks the deque was built for.
    pub fn ranks(&self) -> usize {
        self.queues.len()
    }

    /// Unclaimed chunks left in `rank`'s home queue.
    pub fn remaining(&self, rank: usize) -> usize {
        self.queues[rank].remaining()
    }

    /// Unclaimed chunks across every home queue plus the requeue pool.
    pub fn total_remaining(&self) -> usize {
        self.queues.iter().map(RankQueue::remaining).sum::<usize>() + self.pool.lock().len()
    }

    /// The owner's pull from its own home queue.
    pub fn pop_own(&self, rank: usize) -> Option<TaskChunk> {
        self.queues[rank].claim()
    }

    /// An idle rank's steal: claims from the victim with the largest
    /// remainder (the slowest rank's backlog), lowest rank on ties.
    /// Returns `(victim, chunk)`.
    pub fn steal(&self, thief: usize) -> Option<(usize, TaskChunk)> {
        let victim = (0..self.queues.len())
            .filter(|&r| r != thief)
            .max_by_key(|&r| (self.queues[r].remaining(), usize::MAX - r))?;
        if self.queues[victim].remaining() == 0 {
            return None;
        }
        self.queues[victim].claim().map(|c| (victim, c))
    }

    /// Claims everything left in `rank`'s home queue at once (death
    /// detection: the dead rank's remainder moves to the requeue pool).
    /// Idempotent — a second drain returns nothing.
    pub fn drain_rank(&self, rank: usize) -> Vec<TaskChunk> {
        let q = &self.queues[rank];
        let len = q.chunks.len();
        let from = q.next.swap(len, Ordering::AcqRel).min(len);
        q.chunks[from..len].to_vec()
    }

    /// Appends an orphaned chunk to the requeue pool (FIFO).
    pub fn push_requeue(&self, mut chunk: TaskChunk) {
        chunk.requeued = true;
        self.pool.lock().push(chunk);
    }

    /// Takes the oldest chunk from the requeue pool.
    pub fn pop_requeue(&self) -> Option<TaskChunk> {
        let mut pool = self.pool.lock();
        if pool.is_empty() {
            None
        } else {
            Some(pool.remove(0))
        }
    }

    /// Chunks currently waiting in the requeue pool.
    pub fn pool_len(&self) -> usize {
        self.pool.lock().len()
    }

    /// Captures the full deque state for a checkpoint.
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            queues: self
                .queues
                .iter()
                .map(|q| (q.chunks.clone(), q.next.load(Ordering::Acquire)))
                .collect(),
            pool: self.pool.lock().clone(),
        }
    }

    /// Rebuilds a deque from a checkpoint snapshot.
    pub fn restore(snap: QueueSnapshot) -> Self {
        WorkQueue {
            queues: snap
                .queues
                .into_iter()
                .map(|(chunks, next)| RankQueue {
                    chunks,
                    next: AtomicUsize::new(next),
                })
                .collect(),
            pool: Mutex::new(snap.pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(d: usize) -> (usize, usize) {
        (d, d)
    }

    #[test]
    fn chunking_groups_by_size_class_and_respects_target() {
        let dims: Vec<(usize, usize)> = [20, 500, 40, 25, 100, 60, 33]
            .iter()
            .map(|&d| square(d))
            .collect();
        let chunks = size_class_chunks(&dims, &DEFAULT_SIZE_CLASS_CAPS, 2, 2);
        // Classes: cap 32 -> {0, 3}; cap 64 -> {2, 5, 6}; cap 128 -> {4};
        // cap 512 -> {1}. Class 64 splits into [2, 5] + [6] at target 2.
        let classes: Vec<(usize, Vec<usize>)> = chunks
            .iter()
            .map(|c| (c.size_class, c.indices.clone()))
            .collect();
        assert_eq!(
            classes,
            vec![
                (32, vec![0, 3]),
                (64, vec![2, 5]),
                (64, vec![6]),
                (128, vec![4]),
                (512, vec![1]),
            ]
        );
        // Every chunk holds a single size class and every index appears once.
        let mut seen: Vec<usize> = chunks.iter().flat_map(|c| c.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..dims.len()).collect::<Vec<_>>());
        // Round-robin home ranks.
        assert_eq!(
            chunks.iter().map(|c| c.home_rank).collect::<Vec<_>>(),
            vec![0, 1, 0, 1, 0]
        );
    }

    #[test]
    fn oversized_items_land_in_the_overflow_class() {
        let dims = [square(700), square(16)];
        let chunks = size_class_chunks(&dims, &DEFAULT_SIZE_CLASS_CAPS, 1, 8);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].size_class, 32);
        assert_eq!(chunks[1].size_class, usize::MAX);
        assert_eq!(chunks[1].indices, vec![0]);
    }

    #[test]
    fn one_rank_chunking_covers_every_index_in_pull_order() {
        // The 1-device compat contract: all chunks home on rank 0 and their
        // concatenation is a permutation of the batch (class-major order).
        let dims: Vec<(usize, usize)> = (0..11).map(|k| square(10 + 7 * k)).collect();
        let chunks = size_class_chunks(&dims, &DEFAULT_SIZE_CLASS_CAPS, 1, 3);
        assert!(chunks.iter().all(|c| c.home_rank == 0));
        let q = WorkQueue::new(chunks, 1);
        let mut seen = Vec::new();
        while let Some(c) = q.pop_own(0) {
            seen.extend(c.indices);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..dims.len()).collect::<Vec<_>>());
    }

    #[test]
    fn claims_are_exactly_once_under_concurrent_pop_and_steal() {
        // Owner and thief hammer the same cursor from two threads; every
        // chunk id must be claimed exactly once.
        let dims: Vec<(usize, usize)> = (0..64).map(|_| square(24)).collect();
        let chunks = size_class_chunks(&dims, &DEFAULT_SIZE_CLASS_CAPS, 2, 1);
        let n = chunks.len();
        let q = std::sync::Arc::new(WorkQueue::new(chunks, 2));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        if let Some(c) = q.pop_own(t) {
                            got.push(c.id);
                        } else if let Some((_, c)) = q.steal(t) {
                            got.push(c.id);
                        } else {
                            break;
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "lost or double claim");
    }

    #[test]
    fn steal_targets_the_largest_remainder() {
        let mut chunks = size_class_chunks(
            &(0..6).map(|_| square(16)).collect::<Vec<_>>(),
            &DEFAULT_SIZE_CLASS_CAPS,
            3,
            1,
        );
        // Pile rank 1 high: 3 chunks; ranks 0/2 get well under that.
        for (i, c) in chunks.iter_mut().enumerate() {
            c.home_rank = if i < 3 { 1 } else { i % 2 * 2 };
        }
        let q = WorkQueue::new(chunks, 3);
        let (victim, _) = q.steal(0).unwrap();
        assert_eq!(victim, 1, "steal must come from the slowest rank's pile");
    }

    #[test]
    fn drain_is_idempotent_and_requeue_is_fifo() {
        let chunks = size_class_chunks(
            &(0..4).map(|_| square(16)).collect::<Vec<_>>(),
            &DEFAULT_SIZE_CLASS_CAPS,
            2,
            1,
        );
        let q = WorkQueue::new(chunks, 2);
        let drained = q.drain_rank(1);
        assert_eq!(drained.len(), 2);
        assert!(q.drain_rank(1).is_empty(), "second drain must be empty");
        for c in drained {
            q.push_requeue(c);
        }
        let first = q.pop_requeue().unwrap();
        let second = q.pop_requeue().unwrap();
        assert!(first.id < second.id, "pool must preserve FIFO order");
        assert!(first.requeued && second.requeued);
        assert!(q.pop_requeue().is_none());
    }

    #[test]
    fn snapshot_restore_round_trips_the_deque() {
        let chunks = size_class_chunks(
            &(0..8).map(|k| square(12 + k)).collect::<Vec<_>>(),
            &DEFAULT_SIZE_CLASS_CAPS,
            2,
            2,
        );
        let q = WorkQueue::new(chunks, 2);
        let _ = q.pop_own(0);
        let orphan = q.pop_own(1).unwrap();
        q.push_requeue(orphan);
        let snap = q.snapshot();
        let restored = WorkQueue::restore(snap.clone());
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.total_remaining(), q.total_remaining());
        assert_eq!(
            restored.pop_requeue().map(|c| c.id),
            q.pop_requeue().map(|c| c.id)
        );
    }
}
