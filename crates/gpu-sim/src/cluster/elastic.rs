//! The elastic executor: pull/steal scheduling over the shared work deque,
//! fault interpretation, bounded-retry recovery, and chunk-granular
//! checkpoint/resume.
//!
//! Execution is a deterministic discrete-event loop over *simulated* time:
//! each iteration advances the alive rank with the smallest clock (lowest
//! rank on ties), which pulls a chunk — requeue pool first, then its home
//! queue, then a steal from the slowest rank's remainder — and runs it via
//! the caller's `runner`. Faults from the [`FaultPlan`] are applied around
//! the pull and the run:
//!
//! * **death detection at pull boundaries** — every pull calls the
//!   cluster's health check, so a rank killed between collectives is
//!   observed at the very next pull, not at the next `sync` (the
//!   barrier-only latch of the static path);
//! * **requeue with bounded retries** — a chunk whose rank dies mid-flight
//!   is discarded (the dead clock rewinds to the kill instant), its retry
//!   counter bumps, and it lands in the requeue pool; a dead rank's
//!   *unclaimed* remainder is drained into the pool at detection;
//! * **checkpoint/resume** — `checkpoint_after: Some(n)` stops the loop
//!   after `n` completed chunks and returns an [`ElasticCheckpoint`]
//!   capturing the full scheduler state (deque snapshot, per-rank clocks,
//!   collective clock, fault cursors, counters, completed payloads).
//!   [`resume_elastic`] restores that state onto a fresh cluster and
//!   continues; because the loop's every decision is a function of the
//!   captured state, the resumed remainder replays the straight-through
//!   schedule bit-for-bit.
//!
//! With an empty fault plan the executor adds *nothing* to simulated time:
//! chunks run back-to-back on their ranks exactly as a static per-rank loop
//! would run them — the strict-no-op contract the repro baselines pin.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::launch::{Gpu, KernelError};

use super::fault::FaultPlan;
use super::queue::{QueueSnapshot, TaskChunk, WorkQueue};
use super::GpuCluster;

/// Process-wide count of chunks abandoned after retry exhaustion or total
/// cluster death. `repro --cluster-faults` exits non-zero when this moved.
static UNRECOVERED: AtomicU64 = AtomicU64::new(0);

/// Total chunks ever declared unrecovered in this process.
pub fn unrecovered_total() -> u64 {
    UNRECOVERED.load(Ordering::Relaxed)
}

/// Recovery accounting of one elastic run (also mirrored onto the metrics
/// registry and trace tracks when those sinks are enabled).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryCounters {
    /// Chunks claimed from another rank's home queue.
    pub stolen_chunks: u64,
    /// Chunks moved to the requeue pool (mid-flight casualties plus a dead
    /// rank's drained remainder).
    pub requeued_chunks: u64,
    /// Mid-flight deaths (each bumps its chunk's retry counter).
    pub retried_chunks: u64,
    /// Chunks abandoned after exceeding
    /// [`FaultPlan::max_retries`](super::FaultPlan::max_retries).
    pub unrecovered_chunks: u64,
    /// Simulated seconds spent re-executing requeued work.
    pub recovery_seconds: f64,
    /// Serialized checkpoint size (set by the caller that serializes).
    pub checkpoint_bytes: u64,
    /// Ranks that died during the run.
    pub killed_ranks: u64,
}

/// Configuration of one elastic run.
#[derive(Clone, Debug, Default)]
pub struct ElasticConfig {
    /// The injected fault schedule (empty = strict no-op scheduling).
    pub faults: FaultPlan,
    /// Stop after this many completed chunks and return a checkpoint
    /// instead of finishing (test/replay hook for checkpoint/resume).
    pub checkpoint_after: Option<usize>,
}

/// Full scheduler state at a chunk boundary — everything `resume_elastic`
/// needs to replay the remainder of the run bit-identically.
#[derive(Clone, Debug)]
pub struct ElasticCheckpoint<T> {
    /// Completed chunks with their payloads, completion order.
    pub completed: Vec<(TaskChunk, T)>,
    /// The work deque (home queues, cursors, requeue pool).
    pub queue: QueueSnapshot,
    /// Per-rank simulated clocks.
    pub rank_seconds: Vec<f64>,
    /// The collective clock.
    pub sync_seconds: f64,
    /// Which ranks were dead at checkpoint time.
    pub killed: Vec<bool>,
    /// Which [`FaultPlan::stalls`] entries had been applied.
    pub stalls_applied: Vec<bool>,
    /// Which [`FaultPlan::kills`] entries had been applied.
    pub kills_applied: Vec<bool>,
    /// Recovery accounting so far.
    pub counters: RecoveryCounters,
}

/// Outcome of an elastic run.
#[derive(Debug)]
pub struct ElasticRun<T> {
    /// Completed chunks with their payloads, completion order.
    pub completed: Vec<(TaskChunk, T)>,
    /// Recovery accounting.
    pub counters: RecoveryCounters,
    /// `Some` when the run stopped at `checkpoint_after` instead of
    /// finishing.
    pub checkpoint: Option<ElasticCheckpoint<T>>,
}

impl<T> ElasticRun<T> {
    /// Payload lookup by original chunk order: `(chunk, payload)` pairs
    /// sorted by chunk id.
    pub fn into_sorted(mut self) -> Vec<(TaskChunk, T)> {
        self.completed.sort_by_key(|(c, _)| c.id);
        self.completed
    }
}

/// Runs `chunks` to completion (or to the configured checkpoint) over the
/// cluster. `runner` executes one chunk on one device and must be a pure
/// function of `(device state, chunk)` — the determinism the checkpoint
/// contract rests on.
pub fn run_elastic<T>(
    cluster: &GpuCluster,
    chunks: Vec<TaskChunk>,
    cfg: &ElasticConfig,
    runner: impl FnMut(&Gpu, &TaskChunk) -> Result<T, KernelError>,
) -> Result<ElasticRun<T>, KernelError> {
    let queue = WorkQueue::new(chunks, cluster.len());
    drive(
        cluster,
        queue,
        Vec::new(),
        vec![false; cfg.faults.stalls.len()],
        vec![false; cfg.faults.kills.len()],
        RecoveryCounters::default(),
        cfg,
        runner,
    )
}

/// Resumes a checkpointed run on a **fresh** cluster of the same size and
/// device: restores clocks, dead ranks and the deque, then continues the
/// deterministic loop. The remainder replays the straight-through schedule
/// exactly, so final payloads, per-rank clocks and counters are
/// bit-identical to a run that was never interrupted.
pub fn resume_elastic<T>(
    cluster: &GpuCluster,
    checkpoint: ElasticCheckpoint<T>,
    cfg: &ElasticConfig,
    runner: impl FnMut(&Gpu, &TaskChunk) -> Result<T, KernelError>,
) -> Result<ElasticRun<T>, KernelError> {
    assert_eq!(
        checkpoint.rank_seconds.len(),
        cluster.len(),
        "checkpoint was taken on a cluster of a different size"
    );
    for (r, &s) in checkpoint.rank_seconds.iter().enumerate() {
        cluster.gpu(r).add_host_seconds(s);
    }
    cluster.restore_sync_seconds(checkpoint.sync_seconds);
    for (r, &dead) in checkpoint.killed.iter().enumerate() {
        if dead {
            cluster.restore_killed(r);
        }
    }
    drive(
        cluster,
        WorkQueue::restore(checkpoint.queue),
        checkpoint.completed,
        checkpoint.stalls_applied,
        checkpoint.kills_applied,
        checkpoint.counters,
        cfg,
        runner,
    )
}

#[allow(clippy::too_many_arguments)]
fn drive<T>(
    cluster: &GpuCluster,
    queue: WorkQueue,
    mut completed: Vec<(TaskChunk, T)>,
    mut stalls_applied: Vec<bool>,
    mut kills_applied: Vec<bool>,
    mut counters: RecoveryCounters,
    cfg: &ElasticConfig,
    mut runner: impl FnMut(&Gpu, &TaskChunk) -> Result<T, KernelError>,
) -> Result<ElasticRun<T>, KernelError> {
    let faults = &cfg.faults;
    let health = cluster.health().clone();
    let trace = cluster.trace.clone();
    let pid = cluster.trace_pid;
    let metrics = cluster.gpu(0).metrics().clone();
    loop {
        // Death bookkeeping first: a dead rank's unclaimed remainder moves
        // to the requeue pool (idempotent — drained queues stay empty, so a
        // resumed run never re-drains or double-counts).
        for r in 0..cluster.len() {
            if cluster.is_alive(r) {
                continue;
            }
            for chunk in queue.drain_rank(r) {
                counters.requeued_chunks += 1;
                if health.is_enabled() {
                    health.chunk_requeued(r, chunk.id, cluster.elapsed_seconds());
                }
                if trace.is_enabled() {
                    trace.instant(
                        pid,
                        "elastic",
                        "requeue",
                        cluster.elapsed_seconds(),
                        vec![("rank", r.into()), ("chunk", chunk.id.into())],
                    );
                }
                if metrics.is_enabled() {
                    metrics.counter_add("cluster", None, "requeued_chunks", 1.0);
                }
                queue.push_requeue(chunk);
            }
        }
        if queue.total_remaining() == 0 {
            break;
        }
        // The alive rank with the smallest clock pulls next, lowest rank on
        // ties — the discrete-event step of the simulated schedule. The
        // comparison is `total_cmp` with an explicit rank-index tiebreak:
        // `partial_cmp` would make the victim of a NaN-poisoned clock (or a
        // tie under a future unstable selection) silently arbitrary, and the
        // pull order is exactly what checkpoint/resume bit-identity replays.
        let Some(rank) = (0..cluster.len())
            .filter(|&r| cluster.is_alive(r))
            .min_by(|&a, &b| {
                cluster
                    .gpu(a)
                    .elapsed_seconds()
                    .total_cmp(&cluster.gpu(b).elapsed_seconds())
                    .then_with(|| a.cmp(&b))
            })
        else {
            // The error path drops `counters` with the run; the abandoned
            // work is ledgered process-wide instead (what `--cluster-faults`
            // gates on).
            let left = queue.total_remaining() as u64;
            UNRECOVERED.fetch_add(left, Ordering::Relaxed);
            return Err(KernelError::Other(format!(
                "elastic cluster: every cluster rank is dead with {left} chunk(s) unrecovered"
            )));
        };
        let gpu = cluster.gpu(rank);
        // Pull-boundary fault processing: pending kills whose time has come
        // land *before* the pull (the rank died idle), and the health check
        // observes any dead rank now — not at the next collective barrier.
        for (i, k) in faults.kills.iter().enumerate() {
            if !kills_applied[i] && k.rank == rank && gpu.elapsed_seconds() >= k.at_seconds {
                kills_applied[i] = true;
                counters.killed_ranks += 1;
                cluster.kill(rank);
            }
        }
        cluster.health_check();
        if !cluster.is_alive(rank) {
            continue; // next iteration drains this rank's remainder
        }
        for (i, st) in faults.stalls.iter().enumerate() {
            if !stalls_applied[i] && st.rank == rank && gpu.elapsed_seconds() >= st.at_seconds {
                stalls_applied[i] = true;
                gpu.add_host_seconds(st.seconds);
                if trace.is_enabled() {
                    trace.instant(
                        pid,
                        "elastic",
                        "stall",
                        gpu.elapsed_seconds(),
                        vec![("rank", rank.into()), ("seconds", st.seconds.into())],
                    );
                }
            }
        }
        // Pull: requeue pool, own queue, steal — in that order.
        let (chunk, stolen_from) = if let Some(c) = queue.pop_requeue() {
            (c, None)
        } else if let Some(c) = queue.pop_own(rank) {
            (c, None)
        } else if let Some((victim, c)) = queue.steal(rank) {
            (c, Some(victim))
        } else {
            // Unreachable in the single-driver loop: total_remaining() > 0
            // implies one of the three sources has work (dead ranks were
            // drained above). Defensive break rather than a spin.
            break;
        };
        if health.is_enabled() {
            health.chunk_pulled(rank, chunk.id, gpu.elapsed_seconds());
        }
        if let Some(victim) = stolen_from {
            counters.stolen_chunks += 1;
            if health.is_enabled() {
                health.chunk_stolen(rank, victim, chunk.id, gpu.elapsed_seconds());
            }
            if trace.is_enabled() {
                trace.instant(
                    pid,
                    "elastic",
                    "steal",
                    gpu.elapsed_seconds(),
                    vec![
                        ("thief", rank.into()),
                        ("victim", victim.into()),
                        ("chunk", chunk.id.into()),
                    ],
                );
            }
            if metrics.is_enabled() {
                metrics.counter_add("cluster", None, "stolen_chunks", 1.0);
            }
        }
        let t0 = gpu.elapsed_seconds();
        let result = runner(gpu, &chunk)?;
        let factor = faults.straggler_factor(rank);
        if factor != 1.0 {
            // Charged as signed host seconds so an exact 1.0 adds nothing
            // and the no-fault run stays bit-identical.
            gpu.add_host_seconds((factor - 1.0) * (gpu.elapsed_seconds() - t0));
        }
        let t1 = gpu.elapsed_seconds();
        // Mid-flight death: the kill instant fell inside this chunk's
        // execution window. The work after the instant never happened —
        // rewind the clock, discard the result, requeue the chunk.
        let mut died = false;
        for (i, k) in faults.kills.iter().enumerate() {
            if !kills_applied[i]
                && k.rank == rank
                && t0 < k.at_seconds
                && k.at_seconds <= t1
                && cluster.is_alive(rank)
            {
                kills_applied[i] = true;
                counters.killed_ranks += 1;
                gpu.add_host_seconds(k.at_seconds - t1);
                cluster.kill(rank);
                died = true;
                break;
            }
        }
        if died {
            drop(result);
            let mut chunk = chunk;
            chunk.retries += 1;
            counters.retried_chunks += 1;
            if chunk.retries > faults.max_retries {
                UNRECOVERED.fetch_add(1, Ordering::Relaxed);
                return Err(KernelError::Other(format!(
                    "elastic cluster: chunk {} unrecovered after {} attempt(s)",
                    chunk.id, chunk.retries
                )));
            }
            counters.requeued_chunks += 1;
            if health.is_enabled() {
                health.chunk_requeued(rank, chunk.id, cluster.elapsed_seconds());
            }
            if trace.is_enabled() {
                trace.instant(
                    pid,
                    "elastic",
                    "requeue",
                    cluster.elapsed_seconds(),
                    vec![("rank", rank.into()), ("chunk", chunk.id.into())],
                );
            }
            if metrics.is_enabled() {
                metrics.counter_add("cluster", None, "requeued_chunks", 1.0);
            }
            queue.push_requeue(chunk);
            continue;
        }
        if chunk.requeued {
            counters.recovery_seconds += t1 - t0;
        }
        completed.push((chunk, result));
        if cfg.checkpoint_after == Some(completed.len()) {
            let checkpoint = ElasticCheckpoint {
                queue: queue.snapshot(),
                rank_seconds: cluster.rank_seconds(),
                sync_seconds: cluster.elapsed_sync_seconds(),
                killed: (0..cluster.len()).map(|r| !cluster.is_alive(r)).collect(),
                stalls_applied,
                kills_applied,
                counters: counters.clone(),
                completed,
            };
            return Ok(ElasticRun {
                completed: Vec::new(),
                counters,
                checkpoint: Some(checkpoint),
            });
        }
    }
    // Recovery outcome: every dead rank whose orphaned work was absorbed is
    // *recovered* — its latched shard-dead incident flips `recovered: true`.
    if counters.unrecovered_chunks == 0 && health.is_enabled() {
        for r in 0..cluster.len() {
            if !cluster.is_alive(r) {
                health.shard_recovered(r, cluster.elapsed_seconds());
            }
        }
    }
    if metrics.is_enabled() {
        metrics.gauge_set(
            "cluster",
            None,
            "recovery_seconds",
            counters.recovery_seconds,
        );
        metrics.gauge_set(
            "cluster",
            None,
            "killed_ranks",
            counters.killed_ranks as f64,
        );
    }
    Ok(ElasticRun {
        completed,
        counters,
        checkpoint: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::queue::{size_class_chunks, DEFAULT_SIZE_CLASS_CAPS};
    use crate::device::VEGA20;
    use crate::launch::KernelConfig;

    /// A runner whose simulated cost scales with the chunk's index count.
    fn work(gpu: &Gpu, chunk: &TaskChunk) -> Result<Vec<usize>, KernelError> {
        let kc = KernelConfig::new(chunk.indices.len(), 256, 1024, "chunk");
        gpu.launch_collect(kc, |_, ctx| {
            ctx.par_step(20_000, 2);
            Ok(())
        })?;
        Ok(chunk.indices.clone())
    }

    fn chunks(points: usize, ranks: usize, target: usize) -> Vec<TaskChunk> {
        let dims: Vec<(usize, usize)> = (0..points).map(|k| (16 + k, 16 + k)).collect();
        size_class_chunks(&dims, &DEFAULT_SIZE_CLASS_CAPS, ranks, target)
    }

    fn covered(run: &ElasticRun<Vec<usize>>) -> Vec<usize> {
        let mut all: Vec<usize> = run
            .completed
            .iter()
            .flat_map(|(_, idx)| idx.clone())
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn no_fault_elastic_run_matches_static_per_rank_timing() {
        // Strict no-op: with an empty fault plan, each rank's clock equals a
        // static loop running exactly its pulled chunks back-to-back.
        let points = 12;
        let cl = GpuCluster::new(VEGA20, 3);
        let cs = chunks(points, 3, 2);
        let run = run_elastic(&cl, cs.clone(), &ElasticConfig::default(), work).unwrap();
        assert_eq!(covered(&run), (0..points).collect::<Vec<_>>());
        assert_eq!(run.counters, RecoveryCounters::default());

        let by_rank: Vec<Vec<&TaskChunk>> = (0..3)
            .map(|r| {
                run.completed
                    .iter()
                    .map(|(c, _)| c)
                    .filter(|c| c.home_rank == r)
                    .collect()
            })
            .collect();
        let static_cl = GpuCluster::new(VEGA20, 3);
        for (r, list) in by_rank.iter().enumerate() {
            for c in list {
                work(static_cl.gpu(r), c).unwrap();
            }
        }
        for r in 0..3 {
            assert_eq!(
                cl.gpu(r).elapsed_seconds().to_bits(),
                static_cl.gpu(r).elapsed_seconds().to_bits(),
                "rank {r} clock must be bit-identical to the static schedule"
            );
        }
    }

    #[test]
    fn tied_clocks_pull_in_rank_order_deterministically() {
        // At the first pull every clock reads exactly 0.0 — a three-way tie.
        // The selection must break ties by rank index: ranks 0, 1, 2 pull
        // their first home chunks in that order, and the whole schedule
        // (completion order and per-rank clocks) replays bit-identically.
        let run_once = || {
            let cl = GpuCluster::new(VEGA20, 3);
            let run = run_elastic(&cl, chunks(9, 3, 1), &ElasticConfig::default(), work).unwrap();
            let clocks: Vec<u64> = (0..3)
                .map(|r| cl.gpu(r).elapsed_seconds().to_bits())
                .collect();
            let order: Vec<usize> = run.completed.iter().map(|(c, _)| c.id).collect();
            (order, clocks, run)
        };
        let (order_a, clocks_a, run_a) = run_once();
        let first_pullers: Vec<usize> = run_a.completed[..3]
            .iter()
            .map(|(c, _)| c.home_rank)
            .collect();
        assert_eq!(
            first_pullers,
            vec![0, 1, 2],
            "tied clocks must resolve to the lowest rank first"
        );
        let (order_b, clocks_b, _) = run_once();
        assert_eq!(order_a, order_b, "completion order must be deterministic");
        assert_eq!(clocks_a, clocks_b, "per-rank clocks must replay exactly");
    }

    #[test]
    fn steal_beats_static_sharding_under_a_straggler() {
        let points = 16;
        let faulty = ElasticConfig {
            faults: FaultPlan::none().straggler(0, 2.0),
            ..Default::default()
        };
        let cl = GpuCluster::new(VEGA20, 4);
        let run = run_elastic(&cl, chunks(points, 4, 1), &faulty, work).unwrap();
        assert!(run.counters.stolen_chunks > 0, "idle ranks must steal");
        let elastic_makespan = cl.elapsed_seconds();

        // Static: each rank runs its home chunks; rank 0 then pays 2x.
        let st = GpuCluster::new(VEGA20, 4);
        for c in &chunks(points, 4, 1) {
            work(st.gpu(c.home_rank), c).unwrap();
        }
        let slow = st.gpu(0).elapsed_seconds();
        st.gpu(0).add_host_seconds(slow); // 2x straggler on the whole shard
        assert!(
            elastic_makespan < st.elapsed_seconds(),
            "stealing must strictly shrink the straggler makespan: {elastic_makespan} vs {}",
            st.elapsed_seconds()
        );
    }

    #[test]
    fn kill_between_barriers_is_detected_at_the_next_pull() {
        // Regression (satellite 2): no `sync` happens anywhere in this run,
        // yet the kill is still observed — at a chunk-pull boundary.
        let sink = wsvd_health::HealthSink::enabled();
        sink.set_context("pull-detect", 1);
        let mut cl = GpuCluster::new(VEGA20, 2);
        cl.set_health(sink.clone());
        let cfg = ElasticConfig {
            faults: FaultPlan::none().kill(1, 1e-9),
            ..Default::default()
        };
        let run = run_elastic(&cl, chunks(8, 2, 1), &cfg, work).unwrap();
        assert_eq!(covered(&run), (0..8).collect::<Vec<_>>());
        let incidents = sink.incidents();
        assert_eq!(incidents.len(), 1, "{incidents:?}");
        assert_eq!(incidents[0].kind, "shard-dead");
        assert!(
            incidents[0].recovered,
            "requeued work completed, so the incident must be marked recovered"
        );
        assert!(run.counters.requeued_chunks > 0);
        assert_eq!(run.counters.killed_ranks, 1);
    }

    #[test]
    fn mid_chunk_kill_rewinds_the_clock_and_requeues() {
        // Let rank 0 run one chunk cleanly, then kill it mid-second-chunk.
        let cl = GpuCluster::new(VEGA20, 1);
        let probe = chunks(2, 1, 1);
        work(cl.gpu(0), &probe[0]).unwrap();
        let one = cl.gpu(0).elapsed_seconds();
        drop(cl);

        let cl = GpuCluster::new(VEGA20, 2);
        let kill_at = 1.5 * one; // mid-flight in rank 0's second chunk
        let cfg = ElasticConfig {
            faults: FaultPlan::none().kill(0, kill_at),
            ..Default::default()
        };
        let run = run_elastic(&cl, chunks(6, 2, 1), &cfg, work).unwrap();
        assert_eq!(covered(&run), (0..6).collect::<Vec<_>>());
        assert_eq!(run.counters.retried_chunks, 1, "{:?}", run.counters);
        assert!(run.counters.requeued_chunks >= 1);
        assert!(run.counters.recovery_seconds > 0.0);
        assert_eq!(
            cl.gpu(0).elapsed_seconds().to_bits(),
            kill_at.to_bits(),
            "a dead rank's clock stops exactly at the kill instant"
        );
    }

    #[test]
    fn retry_exhaustion_is_an_error_and_ledgered() {
        // Two kills aimed at whichever rank retries the poisoned chunk:
        // with max_retries = 0 the first mid-flight death is fatal.
        let before = unrecovered_total();
        let cl = GpuCluster::new(VEGA20, 1);
        let probe = chunks(1, 1, 1);
        work(cl.gpu(0), &probe[0]).unwrap();
        let one = cl.gpu(0).elapsed_seconds();
        drop(cl);

        let cl = GpuCluster::new(VEGA20, 1);
        let mut faults = FaultPlan::none().kill(0, 0.5 * one);
        faults.max_retries = 0;
        let cfg = ElasticConfig {
            faults,
            ..Default::default()
        };
        let err = run_elastic(&cl, chunks(1, 1, 1), &cfg, work).unwrap_err();
        assert!(format!("{err}").contains("unrecovered"), "{err}");
        assert!(unrecovered_total() > before);
    }

    #[test]
    fn all_ranks_dead_with_work_left_is_an_error() {
        let cl = GpuCluster::new(VEGA20, 2);
        let cfg = ElasticConfig {
            faults: FaultPlan::none().kill(0, 1e-12).kill(1, 1e-12),
            ..Default::default()
        };
        let err = run_elastic(&cl, chunks(4, 2, 1), &cfg, work).unwrap_err();
        assert!(
            format!("{err}").contains("every cluster rank is dead"),
            "{err}"
        );
    }

    #[test]
    fn stall_charges_dead_time_once_at_a_pull_boundary() {
        let cfg = ElasticConfig {
            faults: FaultPlan::none().stall(0, 0.0, 0.25),
            ..Default::default()
        };
        let cl = GpuCluster::new(VEGA20, 1);
        let run = run_elastic(&cl, chunks(3, 1, 1), &cfg, work).unwrap();
        assert_eq!(run.completed.len(), 3);
        let clean = GpuCluster::new(VEGA20, 1);
        run_elastic(&clean, chunks(3, 1, 1), &ElasticConfig::default(), work).unwrap();
        let delta = cl.gpu(0).elapsed_seconds() - clean.gpu(0).elapsed_seconds();
        assert!(
            (delta - 0.25).abs() < 1e-12,
            "stall must charge exactly once: delta {delta}"
        );
    }

    #[test]
    fn checkpoint_resume_replays_the_straight_through_run_bit_identically() {
        let points = 10;
        let cfg = ElasticConfig {
            faults: FaultPlan::none().straggler(1, 2.0),
            ..Default::default()
        };
        // Straight-through reference.
        let straight = GpuCluster::new(VEGA20, 2);
        let want = run_elastic(&straight, chunks(points, 2, 1), &cfg, work).unwrap();

        // Interrupted at chunk 4, resumed on a fresh cluster.
        let first = GpuCluster::new(VEGA20, 2);
        let half = ElasticConfig {
            checkpoint_after: Some(4),
            ..cfg.clone()
        };
        let ckpt = run_elastic(&first, chunks(points, 2, 1), &half, work)
            .unwrap()
            .checkpoint
            .expect("run must stop at the checkpoint");
        let second = GpuCluster::new(VEGA20, 2);
        let got = resume_elastic(&second, ckpt, &cfg, work).unwrap();

        assert_eq!(
            want.completed.iter().map(|(c, _)| c.id).collect::<Vec<_>>(),
            got.completed.iter().map(|(c, _)| c.id).collect::<Vec<_>>(),
            "completion order must replay exactly"
        );
        assert_eq!(want.counters, got.counters);
        for r in 0..2 {
            assert_eq!(
                straight.gpu(r).elapsed_seconds().to_bits(),
                second.gpu(r).elapsed_seconds().to_bits(),
                "rank {r} clock must resume bit-identically"
            );
        }
    }
}
