//! Multi-GPU cluster simulation (the artifact's `test_Cluster` branch).
//!
//! Fig. 14(b) runs the data-assimilation workload on a distributed-memory
//! system of Vega20 GPUs driven by slurm. The model here is data-parallel
//! batch decomposition: each device owns a shard of the batch, devices run
//! independently (makespan = slowest shard), and every collective step pays
//! a latency + bandwidth synchronization cost.
//!
//! Beyond the static [`GpuCluster::shard`] split, the submodules grow the
//! cluster into an elastic execution layer (ROADMAP item 5, DESIGN.md §13):
//!
//! * [`queue`] — size-class-aware task chunks and the shared work deque
//!   devices pull from (idle devices steal from the slowest rank);
//! * [`fault`] — a deterministic, seedable [`FaultPlan`] (kills, transient
//!   stalls, slow-device straggler factors);
//! * [`elastic`] — the elastic executor: pull/steal scheduling, death
//!   detection at chunk-pull boundaries, bounded-retry requeue of a dead
//!   rank's work, and chunk-granular checkpoint/resume.

pub mod elastic;
pub mod fault;
pub mod queue;

pub use elastic::{
    resume_elastic, run_elastic, unrecovered_total, ElasticCheckpoint, ElasticConfig, ElasticRun,
    RecoveryCounters,
};
pub use fault::{FaultPlan, Kill, Stall, Straggler};
pub use queue::{size_class_chunks, QueueSnapshot, TaskChunk, WorkQueue, DEFAULT_SIZE_CLASS_CAPS};

use std::sync::atomic::{AtomicBool, Ordering};

use wsvd_health::HealthSink;
use wsvd_trace::TraceSink;

use crate::device::DeviceSpec;
use crate::launch::Gpu;

/// A homogeneous group of simulated GPUs.
pub struct GpuCluster {
    gpus: Vec<Gpu>,
    /// Per-collective latency in seconds (network + driver).
    pub sync_latency: f64,
    /// Interconnect bandwidth in bytes/second (per link).
    pub link_bandwidth: f64,
    sync_seconds: std::sync::atomic::AtomicU64,
    trace: TraceSink,
    trace_pid: u32,
    health: HealthSink,
    /// Fault-injection state: `killed[r]` marks rank `r` unresponsive;
    /// `dead_reported[r]` latches the health check so one kill produces one
    /// detection even though every later collective re-checks.
    killed: Vec<AtomicBool>,
    dead_reported: Vec<AtomicBool>,
}

impl GpuCluster {
    /// Creates `count` devices of the same spec with default interconnect
    /// parameters (25 GB/s links, 30 µs collective latency — IB-class).
    /// Picks up the process-wide trace sink, labeling each rank's tracks.
    pub fn new(device: DeviceSpec, count: usize) -> Self {
        Self::with_trace(device, count, wsvd_trace::global())
    }

    /// Like [`GpuCluster::new`] with an explicit trace sink.
    pub fn with_trace(device: DeviceSpec, count: usize, trace: TraceSink) -> Self {
        assert!(count > 0, "a cluster needs at least one device");
        let trace_pid = trace.register_process("cluster interconnect");
        Self {
            gpus: (0..count)
                .map(|r| {
                    Gpu::with_trace_named(
                        device,
                        trace.clone(),
                        &format!("{} rank {r}", device.name),
                    )
                })
                .collect(),
            sync_latency: 30e-6,
            link_bandwidth: 25e9,
            sync_seconds: std::sync::atomic::AtomicU64::new(0),
            trace,
            trace_pid,
            health: wsvd_health::global(),
            killed: (0..count).map(|_| AtomicBool::new(false)).collect(),
            dead_reported: (0..count).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The health sink shared by the cluster's collectives (disabled by
    /// default).
    pub fn health(&self) -> &HealthSink {
        &self.health
    }

    /// Replaces the health sink on the cluster and every rank's GPU.
    pub fn set_health(&mut self, sink: HealthSink) {
        for gpu in &mut self.gpus {
            gpu.set_health(sink.clone());
        }
        self.health = sink;
    }

    /// Marks rank `rank` unresponsive (fault injection for ROADMAP item 5).
    /// The rank's accumulated time stays in the makespan — a dead shard is a
    /// straggler, not a discount — and the next collective's health check
    /// reports it.
    pub fn kill(&self, rank: usize) {
        self.killed[rank].store(true, Ordering::Release);
        self.health.shard_killed(rank, self.elapsed_seconds());
    }

    /// True while `rank` has not been killed.
    pub fn is_alive(&self, rank: usize) -> bool {
        !self.killed[rank].load(Ordering::Acquire)
    }

    /// Checkpoint-resume restore of a dead rank: marks it killed *and*
    /// already-reported, so a resumed run neither re-runs its work nor fires
    /// a duplicate `shard-dead` incident (the incident belongs to the run
    /// that observed the death, before the checkpoint was taken).
    pub fn restore_killed(&self, rank: usize) {
        self.killed[rank].store(true, Ordering::Release);
        self.dead_reported[rank].store(true, Ordering::Release);
    }

    /// Checkpoint-resume restore of the collective clock. Only meaningful on
    /// a fresh cluster (it overwrites, not accumulates).
    pub fn restore_sync_seconds(&self, seconds: f64) {
        self.sync_seconds
            .store(f64::to_bits(seconds), std::sync::atomic::Ordering::Release);
    }

    /// Per-rank simulated clocks, rank order (checkpointed by the elastic
    /// executor; restore each via [`Gpu::add_host_seconds`] on a fresh
    /// cluster).
    pub fn rank_seconds(&self) -> Vec<f64> {
        self.gpus.iter().map(|g| g.elapsed_seconds()).collect()
    }

    /// Detects killed ranks the way a real collective does — by their
    /// absence at the barrier. Fires one `shard-dead` incident per killed
    /// rank (latched). Called from [`GpuCluster::sync`] when health is on;
    /// callers running collective-free phases may also call it directly.
    pub fn health_check(&self) {
        if !self.health.is_enabled() {
            return;
        }
        for (rank, killed) in self.killed.iter().enumerate() {
            if killed.load(Ordering::Acquire)
                && !self.dead_reported[rank].swap(true, Ordering::AcqRel)
            {
                self.health.shard_dead(rank, self.elapsed_seconds());
            }
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// True if the cluster has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Access to one device.
    pub fn gpu(&self, rank: usize) -> &Gpu {
        &self.gpus[rank]
    }

    /// Splits `items` into contiguous shards, one per device, balancing
    /// counts (the slurm-script decomposition of the artifact).
    pub fn shard<T: Clone>(&self, items: &[T]) -> Vec<Vec<T>> {
        let p = self.gpus.len();
        let base = items.len() / p;
        let extra = items.len() % p;
        let mut shards = Vec::with_capacity(p);
        let mut start = 0;
        for r in 0..p {
            let len = base + usize::from(r < extra);
            shards.push(items[start..start + len].to_vec());
            start += len;
        }
        shards
    }

    /// Records one collective (e.g. the gather of analysis weights):
    /// latency plus `bytes` over the slowest link.
    pub fn sync(&self, bytes: u64) {
        let secs = self.sync_latency + bytes as f64 / self.link_bandwidth;
        // CAS loop over the f64 bits: collectives issued concurrently from
        // different shards must each land their increment (a plain
        // load-add-store here loses updates under contention).
        self.sync_seconds
            .fetch_update(
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
                |bits| Some(f64::to_bits(f64::from_bits(bits) + secs)),
            )
            .expect("fetch_update closure always returns Some");
        if self.trace.is_enabled() {
            self.trace.span(
                self.trace_pid,
                "collectives",
                "sync",
                self.elapsed_seconds() - secs,
                secs,
                vec![("bytes", bytes.into())],
            );
        }
        if self.health.is_enabled() {
            self.health.shard_sync(bytes, secs, self.elapsed_seconds());
            self.health_check();
        }
    }

    /// Total time spent in collectives.
    pub fn elapsed_sync_seconds(&self) -> f64 {
        f64::from_bits(self.sync_seconds.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Data-parallel makespan: slowest device plus the collectives.
    pub fn elapsed_seconds(&self) -> f64 {
        let slowest = self
            .gpus
            .iter()
            .map(|g| g.elapsed_seconds())
            .fold(0.0f64, f64::max);
        slowest + self.elapsed_sync_seconds()
    }

    /// Parallel efficiency vs a hypothetical single device doing all work:
    /// `sum(work) / (count * makespan)`.
    pub fn parallel_efficiency(&self) -> f64 {
        let total: f64 = self.gpus.iter().map(|g| g.elapsed_seconds()).sum();
        let makespan = self.elapsed_seconds();
        if makespan > 0.0 {
            total / (self.gpus.len() as f64 * makespan)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::VEGA20;
    use crate::launch::KernelConfig;

    #[test]
    fn shard_balances_counts() {
        let c = GpuCluster::new(VEGA20, 3);
        let shards = c.shard(&(0..10).collect::<Vec<_>>());
        assert_eq!(
            shards.iter().map(|s| s.len()).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let flat: Vec<i32> = shards.concat();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn one_device_shard_is_the_identity_split() {
        // Compat pin: single-device runs must see the whole batch, in
        // order, as one shard — the elastic chunking layers above rely on
        // this staying the degenerate case.
        let c = GpuCluster::new(VEGA20, 1);
        let items: Vec<usize> = (0..17).collect();
        let shards = c.shard(&items);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], items);
    }

    #[test]
    fn makespan_is_slowest_shard_plus_sync() {
        let c = GpuCluster::new(VEGA20, 2);
        // Load rank 0 only.
        let kc = KernelConfig::new(4, 256, 1024, "work");
        c.gpu(0)
            .launch_collect(kc, |_, ctx| {
                ctx.par_step(100_000, 2);
                Ok(())
            })
            .unwrap();
        let t0 = c.gpu(0).elapsed_seconds();
        assert!(t0 > 0.0);
        c.sync(1_000_000);
        let expect_sync = 30e-6 + 1e6 / 25e9;
        assert!((c.elapsed_seconds() - (t0 + expect_sync)).abs() < 1e-12);
    }

    #[test]
    fn efficiency_is_one_when_balanced_half_when_one_idle() {
        let work = |gpu: &Gpu| {
            let kc = KernelConfig::new(2, 256, 1024, "w");
            gpu.launch_collect(kc, |_, ctx| {
                ctx.par_step(50_000, 2);
                Ok(())
            })
            .unwrap();
        };
        let balanced = GpuCluster::new(VEGA20, 2);
        work(balanced.gpu(0));
        work(balanced.gpu(1));
        assert!((balanced.parallel_efficiency() - 1.0).abs() < 1e-9);

        let skewed = GpuCluster::new(VEGA20, 2);
        work(skewed.gpu(0));
        assert!((skewed.parallel_efficiency() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = GpuCluster::new(VEGA20, 0);
    }

    #[test]
    fn concurrent_syncs_lose_no_updates() {
        // Regression: `sync` used to read-modify-write `sync_seconds` with a
        // plain load + store, so collectives racing from different shards
        // dropped increments. The CAS loop must account for every call.
        let c = std::sync::Arc::new(GpuCluster::new(VEGA20, 4));
        let threads = 8;
        let per_thread = 250;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.sync(1_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let per_call = c.sync_latency + 1_000.0 / c.link_bandwidth;
        let want = (threads * per_thread) as f64 * per_call;
        let got = c.elapsed_sync_seconds();
        assert!(
            (got - want).abs() < want * 1e-12,
            "lost sync updates: got {got}, want {want}"
        );
    }

    #[test]
    fn killed_rank_fires_one_shard_dead_incident() {
        let mut c = GpuCluster::new(VEGA20, 4);
        let health = wsvd_health::HealthSink::enabled();
        health.set_context("cluster-test", 7);
        c.set_health(health.clone());
        assert!(c.is_alive(2));
        c.kill(2);
        assert!(!c.is_alive(2));
        assert_eq!(health.incident_count(), 0, "detection waits for a barrier");
        c.sync(1_000);
        c.sync(1_000); // re-checks must not duplicate the incident
        let incidents = health.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, "shard-dead");
        assert!(incidents[0].detail.contains("rank 2"));
        // The flight tail holds the kill marker and both collectives.
        let tail = health.tail();
        assert!(tail
            .iter()
            .any(|e| matches!(e.kind, wsvd_health::FlightKind::ShardKilled { rank: 2 })));
        assert!(tail
            .iter()
            .any(|e| matches!(e.kind, wsvd_health::FlightKind::ShardSync { .. })));
    }

    #[test]
    fn health_off_cluster_is_inert() {
        let c = GpuCluster::new(VEGA20, 2);
        assert!(!c.health().is_enabled());
        c.kill(1);
        c.sync(1_000);
        // No sink: nothing recorded, timing identical to the formula.
        let per_call = c.sync_latency + 1_000.0 / c.link_bandwidth;
        assert!((c.elapsed_sync_seconds() - per_call).abs() < 1e-18);
    }

    #[test]
    fn traced_cluster_labels_ranks_and_records_syncs() {
        let sink = wsvd_trace::TraceSink::enabled();
        let c = GpuCluster::with_trace(VEGA20, 2, sink.clone());
        let names: Vec<String> = sink.processes().into_iter().map(|(_, n)| n).collect();
        assert_eq!(
            names,
            vec![
                "cluster interconnect",
                "AMD Vega20 rank 0",
                "AMD Vega20 rank 1"
            ]
        );
        c.sync(25_000_000);
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].track, "collectives");
        match evs[0].kind {
            wsvd_trace::EventKind::Span { dur, .. } => {
                assert!((dur - (30e-6 + 25e6 / 25e9)).abs() < 1e-12)
            }
            ref other => panic!("expected span, got {other:?}"),
        }
    }
}
