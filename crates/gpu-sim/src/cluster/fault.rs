//! Deterministic, seedable fault injection for the elastic cluster.
//!
//! A [`FaultPlan`] is pure data — *when* and *where* things go wrong in
//! simulated time — interpreted by the elastic executor:
//!
//! * [`Kill`] — rank `r` dies at simulated second `t`. A chunk in flight
//!   across `t` is discarded (the rank's clock rewinds to the kill
//!   instant — work after the death never happened) and requeued with
//!   bounded retry accounting.
//! * [`Stall`] — a transient pause: once the rank's clock reaches `t` it is
//!   charged `seconds` of dead time at the next chunk-pull boundary.
//! * [`Straggler`] — a slow device: every chunk on the rank costs
//!   `factor` times its simulated duration (charged host-side after the
//!   chunk, so a factor of exactly `1.0` is bit-identical to no fault).
//!
//! Plans are deterministic by construction; [`FaultPlan::seeded`] derives
//! one from a seed with a splitmix64 stream, so a chaos scenario is fully
//! replayable from the seed alone (the same provenance rule the health
//! layer's incidents follow).

/// Kill rank `rank` at simulated time `at_seconds`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Kill {
    /// The rank that dies.
    pub rank: usize,
    /// Simulated second of death.
    pub at_seconds: f64,
}

/// Pause rank `rank` for `seconds` once its clock reaches `at_seconds`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stall {
    /// The stalled rank.
    pub rank: usize,
    /// Simulated second the stall arms at.
    pub at_seconds: f64,
    /// Dead time charged at the next pull boundary.
    pub seconds: f64,
}

/// Slow down every chunk on `rank` by `factor`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// The slow rank.
    pub rank: usize,
    /// Duration multiplier (`2.0` = twice as slow; `1.0` = no-op).
    pub factor: f64,
}

/// A deterministic fault schedule for one elastic run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Rank deaths, applied at pull boundaries or mid-chunk.
    pub kills: Vec<Kill>,
    /// Transient stalls, applied at pull boundaries.
    pub stalls: Vec<Stall>,
    /// Per-rank slowdown factors.
    pub stragglers: Vec<Straggler>,
    /// Times a single chunk may die mid-execution before it is declared
    /// unrecovered (counted on the chunk, not the rank).
    pub max_retries: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            kills: Vec::new(),
            stalls: Vec::new(),
            stragglers: Vec::new(),
            max_retries: 3,
        }
    }
}

impl FaultPlan {
    /// The empty plan: the elastic executor is then a strict scheduler with
    /// no injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a rank death at `at_seconds`.
    pub fn kill(mut self, rank: usize, at_seconds: f64) -> Self {
        self.kills.push(Kill { rank, at_seconds });
        self
    }

    /// Adds a transient stall.
    pub fn stall(mut self, rank: usize, at_seconds: f64, seconds: f64) -> Self {
        self.stalls.push(Stall {
            rank,
            at_seconds,
            seconds,
        });
        self
    }

    /// Adds a slow-device straggler factor.
    pub fn straggler(mut self, rank: usize, factor: f64) -> Self {
        self.stragglers.push(Straggler { rank, factor });
        self
    }

    /// True when the plan injects nothing (the executor then guarantees
    /// bit-identical timing to a fault-free run).
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.stalls.is_empty() && self.stragglers.is_empty()
    }

    /// The combined slowdown factor for `rank` (product of matching
    /// stragglers; `1.0` when none match).
    pub fn straggler_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.rank == rank)
            .map(|s| s.factor)
            .product()
    }

    /// Derives a chaos plan from a seed: one straggler (1.25x–2.75x) and,
    /// on clusters with more than one rank, one kill inside `(0, horizon)`
    /// on a different rank. Deterministic — the same seed always yields the
    /// same plan, so a failing chaos run replays from its seed.
    pub fn seeded(seed: u64, ranks: usize, horizon: f64) -> Self {
        assert!(ranks > 0, "a fault plan needs at least one rank");
        let mut state = seed;
        let slow_rank = (splitmix64(&mut state) as usize) % ranks;
        let factor = 1.25 + 1.5 * unit(splitmix64(&mut state));
        let mut plan = FaultPlan::none().straggler(slow_rank, factor);
        if ranks > 1 {
            let mut dead_rank = (splitmix64(&mut state) as usize) % ranks;
            if dead_rank == slow_rank {
                dead_rank = (dead_rank + 1) % ranks;
            }
            let at = horizon * (0.1 + 0.8 * unit(splitmix64(&mut state)));
            plan = plan.kill(dead_rank, at);
        }
        plan
    }
}

/// The splitmix64 step (the same generator the vendored `rand` shim builds
/// on — small, seedable, and good enough to decorrelate plan choices).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 to `[0, 1)` with 53-bit precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_and_empty_plan_reports_empty() {
        assert!(FaultPlan::none().is_empty());
        let p = FaultPlan::none()
            .kill(2, 1.5)
            .stall(0, 0.5, 0.1)
            .straggler(1, 2.0);
        assert!(!p.is_empty());
        assert_eq!(
            p.kills,
            vec![Kill {
                rank: 2,
                at_seconds: 1.5
            }]
        );
        assert_eq!(p.max_retries, 3);
    }

    #[test]
    fn straggler_factors_multiply_and_default_to_one() {
        let p = FaultPlan::none().straggler(1, 2.0).straggler(1, 1.5);
        assert_eq!(p.straggler_factor(1), 3.0);
        assert_eq!(p.straggler_factor(0), 1.0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_replayable() {
        let a = FaultPlan::seeded(42, 4, 1.0);
        let b = FaultPlan::seeded(42, 4, 1.0);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_eq!(a.stragglers.len(), 1);
        assert_eq!(a.kills.len(), 1);
        let s = &a.stragglers[0];
        assert!(s.factor >= 1.25 && s.factor < 2.75);
        let k = &a.kills[0];
        assert!(k.rank != s.rank, "kill and straggler hit different ranks");
        assert!(k.at_seconds > 0.0 && k.at_seconds < 1.0);
        let c = FaultPlan::seeded(43, 4, 1.0);
        assert_ne!(a, c, "different seeds should decorrelate");
    }

    #[test]
    fn single_rank_seeded_plan_never_kills() {
        let p = FaultPlan::seeded(7, 1, 1.0);
        assert!(p.kills.is_empty(), "a 1-rank cluster cannot lose its rank");
        assert_eq!(p.stragglers.len(), 1);
        assert_eq!(p.stragglers[0].rank, 0);
    }
}
